file(REMOVE_RECURSE
  "CMakeFiles/vexus_index_tests.dir/index/group_graph_test.cc.o"
  "CMakeFiles/vexus_index_tests.dir/index/group_graph_test.cc.o.d"
  "CMakeFiles/vexus_index_tests.dir/index/inverted_index_test.cc.o"
  "CMakeFiles/vexus_index_tests.dir/index/inverted_index_test.cc.o.d"
  "CMakeFiles/vexus_index_tests.dir/index/minhash_test.cc.o"
  "CMakeFiles/vexus_index_tests.dir/index/minhash_test.cc.o.d"
  "CMakeFiles/vexus_index_tests.dir/index/similarity_test.cc.o"
  "CMakeFiles/vexus_index_tests.dir/index/similarity_test.cc.o.d"
  "vexus_index_tests"
  "vexus_index_tests.pdb"
  "vexus_index_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_index_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
