# Empty dependencies file for vexus_index_tests.
# This may be replaced when dependencies are built.
