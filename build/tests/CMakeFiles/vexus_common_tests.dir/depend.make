# Empty dependencies file for vexus_common_tests.
# This may be replaced when dependencies are built.
