file(REMOVE_RECURSE
  "CMakeFiles/vexus_common_tests.dir/common/bitset_test.cc.o"
  "CMakeFiles/vexus_common_tests.dir/common/bitset_test.cc.o.d"
  "CMakeFiles/vexus_common_tests.dir/common/csv_test.cc.o"
  "CMakeFiles/vexus_common_tests.dir/common/csv_test.cc.o.d"
  "CMakeFiles/vexus_common_tests.dir/common/hash_test.cc.o"
  "CMakeFiles/vexus_common_tests.dir/common/hash_test.cc.o.d"
  "CMakeFiles/vexus_common_tests.dir/common/logging_test.cc.o"
  "CMakeFiles/vexus_common_tests.dir/common/logging_test.cc.o.d"
  "CMakeFiles/vexus_common_tests.dir/common/random_test.cc.o"
  "CMakeFiles/vexus_common_tests.dir/common/random_test.cc.o.d"
  "CMakeFiles/vexus_common_tests.dir/common/result_test.cc.o"
  "CMakeFiles/vexus_common_tests.dir/common/result_test.cc.o.d"
  "CMakeFiles/vexus_common_tests.dir/common/status_test.cc.o"
  "CMakeFiles/vexus_common_tests.dir/common/status_test.cc.o.d"
  "CMakeFiles/vexus_common_tests.dir/common/stopwatch_test.cc.o"
  "CMakeFiles/vexus_common_tests.dir/common/stopwatch_test.cc.o.d"
  "CMakeFiles/vexus_common_tests.dir/common/string_util_test.cc.o"
  "CMakeFiles/vexus_common_tests.dir/common/string_util_test.cc.o.d"
  "CMakeFiles/vexus_common_tests.dir/common/thread_pool_test.cc.o"
  "CMakeFiles/vexus_common_tests.dir/common/thread_pool_test.cc.o.d"
  "vexus_common_tests"
  "vexus_common_tests.pdb"
  "vexus_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
