# Empty dependencies file for vexus_la_tests.
# This may be replaced when dependencies are built.
