file(REMOVE_RECURSE
  "CMakeFiles/vexus_la_tests.dir/la/eigen_test.cc.o"
  "CMakeFiles/vexus_la_tests.dir/la/eigen_test.cc.o.d"
  "CMakeFiles/vexus_la_tests.dir/la/matrix_test.cc.o"
  "CMakeFiles/vexus_la_tests.dir/la/matrix_test.cc.o.d"
  "vexus_la_tests"
  "vexus_la_tests.pdb"
  "vexus_la_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_la_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
