
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/engine_test.cc" "tests/CMakeFiles/vexus_core_tests.dir/core/engine_test.cc.o" "gcc" "tests/CMakeFiles/vexus_core_tests.dir/core/engine_test.cc.o.d"
  "/root/repo/tests/core/feedback_test.cc" "tests/CMakeFiles/vexus_core_tests.dir/core/feedback_test.cc.o" "gcc" "tests/CMakeFiles/vexus_core_tests.dir/core/feedback_test.cc.o.d"
  "/root/repo/tests/core/greedy_test.cc" "tests/CMakeFiles/vexus_core_tests.dir/core/greedy_test.cc.o" "gcc" "tests/CMakeFiles/vexus_core_tests.dir/core/greedy_test.cc.o.d"
  "/root/repo/tests/core/quality_test.cc" "tests/CMakeFiles/vexus_core_tests.dir/core/quality_test.cc.o" "gcc" "tests/CMakeFiles/vexus_core_tests.dir/core/quality_test.cc.o.d"
  "/root/repo/tests/core/session_test.cc" "tests/CMakeFiles/vexus_core_tests.dir/core/session_test.cc.o" "gcc" "tests/CMakeFiles/vexus_core_tests.dir/core/session_test.cc.o.d"
  "/root/repo/tests/core/simulated_explorer_test.cc" "tests/CMakeFiles/vexus_core_tests.dir/core/simulated_explorer_test.cc.o" "gcc" "tests/CMakeFiles/vexus_core_tests.dir/core/simulated_explorer_test.cc.o.d"
  "/root/repo/tests/core/snapshot_test.cc" "tests/CMakeFiles/vexus_core_tests.dir/core/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/vexus_core_tests.dir/core/snapshot_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/viz/CMakeFiles/vexus_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vexus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/vexus_index.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/vexus_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vexus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/vexus_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vexus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
