# Empty compiler generated dependencies file for vexus_core_tests.
# This may be replaced when dependencies are built.
