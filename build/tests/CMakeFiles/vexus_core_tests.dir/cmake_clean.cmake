file(REMOVE_RECURSE
  "CMakeFiles/vexus_core_tests.dir/core/engine_test.cc.o"
  "CMakeFiles/vexus_core_tests.dir/core/engine_test.cc.o.d"
  "CMakeFiles/vexus_core_tests.dir/core/feedback_test.cc.o"
  "CMakeFiles/vexus_core_tests.dir/core/feedback_test.cc.o.d"
  "CMakeFiles/vexus_core_tests.dir/core/greedy_test.cc.o"
  "CMakeFiles/vexus_core_tests.dir/core/greedy_test.cc.o.d"
  "CMakeFiles/vexus_core_tests.dir/core/quality_test.cc.o"
  "CMakeFiles/vexus_core_tests.dir/core/quality_test.cc.o.d"
  "CMakeFiles/vexus_core_tests.dir/core/session_test.cc.o"
  "CMakeFiles/vexus_core_tests.dir/core/session_test.cc.o.d"
  "CMakeFiles/vexus_core_tests.dir/core/simulated_explorer_test.cc.o"
  "CMakeFiles/vexus_core_tests.dir/core/simulated_explorer_test.cc.o.d"
  "CMakeFiles/vexus_core_tests.dir/core/snapshot_test.cc.o"
  "CMakeFiles/vexus_core_tests.dir/core/snapshot_test.cc.o.d"
  "vexus_core_tests"
  "vexus_core_tests.pdb"
  "vexus_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
