# Empty dependencies file for vexus_mining_tests.
# This may be replaced when dependencies are built.
