file(REMOVE_RECURSE
  "CMakeFiles/vexus_mining_tests.dir/mining/apriori_test.cc.o"
  "CMakeFiles/vexus_mining_tests.dir/mining/apriori_test.cc.o.d"
  "CMakeFiles/vexus_mining_tests.dir/mining/birch_test.cc.o"
  "CMakeFiles/vexus_mining_tests.dir/mining/birch_test.cc.o.d"
  "CMakeFiles/vexus_mining_tests.dir/mining/descriptor_catalog_test.cc.o"
  "CMakeFiles/vexus_mining_tests.dir/mining/descriptor_catalog_test.cc.o.d"
  "CMakeFiles/vexus_mining_tests.dir/mining/discovery_test.cc.o"
  "CMakeFiles/vexus_mining_tests.dir/mining/discovery_test.cc.o.d"
  "CMakeFiles/vexus_mining_tests.dir/mining/group_test.cc.o"
  "CMakeFiles/vexus_mining_tests.dir/mining/group_test.cc.o.d"
  "CMakeFiles/vexus_mining_tests.dir/mining/lcm_test.cc.o"
  "CMakeFiles/vexus_mining_tests.dir/mining/lcm_test.cc.o.d"
  "CMakeFiles/vexus_mining_tests.dir/mining/momri_test.cc.o"
  "CMakeFiles/vexus_mining_tests.dir/mining/momri_test.cc.o.d"
  "CMakeFiles/vexus_mining_tests.dir/mining/stream_mining_test.cc.o"
  "CMakeFiles/vexus_mining_tests.dir/mining/stream_mining_test.cc.o.d"
  "vexus_mining_tests"
  "vexus_mining_tests.pdb"
  "vexus_mining_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_mining_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
