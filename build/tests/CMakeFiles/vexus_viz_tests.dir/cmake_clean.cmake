file(REMOVE_RECURSE
  "CMakeFiles/vexus_viz_tests.dir/viz/canvas_test.cc.o"
  "CMakeFiles/vexus_viz_tests.dir/viz/canvas_test.cc.o.d"
  "CMakeFiles/vexus_viz_tests.dir/viz/crossfilter_test.cc.o"
  "CMakeFiles/vexus_viz_tests.dir/viz/crossfilter_test.cc.o.d"
  "CMakeFiles/vexus_viz_tests.dir/viz/force_layout_test.cc.o"
  "CMakeFiles/vexus_viz_tests.dir/viz/force_layout_test.cc.o.d"
  "CMakeFiles/vexus_viz_tests.dir/viz/groupviz_test.cc.o"
  "CMakeFiles/vexus_viz_tests.dir/viz/groupviz_test.cc.o.d"
  "CMakeFiles/vexus_viz_tests.dir/viz/projection_test.cc.o"
  "CMakeFiles/vexus_viz_tests.dir/viz/projection_test.cc.o.d"
  "CMakeFiles/vexus_viz_tests.dir/viz/session_views_test.cc.o"
  "CMakeFiles/vexus_viz_tests.dir/viz/session_views_test.cc.o.d"
  "CMakeFiles/vexus_viz_tests.dir/viz/stats_view_test.cc.o"
  "CMakeFiles/vexus_viz_tests.dir/viz/stats_view_test.cc.o.d"
  "vexus_viz_tests"
  "vexus_viz_tests.pdb"
  "vexus_viz_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_viz_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
