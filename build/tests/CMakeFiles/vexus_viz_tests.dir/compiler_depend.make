# Empty compiler generated dependencies file for vexus_viz_tests.
# This may be replaced when dependencies are built.
