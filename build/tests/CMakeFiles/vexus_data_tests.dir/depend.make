# Empty dependencies file for vexus_data_tests.
# This may be replaced when dependencies are built.
