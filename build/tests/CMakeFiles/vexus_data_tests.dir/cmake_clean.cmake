file(REMOVE_RECURSE
  "CMakeFiles/vexus_data_tests.dir/data/action_table_test.cc.o"
  "CMakeFiles/vexus_data_tests.dir/data/action_table_test.cc.o.d"
  "CMakeFiles/vexus_data_tests.dir/data/dataset_test.cc.o"
  "CMakeFiles/vexus_data_tests.dir/data/dataset_test.cc.o.d"
  "CMakeFiles/vexus_data_tests.dir/data/dictionary_test.cc.o"
  "CMakeFiles/vexus_data_tests.dir/data/dictionary_test.cc.o.d"
  "CMakeFiles/vexus_data_tests.dir/data/etl_test.cc.o"
  "CMakeFiles/vexus_data_tests.dir/data/etl_test.cc.o.d"
  "CMakeFiles/vexus_data_tests.dir/data/generators_test.cc.o"
  "CMakeFiles/vexus_data_tests.dir/data/generators_test.cc.o.d"
  "CMakeFiles/vexus_data_tests.dir/data/schema_test.cc.o"
  "CMakeFiles/vexus_data_tests.dir/data/schema_test.cc.o.d"
  "CMakeFiles/vexus_data_tests.dir/data/stream_test.cc.o"
  "CMakeFiles/vexus_data_tests.dir/data/stream_test.cc.o.d"
  "CMakeFiles/vexus_data_tests.dir/data/user_table_test.cc.o"
  "CMakeFiles/vexus_data_tests.dir/data/user_table_test.cc.o.d"
  "vexus_data_tests"
  "vexus_data_tests.pdb"
  "vexus_data_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_data_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
