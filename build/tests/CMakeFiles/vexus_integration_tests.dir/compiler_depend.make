# Empty compiler generated dependencies file for vexus_integration_tests.
# This may be replaced when dependencies are built.
