file(REMOVE_RECURSE
  "CMakeFiles/vexus_integration_tests.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/vexus_integration_tests.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/vexus_integration_tests.dir/integration/properties_test.cc.o"
  "CMakeFiles/vexus_integration_tests.dir/integration/properties_test.cc.o.d"
  "vexus_integration_tests"
  "vexus_integration_tests.pdb"
  "vexus_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
