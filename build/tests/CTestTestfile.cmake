# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/vexus_common_tests[1]_include.cmake")
include("/root/repo/build/tests/vexus_la_tests[1]_include.cmake")
include("/root/repo/build/tests/vexus_data_tests[1]_include.cmake")
include("/root/repo/build/tests/vexus_mining_tests[1]_include.cmake")
include("/root/repo/build/tests/vexus_index_tests[1]_include.cmake")
include("/root/repo/build/tests/vexus_core_tests[1]_include.cmake")
include("/root/repo/build/tests/vexus_viz_tests[1]_include.cmake")
include("/root/repo/build/tests/vexus_integration_tests[1]_include.cmake")
