file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_bookclub.dir/bench_scenario_bookclub.cpp.o"
  "CMakeFiles/bench_scenario_bookclub.dir/bench_scenario_bookclub.cpp.o.d"
  "bench_scenario_bookclub"
  "bench_scenario_bookclub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_bookclub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
