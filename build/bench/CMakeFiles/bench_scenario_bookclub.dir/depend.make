# Empty dependencies file for bench_scenario_bookclub.
# This may be replaced when dependencies are built.
