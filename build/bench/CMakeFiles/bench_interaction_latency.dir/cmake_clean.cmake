file(REMOVE_RECURSE
  "CMakeFiles/bench_interaction_latency.dir/bench_interaction_latency.cpp.o"
  "CMakeFiles/bench_interaction_latency.dir/bench_interaction_latency.cpp.o.d"
  "bench_interaction_latency"
  "bench_interaction_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interaction_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
