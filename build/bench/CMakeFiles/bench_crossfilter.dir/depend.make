# Empty dependencies file for bench_crossfilter.
# This may be replaced when dependencies are built.
