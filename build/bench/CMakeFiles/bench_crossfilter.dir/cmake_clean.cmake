file(REMOVE_RECURSE
  "CMakeFiles/bench_crossfilter.dir/bench_crossfilter.cpp.o"
  "CMakeFiles/bench_crossfilter.dir/bench_crossfilter.cpp.o.d"
  "bench_crossfilter"
  "bench_crossfilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
