file(REMOVE_RECURSE
  "CMakeFiles/bench_group_enumeration.dir/bench_group_enumeration.cpp.o"
  "CMakeFiles/bench_group_enumeration.dir/bench_group_enumeration.cpp.o.d"
  "bench_group_enumeration"
  "bench_group_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_group_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
