# Empty compiler generated dependencies file for bench_group_enumeration.
# This may be replaced when dependencies are built.
