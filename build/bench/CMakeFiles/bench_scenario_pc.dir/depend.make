# Empty dependencies file for bench_scenario_pc.
# This may be replaced when dependencies are built.
