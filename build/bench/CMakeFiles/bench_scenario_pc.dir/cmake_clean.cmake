file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_pc.dir/bench_scenario_pc.cpp.o"
  "CMakeFiles/bench_scenario_pc.dir/bench_scenario_pc.cpp.o.d"
  "bench_scenario_pc"
  "bench_scenario_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
