file(REMOVE_RECURSE
  "CMakeFiles/bench_feedback_learning.dir/bench_feedback_learning.cpp.o"
  "CMakeFiles/bench_feedback_learning.dir/bench_feedback_learning.cpp.o.d"
  "bench_feedback_learning"
  "bench_feedback_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feedback_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
