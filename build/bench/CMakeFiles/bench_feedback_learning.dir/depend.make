# Empty dependencies file for bench_feedback_learning.
# This may be replaced when dependencies are built.
