file(REMOVE_RECURSE
  "CMakeFiles/bench_index_materialization.dir/bench_index_materialization.cpp.o"
  "CMakeFiles/bench_index_materialization.dir/bench_index_materialization.cpp.o.d"
  "bench_index_materialization"
  "bench_index_materialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_materialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
