# Empty dependencies file for bench_index_materialization.
# This may be replaced when dependencies are built.
