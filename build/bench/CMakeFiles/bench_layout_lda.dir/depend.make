# Empty dependencies file for bench_layout_lda.
# This may be replaced when dependencies are built.
