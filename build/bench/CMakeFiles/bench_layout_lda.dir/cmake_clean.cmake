file(REMOVE_RECURSE
  "CMakeFiles/bench_layout_lda.dir/bench_layout_lda.cpp.o"
  "CMakeFiles/bench_layout_lda.dir/bench_layout_lda.cpp.o.d"
  "bench_layout_lda"
  "bench_layout_lda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layout_lda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
