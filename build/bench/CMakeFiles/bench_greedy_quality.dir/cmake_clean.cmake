file(REMOVE_RECURSE
  "CMakeFiles/bench_greedy_quality.dir/bench_greedy_quality.cpp.o"
  "CMakeFiles/bench_greedy_quality.dir/bench_greedy_quality.cpp.o.d"
  "bench_greedy_quality"
  "bench_greedy_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedy_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
