file(REMOVE_RECURSE
  "CMakeFiles/vexus_common.dir/bitset.cc.o"
  "CMakeFiles/vexus_common.dir/bitset.cc.o.d"
  "CMakeFiles/vexus_common.dir/csv.cc.o"
  "CMakeFiles/vexus_common.dir/csv.cc.o.d"
  "CMakeFiles/vexus_common.dir/hash.cc.o"
  "CMakeFiles/vexus_common.dir/hash.cc.o.d"
  "CMakeFiles/vexus_common.dir/logging.cc.o"
  "CMakeFiles/vexus_common.dir/logging.cc.o.d"
  "CMakeFiles/vexus_common.dir/random.cc.o"
  "CMakeFiles/vexus_common.dir/random.cc.o.d"
  "CMakeFiles/vexus_common.dir/status.cc.o"
  "CMakeFiles/vexus_common.dir/status.cc.o.d"
  "CMakeFiles/vexus_common.dir/string_util.cc.o"
  "CMakeFiles/vexus_common.dir/string_util.cc.o.d"
  "CMakeFiles/vexus_common.dir/thread_pool.cc.o"
  "CMakeFiles/vexus_common.dir/thread_pool.cc.o.d"
  "libvexus_common.a"
  "libvexus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
