file(REMOVE_RECURSE
  "libvexus_common.a"
)
