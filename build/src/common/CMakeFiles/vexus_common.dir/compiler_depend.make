# Empty compiler generated dependencies file for vexus_common.
# This may be replaced when dependencies are built.
