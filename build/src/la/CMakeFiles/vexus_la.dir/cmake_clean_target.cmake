file(REMOVE_RECURSE
  "libvexus_la.a"
)
