file(REMOVE_RECURSE
  "CMakeFiles/vexus_la.dir/eigen.cc.o"
  "CMakeFiles/vexus_la.dir/eigen.cc.o.d"
  "CMakeFiles/vexus_la.dir/matrix.cc.o"
  "CMakeFiles/vexus_la.dir/matrix.cc.o.d"
  "libvexus_la.a"
  "libvexus_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
