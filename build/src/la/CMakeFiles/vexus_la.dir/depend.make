# Empty dependencies file for vexus_la.
# This may be replaced when dependencies are built.
