# Empty dependencies file for vexus_viz.
# This may be replaced when dependencies are built.
