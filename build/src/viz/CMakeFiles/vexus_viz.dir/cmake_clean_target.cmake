file(REMOVE_RECURSE
  "libvexus_viz.a"
)
