file(REMOVE_RECURSE
  "CMakeFiles/vexus_viz.dir/canvas.cc.o"
  "CMakeFiles/vexus_viz.dir/canvas.cc.o.d"
  "CMakeFiles/vexus_viz.dir/crossfilter.cc.o"
  "CMakeFiles/vexus_viz.dir/crossfilter.cc.o.d"
  "CMakeFiles/vexus_viz.dir/force_layout.cc.o"
  "CMakeFiles/vexus_viz.dir/force_layout.cc.o.d"
  "CMakeFiles/vexus_viz.dir/groupviz.cc.o"
  "CMakeFiles/vexus_viz.dir/groupviz.cc.o.d"
  "CMakeFiles/vexus_viz.dir/projection.cc.o"
  "CMakeFiles/vexus_viz.dir/projection.cc.o.d"
  "CMakeFiles/vexus_viz.dir/session_views.cc.o"
  "CMakeFiles/vexus_viz.dir/session_views.cc.o.d"
  "CMakeFiles/vexus_viz.dir/stats_view.cc.o"
  "CMakeFiles/vexus_viz.dir/stats_view.cc.o.d"
  "libvexus_viz.a"
  "libvexus_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
