
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/canvas.cc" "src/viz/CMakeFiles/vexus_viz.dir/canvas.cc.o" "gcc" "src/viz/CMakeFiles/vexus_viz.dir/canvas.cc.o.d"
  "/root/repo/src/viz/crossfilter.cc" "src/viz/CMakeFiles/vexus_viz.dir/crossfilter.cc.o" "gcc" "src/viz/CMakeFiles/vexus_viz.dir/crossfilter.cc.o.d"
  "/root/repo/src/viz/force_layout.cc" "src/viz/CMakeFiles/vexus_viz.dir/force_layout.cc.o" "gcc" "src/viz/CMakeFiles/vexus_viz.dir/force_layout.cc.o.d"
  "/root/repo/src/viz/groupviz.cc" "src/viz/CMakeFiles/vexus_viz.dir/groupviz.cc.o" "gcc" "src/viz/CMakeFiles/vexus_viz.dir/groupviz.cc.o.d"
  "/root/repo/src/viz/projection.cc" "src/viz/CMakeFiles/vexus_viz.dir/projection.cc.o" "gcc" "src/viz/CMakeFiles/vexus_viz.dir/projection.cc.o.d"
  "/root/repo/src/viz/session_views.cc" "src/viz/CMakeFiles/vexus_viz.dir/session_views.cc.o" "gcc" "src/viz/CMakeFiles/vexus_viz.dir/session_views.cc.o.d"
  "/root/repo/src/viz/stats_view.cc" "src/viz/CMakeFiles/vexus_viz.dir/stats_view.cc.o" "gcc" "src/viz/CMakeFiles/vexus_viz.dir/stats_view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vexus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/vexus_la.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/vexus_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vexus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vexus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/vexus_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
