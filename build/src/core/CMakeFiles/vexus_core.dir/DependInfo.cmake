
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/vexus_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/vexus_core.dir/engine.cc.o.d"
  "/root/repo/src/core/feedback.cc" "src/core/CMakeFiles/vexus_core.dir/feedback.cc.o" "gcc" "src/core/CMakeFiles/vexus_core.dir/feedback.cc.o.d"
  "/root/repo/src/core/greedy.cc" "src/core/CMakeFiles/vexus_core.dir/greedy.cc.o" "gcc" "src/core/CMakeFiles/vexus_core.dir/greedy.cc.o.d"
  "/root/repo/src/core/quality.cc" "src/core/CMakeFiles/vexus_core.dir/quality.cc.o" "gcc" "src/core/CMakeFiles/vexus_core.dir/quality.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/vexus_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/vexus_core.dir/session.cc.o.d"
  "/root/repo/src/core/simulated_explorer.cc" "src/core/CMakeFiles/vexus_core.dir/simulated_explorer.cc.o" "gcc" "src/core/CMakeFiles/vexus_core.dir/simulated_explorer.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/core/CMakeFiles/vexus_core.dir/snapshot.cc.o" "gcc" "src/core/CMakeFiles/vexus_core.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/vexus_index.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/vexus_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vexus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vexus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
