file(REMOVE_RECURSE
  "CMakeFiles/vexus_core.dir/engine.cc.o"
  "CMakeFiles/vexus_core.dir/engine.cc.o.d"
  "CMakeFiles/vexus_core.dir/feedback.cc.o"
  "CMakeFiles/vexus_core.dir/feedback.cc.o.d"
  "CMakeFiles/vexus_core.dir/greedy.cc.o"
  "CMakeFiles/vexus_core.dir/greedy.cc.o.d"
  "CMakeFiles/vexus_core.dir/quality.cc.o"
  "CMakeFiles/vexus_core.dir/quality.cc.o.d"
  "CMakeFiles/vexus_core.dir/session.cc.o"
  "CMakeFiles/vexus_core.dir/session.cc.o.d"
  "CMakeFiles/vexus_core.dir/simulated_explorer.cc.o"
  "CMakeFiles/vexus_core.dir/simulated_explorer.cc.o.d"
  "CMakeFiles/vexus_core.dir/snapshot.cc.o"
  "CMakeFiles/vexus_core.dir/snapshot.cc.o.d"
  "libvexus_core.a"
  "libvexus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
