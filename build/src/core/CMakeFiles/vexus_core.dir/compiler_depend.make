# Empty compiler generated dependencies file for vexus_core.
# This may be replaced when dependencies are built.
