file(REMOVE_RECURSE
  "libvexus_core.a"
)
