# Empty dependencies file for vexus_mining.
# This may be replaced when dependencies are built.
