
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/apriori.cc" "src/mining/CMakeFiles/vexus_mining.dir/apriori.cc.o" "gcc" "src/mining/CMakeFiles/vexus_mining.dir/apriori.cc.o.d"
  "/root/repo/src/mining/birch.cc" "src/mining/CMakeFiles/vexus_mining.dir/birch.cc.o" "gcc" "src/mining/CMakeFiles/vexus_mining.dir/birch.cc.o.d"
  "/root/repo/src/mining/descriptor_catalog.cc" "src/mining/CMakeFiles/vexus_mining.dir/descriptor_catalog.cc.o" "gcc" "src/mining/CMakeFiles/vexus_mining.dir/descriptor_catalog.cc.o.d"
  "/root/repo/src/mining/discovery.cc" "src/mining/CMakeFiles/vexus_mining.dir/discovery.cc.o" "gcc" "src/mining/CMakeFiles/vexus_mining.dir/discovery.cc.o.d"
  "/root/repo/src/mining/group.cc" "src/mining/CMakeFiles/vexus_mining.dir/group.cc.o" "gcc" "src/mining/CMakeFiles/vexus_mining.dir/group.cc.o.d"
  "/root/repo/src/mining/lcm.cc" "src/mining/CMakeFiles/vexus_mining.dir/lcm.cc.o" "gcc" "src/mining/CMakeFiles/vexus_mining.dir/lcm.cc.o.d"
  "/root/repo/src/mining/momri.cc" "src/mining/CMakeFiles/vexus_mining.dir/momri.cc.o" "gcc" "src/mining/CMakeFiles/vexus_mining.dir/momri.cc.o.d"
  "/root/repo/src/mining/stream_mining.cc" "src/mining/CMakeFiles/vexus_mining.dir/stream_mining.cc.o" "gcc" "src/mining/CMakeFiles/vexus_mining.dir/stream_mining.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/vexus_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vexus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
