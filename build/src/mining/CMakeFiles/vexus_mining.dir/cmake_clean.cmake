file(REMOVE_RECURSE
  "CMakeFiles/vexus_mining.dir/apriori.cc.o"
  "CMakeFiles/vexus_mining.dir/apriori.cc.o.d"
  "CMakeFiles/vexus_mining.dir/birch.cc.o"
  "CMakeFiles/vexus_mining.dir/birch.cc.o.d"
  "CMakeFiles/vexus_mining.dir/descriptor_catalog.cc.o"
  "CMakeFiles/vexus_mining.dir/descriptor_catalog.cc.o.d"
  "CMakeFiles/vexus_mining.dir/discovery.cc.o"
  "CMakeFiles/vexus_mining.dir/discovery.cc.o.d"
  "CMakeFiles/vexus_mining.dir/group.cc.o"
  "CMakeFiles/vexus_mining.dir/group.cc.o.d"
  "CMakeFiles/vexus_mining.dir/lcm.cc.o"
  "CMakeFiles/vexus_mining.dir/lcm.cc.o.d"
  "CMakeFiles/vexus_mining.dir/momri.cc.o"
  "CMakeFiles/vexus_mining.dir/momri.cc.o.d"
  "CMakeFiles/vexus_mining.dir/stream_mining.cc.o"
  "CMakeFiles/vexus_mining.dir/stream_mining.cc.o.d"
  "libvexus_mining.a"
  "libvexus_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
