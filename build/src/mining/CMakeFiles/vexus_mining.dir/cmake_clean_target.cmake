file(REMOVE_RECURSE
  "libvexus_mining.a"
)
