file(REMOVE_RECURSE
  "libvexus_index.a"
)
