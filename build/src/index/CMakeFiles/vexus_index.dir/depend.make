# Empty dependencies file for vexus_index.
# This may be replaced when dependencies are built.
