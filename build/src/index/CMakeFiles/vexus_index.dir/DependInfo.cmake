
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/group_graph.cc" "src/index/CMakeFiles/vexus_index.dir/group_graph.cc.o" "gcc" "src/index/CMakeFiles/vexus_index.dir/group_graph.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/index/CMakeFiles/vexus_index.dir/inverted_index.cc.o" "gcc" "src/index/CMakeFiles/vexus_index.dir/inverted_index.cc.o.d"
  "/root/repo/src/index/minhash.cc" "src/index/CMakeFiles/vexus_index.dir/minhash.cc.o" "gcc" "src/index/CMakeFiles/vexus_index.dir/minhash.cc.o.d"
  "/root/repo/src/index/similarity.cc" "src/index/CMakeFiles/vexus_index.dir/similarity.cc.o" "gcc" "src/index/CMakeFiles/vexus_index.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mining/CMakeFiles/vexus_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vexus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vexus_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
