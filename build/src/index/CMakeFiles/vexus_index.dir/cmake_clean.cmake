file(REMOVE_RECURSE
  "CMakeFiles/vexus_index.dir/group_graph.cc.o"
  "CMakeFiles/vexus_index.dir/group_graph.cc.o.d"
  "CMakeFiles/vexus_index.dir/inverted_index.cc.o"
  "CMakeFiles/vexus_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/vexus_index.dir/minhash.cc.o"
  "CMakeFiles/vexus_index.dir/minhash.cc.o.d"
  "CMakeFiles/vexus_index.dir/similarity.cc.o"
  "CMakeFiles/vexus_index.dir/similarity.cc.o.d"
  "libvexus_index.a"
  "libvexus_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
