file(REMOVE_RECURSE
  "libvexus_data.a"
)
