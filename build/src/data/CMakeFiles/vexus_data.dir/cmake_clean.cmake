file(REMOVE_RECURSE
  "CMakeFiles/vexus_data.dir/action_table.cc.o"
  "CMakeFiles/vexus_data.dir/action_table.cc.o.d"
  "CMakeFiles/vexus_data.dir/dataset.cc.o"
  "CMakeFiles/vexus_data.dir/dataset.cc.o.d"
  "CMakeFiles/vexus_data.dir/dictionary.cc.o"
  "CMakeFiles/vexus_data.dir/dictionary.cc.o.d"
  "CMakeFiles/vexus_data.dir/etl.cc.o"
  "CMakeFiles/vexus_data.dir/etl.cc.o.d"
  "CMakeFiles/vexus_data.dir/generators/bookcrossing_gen.cc.o"
  "CMakeFiles/vexus_data.dir/generators/bookcrossing_gen.cc.o.d"
  "CMakeFiles/vexus_data.dir/generators/dbauthors_gen.cc.o"
  "CMakeFiles/vexus_data.dir/generators/dbauthors_gen.cc.o.d"
  "CMakeFiles/vexus_data.dir/schema.cc.o"
  "CMakeFiles/vexus_data.dir/schema.cc.o.d"
  "CMakeFiles/vexus_data.dir/user_table.cc.o"
  "CMakeFiles/vexus_data.dir/user_table.cc.o.d"
  "libvexus_data.a"
  "libvexus_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vexus_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
