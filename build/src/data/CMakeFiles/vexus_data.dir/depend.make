# Empty dependencies file for vexus_data.
# This may be replaced when dependencies are built.
