
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/action_table.cc" "src/data/CMakeFiles/vexus_data.dir/action_table.cc.o" "gcc" "src/data/CMakeFiles/vexus_data.dir/action_table.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/vexus_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/vexus_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/dictionary.cc" "src/data/CMakeFiles/vexus_data.dir/dictionary.cc.o" "gcc" "src/data/CMakeFiles/vexus_data.dir/dictionary.cc.o.d"
  "/root/repo/src/data/etl.cc" "src/data/CMakeFiles/vexus_data.dir/etl.cc.o" "gcc" "src/data/CMakeFiles/vexus_data.dir/etl.cc.o.d"
  "/root/repo/src/data/generators/bookcrossing_gen.cc" "src/data/CMakeFiles/vexus_data.dir/generators/bookcrossing_gen.cc.o" "gcc" "src/data/CMakeFiles/vexus_data.dir/generators/bookcrossing_gen.cc.o.d"
  "/root/repo/src/data/generators/dbauthors_gen.cc" "src/data/CMakeFiles/vexus_data.dir/generators/dbauthors_gen.cc.o" "gcc" "src/data/CMakeFiles/vexus_data.dir/generators/dbauthors_gen.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/data/CMakeFiles/vexus_data.dir/schema.cc.o" "gcc" "src/data/CMakeFiles/vexus_data.dir/schema.cc.o.d"
  "/root/repo/src/data/user_table.cc" "src/data/CMakeFiles/vexus_data.dir/user_table.cc.o" "gcc" "src/data/CMakeFiles/vexus_data.dir/user_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vexus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
