file(REMOVE_RECURSE
  "CMakeFiles/party_guest_finder.dir/party_guest_finder.cpp.o"
  "CMakeFiles/party_guest_finder.dir/party_guest_finder.cpp.o.d"
  "party_guest_finder"
  "party_guest_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/party_guest_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
