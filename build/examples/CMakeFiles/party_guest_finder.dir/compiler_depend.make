# Empty compiler generated dependencies file for party_guest_finder.
# This may be replaced when dependencies are built.
