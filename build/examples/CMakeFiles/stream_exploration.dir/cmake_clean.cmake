file(REMOVE_RECURSE
  "CMakeFiles/stream_exploration.dir/stream_exploration.cpp.o"
  "CMakeFiles/stream_exploration.dir/stream_exploration.cpp.o.d"
  "stream_exploration"
  "stream_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
