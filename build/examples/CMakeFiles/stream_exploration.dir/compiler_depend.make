# Empty compiler generated dependencies file for stream_exploration.
# This may be replaced when dependencies are built.
