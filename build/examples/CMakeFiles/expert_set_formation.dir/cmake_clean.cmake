file(REMOVE_RECURSE
  "CMakeFiles/expert_set_formation.dir/expert_set_formation.cpp.o"
  "CMakeFiles/expert_set_formation.dir/expert_set_formation.cpp.o.d"
  "expert_set_formation"
  "expert_set_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expert_set_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
