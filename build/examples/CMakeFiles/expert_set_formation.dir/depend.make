# Empty dependencies file for expert_set_formation.
# This may be replaced when dependencies are built.
