# Empty dependencies file for discussion_groups.
# This may be replaced when dependencies are built.
