file(REMOVE_RECURSE
  "CMakeFiles/discussion_groups.dir/discussion_groups.cpp.o"
  "CMakeFiles/discussion_groups.dir/discussion_groups.cpp.o.d"
  "discussion_groups"
  "discussion_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
