# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_expert_set_formation "/root/repo/build/examples/expert_set_formation")
set_tests_properties(example_expert_set_formation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_discussion_groups "/root/repo/build/examples/discussion_groups")
set_tests_properties(example_discussion_groups PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_party_guest_finder "/root/repo/build/examples/party_guest_finder")
set_tests_properties(example_party_guest_finder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stream_exploration "/root/repo/build/examples/stream_exploration")
set_tests_properties(example_stream_exploration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
