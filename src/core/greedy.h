// Anytime greedy k-group selection — the recommendation step behind GROUPVIZ.
//
// Paper §II.B: "VEXUS decides which k groups (… P1) to explore next for g
// based on implicit feedback so far … We use a best-effort greedy approach
// to return a local diverse and covering set of k groups with a lower-bound
// on similarity. … the bottleneck of the framework is the greedy process.
// To comply with the efficiency principle P3, we set a time limit … safely
// set to 100ms (continuity preserving latency) which enables VEXUS to reach
// in average 90% of diversity and 85% of coverage."
//
// Algorithm: candidates are the anchor's materialized index neighbors with
// similarity ≥ σ (the lower bound). The selection is seeded with the top-k
// candidates by feedback-weighted similarity × group prior, then refined by
// best-improving swaps on the objective
//     λ·coverage(S|anchor) + (1−λ)·diversity(S) + μ·affinity(S)
// until the deadline expires or a local optimum is reached. Every data
// structure the loop touches is O(k²) or O(k·|candidates|); the anytime loop
// is what the 100 ms budget truncates (experiment E1 sweeps it).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/stopwatch.h"
#include "core/feedback.h"
#include "core/quality.h"
#include "index/inverted_index.h"
#include "mining/group.h"

namespace vexus {
class ShardMap;
class ThreadPool;
class TraceSpan;
}  // namespace vexus

namespace vexus::core {

/// Multi-box scatter hook (DESIGN.md §16): one pass's admissible trials go
/// out to S shard backends, each of which answers integer coverage partials
/// over its own user range. The greedy stays transport-agnostic — the
/// serving layer injects an implementation (server/gather.h) that owns
/// connections, retries, hedging, and circuit breakers; core sees only the
/// fold contract below.
class RemoteTrialScatterer {
 public:
  struct Outcome {
    /// Per-shard: true when the shard answered this lap (possibly after
    /// retry/hedge) with a generation-matched partial vector.
    std::vector<bool> shard_ok;
    /// partials[s][t] = shard s's newly-covered count for trial t. Sized
    /// |trials| for ok shards; unspecified for failed ones.
    std::vector<std::vector<uint32_t>> partials;
    /// Fraction of the user universe the ok shards own, in [0, 1]. 1.0
    /// when every shard answered — then the folded integer sums equal the
    /// single-process counts exactly.
    double covered_fraction = 0;
    /// Wall-clock of the slowest successful lap this scatter waited on —
    /// the serving layer feeds it to the overload ladder as a gather
    /// delay source.
    double lap_delay_ms = 0;
  };
  virtual ~RemoteTrialScatterer() = default;
  /// Scatters one pass. `selection` holds group ids in slot order; `trials`
  /// holds flat (candidate group id, slot) pairs. Must return within
  /// `deadline` (bounded retries inside — never hang the greedy).
  virtual Outcome Scatter(std::optional<uint32_t> anchor,
                          const std::vector<uint32_t>& selection,
                          const std::vector<uint32_t>& trials,
                          const Deadline& deadline) = 0;
};

struct GreedyOptions {
  /// Groups shown per step; the paper caps at 7 (Miller's law, P1).
  size_t k = 5;
  /// Coverage weight in the objective (1−lambda weighs diversity).
  double lambda = 0.5;
  /// Lower bound σ on (plain) similarity to the anchor (P2's relevance
  /// guard); candidates below it are not considered.
  double min_similarity = 0.05;
  /// The P3 time budget for the refinement loop, in milliseconds.
  ///
  /// Budget semantics match Deadline::AfterMillis everywhere: zero, negative
  /// or NaN budgets *expire immediately* (seed-only selection, deadline_hit
  /// set) — this is what lets the serving layer clamp a request's remaining
  /// deadline into this field without a sign check. Unbounded runs (the E1
  /// reference optimum) pass kUnboundedTimeLimit (+infinity).
  double time_limit_ms = 100.0;

  /// Sentinel for "no time limit" (see time_limit_ms).
  static constexpr double kUnboundedTimeLimit =
      std::numeric_limits<double>::infinity();
  /// μ: weight of the feedback-affinity term in the internal objective.
  double feedback_weight = 0.2;
  /// Cap on the candidate pool for the *initial* step (no anchor), where
  /// every group is a candidate; top groups by prior·size are kept.
  size_t initial_candidate_cap = 512;
  /// Exclude neighbors whose member set contains the anchor's (supersets,
  /// including the root). Off by default: supersets are legitimate roll-up
  /// moves; the refinement quota below is what guarantees drill-down.
  bool exclude_supersets = false;
  /// Fraction of the k slots reserved for *refinements* — strict subsets of
  /// the anchor. The paper's interaction narrative ("she immediately
  /// receives three subsets of that group") implies screens mix drill-down
  /// options with lateral moves; without the quota, large lateral/ancestor
  /// groups dominate the coverage objective and exploration cycles among
  /// the same few big groups (ablation A1/D-quota measures this).
  double refinement_quota = 0.5;

  /// How trial swaps are scored. kIncremental maintains the selection's
  /// coverage/diversity/affinity state so a trial costs one bitset pass +
  /// O(1) (see core/greedy_eval.h); kScratch re-evaluates the objective
  /// from scratch per trial (the pre-incremental behaviour, kept as the
  /// oracle for tests and the baseline for bench_greedy_incremental). Both
  /// modes pick identical swaps up to floating-point reassociation noise
  /// (~1e-15 per trial, pinned at 1e-9 by the oracle test).
  enum class EvalMode { kIncremental, kScratch };
  EvalMode eval_mode = EvalMode::kIncremental;

  /// Optional pool for sharding the candidate scan. Null → serial scan.
  /// Parallel and serial scans select byte-identical swaps: trials compute
  /// identical doubles in either mode, and the argmax reduction folds
  /// per-chunk results in deterministic chunk order with ties broken by
  /// smallest (candidate, position). Safe to point at a *shared* pool —
  /// including the serving layer's own worker pool, from whose workers this
  /// loop is invoked (ThreadPool::ParallelForChunked has the caller
  /// participate, so completion never depends on a free worker). Ignored
  /// under kScratch, whose memoizing sim cache is not thread-safe.
  ThreadPool* scan_pool = nullptr;

  /// Candidates per scan chunk when scan_pool is set. Small enough to load-
  /// balance, large enough to amortize the atomic chunk cursor.
  size_t scan_chunk = 16;

  /// Optional horizontal shard map over the user universe
  /// (common/shard_map.h; ROADMAP item 2). Non-null with num_shards() > 1
  /// turns the incremental refinement loop into scatter-gather: per-pass
  /// rebuilds scatter one task per shard, the candidate scan computes
  /// per-shard coverage partials over each shard's word-aligned range, and
  /// a deterministic coordinator folds partials in shard order before the
  /// earliest-(cand, pos) argmax. Because every partial is an exact
  /// integer and shard boundaries are word-aligned, S-shard selections are
  /// byte-identical to 1-shard — selections, objective bits, and swap
  /// counts (the tested invariant, like kernel tiers and hybrid forms).
  /// The scatter runs on scan_pool when set, serially otherwise. Ignored
  /// under kScratch.
  const ShardMap* shard_map = nullptr;

  /// The deadline is rechecked every this many trial evaluations *inside*
  /// the per-candidate position sweep. Checking only between candidates
  /// (the old behaviour) let a single candidate's k-trial sweep blow
  /// through the 100 ms budget at large k·U.
  size_t deadline_check_interval = 16;

  /// Optional multi-box scatterer (see RemoteTrialScatterer above). When
  /// set (and eval_mode is kIncremental), the candidate scan of every
  /// refinement pass goes out to the remote shards instead of the local
  /// ShardedScan; the coordinator still folds integer partials in shard
  /// order with the earliest-(cand, pos) argmax, so an all-healthy fleet
  /// selects byte-identically to the single-process S-shard run. Shards
  /// that miss the lap (open circuit, exhausted retries) are dropped from
  /// the fold — the pass scores trials over the surviving user ranges and
  /// GreedySelection::covered_fraction records the degradation. Not owned.
  RemoteTrialScatterer* remote_scatter = nullptr;

  /// Optional parent span for stage attribution (the serving layer points
  /// this at the request's root span). The selector opens `rank` around
  /// candidate-pool construction and `greedy` → {`seed`, `pass` ×N, with
  /// per-pass trial-evaluation counts} inside Run. Null (the default) means
  /// no tracing; the per-span overhead is then a single branch. The spans
  /// are opened from the calling thread only — the parallel scan's shards
  /// never touch the tracer, so a shared TraceSpan is safe here.
  const TraceSpan* trace = nullptr;
};

struct GreedySelection {
  std::vector<mining::GroupId> groups;
  /// Reported quality (diversity/coverage/λ-objective, no affinity term).
  QualityScore quality;
  /// Mean feedback-weighted similarity of the selection to the anchor.
  double weighted_affinity = 0;
  size_t candidates = 0;
  size_t passes = 0;
  size_t swaps = 0;
  size_t evaluations = 0;
  /// Coverage-partial evaluations executed on behalf of each shard (trial
  /// partials folded by the coordinator plus per-shard rebuild partials).
  /// Empty when the run was unsharded; the serving layer surfaces these as
  /// get_stats' per-shard counters.
  std::vector<uint64_t> shard_evaluations;
  /// True iff the refinement loop stopped *because of* the deadline — i.e.
  /// it had not reached (or trivially started at) a local optimum when time
  /// ran out. A run that converges and only then observes an expired clock
  /// is NOT deadline-hit (this used to be mislabeled).
  bool deadline_hit = false;
  /// Minimum over passes of the user-universe fraction the folded shards
  /// covered (1.0 unless a remote scatter degraded; see
  /// GreedyOptions::remote_scatter). The serving layer answers
  /// degraded:"partial" when this dips below 1.
  double covered_fraction = 1.0;
  /// Slowest successful remote-gather lap observed, ms (0 when local) —
  /// the serving layer's overload-ladder input for gather pressure.
  double gather_lap_ms = 0;
  double elapsed_ms = 0;
  /// Wall-clock of each completed refinement pass, in order. Surfaced so
  /// the serving layer and bench_greedy_incremental can attribute the
  /// anytime budget to passes (pass 1 dominates: it fills the sim rows).
  std::vector<double> pass_millis;
};

/// Ranks `pool` in place by group prior × log1p(size) (descending; ties by
/// GroupId ascending) and truncates it to `cap`; pools already within the
/// cap are left untouched. Correct for ANY pool permutation — the ranking
/// sorts positions, never indexes scores by GroupId value (the old inline
/// comparator did, which was only correct while the pool happened to be the
/// identity permutation). SelectInitial uses this for its candidate cap.
void RankPoolByPrior(const mining::GroupStore& store,
                     const FeedbackVector& feedback, size_t cap,
                     std::vector<mining::GroupId>* pool);

class GreedySelector {
 public:
  GreedySelector(const mining::GroupStore* store,
                 const index::InvertedIndex* index);

  /// k groups to show after the explorer clicked `anchor`.
  GreedySelection SelectNext(mining::GroupId anchor,
                             const FeedbackVector& feedback,
                             const GreedyOptions& options) const;

  /// k groups for the first screen (no anchor; coverage over the universe).
  GreedySelection SelectInitial(const FeedbackVector& feedback,
                                const GreedyOptions& options) const;

 private:
  GreedySelection Run(std::vector<mining::GroupId> pool,
                      std::optional<mining::GroupId> anchor,
                      const FeedbackVector& feedback,
                      const GreedyOptions& options) const;

  const mining::GroupStore* store_;
  const index::InvertedIndex* index_;
};

}  // namespace vexus::core
