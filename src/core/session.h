// ExplorationSession — the interactive state machine of paper §II.A:
//
//   "In GROUPVIZ, an explorer examines a limited number of groups … She can
//    then ask to navigate to other groups which are similar to what she has
//    already liked. The explorer preference, captured in the form of
//    feedback, is illustrated in CONTEXT. The sequence of selected groups is
//    visualized in HISTORY. The explorer can backtrack to any previous step
//    in HISTORY. … At any stage the explorer can bookmark a group or a user
//    in MEMO. The analysis ends when the explorer is satisfied with her
//    collection in MEMO."
//
// Each step records the shown selection and a feedback snapshot, so
// Backtrack(i) restores both the view and the learning state at step i.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/feedback.h"
#include "core/greedy.h"
#include "index/inverted_index.h"
#include "mining/group.h"

namespace vexus::core {

struct SessionOptions {
  GreedyOptions greedy;
  /// Learning rate η of the feedback update on each selection.
  double learning_rate = 0.5;
};

/// One HISTORY entry: what was clicked and what was shown in response.
struct ExplorationStep {
  /// The group the explorer selected to get here (nullopt for step 0).
  std::optional<mining::GroupId> selected;
  /// The k groups GROUPVIZ showed at this step.
  GreedySelection shown;
  /// Feedback state *after* this step's learning (snapshot for backtrack).
  FeedbackVector feedback_snapshot;
};

/// MEMO: bookmarked groups and users — "which serves as her analysis goal".
struct Memo {
  std::vector<mining::GroupId> groups;
  std::vector<data::UserId> users;
};

/// A constant-size summary of a session's state — what the serving layer
/// logs when it evicts an idle session and returns from end_session, without
/// cloning history or feedback (sessions can hold megabytes of snapshots).
struct SessionDigest {
  size_t num_steps = 0;
  size_t memo_groups = 0;
  size_t memo_users = 0;
  size_t feedback_nonzero = 0;
  /// The last clicked group, if any step selected one.
  std::optional<mining::GroupId> last_selected;
};

class ExplorationSession {
 public:
  /// All pointers must outlive the session.
  ExplorationSession(const data::Dataset* dataset,
                     const mining::GroupStore* store,
                     const index::InvertedIndex* index,
                     SessionOptions options);

  /// Step 0: the initial GROUPVIZ screen. Resets any previous state.
  const GreedySelection& Start();

  /// The explorer clicks group g (implicit positive feedback, P-learning),
  /// and VEXUS answers with the next k groups. `g` need not be on the
  /// current screen (the paper's GROUPVIZ also allows hover-driven jumps);
  /// it must be a valid group id.
  ///
  /// Lifetime: history steps live in a deque, so references returned by
  /// Start()/SelectGroup()/Current() stay valid across later SelectGroup
  /// calls; only Start() (which resets) and Backtrack (which discards the
  /// later steps) invalidate them.
  const GreedySelection& SelectGroup(mining::GroupId g);

  /// HISTORY: number of steps so far (≥ 1 after Start).
  size_t NumSteps() const { return history_.size(); }
  const ExplorationStep& Step(size_t i) const;
  const std::deque<ExplorationStep>& History() const { return history_; }

  /// Backtrack to step `i` (0-based): discards later steps and restores the
  /// feedback snapshot of step i. Fails when i is out of range.
  Status Backtrack(size_t i);

  /// The currently shown groups (last step's selection).
  const GreedySelection& Current() const;

  /// CONTEXT: the explicit feedback state.
  const FeedbackVector& feedback() const { return feedback_; }
  std::vector<FeedbackVector::TokenScore> ContextTokens(size_t k) const {
    return feedback_.TopTokens(k);
  }
  /// CONTEXT deletion — unlearn a token ("make VEXUS forget").
  void Unlearn(Token t);

  /// MEMO.
  void BookmarkGroup(mining::GroupId g);
  void BookmarkUser(data::UserId u);
  const Memo& memo() const { return memo_; }

  /// Cheap state summary (see SessionDigest).
  SessionDigest Digest() const;

  const TokenSpace& tokens() const { return tokens_; }
  const SessionOptions& options() const { return options_; }
  /// Serving-layer hook: the dispatcher clamps the greedy time budget to a
  /// request's *remaining* deadline before each Start/SelectGroup, so queue
  /// time spent before the worker picked the request up still counts against
  /// the paper's 100 ms end-to-end budget. Callers must hold the session's
  /// exclusive lease (see server::SessionManager).
  SessionOptions& mutable_options() { return options_; }
  const mining::GroupStore& store() const { return *store_; }
  const data::Dataset& dataset() const { return *dataset_; }

 private:
  const data::Dataset* dataset_;
  const mining::GroupStore* store_;
  const index::InvertedIndex* index_;
  SessionOptions options_;
  TokenSpace tokens_;
  FeedbackVector feedback_;
  GreedySelector selector_;
  std::deque<ExplorationStep> history_;
  Memo memo_;
};

}  // namespace vexus::core
