#include "core/quality.h"

#include "common/bitset.h"
#include "common/logging.h"

namespace vexus::core {

double Diversity(const mining::GroupStore& store,
                 const std::vector<mining::GroupId>& selection) {
  size_t k = selection.size();
  if (k < 2) return 1.0;
  double sim_sum = 0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      sim_sum += store.group(selection[i])
                     .members()
                     .Jaccard(store.group(selection[j]).members());
    }
  }
  return 1.0 - sim_sum / (static_cast<double>(k) * (k - 1) / 2.0);
}

double Coverage(const mining::GroupStore& store,
                const std::vector<mining::GroupId>& selection,
                std::optional<mining::GroupId> anchor) {
  if (selection.empty()) return 0.0;
  Bitset covered(store.num_users());
  for (mining::GroupId g : selection) {
    covered |= store.group(g).members();
  }
  if (anchor.has_value()) {
    const HybridBitset& target = store.group(*anchor).members();
    size_t denom = target.Count();
    if (denom == 0) return 0.0;
    return static_cast<double>(target.IntersectCount(covered)) /
           static_cast<double>(denom);
  }
  if (store.num_users() == 0) return 0.0;
  return static_cast<double>(covered.Count()) /
         static_cast<double>(store.num_users());
}

QualityScore Evaluate(const mining::GroupStore& store,
                      const std::vector<mining::GroupId>& selection,
                      std::optional<mining::GroupId> anchor, double lambda) {
  VEXUS_DCHECK(lambda >= 0 && lambda <= 1);
  QualityScore q;
  q.diversity = Diversity(store, selection);
  q.coverage = Coverage(store, selection, anchor);
  q.objective = lambda * q.coverage + (1.0 - lambda) * q.diversity;
  return q;
}

}  // namespace vexus::core
