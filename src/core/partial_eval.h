// Backend-side batched trial-coverage partials for the multi-box
// scatter-gather greedy (DESIGN.md §16).
//
// A shard backend holds a *slice* store (LoadSnapshotShard): every group is
// full-universe width but its members are restricted to the shard's user
// range. Because slice members = full members ∩ range and the coverage
// kernels are word-parallel, evaluating a trial over the slice with
// whole-universe bitset ops yields exactly the integer
// SwapObjective::TrialCoveragePartial would compute for this shard's word
// range on the full store:
//
//     |cand ∩ anchor ∩ ¬rest(pos)|_slice  ==  partial(shard)
//
// so the coordinator can fold per-shard integers from different processes
// in shard order and reproduce the single-process counts — and therefore
// the single-process objective doubles and selections — bit for bit.
//
// One EvalCoveragePartials call scores a whole candidate-window batch: it
// rebuilds the prefix/suffix/rest tables once (O(k·U/64)) and then pays one
// bitset pass per trial, mirroring the per-pass amortization of the
// in-process SwapObjective. The function is stateless across calls — the
// selection changes at most once per greedy pass, and a pass is exactly one
// eval_partial request per shard.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "mining/group.h"

namespace vexus::core {

struct PartialEvalInput {
  /// Anchor group id; absent on the initial screen (universe coverage).
  std::optional<uint32_t> anchor;
  /// Current selection as group ids in slot order — rest(pos) is the
  /// anchor-masked union of these minus slot pos.
  std::vector<uint32_t> selection;
  /// Flat (candidate group id, slot) pairs: [c0, p0, c1, p1, ...].
  std::vector<uint32_t> trials;
};

/// Scores every trial against the (slice) store: out[i] = this shard's
/// newly-covered count for trial i. Fails with InvalidArgument on
/// out-of-range group ids, slots >= |selection|, an odd-length or empty
/// trial list, or an empty selection (a trial needs a slot to displace).
Result<std::vector<uint32_t>> EvalCoveragePartials(
    const mining::GroupStore& store, const PartialEvalInput& in);

}  // namespace vexus::core
