#include "core/greedy.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "index/similarity.h"

namespace vexus::core {

using mining::GroupId;
using mining::GroupStore;

GreedySelector::GreedySelector(const GroupStore* store,
                               const index::InvertedIndex* index)
    : store_(store), index_(index) {
  VEXUS_CHECK(store != nullptr && index != nullptr);
}

namespace {

/// Memoized pairwise Jaccard over a candidate pool (pool ids are indices
/// into `pool`, not GroupIds). k and |pool| are both small, but the swap
/// loop revisits pairs constantly — memoization keeps each pair at one
/// bitset pass.
class SimCache {
 public:
  SimCache(const GroupStore* store, const std::vector<GroupId>* pool)
      : store_(store),
        pool_(pool),
        cache_(pool->size() * pool->size(), -1.0f) {}

  float Sim(size_t a, size_t b) {
    if (a == b) return 1.0f;
    float& slot = cache_[a * pool_->size() + b];
    if (slot < 0) {
      slot = static_cast<float>(
          store_->group((*pool_)[a])
              .members()
              .Jaccard(store_->group((*pool_)[b]).members()));
      cache_[b * pool_->size() + a] = slot;
    }
    return slot;
  }

 private:
  const GroupStore* store_;
  const std::vector<GroupId>* pool_;
  std::vector<float> cache_;
};

}  // namespace

GreedySelection GreedySelector::SelectNext(GroupId anchor,
                                           const FeedbackVector& feedback,
                                           const GreedyOptions& options) const {
  std::vector<GroupId> pool;
  const Bitset& anchor_members = store_->group(anchor).members();
  for (const index::Neighbor& nb : index_->Neighbors(anchor)) {
    if (nb.similarity < options.min_similarity) continue;
    if (options.exclude_supersets &&
        anchor_members.IsSubsetOf(store_->group(nb.group).members())) {
      continue;
    }
    pool.push_back(nb.group);
  }
  return Run(std::move(pool), anchor, feedback, options);
}

GreedySelection GreedySelector::SelectInitial(
    const FeedbackVector& feedback, const GreedyOptions& options) const {
  std::vector<GroupId> pool(store_->size());
  std::iota(pool.begin(), pool.end(), GroupId{0});
  if (pool.size() > options.initial_candidate_cap) {
    // Rank by prior-weighted size; keep the cap.
    std::vector<double> score(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      score[i] = feedback.GroupPrior(store_->group(pool[i])) *
                 std::log1p(static_cast<double>(store_->group(pool[i]).size()));
    }
    std::sort(pool.begin(), pool.end(), [&score](GroupId a, GroupId b) {
      if (score[a] != score[b]) return score[a] > score[b];
      return a < b;
    });
    pool.resize(options.initial_candidate_cap);
  }
  return Run(std::move(pool), std::nullopt, feedback, options);
}

GreedySelection GreedySelector::Run(std::vector<GroupId> pool,
                                    std::optional<GroupId> anchor,
                                    const FeedbackVector& feedback,
                                    const GreedyOptions& options) const {
  VEXUS_CHECK(options.k >= 1);
  Stopwatch watch;
  // AfterMillis owns the budget clamping: <= 0 / NaN expire immediately,
  // +infinity (kUnboundedTimeLimit) never expires. Keeping the policy in one
  // place is what the serving layer's deadline propagation relies on.
  Deadline deadline = Deadline::AfterMillis(options.time_limit_ms);

  GreedySelection result;
  result.candidates = pool.size();
  if (pool.empty()) {
    result.elapsed_ms = watch.ElapsedMillis();
    return result;
  }

  // ---- Seeding: feedback-weighted similarity to the anchor × prior. ----
  // `affinity` is the feedback term of the objective: the IUGA-style
  // weighted similarity to the anchor, under user weights boosted by the
  // feedback vector. Groups whose anchor-side overlap carries rewarded
  // users rank higher — this is what steers multi-step sessions toward the
  // explorer's interest (experiment E10).
  std::vector<double> seed_score(pool.size());
  std::vector<double> affinity(pool.size(), 0.0);
  const std::vector<double> weights = feedback.UserWeights();
  for (size_t i = 0; i < pool.size(); ++i) {
    const mining::UserGroup& g = store_->group(pool[i]);
    double prior = feedback.GroupPrior(g);
    if (anchor.has_value()) {
      // The objective's affinity term is the weighted similarity alone;
      // the prior (description-token channel) enters through *seeding*.
      // Folding the prior into the objective reinforces already-visited
      // groups and collapses exploration into a loop; both channels still
      // react to CONTEXT deletion (experiment E10) because rewarded users'
      // weights also carry the demographic tokens' spread mass.
      affinity[i] = index::WeightedJaccard(
          g.members(), store_->group(*anchor).members(), weights);
      seed_score[i] = affinity[i] * prior;
    } else {
      affinity[i] = prior - 1.0;
      seed_score[i] =
          prior * std::log1p(static_cast<double>(g.size()));
    }
  }

  std::vector<size_t> order(pool.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (seed_score[a] != seed_score[b]) return seed_score[a] > seed_score[b];
    return pool[a] < pool[b];
  });

  size_t k = std::min(options.k, pool.size());

  // Refinement quota: reserve slots for strict subsets of the anchor.
  std::vector<bool> is_refinement(pool.size(), false);
  size_t quota = 0;
  if (anchor.has_value() && options.refinement_quota > 0) {
    size_t total_refinements = 0;
    const Bitset& am = store_->group(*anchor).members();
    for (size_t i = 0; i < pool.size(); ++i) {
      const Bitset& m = store_->group(pool[i]).members();
      is_refinement[i] = m.Count() < am.Count() && m.IsSubsetOf(am);
      total_refinements += is_refinement[i];
    }
    quota = std::min(total_refinements,
                     static_cast<size_t>(options.refinement_quota *
                                         static_cast<double>(k)));
  }

  // Seed: best `quota` refinements first, then best remaining of any kind.
  std::vector<size_t> selected;
  selected.reserve(k);
  if (quota > 0) {
    for (size_t i : order) {
      if (selected.size() >= quota) break;
      if (is_refinement[i]) selected.push_back(i);
    }
  }
  for (size_t i : order) {
    if (selected.size() >= k) break;
    if (std::find(selected.begin(), selected.end(), i) == selected.end()) {
      selected.push_back(i);
    }
  }

  SimCache sims(store_, &pool);
  const size_t n_users = store_->num_users();
  const Bitset* anchor_members =
      anchor.has_value() ? &store_->group(*anchor).members() : nullptr;
  const double cov_denom =
      anchor_members != nullptr
          ? static_cast<double>(anchor_members->Count())
          : static_cast<double>(n_users);

  // Objective of a selection (by pool indices).
  auto evaluate = [&](const std::vector<size_t>& sel) {
    // Coverage.
    Bitset covered(n_users);
    for (size_t i : sel) covered |= store_->group(pool[i]).members();
    double cov =
        cov_denom == 0
            ? 0.0
            : (anchor_members != nullptr
                   ? static_cast<double>(
                         covered.IntersectCount(*anchor_members)) /
                         cov_denom
                   : static_cast<double>(covered.Count()) / cov_denom);
    // Diversity.
    double div = 1.0;
    if (sel.size() >= 2) {
      double sim_sum = 0;
      for (size_t i = 0; i < sel.size(); ++i) {
        for (size_t j = i + 1; j < sel.size(); ++j) {
          sim_sum += sims.Sim(sel[i], sel[j]);
        }
      }
      div = 1.0 - sim_sum /
                      (static_cast<double>(sel.size()) * (sel.size() - 1) / 2);
    }
    // Affinity (feedback-weighted similarity to the anchor).
    double aff = 0;
    for (size_t i : sel) aff += affinity[i];
    aff /= static_cast<double>(sel.size());

    ++result.evaluations;
    return options.lambda * cov + (1 - options.lambda) * div +
           options.feedback_weight * aff;
  };

  double current = evaluate(selected);

  // ---- Anytime best-improving swap loop. ----
  std::vector<bool> in_selection(pool.size(), false);
  for (size_t i : selected) in_selection[i] = true;

  bool improved = true;
  while (improved && !deadline.Expired()) {
    improved = false;
    ++result.passes;
    double best_gain = 1e-12;
    size_t best_out = SIZE_MAX, best_in = SIZE_MAX;
    size_t refinement_count = 0;
    for (size_t i : selected) refinement_count += is_refinement[i];
    std::vector<size_t> trial = selected;
    for (size_t cand = 0; cand < pool.size(); ++cand) {
      if (in_selection[cand]) continue;
      for (size_t pos = 0; pos < selected.size(); ++pos) {
        // The swap must keep the refinement quota satisfied.
        size_t after = refinement_count -
                       (is_refinement[selected[pos]] ? 1 : 0) +
                       (is_refinement[cand] ? 1 : 0);
        if (after < quota) continue;
        trial = selected;
        trial[pos] = cand;
        double v = evaluate(trial);
        if (v - current > best_gain) {
          best_gain = v - current;
          best_out = pos;
          best_in = cand;
        }
      }
      if (deadline.Expired()) {
        result.deadline_hit = true;
        break;
      }
    }
    if (best_in != SIZE_MAX) {
      in_selection[selected[best_out]] = false;
      in_selection[best_in] = true;
      selected[best_out] = best_in;
      current += best_gain;
      ++result.swaps;
      improved = true;
    }
  }
  if (deadline.Expired() && !deadline.IsInfinite()) result.deadline_hit = true;

  // ---- Report. ----
  result.groups.reserve(selected.size());
  for (size_t i : selected) result.groups.push_back(pool[i]);
  std::sort(result.groups.begin(), result.groups.end());
  result.quality = Evaluate(*store_, result.groups, anchor, options.lambda);
  double aff = 0;
  for (size_t i : selected) aff += affinity[i];
  result.weighted_affinity =
      selected.empty() ? 0 : aff / static_cast<double>(selected.size());
  result.elapsed_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace vexus::core
