#include "core/greedy.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/shard_map.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/greedy_eval.h"
#include "index/similarity.h"

namespace vexus::core {

using mining::GroupId;
using mining::GroupStore;

GreedySelector::GreedySelector(const GroupStore* store,
                               const index::InvertedIndex* index)
    : store_(store), index_(index) {
  VEXUS_CHECK(store != nullptr && index != nullptr);
}

namespace {

/// Minimum improvement for a swap to count (guards float-noise cycling).
constexpr double kMinGain = 1e-12;

/// Best trial found while scanning a contiguous candidate range, plus the
/// bookkeeping the deterministic reduction needs. `gain` starts at the
/// improvement threshold, so `cand == SIZE_MAX` means "nothing above it".
struct ChunkBest {
  double gain = kMinGain;
  size_t cand = SIZE_MAX;
  size_t pos = SIZE_MAX;
  size_t evaluations = 0;
  /// False when the deadline (or a peer shard's stop flag) truncated the
  /// range before every trial was scored — the pass cannot prove a local
  /// optimum from an incomplete scan.
  bool complete = true;
};

/// Scans candidates [begin, end) × all positions. Deterministic within the
/// range: ascending (cand, pos) order with strict `>` keeps the earliest
/// argmax, so folding per-chunk results in chunk order reproduces the
/// serial scan's pick exactly. The deadline is rechecked every
/// `check_interval` trials *inside* the position sweep (a single
/// candidate's k-trial sweep must not blow the 100 ms budget), and `stop`
/// (when non-null) lets parallel shards cut each other short.
template <typename TrialFn>
ChunkBest ScanRange(size_t begin, size_t end,
                    const std::vector<size_t>& selected,
                    const std::vector<bool>& in_selection,
                    const std::vector<bool>& is_refinement,
                    size_t refinement_count, size_t quota, double current,
                    const Deadline& deadline, size_t check_interval,
                    std::atomic<bool>* stop, TrialFn&& trial) {
  ChunkBest best;
  if (check_interval == 0) check_interval = 1;
  size_t since_check = 0;
  for (size_t cand = begin; cand < end; ++cand) {
    if (in_selection[cand]) continue;
    for (size_t pos = 0; pos < selected.size(); ++pos) {
      // The swap must keep the refinement quota satisfied.
      size_t after = refinement_count -
                     (is_refinement[selected[pos]] ? 1 : 0) +
                     (is_refinement[cand] ? 1 : 0);
      if (after < quota) continue;
      double v = trial(pos, cand);
      ++best.evaluations;
      if (v - current > best.gain) {
        best.gain = v - current;
        best.cand = cand;
        best.pos = pos;
      }
      if (++since_check >= check_interval) {
        since_check = 0;
        if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
          best.complete = false;
          return best;
        }
        if (deadline.Expired()) {
          if (stop != nullptr) stop->store(true, std::memory_order_relaxed);
          best.complete = false;
          return best;
        }
      }
    }
  }
  return best;
}

/// Scatter-gather pass scan over (shard × trial) space (ROADMAP item 2).
/// The scatter phase computes, for every admissible (cand, pos) trial and
/// every shard, the shard's integer coverage partial over its own word
/// range; the gather phase folds each trial's partials in shard order and
/// walks trials in the exact ascending (cand, pos) order ScanRange uses,
/// with the same strict-`>` earliest-argmax — so the S-shard pick is
/// byte-identical to the 1-shard (and to the serial) pick. `pool_threads`
/// parallelizes the scatter; null keeps the same partial discipline on one
/// thread. On completion, `shard_evals` gains each shard's folded trial
/// count (its share of the scatter work).
ChunkBest ShardedScan(const SwapObjective& eval, const ShardMap& shards,
                      ThreadPool* pool_threads, size_t pool_size,
                      const std::vector<size_t>& selected,
                      const std::vector<bool>& in_selection,
                      const std::vector<bool>& is_refinement,
                      size_t refinement_count, size_t quota, double current,
                      const Deadline& deadline, size_t check_interval,
                      size_t scan_chunk,
                      std::vector<uint64_t>* shard_evals) {
  // Admissible trials, in the order the serial scan visits them.
  std::vector<std::pair<uint32_t, uint32_t>> trials;  // (cand, pos)
  trials.reserve(pool_size * selected.size());
  for (size_t cand = 0; cand < pool_size; ++cand) {
    if (in_selection[cand]) continue;
    for (size_t pos = 0; pos < selected.size(); ++pos) {
      size_t after = refinement_count -
                     (is_refinement[selected[pos]] ? 1 : 0) +
                     (is_refinement[cand] ? 1 : 0);
      if (after < quota) continue;
      trials.emplace_back(static_cast<uint32_t>(cand),
                          static_cast<uint32_t>(pos));
    }
  }
  ChunkBest best;
  const size_t num_shards = shards.num_shards();
  if (shard_evals->size() != num_shards) shard_evals->assign(num_shards, 0);
  if (trials.empty()) return best;

  // Scatter: flat index f = shard * |trials| + trial, so each chunk scans
  // contiguous trials of one shard. Unscored slots keep the sentinel — a
  // deadline-truncated scatter leaves holes the gather can detect.
  constexpr uint32_t kUnscored = UINT32_MAX;
  std::vector<uint32_t> partial(trials.size() * num_shards, kUnscored);
  std::atomic<bool> stop{false};
  if (check_interval == 0) check_interval = 1;
  auto scatter = [&](size_t, size_t begin, size_t end) {
    size_t since_check = 0;
    for (size_t f = begin; f < end; ++f) {
      const size_t s = f / trials.size();
      const size_t t = f % trials.size();
      partial[t * num_shards + s] =
          eval.TrialCoveragePartial(trials[t].second, trials[t].first, s);
      if (++since_check >= check_interval) {
        since_check = 0;
        if (stop.load(std::memory_order_relaxed)) return;
        if (deadline.Expired()) {
          stop.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  };
  const size_t chunk = std::max<size_t>(1, scan_chunk) *
                       std::max<size_t>(1, selected.size());
  if (pool_threads != nullptr) {
    pool_threads->ParallelForChunked(trials.size() * num_shards, chunk,
                                     scatter);
  } else {
    scatter(0, 0, trials.size() * num_shards);
  }

  // Gather: fold partials in shard order (integer sum == whole-universe
  // count, exactly), score, and keep the earliest best — deterministic
  // regardless of how the scatter was scheduled.
  for (size_t t = 0; t < trials.size(); ++t) {
    size_t newly = 0;
    bool scored = true;
    for (size_t s = 0; s < num_shards; ++s) {
      const uint32_t p = partial[t * num_shards + s];
      if (p == kUnscored) {
        scored = false;
        break;
      }
      newly += p;
    }
    if (!scored) {
      best.complete = false;
      continue;
    }
    double v = eval.TrialFromCovered(trials[t].second, trials[t].first, newly);
    ++best.evaluations;
    if (v - current > best.gain) {
      best.gain = v - current;
      best.cand = trials[t].first;
      best.pos = trials[t].second;
    }
  }
  for (size_t s = 0; s < num_shards; ++s) {
    (*shard_evals)[s] += best.evaluations;
  }
  return best;
}

/// Remote scatter-gather pass scan (DESIGN.md §16): same admissible trial
/// list and earliest-(cand, pos) argmax as ShardedScan, but the per-shard
/// integer partials come back from shard backends through the injected
/// RemoteTrialScatterer. Shards the scatterer could not reach are dropped
/// from the fold — every trial is then scored over the surviving user
/// ranges (still deterministic given which shards answered), and
/// `covered_fraction`/`lap_delay` report the degradation. When *no* shard
/// answered, the pass returns empty-handed with complete=false — the swap
/// loop then stops with its best-so-far selection instead of hanging.
ChunkBest RemoteScan(const SwapObjective& eval, RemoteTrialScatterer* remote,
                     const std::vector<GroupId>& pool,
                     std::optional<GroupId> anchor,
                     const std::vector<size_t>& selected,
                     const std::vector<bool>& in_selection,
                     const std::vector<bool>& is_refinement,
                     size_t refinement_count, size_t quota, double current,
                     const Deadline& deadline, double* covered_fraction,
                     double* lap_delay_ms) {
  std::vector<std::pair<uint32_t, uint32_t>> trials;  // (cand, pos), pool ix
  trials.reserve(pool.size() * selected.size());
  for (size_t cand = 0; cand < pool.size(); ++cand) {
    if (in_selection[cand]) continue;
    for (size_t pos = 0; pos < selected.size(); ++pos) {
      size_t after = refinement_count -
                     (is_refinement[selected[pos]] ? 1 : 0) +
                     (is_refinement[cand] ? 1 : 0);
      if (after < quota) continue;
      trials.emplace_back(static_cast<uint32_t>(cand),
                          static_cast<uint32_t>(pos));
    }
  }
  ChunkBest best;
  if (trials.empty()) return best;

  // Wire form: group ids, not pool positions — backends hold a slice store
  // with the same id space but know nothing of this run's candidate pool.
  std::vector<uint32_t> selection_gids;
  selection_gids.reserve(selected.size());
  for (size_t i : selected) {
    selection_gids.push_back(static_cast<uint32_t>(pool[i]));
  }
  std::vector<uint32_t> wire;
  wire.reserve(trials.size() * 2);
  for (const auto& t : trials) {
    wire.push_back(static_cast<uint32_t>(pool[t.first]));
    wire.push_back(t.second);
  }

  RemoteTrialScatterer::Outcome outcome = remote->Scatter(
      anchor.has_value() ? std::optional<uint32_t>(*anchor) : std::nullopt,
      selection_gids, wire, deadline);
  *covered_fraction = std::min(*covered_fraction, outcome.covered_fraction);
  *lap_delay_ms = std::max(*lap_delay_ms, outcome.lap_delay_ms);

  std::vector<size_t> ok_shards;
  for (size_t s = 0; s < outcome.shard_ok.size(); ++s) {
    if (outcome.shard_ok[s] && s < outcome.partials.size() &&
        outcome.partials[s].size() == trials.size()) {
      ok_shards.push_back(s);
    }
  }
  if (ok_shards.empty()) {
    best.complete = false;
    return best;
  }

  for (size_t t = 0; t < trials.size(); ++t) {
    size_t newly = 0;
    for (size_t s : ok_shards) newly += outcome.partials[s][t];
    double v = eval.TrialFromCovered(trials[t].second, trials[t].first, newly);
    ++best.evaluations;
    if (v - current > best.gain) {
      best.gain = v - current;
      best.cand = trials[t].first;
      best.pos = trials[t].second;
    }
  }
  return best;
}

}  // namespace

void RankPoolByPrior(const GroupStore& store, const FeedbackVector& feedback,
                     size_t cap, std::vector<GroupId>* pool) {
  VEXUS_CHECK(pool != nullptr);
  if (pool->size() <= cap) return;
  // Score by position (NOT by GroupId): the pool may be any permutation or
  // subset of the store; indexing scores by id value silently corrupted the
  // ranking the moment the pool stopped being the identity permutation.
  std::vector<double> score(pool->size());
  for (size_t i = 0; i < pool->size(); ++i) {
    const mining::UserGroup& g = store.group((*pool)[i]);
    score[i] =
        feedback.GroupPrior(g) * std::log1p(static_cast<double>(g.size()));
  }
  std::vector<size_t> order(pool->size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return (*pool)[a] < (*pool)[b];
  });
  std::vector<GroupId> ranked;
  ranked.reserve(cap);
  for (size_t r = 0; r < cap; ++r) ranked.push_back((*pool)[order[r]]);
  *pool = std::move(ranked);
}

GreedySelection GreedySelector::SelectNext(GroupId anchor,
                                           const FeedbackVector& feedback,
                                           const GreedyOptions& options) const {
  TraceSpan rank =
      options.trace != nullptr ? options.trace->Child("rank") : TraceSpan();
  std::vector<GroupId> pool;
  const HybridBitset& anchor_members = store_->group(anchor).members();
  for (const index::Neighbor& nb : index_->Neighbors(anchor)) {
    if (nb.similarity < options.min_similarity) continue;
    if (options.exclude_supersets &&
        anchor_members.IsSubsetOf(store_->group(nb.group).members())) {
      continue;
    }
    pool.push_back(nb.group);
  }
  rank.AddCount(pool.size());
  rank.Close();
  return Run(std::move(pool), anchor, feedback, options);
}

GreedySelection GreedySelector::SelectInitial(
    const FeedbackVector& feedback, const GreedyOptions& options) const {
  TraceSpan rank =
      options.trace != nullptr ? options.trace->Child("rank") : TraceSpan();
  std::vector<GroupId> pool(store_->size());
  std::iota(pool.begin(), pool.end(), GroupId{0});
  RankPoolByPrior(*store_, feedback, options.initial_candidate_cap, &pool);
  rank.AddCount(pool.size());
  rank.Close();
  return Run(std::move(pool), std::nullopt, feedback, options);
}

GreedySelection GreedySelector::Run(std::vector<GroupId> pool,
                                    std::optional<GroupId> anchor,
                                    const FeedbackVector& feedback,
                                    const GreedyOptions& options) const {
  VEXUS_CHECK(options.k >= 1);
  Stopwatch watch;
  // AfterMillis owns the budget clamping: <= 0 / NaN expire immediately,
  // +infinity (kUnboundedTimeLimit) never expires. Keeping the policy in one
  // place is what the serving layer's deadline propagation relies on.
  Deadline deadline = Deadline::AfterMillis(options.time_limit_ms);

  GreedySelection result;
  result.candidates = pool.size();
  if (pool.empty()) {
    result.elapsed_ms = watch.ElapsedMillis();
    return result;
  }

  TraceSpan greedy =
      options.trace != nullptr ? options.trace->Child("greedy") : TraceSpan();
  TraceSpan seed_span = greedy.Child("seed");

  // ---- Seeding: feedback-weighted similarity to the anchor × prior. ----
  // `affinity` is the feedback term of the objective: the IUGA-style
  // weighted similarity to the anchor, under user weights boosted by the
  // feedback vector. Groups whose anchor-side overlap carries rewarded
  // users rank higher — this is what steers multi-step sessions toward the
  // explorer's interest (experiment E10).
  std::vector<double> seed_score(pool.size());
  std::vector<double> affinity(pool.size(), 0.0);
  const std::vector<double> weights = feedback.UserWeights();
  for (size_t i = 0; i < pool.size(); ++i) {
    const mining::UserGroup& g = store_->group(pool[i]);
    double prior = feedback.GroupPrior(g);
    if (anchor.has_value()) {
      // The objective's affinity term is the weighted similarity alone;
      // the prior (description-token channel) enters through *seeding*.
      // Folding the prior into the objective reinforces already-visited
      // groups and collapses exploration into a loop; both channels still
      // react to CONTEXT deletion (experiment E10) because rewarded users'
      // weights also carry the demographic tokens' spread mass.
      affinity[i] = index::WeightedJaccard(
          g.members(), store_->group(*anchor).members(), weights);
      seed_score[i] = affinity[i] * prior;
    } else {
      affinity[i] = prior - 1.0;
      seed_score[i] =
          prior * std::log1p(static_cast<double>(g.size()));
    }
  }

  std::vector<size_t> order(pool.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (seed_score[a] != seed_score[b]) return seed_score[a] > seed_score[b];
    return pool[a] < pool[b];
  });

  size_t k = std::min(options.k, pool.size());

  // Refinement quota: reserve slots for strict subsets of the anchor.
  std::vector<bool> is_refinement(pool.size(), false);
  size_t quota = 0;
  if (anchor.has_value() && options.refinement_quota > 0) {
    size_t total_refinements = 0;
    const HybridBitset& am = store_->group(*anchor).members();
    for (size_t i = 0; i < pool.size(); ++i) {
      const HybridBitset& m = store_->group(pool[i]).members();
      is_refinement[i] = m.Count() < am.Count() && m.IsSubsetOf(am);
      total_refinements += is_refinement[i];
    }
    quota = std::min(total_refinements,
                     static_cast<size_t>(options.refinement_quota *
                                         static_cast<double>(k)));
  }

  // Seed: best `quota` refinements first, then best remaining of any kind.
  std::vector<size_t> selected;
  selected.reserve(k);
  if (quota > 0) {
    for (size_t i : order) {
      if (selected.size() >= quota) break;
      if (is_refinement[i]) selected.push_back(i);
    }
  }
  for (size_t i : order) {
    if (selected.size() >= k) break;
    if (std::find(selected.begin(), selected.end(), i) == selected.end()) {
      selected.push_back(i);
    }
  }

  // The evaluator's rest(pos) tables mask against the anchor with the SIMD
  // kernels every pass, so materialize the anchor densely once per run —
  // whatever form the store holds it in.
  Bitset anchor_dense;
  const Bitset* anchor_members = nullptr;
  if (anchor.has_value()) {
    anchor_dense = store_->group(*anchor).members().ToBitset();
    anchor_members = &anchor_dense;
  }

  const bool incremental =
      options.eval_mode == GreedyOptions::EvalMode::kIncremental;
  // The parallel scan reads pass-frozen delta state; the scratch evaluator
  // memoizes into its sim cache mid-trial, so it must stay serial.
  ThreadPool* scan_pool = incremental ? options.scan_pool : nullptr;
  // Scatter-gather needs the incremental evaluator's pass-frozen rest
  // tables; kScratch stays whole-universe (it is the serial oracle).
  // The remote scatterer supersedes the in-process shard map: trial
  // partials come from shard backends and the coordinator's evaluator
  // rebuilds unsharded (identical integers either way — the tested
  // 1-shard/S-shard invariant).
  RemoteTrialScatterer* remote =
      incremental ? options.remote_scatter : nullptr;
  const ShardMap* shards =
      incremental && remote == nullptr && options.shard_map != nullptr &&
              options.shard_map->num_shards() > 1
          ? options.shard_map
          : nullptr;

  index::PairwiseSimCache sims(store_, &pool);
  SwapObjective eval(store_, &pool, anchor_members, &affinity,
                     {options.lambda, options.feedback_weight, shards,
                      scan_pool},
                     &sims);

  double current;
  if (incremental) {
    eval.Reset(selected);
    current = eval.Current();
  } else {
    current = eval.EvaluateScratch(selected);
  }
  ++result.evaluations;
  seed_span.Close();

  // ---- Anytime best-improving swap loop. ----
  std::vector<bool> in_selection(pool.size(), false);
  for (size_t i : selected) in_selection[i] = true;

  std::vector<size_t> scratch_trial;  // reused buffer (kScratch only)
  auto trial_fn = [&](size_t pos, size_t cand) {
    if (incremental) return eval.Trial(pos, cand);
    scratch_trial = selected;
    scratch_trial[pos] = cand;
    return eval.EvaluateScratch(scratch_trial);
  };

  // With every candidate already selected there is no swap to try: the
  // selection is trivially a local optimum, whatever the clock says.
  bool converged = selected.size() >= pool.size();

  while (!converged && !deadline.Expired()) {
    ++result.passes;
    // Chaos site: a sleep here burns the remaining budget mid-run, forcing
    // the anytime path (deadline_hit with the best-so-far selection).
    VEXUS_FAILPOINT_HIT("greedy.pass");
    TraceSpan pass_span = greedy.Child("pass");
    Stopwatch pass_watch;
    size_t refinement_count = 0;
    for (size_t i : selected) refinement_count += is_refinement[i];

    ChunkBest best;
    if (remote != nullptr) {
      best = RemoteScan(eval, remote, pool, anchor, selected, in_selection,
                        is_refinement, refinement_count, quota, current,
                        deadline, &result.covered_fraction,
                        &result.gather_lap_ms);
    } else if (shards != nullptr) {
      best = ShardedScan(eval, *shards, scan_pool, pool.size(), selected,
                         in_selection, is_refinement, refinement_count, quota,
                         current, deadline, options.deadline_check_interval,
                         options.scan_chunk, &result.shard_evaluations);
    } else if (scan_pool != nullptr) {
      // Sharded scan with a deterministic argmax reduction: chunk
      // boundaries are pure functions of (|pool|, scan_chunk), each chunk
      // records its earliest argmax, and the fold below walks chunks in
      // ascending order — so the parallel pick is byte-identical to the
      // serial one regardless of thread scheduling.
      const size_t chunk = std::max<size_t>(1, options.scan_chunk);
      const size_t num_chunks = (pool.size() + chunk - 1) / chunk;
      std::vector<ChunkBest> shard(num_chunks);
      std::atomic<bool> stop{false};
      scan_pool->ParallelForChunked(
          pool.size(), chunk, [&](size_t c, size_t begin, size_t end) {
            shard[c] = ScanRange(begin, end, selected, in_selection,
                                 is_refinement, refinement_count, quota,
                                 current, deadline,
                                 options.deadline_check_interval, &stop,
                                 [&eval](size_t pos, size_t cand) {
                                   return eval.Trial(pos, cand);
                                 });
          });
      for (const ChunkBest& r : shard) {
        best.evaluations += r.evaluations;
        best.complete = best.complete && r.complete;
        if (r.gain > best.gain) {
          best.gain = r.gain;
          best.cand = r.cand;
          best.pos = r.pos;
        }
      }
    } else {
      best = ScanRange(0, pool.size(), selected, in_selection, is_refinement,
                       refinement_count, quota, current, deadline,
                       options.deadline_check_interval, nullptr, trial_fn);
    }
    result.evaluations += best.evaluations;
    pass_span.AddCount(best.evaluations);

    const bool found = best.cand != SIZE_MAX;
    if (found) {
      in_selection[selected[best.pos]] = false;
      in_selection[best.cand] = true;
      selected[best.pos] = best.cand;
      if (incremental) {
        eval.ApplySwap(best.pos, best.cand);
        current = eval.Current();
      } else {
        current += best.gain;
      }
      ++result.swaps;
    }
    result.pass_millis.push_back(pass_watch.ElapsedMillis());
    if (!found) {
      if (best.complete) {
        converged = true;  // full scan, nothing improves: local optimum
      } else {
        break;  // the deadline truncated the scan with nothing found
      }
    }
  }
  // The flag reports *why the loop stopped*, not whether the clock happens
  // to read expired at return time: a run that converged before expiry is
  // not deadline-truncated (the old check here mislabeled that case).
  result.deadline_hit = !converged;
  if (shards != nullptr) {
    // Fold in the scattered rebuild work (seed Reset + one per applied
    // swap) so the per-shard counters account for every partial kernel
    // evaluation run on a shard's behalf.
    if (result.shard_evaluations.size() != shards->num_shards()) {
      result.shard_evaluations.assign(shards->num_shards(), 0);
    }
    for (uint64_t& evals : result.shard_evaluations) {
      evals += eval.rebuild_partials_per_shard();
    }
  }
  greedy.AddCount(result.evaluations);
  greedy.Close();

  // ---- Report. ----
  result.groups.reserve(selected.size());
  for (size_t i : selected) result.groups.push_back(pool[i]);
  std::sort(result.groups.begin(), result.groups.end());
  result.quality = Evaluate(*store_, result.groups, anchor, options.lambda);
  double aff = 0;
  for (size_t i : selected) aff += affinity[i];
  result.weighted_affinity =
      selected.empty() ? 0 : aff / static_cast<double>(selected.size());
  result.elapsed_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace vexus::core
