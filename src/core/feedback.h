// Feedback learning (paper §II.B, "Feedback Learning"):
//
//   "Feedback is considered as a probability vector over all users and
//    demographic values. Once the explorer decides to explore a group g,
//    VEXUS interprets this choice as a positive feedback and increases the
//    score of g's members and their common activities described in g inside
//    the feedback vector. The vector is always kept normalized … users and
//    demographics that do not get rewarded will gradually end up with a
//    lower score tending to zero. … She can easily unlearn by deleting it
//    from CONTEXT."
//
// TokenSpace maps the two token families — users and attribute=value pairs —
// into one dense id space; FeedbackVector keeps a sparse normalized score
// map over it and exposes the three consumers: user weights for weighted
// Jaccard, a description prior for ranking, and the CONTEXT top-token view.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "mining/group.h"

namespace vexus::core {

using Token = uint32_t;

/// Dense token ids: [0, num_users) are user tokens; demographic value tokens
/// follow, one per (attribute, value) pair in schema order.
class TokenSpace {
 public:
  /// The dataset must outlive the token space (it is consulted to map
  /// demographic-token mass onto the users carrying the value).
  explicit TokenSpace(const data::Dataset& dataset);

  uint32_t num_tokens() const { return num_tokens_; }
  uint32_t num_users() const { return num_users_; }
  const data::Dataset& dataset() const { return *dataset_; }

  /// Number of users carrying the value of a demographic token (0 for user
  /// tokens or values no user carries).
  uint32_t CarrierCount(Token t) const;

  /// Decodes a value token into its (attribute, value) pair; t must not be
  /// a user token.
  std::pair<data::AttributeId, data::ValueId> DecodeValueToken(
      Token t) const;

  Token UserToken(data::UserId u) const { return u; }
  Token ValueToken(data::AttributeId a, data::ValueId v) const;
  Token DescriptorToken(const mining::Descriptor& d) const {
    return ValueToken(d.attribute, d.value);
  }

  bool IsUserToken(Token t) const { return t < num_users_; }

  /// "user:<external-id>" or "<attr>=<value>".
  std::string Label(Token t, const data::Dataset& dataset) const;

 private:
  const data::Dataset* dataset_ = nullptr;
  uint32_t num_users_ = 0;
  uint32_t num_tokens_ = 0;
  std::vector<uint32_t> attr_offsets_;   // token base per attribute
  std::vector<uint32_t> carrier_count_;  // users per value token
};

class FeedbackVector {
 public:
  explicit FeedbackVector(const TokenSpace* tokens);

  /// Positive feedback for selecting `g`: distributes `eta` of probability
  /// mass uniformly over g's members and description tokens, then
  /// renormalizes (old mass scales by 1/(1+eta) — unrewarded tokens decay
  /// toward zero, as the paper specifies).
  void Learn(const mining::UserGroup& g, double eta = 0.5);

  /// CONTEXT deletion: removes the token's mass entirely and renormalizes.
  void Unlearn(Token t);

  /// Current normalized score (0 when never rewarded).
  double Score(Token t) const;

  /// True before any feedback (or after everything was unlearned).
  bool Empty() const { return scores_.empty(); }

  /// Per-user weights for weighted Jaccard:
  ///   w(u) = floor + score(u) + Σ_attr score(value-token of u) / carriers.
  /// The floor (1/num_users) keeps a no-feedback session identical to
  /// unweighted similarity. Each demographic token's mass is spread evenly
  /// over the users carrying the value, so deleting e.g. "male" from
  /// CONTEXT demonstrably de-biases the weighted similarity (paper's
  /// Scenario-1 gender rebalance, experiment E10).
  std::vector<double> UserWeights() const;

  /// Ranking prior for a group: 1 + boost · Σ score(member/description
  /// tokens of g), so rewarded groups rank higher in recommendation seeding.
  double GroupPrior(const mining::UserGroup& g, double boost = 4.0) const;

  /// CONTEXT view: top-k tokens by score, descending.
  struct TokenScore {
    Token token;
    double score;
  };
  std::vector<TokenScore> TopTokens(size_t k) const;

  /// HISTORY support: snapshots are plain copies.
  FeedbackVector(const FeedbackVector&) = default;
  FeedbackVector& operator=(const FeedbackVector&) = default;

  size_t nonzero_count() const { return scores_.size(); }

 private:
  void Normalize();

  const TokenSpace* tokens_;
  std::unordered_map<Token, double> scores_;
};

}  // namespace vexus::core
