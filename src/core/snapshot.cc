#include "core/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/hybrid_bitset.h"
#include "common/logging.h"
#include "common/shard_map.h"

namespace vexus::core {

namespace {

constexpr char kMagic[4] = {'V', 'X', 'S', 'N'};
constexpr char kTrailerMagic[4] = {'V', 'X', 'T', 'R'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;
constexpr uint32_t kVersionV3 = 3;
constexpr size_t kHeaderSize = 4 + 4 + 8;           // magic, version, num_users
constexpr size_t kTrailerSize = 4 * 8 + 3 * 4 + 4;  // offsets, crcs, magic

// v3 variable trailer: S shard entries, a postings entry, then a fixed tail.
constexpr size_t kV3ShardEntrySize = 4 * 8 + 4;  // offset, len, range, crc
constexpr size_t kV3PostingsEntrySize = 2 * 8 + 4;
constexpr size_t kV3TrailerTailSize = 8 + 4 + 4;  // num_shards, crc, magic

size_t V3TrailerSize(size_t num_shards) {
  return num_shards * kV3ShardEntrySize + kV3PostingsEntrySize +
         kV3TrailerTailSize;
}

// Group member-block encodings (v2).
constexpr uint8_t kEncodingSparse = 0;  // uvarint deltas, strictly ascending
constexpr uint8_t kEncodingRaw = 1;     // ceil(num_users/64) × u64 words

std::atomic<uint64_t> g_fsync_count{0};

Status Truncated() { return Status::Corruption("snapshot truncated"); }

// ---- little-endian buffer writers ----

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

void AppendF32(std::string* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  AppendU32(out, bits);
}

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

// ---- bounds-checked buffer reader ----

class Cursor {
 public:
  Cursor(const char* data, size_t len)
      : p_(reinterpret_cast<const unsigned char*>(data)), end_(p_ + len) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = *p_++;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::memcpy(v, p_, 4);
#else
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p_[i]) << (8 * i);
#endif
    p_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::memcpy(v, p_, 8);
#else
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p_[i]) << (8 * i);
#endif
    p_ += 8;
    return true;
  }

  bool ReadF32(float* v) {
    uint32_t bits;
    if (!ReadU32(&bits)) return false;
    std::memcpy(v, &bits, 4);
    return true;
  }

  /// LEB128; rejects encodings longer than 10 bytes (64 payload bits).
  bool ReadVarint(uint64_t* v) {
    *v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (remaining() < 1) return false;
      uint8_t byte = *p_++;
      *v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return true;
    }
    return false;
  }

  bool ReadWords(size_t n, std::vector<uint64_t>* out) {
    if (remaining() < n * 8) return false;
    out->resize(n);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    // The raw member-block fast path: this is a single memcpy at memory
    // bandwidth, which is the whole point of encoding dense groups as LE
    // bitset words instead of one int per member.
    std::memcpy(out->data(), p_, n * 8);
#else
    for (size_t w = 0; w < n; ++w) {
      uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<uint64_t>(p_[w * 8 + i]) << (8 * i);
      }
      (*out)[w] = v;
    }
#endif
    p_ += n * 8;
    return true;
  }

  /// Raw view for hand-rolled hot loops (sparse member decode). The caller
  /// must hand the advanced pointer back via AdvanceTo; `pos() <= q <= end`.
  const unsigned char* pos() const { return p_; }
  const unsigned char* end() const { return end_; }
  void AdvanceTo(const unsigned char* q) {
    VEXUS_CHECK(q >= p_ && q <= end_);
    p_ = q;
  }

 private:
  const unsigned char* p_;
  const unsigned char* end_;
};

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

void EncodeGroupsV1(const mining::GroupStore& groups, std::string* out) {
  AppendU64(out, groups.size());
  for (mining::GroupId g = 0; g < groups.size(); ++g) {
    const mining::UserGroup& grp = groups.group(g);
    AppendU32(out, static_cast<uint32_t>(grp.description().size()));
    for (const mining::Descriptor& d : grp.description()) {
      AppendU32(out, d.attribute);
      AppendU32(out, d.value);
    }
    AppendU64(out, grp.size());
    grp.members().ForEach([out](uint32_t u) { AppendU32(out, u); });
  }
}

void EncodeGroupsV2(const mining::GroupStore& groups, std::string* out) {
  AppendU64(out, groups.size());
  std::string sparse;  // reused scratch across groups
  for (mining::GroupId g = 0; g < groups.size(); ++g) {
    const mining::UserGroup& grp = groups.group(g);
    AppendU32(out, static_cast<uint32_t>(grp.description().size()));
    for (const mining::Descriptor& d : grp.description()) {
      AppendU32(out, d.attribute);
      AppendU32(out, d.value);
    }
    AppendU64(out, grp.size());

    const HybridBitset& members = grp.members();
    sparse.clear();
    uint32_t prev = 0;
    bool first = true;
    members.ForEach([&](uint32_t u) {
      AppendVarint(&sparse, first ? u : u - prev);
      prev = u;
      first = false;
    });
    size_t raw_size = ((groups.num_users() + 63) / 64) * 8;
    if (sparse.size() <= raw_size) {
      AppendU8(out, kEncodingSparse);
      out->append(sparse);
    } else {
      AppendU8(out, kEncodingRaw);
      if (members.is_sparse()) {
        // Sparse in RAM but raw wins on disk (pathological delta spread):
        // materialize the words once for this group.
        for (uint64_t w : members.ToBitset().words()) AppendU64(out, w);
      } else {
        for (uint64_t w : members.dense_form().words()) AppendU64(out, w);
      }
    }
  }
}

void EncodePostings(const index::InvertedIndex& index, std::string* out) {
  AppendU64(out, index.num_groups());
  for (mining::GroupId g = 0; g < index.num_groups(); ++g) {
    const auto& list = index.Neighbors(g);
    AppendU32(out, static_cast<uint32_t>(list.size()));
    for (const index::Neighbor& nb : list) {
      AppendU32(out, nb.group);
      AppendF32(out, nb.similarity);
    }
  }
}

std::string EncodeSnapshot(const mining::GroupStore& groups,
                           const index::InvertedIndex& index,
                           uint32_t version) {
  std::string payload;
  payload.append(kMagic, 4);
  AppendU32(&payload, version);
  AppendU64(&payload, groups.num_users());

  if (version == kVersionV1) {
    EncodeGroupsV1(groups, &payload);
    EncodePostings(index, &payload);
    return payload;
  }

  std::string groups_sec;
  EncodeGroupsV2(groups, &groups_sec);
  std::string postings_sec;
  EncodePostings(index, &postings_sec);

  uint64_t groups_offset = payload.size();
  payload.append(groups_sec);
  uint64_t postings_offset = payload.size();
  payload.append(postings_sec);

  std::string trailer;
  AppendU64(&trailer, groups_offset);
  AppendU64(&trailer, groups_sec.size());
  AppendU64(&trailer, postings_offset);
  AppendU64(&trailer, postings_sec.size());
  // The groups CRC starts at byte 0, not at the section: the header fields
  // (magic, version, num_users) would otherwise be the one unprotected spot
  // — a bit flip in num_users could parse into a store with the wrong
  // universe size and only fail much later, far from the corruption.
  AppendU32(&trailer,
            Crc32(payload.data(), groups_offset + groups_sec.size()));
  AppendU32(&trailer, Crc32(postings_sec.data(), postings_sec.size()));
  AppendU32(&trailer, Crc32(trailer.data(), trailer.size()));
  trailer.append(kTrailerMagic, 4);
  VEXUS_DCHECK(trailer.size() == kTrailerSize);
  payload.append(trailer);
  return payload;
}

/// One shard's self-contained group section (v3): every group's descriptors
/// plus the members inside the shard's word range, in the v2 member-block
/// encodings (raw blocks span only the shard's words). Descriptors repeat
/// per section on purpose — that is what makes a section loadable without
/// touching any other.
void EncodeGroupsShard(const mining::GroupStore& groups,
                       const ShardMap::Range& r, std::string* out) {
  AppendU64(out, groups.size());
  std::string sparse;           // reused scratch across groups
  std::vector<uint32_t> ids;    // members of the current group in range
  for (mining::GroupId g = 0; g < groups.size(); ++g) {
    const mining::UserGroup& grp = groups.group(g);
    AppendU32(out, static_cast<uint32_t>(grp.description().size()));
    for (const mining::Descriptor& d : grp.description()) {
      AppendU32(out, d.attribute);
      AppendU32(out, d.value);
    }
    ids.clear();
    grp.members().ForEachInRange(r.word_begin, r.word_end,
                                 [&](uint32_t u) { ids.push_back(u); });
    AppendU64(out, ids.size());

    sparse.clear();
    uint32_t prev = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
      AppendVarint(&sparse, i == 0 ? ids[i] : ids[i] - prev);
      prev = ids[i];
    }
    size_t raw_size = r.num_words() * 8;
    if (sparse.size() <= raw_size) {
      AppendU8(out, kEncodingSparse);
      out->append(sparse);
    } else {
      AppendU8(out, kEncodingRaw);
      std::vector<uint64_t> words(r.num_words(), 0);
      for (uint32_t u : ids) {
        words[(u >> 6) - r.word_begin] |= uint64_t{1} << (u & 63);
      }
      for (uint64_t w : words) AppendU64(out, w);
    }
  }
}

std::string EncodeSnapshotV3(const mining::GroupStore& groups,
                             const index::InvertedIndex& index,
                             const ShardMap& shards) {
  std::string payload;
  payload.append(kMagic, 4);
  AppendU32(&payload, kVersionV3);
  AppendU64(&payload, groups.num_users());

  const size_t S = shards.num_shards();
  std::vector<uint64_t> offsets(S), lens(S);
  std::vector<uint32_t> crcs(S);
  for (size_t s = 0; s < S; ++s) {
    offsets[s] = payload.size();
    std::string sec;
    EncodeGroupsShard(groups, shards.shard(s), &sec);
    lens[s] = sec.size();
    payload.append(sec);
    // Shard 0's CRC starts at byte 0 so the header rides along (same
    // rationale as v2's groups CRC); later sections cover their own bytes.
    crcs[s] = s == 0 ? Crc32(payload.data(), offsets[0] + lens[0])
                     : Crc32(payload.data() + offsets[s], lens[s]);
  }

  uint64_t postings_offset = payload.size();
  std::string postings_sec;
  EncodePostings(index, &postings_sec);
  payload.append(postings_sec);

  std::string trailer;
  for (size_t s = 0; s < S; ++s) {
    AppendU64(&trailer, offsets[s]);
    AppendU64(&trailer, lens[s]);
    AppendU64(&trailer, shards.shard(s).user_begin);
    AppendU64(&trailer, shards.shard(s).user_end);
    AppendU32(&trailer, crcs[s]);
  }
  AppendU64(&trailer, postings_offset);
  AppendU64(&trailer, postings_sec.size());
  AppendU32(&trailer, Crc32(postings_sec.data(), postings_sec.size()));
  AppendU64(&trailer, S);
  AppendU32(&trailer, Crc32(trailer.data(), trailer.size()));
  trailer.append(kTrailerMagic, 4);
  VEXUS_DCHECK(trailer.size() == V3TrailerSize(S));
  payload.append(trailer);
  return payload;
}

// ---------------------------------------------------------------------------
// Durable write: tmp + fsync + rename + directory fsync
// ---------------------------------------------------------------------------

Status SyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    // EINVAL: the filesystem does not support fsync on this object (some
    // network/fuse mounts for directories). Nothing further we can do.
    if (errno == EINVAL) return Status::OK();
    return Status::IOError("fsync failed on " + what);
  }
  g_fsync_count.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status WriteFileAtomically(const std::string& path, const std::string& payload,
                           bool sync) {
  // Simulates EMFILE / a missing or read-only snapshot directory.
  VEXUS_FAILPOINT("snapshot.save.open");
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError("cannot open '" + tmp + "' for writing");

  // Simulates ENOSPC mid-payload: the disk accepts a prefix of the payload
  // and then the next write() fails. The save must abandon the tmp file and
  // report the error — the previous good snapshot at `path` is untouched
  // because the rename below never runs. (A *silent* tear — prefix written,
  // no error — is only reachable via a crash, and then the rename doesn't
  // run either; the chaos harness asserts both halves of that contract.)
  const size_t fail_after = VEXUS_FAILPOINT_FIRES("snapshot.save.short_write")
                                ? payload.size() / 2
                                : std::string::npos;

  size_t off = 0;
  while (off < payload.size()) {
    if (off >= fail_after) {
      ::close(fd);
      ::remove(tmp.c_str());
      return Status::IOError("write failed on '" + tmp +
                             "' (injected ENOSPC after " +
                             std::to_string(off) + " bytes)");
    }
    size_t want = std::min(payload.size(), fail_after) - off;
    ssize_t n = ::write(fd, payload.data() + off, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::remove(tmp.c_str());
      return Status::IOError("write failed on '" + tmp + "'");
    }
    off += static_cast<size_t>(n);
  }

  // Durability step 1: the tmp file's *contents* must be on disk before the
  // rename makes it visible — otherwise a crash after the rename can leave a
  // truncated/empty file at `path` that passed std::rename just fine.
  if (sync) {
    // Simulates fsync returning EIO — the kernel dropped dirty pages.
    Status s = failpoint::Fires("snapshot.save.fsync")
                   ? Status::IOError("injected fsync failure on '" + tmp + "'")
                   : SyncFd(fd, "'" + tmp + "'");
    if (!s.ok()) {
      ::close(fd);
      ::remove(tmp.c_str());
      return s;
    }
  }
  if (::close(fd) != 0) {
    ::remove(tmp.c_str());
    return Status::IOError("close failed on '" + tmp + "'");
  }

  // Simulates rename failing (target directory deleted, EXDEV after a
  // mount change). The tmp file is cleaned up either way.
  if (failpoint::Fires("snapshot.save.rename") ||
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::remove(tmp.c_str());
    return Status::IOError("cannot rename snapshot into '" + path + "'");
  }

  // Durability step 2: the rename itself is a directory mutation; fsync the
  // parent directory so the new directory entry survives a crash.
  if (sync) {
    size_t slash = path.find_last_of('/');
    std::string dir =
        slash == std::string::npos ? "." : path.substr(0, std::max<size_t>(slash, 1));
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd < 0) {
      return Status::IOError("cannot open directory '" + dir +
                             "' to sync the rename");
    }
    Status s = SyncFd(dfd, "directory '" + dir + "'");
    ::close(dfd);
    VEXUS_RETURN_NOT_OK(s);
  }
  return Status::OK();
}

Result<std::string> ReadFileFully(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError("cannot open '" + path + "'");
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat '" + path + "'");
  }
  std::string buf;
  buf.resize(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::read(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("read failed on '" + path + "'");
    }
    if (n == 0) break;  // file shrank under us; parse will flag truncation
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  buf.resize(off);
  return buf;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Shared tail of both versions: descriptor list + member count header.
Status ParseGroupHeader(Cursor* cur, uint64_t num_users,
                        std::vector<mining::Descriptor>* desc,
                        uint64_t* member_count) {
  uint32_t desc_len;
  if (!cur->ReadU32(&desc_len)) return Truncated();
  if (static_cast<uint64_t>(desc_len) * 8 > cur->remaining()) {
    return Truncated();
  }
  desc->clear();
  desc->reserve(desc_len);
  for (uint32_t i = 0; i < desc_len; ++i) {
    mining::Descriptor d;
    if (!cur->ReadU32(&d.attribute) || !cur->ReadU32(&d.value)) {
      return Truncated();
    }
    desc->push_back(d);
  }
  if (!cur->ReadU64(member_count)) return Truncated();
  if (*member_count > num_users) {
    return Status::Corruption("group claims more members than users");
  }
  return Status::OK();
}

Status AddParsedGroup(mining::GroupStore* store, uint64_t expected_id,
                      std::vector<mining::Descriptor> desc,
                      HybridBitset members) {
  mining::GroupId assigned =
      store->Add(mining::UserGroup(std::move(desc), std::move(members)));
  if (assigned != expected_id) {
    // Stores never hold duplicate (description, extent) pairs, so a dedup
    // hit here means the file repeats a group — ids would shift and the
    // posting lists would dangle.
    return Status::Corruption("duplicate group in snapshot");
  }
  return Status::OK();
}

Status ParseGroupsV1(Cursor* cur, uint64_t num_users, uint64_t num_groups,
                     mining::GroupStore* store) {
  std::vector<mining::Descriptor> desc;
  for (uint64_t g = 0; g < num_groups; ++g) {
    uint64_t member_count;
    VEXUS_RETURN_NOT_OK(ParseGroupHeader(cur, num_users, &desc, &member_count));
    Bitset members(num_users);
    for (uint64_t i = 0; i < member_count; ++i) {
      uint32_t u;
      if (!cur->ReadU32(&u)) return Truncated();
      if (u >= num_users) return Status::Corruption("member id out of range");
      if (members.Test(u)) {
        // Pre-fix this silently shrank the group: Set(u) twice stores one
        // bit, so the loaded extent disagreed with the written one.
        return Status::Corruption("duplicate member id in group");
      }
      members.Set(u);
    }
    VEXUS_RETURN_NOT_OK(AddParsedGroup(store, g, std::move(desc),
                                       HybridBitset::FromBitset(
                                           std::move(members))));
  }
  return Status::OK();
}

Status ParseGroupsV2(Cursor* cur, uint64_t num_users, uint64_t num_groups,
                     mining::GroupStore* store) {
  const size_t words_per_group = (num_users + 63) / 64;
  const uint64_t sparse_threshold = HybridBitset::SparseThresholdFor(num_users);
  std::vector<mining::Descriptor> desc;
  std::vector<uint64_t> words;
  for (uint64_t g = 0; g < num_groups; ++g) {
    uint64_t member_count;
    VEXUS_RETURN_NOT_OK(ParseGroupHeader(cur, num_users, &desc, &member_count));
    uint8_t encoding;
    if (!cur->ReadU8(&encoding)) return Truncated();

    HybridBitset members;
    if (encoding == kEncodingSparse) {
      // Hand-rolled LEB128 delta decode: this loop runs once per member
      // across the whole snapshot, so it works on raw pointers (one bounds
      // check per byte consumed, no per-call function overhead). Groups at
      // or below the in-RAM density threshold decode straight into the
      // hybrid sparse form — the strictly-ascending id array IS the decoded
      // container, no word materialization at all; denser groups fall back
      // to writing bits into the word array. Strictly ascending ids mean
      // every id is fresh, so count == member_count by construction — no
      // separate verification pass is needed.
      const unsigned char* p = cur->pos();
      const unsigned char* const end = cur->end();
      const bool to_sparse = member_count <= sparse_threshold;
      std::vector<uint32_t> ids;
      if (to_sparse) {
        ids.reserve(member_count);
      } else {
        words.assign(words_per_group, 0);
      }
      uint64_t id = 0;
      // ReadVarint with the multi-byte continuation peeled off: deltas
      // between neighbouring members of a non-degenerate group are almost
      // always < 128, so the common case is one load, one test, one OR.
      const auto read_delta = [&p, end](uint64_t* delta) -> bool {
        if (p == end) return false;
        uint64_t v = *p++;
        if ((v & 0x80) != 0) {
          v &= 0x7f;
          int shift = 7;
          for (;;) {
            if (p == end || shift >= 64) return false;
            const uint8_t byte = *p++;
            v |= static_cast<uint64_t>(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0) break;
            shift += 7;
          }
        }
        *delta = v;
        return true;
      };
      // First member peeled: it is an absolute id (delta 0 is legal there),
      // so the loop body only handles the strictly-positive-delta case.
      if (member_count > 0) {
        if (!read_delta(&id)) return Truncated();
        if (id >= num_users) {
          return Status::Corruption("member id out of range");
        }
        if (to_sparse) {
          ids.push_back(static_cast<uint32_t>(id));
        } else {
          words[id >> 6] |= uint64_t{1} << (id & 63);
        }
      }
      for (uint64_t i = 1; i < member_count; ++i) {
        uint64_t delta;
        if (!read_delta(&delta)) return Truncated();
        if (delta == 0) {
          return Status::Corruption("duplicate member id in group");
        }
        id += delta;
        if (id >= num_users) {
          return Status::Corruption("member id out of range");
        }
        if (to_sparse) {
          ids.push_back(static_cast<uint32_t>(id));
        } else {
          words[id >> 6] |= uint64_t{1} << (id & 63);
        }
      }
      cur->AdvanceTo(p);
      if (to_sparse) {
        members = HybridBitset::FromSortedIds(num_users, std::move(ids));
      } else {
        Bitset dense;
        if (!dense.AdoptWords(num_users, std::move(words))) {
          return Status::Corruption("member id out of range");
        }
        words = {};
        members = HybridBitset::FromBitset(std::move(dense));
      }
    } else if (encoding == kEncodingRaw) {
      if (!cur->ReadWords(words_per_group, &words)) return Truncated();
      Bitset dense;
      if (!dense.AdoptWords(num_users, std::move(words))) {
        return Status::Corruption("raw member block has bits beyond universe");
      }
      words = {};
      if (dense.Count() != member_count) {
        return Status::Corruption(
            "raw member block popcount disagrees with member_count");
      }
      // FromBitset normalizes: a tiny raw-encoded group still lands in the
      // canonical sparse form.
      members = HybridBitset::FromBitset(std::move(dense));
    } else {
      return Status::Corruption("unknown member-block encoding");
    }
    VEXUS_RETURN_NOT_OK(
        AddParsedGroup(store, g, std::move(desc), std::move(members)));
  }
  return Status::OK();
}

Status ParsePostings(Cursor* cur, uint64_t num_groups,
                     std::vector<std::vector<index::Neighbor>>* lists) {
  uint64_t num_lists;
  if (!cur->ReadU64(&num_lists)) return Truncated();
  if (num_lists != num_groups) {
    return Status::Corruption("posting-list count mismatch");
  }
  lists->resize(num_lists);
  for (uint64_t g = 0; g < num_lists; ++g) {
    uint32_t len;
    if (!cur->ReadU32(&len)) return Truncated();
    if (static_cast<uint64_t>(len) * 8 > cur->remaining()) return Truncated();
    (*lists)[g].reserve(len);
    for (uint32_t i = 0; i < len; ++i) {
      index::Neighbor nb;
      if (!cur->ReadU32(&nb.group) || !cur->ReadF32(&nb.similarity)) {
        return Truncated();
      }
      if (nb.group >= num_groups) {
        return Status::Corruption("posting references unknown group");
      }
      (*lists)[g].push_back(nb);
    }
  }
  return Status::OK();
}

Result<Snapshot> ParseV1(const std::string& buf, uint64_t num_users) {
  Cursor cur(buf.data() + kHeaderSize, buf.size() - kHeaderSize);
  uint64_t num_groups;
  if (!cur.ReadU64(&num_groups)) return Truncated();
  // Bomb guard: each group costs ≥ 12 bytes, so a corrupt count cannot force
  // a giant allocation before the per-group reads start failing.
  if (num_groups > buf.size() / 12) {
    return Status::Corruption("group count exceeds file size");
  }
  mining::GroupStore store(num_users);
  VEXUS_RETURN_NOT_OK(ParseGroupsV1(&cur, num_users, num_groups, &store));

  std::vector<std::vector<index::Neighbor>> lists;
  VEXUS_RETURN_NOT_OK(ParsePostings(&cur, num_groups, &lists));
  if (cur.remaining() != 0) {
    // Pre-fix the stream loader stopped reading here and accepted the file;
    // bytes after the last posting list mean the writer and reader disagree
    // about the format, so nothing upstream can be trusted.
    return Status::Corruption("trailing garbage after posting lists");
  }
  return Snapshot{std::move(store),
                  index::InvertedIndex::FromPostings(std::move(lists))};
}

Result<Snapshot> ParseV2(const std::string& buf, uint64_t num_users) {
  if (buf.size() < kHeaderSize + kTrailerSize) return Truncated();

  // Trailer first: offsets + checksums let us validate sections before
  // trusting any length field inside them.
  Cursor tcur(buf.data() + buf.size() - kTrailerSize, kTrailerSize);
  uint64_t groups_offset, groups_len, postings_offset, postings_len;
  uint32_t groups_crc, postings_crc, trailer_crc;
  (void)tcur.ReadU64(&groups_offset);
  (void)tcur.ReadU64(&groups_len);
  (void)tcur.ReadU64(&postings_offset);
  (void)tcur.ReadU64(&postings_len);
  (void)tcur.ReadU32(&groups_crc);
  (void)tcur.ReadU32(&postings_crc);
  (void)tcur.ReadU32(&trailer_crc);
  if (std::memcmp(buf.data() + buf.size() - 4, kTrailerMagic, 4) != 0) {
    return Status::Corruption("bad snapshot trailer magic");
  }
  if (Crc32(buf.data() + buf.size() - kTrailerSize, kTrailerSize - 8) !=
      trailer_crc) {
    return Status::Corruption("trailer checksum mismatch");
  }
  // The header, the two sections, and the trailer must tile the file
  // exactly — trailing garbage or overlapping sections fail here.
  if (groups_offset != kHeaderSize || groups_len < 8 || postings_len < 8 ||
      postings_offset != groups_offset + groups_len ||
      postings_offset + postings_len + kTrailerSize != buf.size()) {
    return Status::Corruption("snapshot sections do not tile the file");
  }
  // The groups CRC covers the header too (see EncodeSnapshot): everything
  // from byte 0 through the end of the groups section.
  if (Crc32(buf.data(), groups_offset + groups_len) != groups_crc) {
    return Status::Corruption("groups section checksum mismatch");
  }
  if (Crc32(buf.data() + postings_offset, postings_len) != postings_crc) {
    return Status::Corruption("postings section checksum mismatch");
  }

  Cursor gcur(buf.data() + groups_offset, groups_len);
  uint64_t num_groups;
  if (!gcur.ReadU64(&num_groups)) return Truncated();
  if (num_groups > groups_len / 13) {  // ≥ 13 bytes per group in v2
    return Status::Corruption("group count exceeds section size");
  }
  mining::GroupStore store(num_users);
  VEXUS_RETURN_NOT_OK(ParseGroupsV2(&gcur, num_users, num_groups, &store));
  if (gcur.remaining() != 0) {
    return Status::Corruption("trailing bytes in groups section");
  }

  Cursor pcur(buf.data() + postings_offset, postings_len);
  std::vector<std::vector<index::Neighbor>> lists;
  VEXUS_RETURN_NOT_OK(ParsePostings(&pcur, num_groups, &lists));
  if (pcur.remaining() != 0) {
    return Status::Corruption("trailing bytes in postings section");
  }
  return Snapshot{std::move(store),
                  index::InvertedIndex::FromPostings(std::move(lists))};
}

// ---------------------------------------------------------------------------
// v3: per-shard group sections
// ---------------------------------------------------------------------------

struct V3ShardEntry {
  uint64_t offset = 0, len = 0, user_begin = 0, user_end = 0;
  uint32_t crc = 0;
};

struct V3Trailer {
  std::vector<V3ShardEntry> shards;
  uint64_t postings_offset = 0, postings_len = 0;
  uint32_t postings_crc = 0;
};

/// Reads + validates the v3 variable trailer: magic, trailer CRC, exact
/// tiling of the file by the shard sections + postings + trailer, and the
/// shard ranges matching ShardMap(num_users, S) — the same partition the
/// preprocessing and serving layers compute, so a shard server and the
/// snapshot can never disagree about who owns which users. Section CRCs are
/// NOT checked here — LoadSnapshotShard verifies only its own section.
Result<V3Trailer> ParseV3Trailer(const std::string& buf, uint64_t num_users) {
  if (buf.size() < kHeaderSize + V3TrailerSize(1)) return Truncated();
  if (std::memcmp(buf.data() + buf.size() - 4, kTrailerMagic, 4) != 0) {
    return Status::Corruption("bad snapshot trailer magic");
  }
  Cursor tail(buf.data() + buf.size() - kV3TrailerTailSize,
              kV3TrailerTailSize);
  uint64_t num_shards;
  uint32_t trailer_crc;
  (void)tail.ReadU64(&num_shards);
  (void)tail.ReadU32(&trailer_crc);
  // Bomb guard: each shard costs a trailer entry, so a corrupt count cannot
  // force a giant allocation before the size check below fails.
  if (num_shards == 0 || num_shards > buf.size() / kV3ShardEntrySize) {
    return Status::Corruption("shard count exceeds file size");
  }
  const size_t trailer_size = V3TrailerSize(num_shards);
  if (buf.size() < kHeaderSize + trailer_size) return Truncated();
  const char* tstart = buf.data() + buf.size() - trailer_size;
  if (Crc32(tstart, trailer_size - 8) != trailer_crc) {
    return Status::Corruption("trailer checksum mismatch");
  }

  V3Trailer t;
  Cursor cur(tstart, trailer_size - kV3TrailerTailSize);
  t.shards.resize(num_shards);
  for (V3ShardEntry& e : t.shards) {
    (void)cur.ReadU64(&e.offset);
    (void)cur.ReadU64(&e.len);
    (void)cur.ReadU64(&e.user_begin);
    (void)cur.ReadU64(&e.user_end);
    (void)cur.ReadU32(&e.crc);
  }
  (void)cur.ReadU64(&t.postings_offset);
  (void)cur.ReadU64(&t.postings_len);
  (void)cur.ReadU32(&t.postings_crc);

  // Sections must tile the file exactly: shard order, postings last. The
  // per-entry length bound stops a huge u64 from wrapping the running sum.
  uint64_t expect = kHeaderSize;
  for (const V3ShardEntry& e : t.shards) {
    if (e.len < 8 || e.len > buf.size() || e.offset != expect) {
      return Status::Corruption("snapshot sections do not tile the file");
    }
    expect += e.len;
  }
  if (t.postings_len < 8 || t.postings_len > buf.size() ||
      t.postings_offset != expect ||
      t.postings_offset + t.postings_len + trailer_size != buf.size()) {
    return Status::Corruption("snapshot sections do not tile the file");
  }

  ShardMap map(num_users, num_shards);
  if (map.num_shards() != num_shards) {
    return Status::Corruption("shard count impossible for universe size");
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (t.shards[s].user_begin != map.shard(s).user_begin ||
        t.shards[s].user_end != map.shard(s).user_end) {
      return Status::Corruption("shard ranges disagree with the shard map");
    }
  }
  return t;
}

/// Parses one shard's group section, appending each group's in-range member
/// ids to `ids` (ascending: within a section ids ascend, and sections are
/// visited in shard order). The first section fixes the group count and
/// descriptors; later sections must agree (their CRCs already passed, so a
/// mismatch means the writer was broken, not the media).
Status ParseShardGroupsSection(
    const char* data, size_t len, uint64_t num_users,
    const ShardMap::Range& r, bool first, uint64_t* num_groups,
    std::vector<std::vector<mining::Descriptor>>* descs,
    std::vector<std::vector<uint32_t>>* ids) {
  Cursor cur(data, len);
  uint64_t n;
  if (!cur.ReadU64(&n)) return Truncated();
  if (n > len / 13) {  // ≥ 13 bytes per group, as in v2
    return Status::Corruption("group count exceeds section size");
  }
  if (first) {
    *num_groups = n;
    descs->resize(n);
    ids->resize(n);
  } else if (n != *num_groups) {
    return Status::Corruption("shard sections disagree on group count");
  }
  std::vector<mining::Descriptor> desc;
  const uint64_t shard_users = r.user_end - r.user_begin;
  for (uint64_t g = 0; g < n; ++g) {
    uint64_t member_count;
    VEXUS_RETURN_NOT_OK(
        ParseGroupHeader(&cur, num_users, &desc, &member_count));
    if (first) {
      (*descs)[g] = desc;
    } else {
      const std::vector<mining::Descriptor>& have = (*descs)[g];
      bool same = desc.size() == have.size();
      for (size_t i = 0; same && i < desc.size(); ++i) {
        same = desc[i].attribute == have[i].attribute &&
               desc[i].value == have[i].value;
      }
      if (!same) {
        return Status::Corruption(
            "shard sections disagree on group descriptors");
      }
    }
    if (member_count > shard_users) {
      return Status::Corruption("group claims more members than shard users");
    }
    uint8_t encoding;
    if (!cur.ReadU8(&encoding)) return Truncated();
    std::vector<uint32_t>& out = (*ids)[g];
    out.reserve(out.size() + member_count);
    if (encoding == kEncodingSparse) {
      uint64_t id = 0;
      for (uint64_t i = 0; i < member_count; ++i) {
        uint64_t delta;
        if (!cur.ReadVarint(&delta)) return Truncated();
        if (i == 0) {
          id = delta;
        } else {
          if (delta == 0) {
            return Status::Corruption("duplicate member id in group");
          }
          id += delta;
        }
        if (id < r.user_begin || id >= r.user_end) {
          return Status::Corruption("member id outside shard range");
        }
        out.push_back(static_cast<uint32_t>(id));
      }
    } else if (encoding == kEncodingRaw) {
      std::vector<uint64_t> words;
      if (!cur.ReadWords(r.num_words(), &words)) return Truncated();
      uint64_t count = 0;
      for (size_t w = 0; w < words.size(); ++w) {
        uint64_t bits = words[w];
        while (bits != 0) {
          const int b = __builtin_ctzll(bits);
          bits &= bits - 1;
          const uint64_t id = (r.word_begin + w) * 64 + b;
          if (id >= r.user_end) {
            return Status::Corruption(
                "raw member block has bits beyond shard range");
          }
          out.push_back(static_cast<uint32_t>(id));
          ++count;
        }
      }
      if (count != member_count) {
        return Status::Corruption(
            "raw member block popcount disagrees with member_count");
      }
    } else {
      return Status::Corruption("unknown member-block encoding");
    }
  }
  if (cur.remaining() != 0) {
    return Status::Corruption("trailing bytes in groups section");
  }
  return Status::OK();
}

/// Folds per-shard id streams into canonical HybridBitset members. Shard
/// ranges are disjoint and visited in order, so each stream is sorted and
/// duplicate-free by construction.
Result<mining::GroupStore> BuildStoreFromShardIds(
    uint64_t num_users, std::vector<std::vector<mining::Descriptor>>* descs,
    std::vector<std::vector<uint32_t>>* ids) {
  const uint64_t sparse_threshold =
      HybridBitset::SparseThresholdFor(num_users);
  mining::GroupStore store(num_users);
  for (size_t g = 0; g < descs->size(); ++g) {
    HybridBitset members;
    if ((*ids)[g].size() <= sparse_threshold) {
      members = HybridBitset::FromSortedIds(num_users, std::move((*ids)[g]));
    } else {
      Bitset dense(num_users);
      for (uint32_t u : (*ids)[g]) dense.Set(u);
      (*ids)[g] = {};
      members = HybridBitset::FromBitset(std::move(dense));
    }
    VEXUS_RETURN_NOT_OK(AddParsedGroup(&store, g, std::move((*descs)[g]),
                                       std::move(members)));
  }
  return store;
}

Result<Snapshot> ParseV3(const std::string& buf, uint64_t num_users) {
  VEXUS_ASSIGN_OR_RETURN(V3Trailer t, ParseV3Trailer(buf, num_users));
  const size_t S = t.shards.size();
  const ShardMap map(num_users, S);
  // CRC every section before parsing any (shard 0's covers the header, same
  // rationale as v2's groups CRC).
  for (size_t s = 0; s < S; ++s) {
    const V3ShardEntry& e = t.shards[s];
    const uint32_t crc = s == 0 ? Crc32(buf.data(), e.offset + e.len)
                                : Crc32(buf.data() + e.offset, e.len);
    if (crc != e.crc) {
      return Status::Corruption("shard " + std::to_string(s) +
                                " section checksum mismatch");
    }
  }
  if (Crc32(buf.data() + t.postings_offset, t.postings_len) !=
      t.postings_crc) {
    return Status::Corruption("postings section checksum mismatch");
  }

  uint64_t num_groups = 0;
  std::vector<std::vector<mining::Descriptor>> descs;
  std::vector<std::vector<uint32_t>> ids;
  for (size_t s = 0; s < S; ++s) {
    VEXUS_RETURN_NOT_OK(ParseShardGroupsSection(
        buf.data() + t.shards[s].offset, t.shards[s].len, num_users,
        map.shard(s), /*first=*/s == 0, &num_groups, &descs, &ids));
  }
  VEXUS_ASSIGN_OR_RETURN(mining::GroupStore store,
                         BuildStoreFromShardIds(num_users, &descs, &ids));

  Cursor pcur(buf.data() + t.postings_offset, t.postings_len);
  std::vector<std::vector<index::Neighbor>> lists;
  VEXUS_RETURN_NOT_OK(ParsePostings(&pcur, num_groups, &lists));
  if (pcur.remaining() != 0) {
    return Status::Corruption("trailing bytes in postings section");
  }
  return Snapshot{std::move(store),
                  index::InvertedIndex::FromPostings(std::move(lists))};
}

}  // namespace

Status SaveSnapshot(const mining::GroupStore& groups,
                    const index::InvertedIndex& index, const std::string& path,
                    const SnapshotSaveOptions& options, const TraceSpan* span) {
  if (index.num_groups() != groups.size()) {
    return Status::InvalidArgument(
        "index and group store cover different group sets");
  }
  if (options.version != kVersionV1 && options.version != kVersionV2) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(options.version));
  }
  TraceSpan save = span != nullptr ? span->Child("save") : TraceSpan();
  // num_shards > 1 selects format v3 (per-shard sections); a universe too
  // small to split clamps back to one shard and stays plain v2/v1, so small
  // deployments never pay the multi-section trailer.
  const ShardMap shards(groups.num_users(),
                        std::max<size_t>(1, options.num_shards));
  std::string payload =
      options.version == kVersionV2 && shards.num_shards() > 1
          ? EncodeSnapshotV3(groups, index, shards)
          : EncodeSnapshot(groups, index, options.version);
  save.AddCount(payload.size());
  // Simulates silent media corruption between encode and persist: one payload
  // byte is flipped, the write itself "succeeds", and the damage is only
  // discoverable by LoadSnapshot's checksums.
  if (VEXUS_FAILPOINT_FIRES("snapshot.save.corrupt") && !payload.empty()) {
    payload[payload.size() / 2] ^= 0x40;
  }
  return WriteFileAtomically(path, payload, options.sync);
}

Result<Snapshot> LoadSnapshot(const std::string& path, const TraceSpan* span) {
  TraceSpan load = span != nullptr ? span->Child("load") : TraceSpan();
  // Simulates an unreadable snapshot file (EIO, NFS server gone).
  VEXUS_FAILPOINT("snapshot.load.read");
  VEXUS_ASSIGN_OR_RETURN(std::string buf, ReadFileFully(path));
  load.AddCount(buf.size());
  // Simulates bit rot on the read path: the file on disk is fine but the
  // bytes we parsed are not. Checksums must catch it.
  if (VEXUS_FAILPOINT_FIRES("snapshot.load.corrupt") && !buf.empty()) {
    buf[buf.size() / 2] ^= 0x40;
  }

  if (buf.size() < kHeaderSize) return Truncated();
  if (std::memcmp(buf.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad snapshot magic");
  }
  Cursor hcur(buf.data() + 4, kHeaderSize - 4);
  uint32_t version;
  uint64_t num_users;
  (void)hcur.ReadU32(&version);
  (void)hcur.ReadU64(&num_users);
  if (version != kVersionV1 && version != kVersionV2 &&
      version != kVersionV3) {
    return Status::NotSupported("snapshot version " + std::to_string(version) +
                                " (expected " + std::to_string(kVersionV1) +
                                ".." + std::to_string(kVersionV3) + ")");
  }
  if (num_users > (uint64_t{1} << 32)) {
    return Status::Corruption("user universe exceeds 32-bit user ids");
  }
  if (version == kVersionV1) return ParseV1(buf, num_users);
  if (version == kVersionV2) return ParseV2(buf, num_users);
  return ParseV3(buf, num_users);
}

Result<SnapshotShard> LoadSnapshotShard(const std::string& path, size_t shard,
                                        const TraceSpan* span) {
  TraceSpan load = span != nullptr ? span->Child("load_shard") : TraceSpan();
  VEXUS_FAILPOINT("snapshot.load.read");
  VEXUS_ASSIGN_OR_RETURN(std::string buf, ReadFileFully(path));
  load.AddCount(buf.size());

  if (buf.size() < kHeaderSize) return Truncated();
  if (std::memcmp(buf.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad snapshot magic");
  }
  Cursor hcur(buf.data() + 4, kHeaderSize - 4);
  uint32_t version;
  uint64_t num_users;
  (void)hcur.ReadU32(&version);
  (void)hcur.ReadU64(&num_users);
  if (num_users > (uint64_t{1} << 32)) {
    return Status::Corruption("user universe exceeds 32-bit user ids");
  }

  if (version == kVersionV1 || version == kVersionV2) {
    // Single-section formats are "shard 0 of 1": a deployment that never
    // sharded still cold-starts through the same entry point.
    if (shard != 0) {
      return Status::InvalidArgument(
          "shard index out of range for single-section snapshot");
    }
    VEXUS_ASSIGN_OR_RETURN(Snapshot snap, version == kVersionV1
                                              ? ParseV1(buf, num_users)
                                              : ParseV2(buf, num_users));
    return SnapshotShard{/*shard=*/0, /*num_shards=*/1, /*user_begin=*/0,
                         static_cast<uint32_t>(num_users),
                         std::move(snap.groups)};
  }
  if (version != kVersionV3) {
    return Status::NotSupported("snapshot version " + std::to_string(version) +
                                " (expected " + std::to_string(kVersionV1) +
                                ".." + std::to_string(kVersionV3) + ")");
  }

  VEXUS_ASSIGN_OR_RETURN(V3Trailer t, ParseV3Trailer(buf, num_users));
  if (shard >= t.shards.size()) {
    return Status::InvalidArgument(
        "shard index " + std::to_string(shard) + " out of range (snapshot has " +
        std::to_string(t.shards.size()) + " shards)");
  }
  // Only this shard's section is checksummed — a flipped bit in another
  // shard's section must not block this shard's cold start (tested).
  const V3ShardEntry& e = t.shards[shard];
  const uint32_t crc = shard == 0 ? Crc32(buf.data(), e.offset + e.len)
                                  : Crc32(buf.data() + e.offset, e.len);
  if (crc != e.crc) {
    return Status::Corruption("shard " + std::to_string(shard) +
                              " section checksum mismatch");
  }

  const ShardMap map(num_users, t.shards.size());
  const ShardMap::Range& r = map.shard(shard);
  uint64_t num_groups = 0;
  std::vector<std::vector<mining::Descriptor>> descs;
  std::vector<std::vector<uint32_t>> ids;
  VEXUS_RETURN_NOT_OK(ParseShardGroupsSection(buf.data() + e.offset, e.len,
                                              num_users, r, /*first=*/true,
                                              &num_groups, &descs, &ids));
  VEXUS_ASSIGN_OR_RETURN(mining::GroupStore store,
                         BuildStoreFromShardIds(num_users, &descs, &ids));
  return SnapshotShard{shard, t.shards.size(), r.user_begin, r.user_end,
                       std::move(store)};
}

namespace internal {

uint64_t SnapshotFsyncCountForTesting() {
  return g_fsync_count.load(std::memory_order_relaxed);
}

}  // namespace internal

}  // namespace vexus::core
