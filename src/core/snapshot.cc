#include "core/snapshot.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/logging.h"

namespace vexus::core {

namespace {

constexpr char kMagic[4] = {'V', 'X', 'S', 'N'};
constexpr uint32_t kVersion = 1;

// ---- little-endian primitive I/O ----

void PutU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 4);
}

void PutU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

void PutF32(std::ostream& out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  PutU32(out, bits);
}

bool GetU32(std::istream& in, uint32_t* v) {
  unsigned char buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(buf[i]) << (8 * i);
  return true;
}

bool GetU64(std::istream& in, uint64_t* v) {
  unsigned char buf[8];
  if (!in.read(reinterpret_cast<char*>(buf), 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return true;
}

bool GetF32(std::istream& in, float* v) {
  uint32_t bits;
  if (!GetU32(in, &bits)) return false;
  std::memcpy(v, &bits, 4);
  return true;
}

Status Truncated() { return Status::Corruption("snapshot truncated"); }

}  // namespace

Status SaveSnapshot(const mining::GroupStore& groups,
                    const index::InvertedIndex& index,
                    const std::string& path) {
  if (index.num_groups() != groups.size()) {
    return Status::InvalidArgument(
        "index and group store cover different group sets");
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open '" + tmp + "' for writing");

    out.write(kMagic, 4);
    PutU32(out, kVersion);
    PutU64(out, groups.num_users());

    PutU64(out, groups.size());
    for (mining::GroupId g = 0; g < groups.size(); ++g) {
      const mining::UserGroup& grp = groups.group(g);
      PutU32(out, static_cast<uint32_t>(grp.description().size()));
      for (const mining::Descriptor& d : grp.description()) {
        PutU32(out, d.attribute);
        PutU32(out, d.value);
      }
      PutU64(out, grp.size());
      grp.members().ForEach([&out](uint32_t u) { PutU32(out, u); });
    }

    PutU64(out, index.num_groups());
    for (mining::GroupId g = 0; g < index.num_groups(); ++g) {
      const auto& list = index.Neighbors(g);
      PutU32(out, static_cast<uint32_t>(list.size()));
      for (const index::Neighbor& nb : list) {
        PutU32(out, nb.group);
        PutF32(out, nb.similarity);
      }
    }
    if (!out) return Status::IOError("write failed on '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename snapshot into '" + path + "'");
  }
  return Status::OK();
}

Result<Snapshot> LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");

  char magic[4];
  if (!in.read(magic, 4)) return Truncated();
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad snapshot magic");
  }
  uint32_t version;
  if (!GetU32(in, &version)) return Truncated();
  if (version != kVersion) {
    return Status::NotSupported("snapshot version " + std::to_string(version) +
                                " (expected " + std::to_string(kVersion) +
                                ")");
  }
  uint64_t num_users;
  if (!GetU64(in, &num_users)) return Truncated();

  uint64_t num_groups;
  if (!GetU64(in, &num_groups)) return Truncated();
  mining::GroupStore store(num_users);
  for (uint64_t g = 0; g < num_groups; ++g) {
    uint32_t desc_len;
    if (!GetU32(in, &desc_len)) return Truncated();
    std::vector<mining::Descriptor> desc;
    desc.reserve(desc_len);
    for (uint32_t i = 0; i < desc_len; ++i) {
      mining::Descriptor d;
      if (!GetU32(in, &d.attribute) || !GetU32(in, &d.value)) {
        return Truncated();
      }
      desc.push_back(d);
    }
    uint64_t member_count;
    if (!GetU64(in, &member_count)) return Truncated();
    if (member_count > num_users) {
      return Status::Corruption("group claims more members than users");
    }
    Bitset members(num_users);
    for (uint64_t i = 0; i < member_count; ++i) {
      uint32_t u;
      if (!GetU32(in, &u)) return Truncated();
      if (u >= num_users) {
        return Status::Corruption("member id out of range");
      }
      members.Set(u);
    }
    mining::GroupId assigned =
        store.Add(mining::UserGroup(std::move(desc), std::move(members)));
    if (assigned != g) {
      // Stores never hold duplicate (description, extent) pairs, so a
      // dedup hit here means the file repeats a group — ids would shift
      // and the posting lists would dangle.
      return Status::Corruption("duplicate group in snapshot");
    }
  }

  uint64_t num_lists;
  if (!GetU64(in, &num_lists)) return Truncated();
  if (num_lists != num_groups) {
    return Status::Corruption("posting-list count mismatch");
  }
  std::vector<std::vector<index::Neighbor>> lists(num_lists);
  for (uint64_t g = 0; g < num_lists; ++g) {
    uint32_t len;
    if (!GetU32(in, &len)) return Truncated();
    lists[g].reserve(len);
    for (uint32_t i = 0; i < len; ++i) {
      index::Neighbor nb;
      if (!GetU32(in, &nb.group) || !GetF32(in, &nb.similarity)) {
        return Truncated();
      }
      if (nb.group >= num_groups) {
        return Status::Corruption("posting references unknown group");
      }
      lists[g].push_back(nb);
    }
  }

  return Snapshot{std::move(store),
                  index::InvertedIndex::FromPostings(std::move(lists))};
}

}  // namespace vexus::core
