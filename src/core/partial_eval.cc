#include "core/partial_eval.h"

#include <string>

#include "common/bitset.h"
#include "common/hybrid_bitset.h"

namespace vexus::core {

Result<std::vector<uint32_t>> EvalCoveragePartials(
    const mining::GroupStore& store, const PartialEvalInput& in) {
  const size_t k = in.selection.size();
  if (k == 0) {
    return Status::InvalidArgument("eval_partial requires a selection");
  }
  if (in.trials.empty() || in.trials.size() % 2 != 0) {
    return Status::InvalidArgument(
        "trials must be a non-empty even-length (candidate, slot) list");
  }
  auto check_gid = [&](uint32_t gid, const char* what) -> Status {
    if (gid >= store.size()) {
      return Status::InvalidArgument(std::string(what) + " group id " +
                                     std::to_string(gid) +
                                     " out of range (store holds " +
                                     std::to_string(store.size()) + ")");
    }
    return Status::OK();
  };
  if (in.anchor.has_value()) {
    VEXUS_RETURN_NOT_OK(check_gid(*in.anchor, "anchor"));
  }
  for (uint32_t gid : in.selection) {
    VEXUS_RETURN_NOT_OK(check_gid(gid, "selection"));
  }
  const size_t num_trials = in.trials.size() / 2;
  for (size_t t = 0; t < num_trials; ++t) {
    VEXUS_RETURN_NOT_OK(check_gid(in.trials[2 * t], "trial candidate"));
    if (in.trials[2 * t + 1] >= k) {
      return Status::InvalidArgument(
          "trial slot " + std::to_string(in.trials[2 * t + 1]) +
          " out of range (selection holds " + std::to_string(k) + ")");
    }
  }

  const size_t n_users = store.num_users();
  Bitset anchor_bits;
  const bool anchored = in.anchor.has_value();
  if (anchored) anchor_bits = store.group(*in.anchor).members().ToBitset();

  // Prefix/suffix union tables → rest(pos), exactly the SwapObjective
  // rebuild (greedy_eval.cc) so the slice integers line up with the
  // in-process shard partials.
  std::vector<Bitset> prefix(k + 1), suffix(k + 1), rest(k);
  prefix[0].Resize(n_users);
  prefix[0].ClearAll();
  suffix[k].Resize(n_users);
  suffix[k].ClearAll();
  for (size_t i = 0; i < k; ++i) {
    store.group(in.selection[i]).members().UnionInto(prefix[i],
                                                     &prefix[i + 1]);
  }
  for (size_t i = k; i-- > 0;) {
    store.group(in.selection[i]).members().UnionInto(suffix[i + 1],
                                                     &suffix[i]);
  }
  for (size_t pos = 0; pos < k; ++pos) {
    if (anchored) {
      rest[pos].AssignUnionMaskedCount(prefix[pos], suffix[pos + 1],
                                       anchor_bits);
    } else {
      rest[pos].AssignUnionCount(prefix[pos], suffix[pos + 1]);
    }
  }

  std::vector<uint32_t> out(num_trials);
  for (size_t t = 0; t < num_trials; ++t) {
    const HybridBitset& cand = store.group(in.trials[2 * t]).members();
    const Bitset& r = rest[in.trials[2 * t + 1]];
    const size_t newly =
        anchored ? cand.IntersectCountAndNot(anchor_bits, r)
                 : cand.CountAndNot(r);
    out[t] = static_cast<uint32_t>(newly);
  }
  return out;
}

}  // namespace vexus::core
