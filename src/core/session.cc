#include "core/session.h"

#include <algorithm>

#include "common/logging.h"

namespace vexus::core {

ExplorationSession::ExplorationSession(const data::Dataset* dataset,
                                       const mining::GroupStore* store,
                                       const index::InvertedIndex* index,
                                       SessionOptions options)
    : dataset_(dataset),
      store_(store),
      index_(index),
      options_(options),
      tokens_(*dataset),
      feedback_(&tokens_),
      selector_(store, index) {
  VEXUS_CHECK(dataset != nullptr && store != nullptr && index != nullptr);
  VEXUS_CHECK(store->num_users() == dataset->num_users())
      << "group store universe does not match the dataset";
}

const GreedySelection& ExplorationSession::Start() {
  history_.clear();
  memo_ = Memo{};
  feedback_ = FeedbackVector(&tokens_);

  ExplorationStep step{std::nullopt,
                       selector_.SelectInitial(feedback_, options_.greedy),
                       feedback_};
  history_.push_back(std::move(step));
  return history_.back().shown;
}

const GreedySelection& ExplorationSession::SelectGroup(mining::GroupId g) {
  VEXUS_CHECK(g < store_->size()) << "unknown group " << g;
  VEXUS_CHECK(!history_.empty()) << "call Start() before SelectGroup()";

  // Implicit positive feedback for the clicked group.
  feedback_.Learn(store_->group(g), options_.learning_rate);

  ExplorationStep step{g, selector_.SelectNext(g, feedback_, options_.greedy),
                       feedback_};
  history_.push_back(std::move(step));
  return history_.back().shown;
}

const ExplorationStep& ExplorationSession::Step(size_t i) const {
  VEXUS_CHECK(i < history_.size());
  return history_[i];
}

Status ExplorationSession::Backtrack(size_t i) {
  if (i >= history_.size()) {
    return Status::OutOfRange("backtrack to step " + std::to_string(i) +
                              " but history has " +
                              std::to_string(history_.size()) + " steps");
  }
  history_.erase(history_.begin() + static_cast<ptrdiff_t>(i) + 1,
                 history_.end());
  feedback_ = history_[i].feedback_snapshot;
  return Status::OK();
}

const GreedySelection& ExplorationSession::Current() const {
  VEXUS_CHECK(!history_.empty()) << "session not started";
  return history_.back().shown;
}

void ExplorationSession::Unlearn(Token t) { feedback_.Unlearn(t); }

void ExplorationSession::BookmarkGroup(mining::GroupId g) {
  VEXUS_CHECK(g < store_->size());
  if (std::find(memo_.groups.begin(), memo_.groups.end(), g) ==
      memo_.groups.end()) {
    memo_.groups.push_back(g);
  }
}

SessionDigest ExplorationSession::Digest() const {
  SessionDigest d;
  d.num_steps = history_.size();
  d.memo_groups = memo_.groups.size();
  d.memo_users = memo_.users.size();
  d.feedback_nonzero = feedback_.nonzero_count();
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (it->selected.has_value()) {
      d.last_selected = it->selected;
      break;
    }
  }
  return d;
}

void ExplorationSession::BookmarkUser(data::UserId u) {
  VEXUS_CHECK(u < dataset_->num_users());
  if (std::find(memo_.users.begin(), memo_.users.end(), u) ==
      memo_.users.end()) {
    memo_.users.push_back(u);
  }
}

}  // namespace vexus::core
