// Quality measures of a k-group selection (paper §II.B):
//
//   "We consider diversity and coverage as quality objectives in VEXUS.
//    Optimizing diversity provides various analysis directions and reduces
//    redundancy in returned groups. Optimizing coverage ensures that the
//    most interesting records appear in at least one group in the output."
//
// Definitions (DESIGN.md §5):
//   diversity(S) = 1 − mean pairwise Jaccard over S   (1.0 when |S| < 2)
//   coverage(S | anchor) = |(∪ members of S) ∩ anchor| / |anchor|
//   coverage(S)          = |∪ members of S| / |U|      (no anchor: step 0)
#pragma once

#include <optional>
#include <vector>

#include "mining/group.h"

namespace vexus::core {

double Diversity(const mining::GroupStore& store,
                 const std::vector<mining::GroupId>& selection);

/// Coverage of the anchor group's members; pass nullopt for whole-universe
/// coverage (the initial exploration step).
double Coverage(const mining::GroupStore& store,
                const std::vector<mining::GroupId>& selection,
                std::optional<mining::GroupId> anchor);

/// The greedy objective: lambda·coverage + (1−lambda)·diversity.
struct QualityScore {
  double diversity = 0;
  double coverage = 0;
  double objective = 0;
};

QualityScore Evaluate(const mining::GroupStore& store,
                      const std::vector<mining::GroupId>& selection,
                      std::optional<mining::GroupId> anchor, double lambda);

}  // namespace vexus::core
