#include "core/feedback.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vexus::core {

TokenSpace::TokenSpace(const data::Dataset& dataset) : dataset_(&dataset) {
  num_users_ = static_cast<uint32_t>(dataset.num_users());
  uint32_t offset = num_users_;
  const data::Schema& schema = dataset.schema();
  attr_offsets_.reserve(schema.num_attributes());
  for (data::AttributeId a = 0; a < schema.num_attributes(); ++a) {
    attr_offsets_.push_back(offset);
    offset += static_cast<uint32_t>(schema.attribute(a).values().size());
  }
  num_tokens_ = offset;

  // Carriers per demographic value token (one column scan per attribute).
  carrier_count_.assign(num_tokens_ - num_users_, 0);
  for (data::AttributeId a = 0; a < schema.num_attributes(); ++a) {
    for (data::UserId u = 0; u < num_users_; ++u) {
      data::ValueId v = dataset.users().Value(u, a);
      if (v != data::kNullValue) {
        ++carrier_count_[attr_offsets_[a] - num_users_ + v];
      }
    }
  }
}

uint32_t TokenSpace::CarrierCount(Token t) const {
  if (IsUserToken(t)) return 0;
  VEXUS_DCHECK(t - num_users_ < carrier_count_.size());
  return carrier_count_[t - num_users_];
}

std::pair<data::AttributeId, data::ValueId> TokenSpace::DecodeValueToken(
    Token t) const {
  VEXUS_DCHECK(!IsUserToken(t));
  size_t a = attr_offsets_.size();
  while (a > 0 && attr_offsets_[a - 1] > t) --a;
  VEXUS_DCHECK(a > 0);
  --a;
  return {static_cast<data::AttributeId>(a), t - attr_offsets_[a]};
}

Token TokenSpace::ValueToken(data::AttributeId a, data::ValueId v) const {
  VEXUS_DCHECK(a < attr_offsets_.size());
  Token t = attr_offsets_[a] + v;
  VEXUS_DCHECK(t < num_tokens_);
  return t;
}

std::string TokenSpace::Label(Token t, const data::Dataset& dataset) const {
  if (IsUserToken(t)) {
    return "user:" + dataset.users().ExternalId(t);
  }
  auto [a, v] = DecodeValueToken(t);
  const data::Attribute& attr = dataset.schema().attribute(a);
  return attr.name() + "=" + attr.ValueName(v);
}

FeedbackVector::FeedbackVector(const TokenSpace* tokens) : tokens_(tokens) {
  VEXUS_CHECK(tokens != nullptr);
}

void FeedbackVector::Learn(const mining::UserGroup& g, double eta) {
  // Degenerate observations are defined as fixed points: an update that
  // carries no usable reward mass leaves the vector exactly as it was.
  // This covers
  //   * eta <= 0 or non-finite eta (a config error must not abort the
  //     process — the old VEXUS_CHECK did — and eta = +inf used to poison
  //     every score to NaN via inf/inf inside Normalize());
  //   * an empty observation (no members, no description);
  //   * an eta so small the per-token share underflows to zero — adding
  //     literal zeros would create 0-valued entries whose sum contributes
  //     nothing, and on a previously-empty vector Normalize() would face a
  //     0/0; skipping the update keeps "all-zero observation ⇒ no-op" exact.
  if (!std::isfinite(eta) || eta <= 0) return;
  // Half of the reward mass goes to the members, half to the description
  // tokens ("their common activities described in g"). An even split across
  // *all* tokens would drown the handful of demographic values under
  // hundreds of member tokens, making CONTEXT unlearning (paper §II.B /
  // Scenario 1's gender rebalance) a no-op.
  size_t n_members = g.size();
  size_t n_desc = g.description().size();
  if (n_members == 0 && n_desc == 0) return;
  double member_mass = n_desc == 0 ? eta : eta / 2;
  double desc_mass = n_members == 0 ? eta : eta / 2;
  double member_add =
      n_members > 0 ? member_mass / static_cast<double>(n_members) : 0.0;
  double desc_add =
      n_desc > 0 ? desc_mass / static_cast<double>(n_desc) : 0.0;
  if (member_add <= 0 && desc_add <= 0) return;  // underflowed to all-zero
  if (member_add > 0) {
    g.members().ForEach(
        [&](uint32_t u) { scores_[tokens_->UserToken(u)] += member_add; });
  }
  if (desc_add > 0) {
    for (const mining::Descriptor& d : g.description()) {
      scores_[tokens_->DescriptorToken(d)] += desc_add;
    }
  }
  Normalize();
}

void FeedbackVector::Unlearn(Token t) {
  auto it = scores_.find(t);
  if (it == scores_.end()) return;
  scores_.erase(it);
  Normalize();
}

void FeedbackVector::Normalize() {
  double total = 0;
  for (const auto& [t, s] : scores_) total += s;
  if (total <= 0) {
    scores_.clear();
    return;
  }
  for (auto& [t, s] : scores_) s /= total;
}

double FeedbackVector::Score(Token t) const {
  auto it = scores_.find(t);
  return it == scores_.end() ? 0.0 : it->second;
}

std::vector<double> FeedbackVector::UserWeights() const {
  size_t n = tokens_->num_users();
  // Floor such that with no feedback all users weigh equally, and a fully
  // rewarded user can weigh up to (1 + n·score)× the floor.
  double floor = 1.0 / static_cast<double>(std::max<size_t>(n, 1));
  std::vector<double> w(n, floor);
  const data::Dataset& ds = tokens_->dataset();
  for (const auto& [t, s] : scores_) {
    if (tokens_->IsUserToken(t)) {
      w[t] += s;
    } else {
      // Spread the demographic token's mass over its carriers.
      uint32_t carriers = tokens_->CarrierCount(t);
      if (carriers == 0) continue;
      auto [a, v] = tokens_->DecodeValueToken(t);
      double share = s / static_cast<double>(carriers);
      for (data::UserId u = 0; u < n; ++u) {
        if (ds.users().Value(u, a) == v) w[u] += share;
      }
    }
  }
  return w;
}

double FeedbackVector::GroupPrior(const mining::UserGroup& g,
                                  double boost) const {
  if (scores_.empty()) return 1.0;
  double sum = 0;
  // Sparse side iteration: feedback vectors hold far fewer tokens than
  // groups hold members.
  for (const auto& [t, s] : scores_) {
    if (tokens_->IsUserToken(t)) {
      if (g.ContainsUser(t)) sum += s;
    }
  }
  for (const mining::Descriptor& d : g.description()) {
    sum += Score(tokens_->DescriptorToken(d));
  }
  return 1.0 + boost * sum;
}

std::vector<FeedbackVector::TokenScore> FeedbackVector::TopTokens(
    size_t k) const {
  std::vector<TokenScore> all;
  all.reserve(scores_.size());
  for (const auto& [t, s] : scores_) all.push_back(TokenScore{t, s});
  std::sort(all.begin(), all.end(), [](const TokenScore& a,
                                       const TokenScore& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.token < b.token;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace vexus::core
