#include "core/greedy_eval.h"

#include "common/logging.h"
#include "common/shard_map.h"
#include "common/thread_pool.h"

namespace vexus::core {

SwapObjective::SwapObjective(const mining::GroupStore* store,
                             const std::vector<mining::GroupId>* pool,
                             const Bitset* anchor_members,
                             const std::vector<double>* affinity,
                             Config config, index::PairwiseSimCache* sims)
    : store_(store),
      pool_(pool),
      anchor_(anchor_members),
      affinity_(affinity),
      cfg_(config),
      sims_(sims) {
  VEXUS_CHECK(store != nullptr && pool != nullptr && affinity != nullptr &&
              sims != nullptr);
  VEXUS_DCHECK(affinity->size() == pool->size());
  cov_denom_ = anchor_ != nullptr
                   ? static_cast<double>(anchor_->Count())
                   : static_cast<double>(store_->num_users());
  if (cfg_.shards != nullptr) {
    VEXUS_CHECK(cfg_.shards->num_users() == store_->num_users())
        << "shard map universe mismatch: " << cfg_.shards->num_users()
        << " vs " << store_->num_users();
  }
}

bool SwapObjective::sharded() const {
  return cfg_.shards != nullptr && cfg_.shards->num_shards() > 1;
}

void SwapObjective::Reset(const std::vector<size_t>& selected) {
  if (selected.size() != selected_.size()) {
    // k changed: the dense row matrix is keyed by column position.
    simrow_.assign(pool_->size() * selected.size(), 0.0f);
    simrow_owner_.assign(selected.size(), SIZE_MAX);
  }
  // Pre-mask every candidate by the anchor once per binding: a trial's
  // coverage pass then reads TWO bitsets (masked candidate, rest) instead
  // of three. The mask pays |pool| AND-passes up front and each candidate
  // is typically trialed k times per pass, so it amortizes within the
  // first pass. (Universe coverage needs no mask — CountAndNot already
  // reads just two operands.)
  if (anchor_ != nullptr && cand_anchor_.size() != pool_->size()) {
    cand_anchor_.resize(pool_->size());
    for (size_t c = 0; c < pool_->size(); ++c) {
      cand_anchor_[c] = store_->group((*pool_)[c]).members().AndWith(*anchor_);
    }
  }
  selected_ = selected;
  Rebuild();
}

void SwapObjective::ApplySwap(size_t pos, size_t cand) {
  VEXUS_DCHECK(pos < selected_.size());
  VEXUS_DCHECK(cand < pool_->size());
  selected_[pos] = cand;
  Rebuild();
}

void SwapObjective::Rebuild() {
  const size_t k = selected_.size();
  const size_t n_users = store_->num_users();
  auto members = [&](size_t pool_idx) -> const HybridBitset& {
    return store_->group((*pool_)[pool_idx]).members();
  };

  // ---- Coverage: prefix/suffix union tables → rest(pos). O(k·U/64). ----
  prefix_.resize(k + 1);
  suffix_.resize(k + 1);
  rest_.resize(k);
  rest_count_.resize(k);
  size_t covered = 0;
  if (sharded()) {
    // Scatter-gather rebuild: each shard builds its own word range of
    // every table (prefix, suffix, rest) and reports integer partials; the
    // fold below sums them in shard order. Word-aligned disjoint ranges
    // make the parallel writes race-free and the partial sums exactly
    // equal to the unsharded counts — byte-identical objective either way.
    const ShardMap& map = *cfg_.shards;
    const size_t num_shards = map.num_shards();
    // Serial prologue: size every table once so the scattered range
    // writes never reallocate.
    for (size_t i = 0; i <= k; ++i) {
      prefix_[i].Resize(n_users);
      suffix_[i].Resize(n_users);
    }
    for (size_t pos = 0; pos < k; ++pos) rest_[pos].Resize(n_users);
    prefix_[0].ClearAll();
    suffix_[k].ClearAll();
    std::vector<size_t> rest_part(num_shards * k, 0);
    std::vector<size_t> cov_part(num_shards, 0);
    auto build_shard = [&](size_t s) {
      const ShardMap::Range& r = map.shard(s);
      for (size_t i = 0; i < k; ++i) {
        members(selected_[i])
            .UnionIntoRange(prefix_[i], &prefix_[i + 1], r.word_begin,
                            r.word_end);
      }
      for (size_t i = k; i-- > 0;) {
        members(selected_[i])
            .UnionIntoRange(suffix_[i + 1], &suffix_[i], r.word_begin,
                            r.word_end);
      }
      for (size_t pos = 0; pos < k; ++pos) {
        rest_part[s * k + pos] =
            anchor_ != nullptr
                ? rest_[pos].AssignUnionMaskedCountRange(
                      prefix_[pos], suffix_[pos + 1], *anchor_, r.word_begin,
                      r.word_end)
                : rest_[pos].AssignUnionCountRange(
                      prefix_[pos], suffix_[pos + 1], r.word_begin,
                      r.word_end);
      }
      cov_part[s] = anchor_ != nullptr
                        ? prefix_[k].IntersectCountRange(*anchor_,
                                                         r.word_begin,
                                                         r.word_end)
                        : prefix_[k].CountRange(r.word_begin, r.word_end);
    };
    if (cfg_.scatter_pool != nullptr) {
      cfg_.scatter_pool->ParallelForChunked(
          num_shards, 1, [&](size_t, size_t begin, size_t end) {
            for (size_t s = begin; s < end; ++s) build_shard(s);
          });
    } else {
      for (size_t s = 0; s < num_shards; ++s) build_shard(s);
    }
    for (size_t pos = 0; pos < k; ++pos) {
      size_t total = 0;
      for (size_t s = 0; s < num_shards; ++s) total += rest_part[s * k + pos];
      rest_count_[pos] = total;
    }
    for (size_t s = 0; s < num_shards; ++s) covered += cov_part[s];
    rebuild_partials_ += k + 1;
  } else {
    prefix_[0].Resize(n_users);
    prefix_[0].ClearAll();
    for (size_t i = 0; i < k; ++i) {
      members(selected_[i]).UnionInto(prefix_[i], &prefix_[i + 1]);
    }
    suffix_[k].Resize(n_users);
    suffix_[k].ClearAll();
    for (size_t i = k; i-- > 0;) {
      members(selected_[i]).UnionInto(suffix_[i + 1], &suffix_[i]);
    }
    for (size_t pos = 0; pos < k; ++pos) {
      // Union, anchor mask, and popcount fused into one kernel sweep
      // (three passes before the fused OrAndCountInto/OrCountInto kernels).
      rest_count_[pos] =
          anchor_ != nullptr
              ? rest_[pos].AssignUnionMaskedCount(prefix_[pos],
                                                  suffix_[pos + 1], *anchor_)
              : rest_[pos].AssignUnionCount(prefix_[pos], suffix_[pos + 1]);
    }
    covered = anchor_ != nullptr ? prefix_[k].IntersectCount(*anchor_)
                                 : prefix_[k].Count();
  }

  // ---- Diversity rows: refill only columns whose member changed. ----
  for (size_t j = 0; j < k; ++j) {
    if (simrow_owner_[j] == selected_[j]) continue;
    for (size_t c = 0; c < pool_->size(); ++c) {
      simrow_[c * k + j] = sims_->Sim(c, selected_[j]);
    }
    simrow_owner_[j] = selected_[j];
  }
  candrow_total_.assign(pool_->size(), 0.0);
  for (size_t c = 0; c < pool_->size(); ++c) {
    double t = 0;
    for (size_t j = 0; j < k; ++j) t += simrow_[c * k + j];
    candrow_total_[c] = t;
  }
  selrow_sum_.assign(k, 0.0);
  sim_sum_ = 0;
  for (size_t i = 0; i < k; ++i) {
    double row = 0;
    for (size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      row += simrow_[selected_[i] * k + j];
    }
    selrow_sum_[i] = row;
    for (size_t j = i + 1; j < k; ++j) {
      sim_sum_ += simrow_[selected_[i] * k + j];
    }
  }

  // ---- Affinity + composed objective. ----
  aff_sum_ = 0;
  for (size_t i : selected_) aff_sum_ += (*affinity_)[i];

  double cov =
      cov_denom_ == 0 ? 0.0 : static_cast<double>(covered) / cov_denom_;
  double div = 1.0;
  if (k >= 2) {
    div = 1.0 - sim_sum_ / (static_cast<double>(k) * (k - 1) / 2);
  }
  double aff = k == 0 ? 0.0 : aff_sum_ / static_cast<double>(k);
  current_ =
      cfg_.lambda * cov + (1 - cfg_.lambda) * div + cfg_.feedback_weight * aff;
}

double SwapObjective::Trial(size_t pos, size_t cand) const {
  // Coverage: what the candidate newly covers beyond rest(pos). One
  // word-parallel pass over two operands (the candidate side is pre-masked
  // by the anchor at Reset time).
  size_t newly =
      anchor_ != nullptr
          ? cand_anchor_[cand].CountAndNot(rest_[pos])
          : store_->group((*pool_)[cand]).members().CountAndNot(rest_[pos]);
  return TrialFromCovered(pos, cand, newly);
}

uint32_t SwapObjective::TrialCoveragePartial(size_t pos, size_t cand,
                                             size_t shard) const {
  VEXUS_DCHECK(cfg_.shards != nullptr && shard < cfg_.shards->num_shards());
  const ShardMap::Range& r = cfg_.shards->shard(shard);
  size_t newly =
      anchor_ != nullptr
          ? cand_anchor_[cand].CountAndNotRange(rest_[pos], r.word_begin,
                                                r.word_end)
          : store_->group((*pool_)[cand])
                .members()
                .CountAndNotRange(rest_[pos], r.word_begin, r.word_end);
  return static_cast<uint32_t>(newly);
}

double SwapObjective::TrialFromCovered(size_t pos, size_t cand,
                                       size_t newly_covered) const {
  const size_t k = selected_.size();
  VEXUS_DCHECK(pos < k);
  VEXUS_DCHECK(cand < pool_->size());
  size_t covered = rest_count_[pos] + newly_covered;
  double cov =
      cov_denom_ == 0 ? 0.0 : static_cast<double>(covered) / cov_denom_;

  // Diversity: O(1) from the row sums.
  double div = 1.0;
  if (k >= 2) {
    double cand_row = candrow_total_[cand] - simrow_[cand * k + pos];
    double sim_sum = sim_sum_ - selrow_sum_[pos] + cand_row;
    div = 1.0 - sim_sum / (static_cast<double>(k) * (k - 1) / 2);
  }

  // Affinity: O(1).
  double aff = (aff_sum_ - (*affinity_)[selected_[pos]] +
                (*affinity_)[cand]) /
               static_cast<double>(k);

  return cfg_.lambda * cov + (1 - cfg_.lambda) * div +
         cfg_.feedback_weight * aff;
}

double SwapObjective::EvaluateScratch(const std::vector<size_t>& sel) {
  const size_t n_users = store_->num_users();
  // Coverage (full union rebuild — the pre-incremental hot path).
  scratch_covered_.Resize(n_users);
  scratch_covered_.ClearAll();
  for (size_t i : sel) {
    scratch_covered_ |= store_->group((*pool_)[i]).members();
  }
  double cov =
      cov_denom_ == 0
          ? 0.0
          : (anchor_ != nullptr
                 ? static_cast<double>(
                       scratch_covered_.IntersectCount(*anchor_)) /
                       cov_denom_
                 : static_cast<double>(scratch_covered_.Count()) / cov_denom_);
  // Diversity (O(k²) pair sum).
  double div = 1.0;
  if (sel.size() >= 2) {
    double sim_sum = 0;
    for (size_t i = 0; i < sel.size(); ++i) {
      for (size_t j = i + 1; j < sel.size(); ++j) {
        sim_sum += sims_->Sim(sel[i], sel[j]);
      }
    }
    div = 1.0 -
          sim_sum / (static_cast<double>(sel.size()) * (sel.size() - 1) / 2);
  }
  // Affinity.
  double aff = 0;
  for (size_t i : sel) aff += (*affinity_)[i];
  aff /= static_cast<double>(sel.size());

  return cfg_.lambda * cov + (1 - cfg_.lambda) * div +
         cfg_.feedback_weight * aff;
}

}  // namespace vexus::core
