#include "core/greedy_eval.h"

#include "common/logging.h"

namespace vexus::core {

SwapObjective::SwapObjective(const mining::GroupStore* store,
                             const std::vector<mining::GroupId>* pool,
                             const Bitset* anchor_members,
                             const std::vector<double>* affinity,
                             Config config, index::PairwiseSimCache* sims)
    : store_(store),
      pool_(pool),
      anchor_(anchor_members),
      affinity_(affinity),
      cfg_(config),
      sims_(sims) {
  VEXUS_CHECK(store != nullptr && pool != nullptr && affinity != nullptr &&
              sims != nullptr);
  VEXUS_DCHECK(affinity->size() == pool->size());
  cov_denom_ = anchor_ != nullptr
                   ? static_cast<double>(anchor_->Count())
                   : static_cast<double>(store_->num_users());
}

void SwapObjective::Reset(const std::vector<size_t>& selected) {
  if (selected.size() != selected_.size()) {
    // k changed: the dense row matrix is keyed by column position.
    simrow_.assign(pool_->size() * selected.size(), 0.0f);
    simrow_owner_.assign(selected.size(), SIZE_MAX);
  }
  // Pre-mask every candidate by the anchor once per binding: a trial's
  // coverage pass then reads TWO bitsets (masked candidate, rest) instead
  // of three. The mask pays |pool| AND-passes up front and each candidate
  // is typically trialed k times per pass, so it amortizes within the
  // first pass. (Universe coverage needs no mask — CountAndNot already
  // reads just two operands.)
  if (anchor_ != nullptr && cand_anchor_.size() != pool_->size()) {
    cand_anchor_.resize(pool_->size());
    for (size_t c = 0; c < pool_->size(); ++c) {
      cand_anchor_[c] = store_->group((*pool_)[c]).members().AndWith(*anchor_);
    }
  }
  selected_ = selected;
  Rebuild();
}

void SwapObjective::ApplySwap(size_t pos, size_t cand) {
  VEXUS_DCHECK(pos < selected_.size());
  VEXUS_DCHECK(cand < pool_->size());
  selected_[pos] = cand;
  Rebuild();
}

void SwapObjective::Rebuild() {
  const size_t k = selected_.size();
  const size_t n_users = store_->num_users();
  auto members = [&](size_t pool_idx) -> const HybridBitset& {
    return store_->group((*pool_)[pool_idx]).members();
  };

  // ---- Coverage: prefix/suffix union tables → rest(pos). O(k·U/64). ----
  prefix_.resize(k + 1);
  suffix_.resize(k + 1);
  prefix_[0].Resize(n_users);
  prefix_[0].ClearAll();
  for (size_t i = 0; i < k; ++i) {
    members(selected_[i]).UnionInto(prefix_[i], &prefix_[i + 1]);
  }
  suffix_[k].Resize(n_users);
  suffix_[k].ClearAll();
  for (size_t i = k; i-- > 0;) {
    members(selected_[i]).UnionInto(suffix_[i + 1], &suffix_[i]);
  }
  rest_.resize(k);
  rest_count_.resize(k);
  for (size_t pos = 0; pos < k; ++pos) {
    // Union, anchor mask, and popcount fused into one kernel sweep
    // (three passes before the fused OrAndCountInto/OrCountInto kernels).
    rest_count_[pos] =
        anchor_ != nullptr
            ? rest_[pos].AssignUnionMaskedCount(prefix_[pos], suffix_[pos + 1],
                                                *anchor_)
            : rest_[pos].AssignUnionCount(prefix_[pos], suffix_[pos + 1]);
  }
  size_t covered = anchor_ != nullptr ? prefix_[k].IntersectCount(*anchor_)
                                      : prefix_[k].Count();

  // ---- Diversity rows: refill only columns whose member changed. ----
  for (size_t j = 0; j < k; ++j) {
    if (simrow_owner_[j] == selected_[j]) continue;
    for (size_t c = 0; c < pool_->size(); ++c) {
      simrow_[c * k + j] = sims_->Sim(c, selected_[j]);
    }
    simrow_owner_[j] = selected_[j];
  }
  candrow_total_.assign(pool_->size(), 0.0);
  for (size_t c = 0; c < pool_->size(); ++c) {
    double t = 0;
    for (size_t j = 0; j < k; ++j) t += simrow_[c * k + j];
    candrow_total_[c] = t;
  }
  selrow_sum_.assign(k, 0.0);
  sim_sum_ = 0;
  for (size_t i = 0; i < k; ++i) {
    double row = 0;
    for (size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      row += simrow_[selected_[i] * k + j];
    }
    selrow_sum_[i] = row;
    for (size_t j = i + 1; j < k; ++j) {
      sim_sum_ += simrow_[selected_[i] * k + j];
    }
  }

  // ---- Affinity + composed objective. ----
  aff_sum_ = 0;
  for (size_t i : selected_) aff_sum_ += (*affinity_)[i];

  double cov =
      cov_denom_ == 0 ? 0.0 : static_cast<double>(covered) / cov_denom_;
  double div = 1.0;
  if (k >= 2) {
    div = 1.0 - sim_sum_ / (static_cast<double>(k) * (k - 1) / 2);
  }
  double aff = k == 0 ? 0.0 : aff_sum_ / static_cast<double>(k);
  current_ =
      cfg_.lambda * cov + (1 - cfg_.lambda) * div + cfg_.feedback_weight * aff;
}

double SwapObjective::Trial(size_t pos, size_t cand) const {
  const size_t k = selected_.size();
  VEXUS_DCHECK(pos < k);
  VEXUS_DCHECK(cand < pool_->size());
  // Coverage: what the rest keeps + what the candidate newly covers. One
  // word-parallel pass over two operands (the candidate side is pre-masked
  // by the anchor at Reset time).
  size_t covered =
      rest_count_[pos] +
      (anchor_ != nullptr
           ? cand_anchor_[cand].CountAndNot(rest_[pos])
           : store_->group((*pool_)[cand]).members().CountAndNot(rest_[pos]));
  double cov =
      cov_denom_ == 0 ? 0.0 : static_cast<double>(covered) / cov_denom_;

  // Diversity: O(1) from the row sums.
  double div = 1.0;
  if (k >= 2) {
    double cand_row = candrow_total_[cand] - simrow_[cand * k + pos];
    double sim_sum = sim_sum_ - selrow_sum_[pos] + cand_row;
    div = 1.0 - sim_sum / (static_cast<double>(k) * (k - 1) / 2);
  }

  // Affinity: O(1).
  double aff = (aff_sum_ - (*affinity_)[selected_[pos]] +
                (*affinity_)[cand]) /
               static_cast<double>(k);

  return cfg_.lambda * cov + (1 - cfg_.lambda) * div +
         cfg_.feedback_weight * aff;
}

double SwapObjective::EvaluateScratch(const std::vector<size_t>& sel) {
  const size_t n_users = store_->num_users();
  // Coverage (full union rebuild — the pre-incremental hot path).
  scratch_covered_.Resize(n_users);
  scratch_covered_.ClearAll();
  for (size_t i : sel) {
    scratch_covered_ |= store_->group((*pool_)[i]).members();
  }
  double cov =
      cov_denom_ == 0
          ? 0.0
          : (anchor_ != nullptr
                 ? static_cast<double>(
                       scratch_covered_.IntersectCount(*anchor_)) /
                       cov_denom_
                 : static_cast<double>(scratch_covered_.Count()) / cov_denom_);
  // Diversity (O(k²) pair sum).
  double div = 1.0;
  if (sel.size() >= 2) {
    double sim_sum = 0;
    for (size_t i = 0; i < sel.size(); ++i) {
      for (size_t j = i + 1; j < sel.size(); ++j) {
        sim_sum += sims_->Sim(sel[i], sel[j]);
      }
    }
    div = 1.0 -
          sim_sum / (static_cast<double>(sel.size()) * (sel.size() - 1) / 2);
  }
  // Affinity.
  double aff = 0;
  for (size_t i : sel) aff += (*affinity_)[i];
  aff /= static_cast<double>(sel.size());

  return cfg_.lambda * cov + (1 - cfg_.lambda) * div +
         cfg_.feedback_weight * aff;
}

}  // namespace vexus::core
