#include "core/engine.h"

#include <sstream>

#include "common/shard_map.h"
#include "common/string_util.h"
#include "core/snapshot.h"

namespace vexus::core {

Result<VexusEngine> VexusEngine::Preprocess(
    data::Dataset dataset, const mining::DiscoveryOptions& discovery_options,
    const index::InvertedIndex::Options& index_options,
    const TraceSpan* span) {
  VEXUS_RETURN_NOT_OK(dataset.Validate().WithContext("dataset validation"));

  VexusEngine engine;
  engine.dataset_ =
      std::make_unique<data::Dataset>(std::move(dataset));

  {
    TraceSpan discover =
        span != nullptr ? span->Child("discover") : TraceSpan();
    VEXUS_ASSIGN_OR_RETURN(
        mining::DiscoveryResult discovery,
        mining::DiscoverGroups(*engine.dataset_, discovery_options));
    if (discovery.groups.size() == 0) {
      return Status::FailedPrecondition(
          "group discovery produced no groups; lower min_support_fraction");
    }
    discover.AddCount(discovery.groups.size());
    engine.discovery_ =
        std::make_unique<mining::DiscoveryResult>(std::move(discovery));
  }

  {
    TraceSpan index = span != nullptr ? span->Child("index") : TraceSpan();
    VEXUS_ASSIGN_OR_RETURN(
        index::InvertedIndex idx,
        index::InvertedIndex::Build(engine.discovery_->groups, index_options));
    index.AddCount(idx.build_stats().postings);
    engine.index_ = std::make_unique<index::InvertedIndex>(std::move(idx));
  }

  {
    TraceSpan graph = span != nullptr ? span->Child("graph") : TraceSpan();
    engine.graph_ = std::make_unique<index::GroupGraph>(
        index::GroupGraph::FromIndex(*engine.index_));
  }
  return engine;
}

Result<VexusEngine> VexusEngine::FromSnapshot(data::Dataset* dataset,
                                              const std::string& path,
                                              const TraceSpan* span) {
  VEXUS_CHECK(dataset != nullptr);
  VEXUS_RETURN_NOT_OK(dataset->Validate().WithContext("dataset validation"));

  VEXUS_ASSIGN_OR_RETURN(Snapshot snap, LoadSnapshot(path, span));
  if (snap.groups.num_users() != dataset->num_users()) {
    return Status::FailedPrecondition(
        "snapshot user universe does not match the dataset: snapshot has " +
        std::to_string(snap.groups.num_users()) + " users, dataset has " +
        std::to_string(dataset->num_users()));
  }
  // The snapshot's structural integrity is already checksum-verified; what
  // remains is cross-validation against *this* dataset — a snapshot from a
  // different schema would otherwise produce descriptions that index out of
  // range when rendered.
  const data::Schema& schema = dataset->schema();
  for (mining::GroupId g = 0; g < snap.groups.size(); ++g) {
    for (const mining::Descriptor& d : snap.groups.group(g).description()) {
      if (d.attribute >= schema.num_attributes()) {
        return Status::FailedPrecondition(
            "snapshot description references attribute " +
            std::to_string(d.attribute) + " but the dataset schema has " +
            std::to_string(schema.num_attributes()) + " attributes");
      }
      const data::Attribute& attr = schema.attribute(d.attribute);
      if (attr.kind() != data::AttributeKind::kNumeric &&
          d.value >= attr.values().size()) {
        return Status::FailedPrecondition(
            "snapshot description references value " +
            std::to_string(d.value) + " of attribute '" + attr.name() +
            "' which has only " + std::to_string(attr.values().size()) +
            " values");
      }
    }
  }

  // Everything fallible is behind us — consuming the dataset is now safe.
  VexusEngine engine;
  engine.dataset_ = std::make_unique<data::Dataset>(std::move(*dataset));

  // The catalog is derived data (attribute=value bitmaps over the dataset);
  // rebuilding it is linear and keeps the snapshot format independent of
  // catalog internals.
  mining::DescriptorCatalog catalog =
      mining::DescriptorCatalog::Build(*engine.dataset_, /*attributes=*/{},
                                       /*min_count=*/1);
  engine.discovery_ = std::make_unique<mining::DiscoveryResult>(
      std::move(snap.groups), std::move(catalog));
  engine.index_ =
      std::make_unique<index::InvertedIndex>(std::move(snap.index));

  {
    TraceSpan graph = span != nullptr ? span->Child("graph") : TraceSpan();
    engine.graph_ = std::make_unique<index::GroupGraph>(
        index::GroupGraph::FromIndex(*engine.index_));
  }
  return engine;
}

std::optional<mining::GroupId> VexusEngine::RootGroup() const {
  const mining::GroupStore& store = discovery_->groups;
  for (mining::GroupId g = 0; g < store.size(); ++g) {
    if (store.group(g).description().empty() &&
        store.group(g).size() == store.num_users()) {
      return g;
    }
  }
  return std::nullopt;
}

void VexusEngine::ConfigureSharding(size_t num_shards) {
  if (num_shards <= 1) {
    shard_map_.reset();
    return;
  }
  shard_map_ = std::make_unique<ShardMap>(discovery_->groups.num_users(),
                                          num_shards);
  // A universe with a single bitset word clamps to one shard — identical to
  // unsharded, so drop the map rather than carry a degenerate one.
  if (shard_map_->num_shards() <= 1) shard_map_.reset();
}

std::unique_ptr<ExplorationSession> VexusEngine::CreateSession(
    SessionOptions options) const {
  if (options.greedy.shard_map == nullptr) {
    options.greedy.shard_map = shard_map_.get();
  }
  return std::make_unique<ExplorationSession>(
      dataset_.get(), &discovery_->groups, index_.get(), options);
}

std::string VexusEngine::Summary() const {
  std::ostringstream os;
  os << "VEXUS[" << dataset_->Summary() << "]\n"
     << "  groups: " << WithThousands(discovery_->groups.size())
     << " (discovery " << FormatDouble(discovery_->elapsed_ms, 1) << " ms)\n"
     << "  index: " << WithThousands(index_->build_stats().postings)
     << " postings, " << WithThousands(index_->build_stats().memory_bytes)
     << " bytes (build " << FormatDouble(index_->build_stats().elapsed_ms, 1)
     << " ms)\n"
     << "  graph: " << graph_->Summary();
  return os.str();
}

}  // namespace vexus::core
