#include "core/engine.h"

#include <sstream>

#include "common/string_util.h"

namespace vexus::core {

Result<VexusEngine> VexusEngine::Preprocess(
    data::Dataset dataset, const mining::DiscoveryOptions& discovery_options,
    const index::InvertedIndex::Options& index_options) {
  VEXUS_RETURN_NOT_OK(dataset.Validate().WithContext("dataset validation"));

  VexusEngine engine;
  engine.dataset_ =
      std::make_unique<data::Dataset>(std::move(dataset));

  VEXUS_ASSIGN_OR_RETURN(
      mining::DiscoveryResult discovery,
      mining::DiscoverGroups(*engine.dataset_, discovery_options));
  if (discovery.groups.size() == 0) {
    return Status::FailedPrecondition(
        "group discovery produced no groups; lower min_support_fraction");
  }
  engine.discovery_ =
      std::make_unique<mining::DiscoveryResult>(std::move(discovery));

  VEXUS_ASSIGN_OR_RETURN(
      index::InvertedIndex idx,
      index::InvertedIndex::Build(engine.discovery_->groups, index_options));
  engine.index_ = std::make_unique<index::InvertedIndex>(std::move(idx));

  engine.graph_ = std::make_unique<index::GroupGraph>(
      index::GroupGraph::FromIndex(*engine.index_));
  return engine;
}

std::optional<mining::GroupId> VexusEngine::RootGroup() const {
  const mining::GroupStore& store = discovery_->groups;
  for (mining::GroupId g = 0; g < store.size(); ++g) {
    if (store.group(g).description().empty() &&
        store.group(g).size() == store.num_users()) {
      return g;
    }
  }
  return std::nullopt;
}

std::unique_ptr<ExplorationSession> VexusEngine::CreateSession(
    SessionOptions options) const {
  return std::make_unique<ExplorationSession>(
      dataset_.get(), &discovery_->groups, index_.get(), options);
}

std::string VexusEngine::Summary() const {
  std::ostringstream os;
  os << "VEXUS[" << dataset_->Summary() << "]\n"
     << "  groups: " << WithThousands(discovery_->groups.size())
     << " (discovery " << FormatDouble(discovery_->elapsed_ms, 1) << " ms)\n"
     << "  index: " << WithThousands(index_->build_stats().postings)
     << " postings, " << WithThousands(index_->build_stats().memory_bytes)
     << " bytes (build " << FormatDouble(index_->build_stats().elapsed_ms, 1)
     << " ms)\n"
     << "  graph: " << graph_->Summary();
  return os.str();
}

}  // namespace vexus::core
