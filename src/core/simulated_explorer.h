// Simulated explorers — the experiment drivers substituting the paper's
// human explorers (DESIGN.md §1).
//
// Two task shapes from §III:
//   * MT (multi-target) — "identify several users of interest while
//     exploring user groups", e.g. the PC chair collecting a gender/
//     geography-balanced committee (Scenario 1, experiment E4). The policy
//     clicks the shown group with the most still-needed target users,
//     bookmarks targets encountered in small-enough groups, and backtracks
//     when a step yields nothing.
//   * ST (single-target) — "reach a single group of interest" (Scenario 2,
//     experiment E5). The policy clicks the shown group most similar to the
//     hidden target group and stops on near-identity.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitset.h"
#include "common/hybrid_bitset.h"
#include "core/session.h"
#include "mining/group.h"

namespace vexus::core {

/// Outcome of a simulated session.
struct ExplorationOutcome {
  size_t iterations = 0;      // SelectGroup calls
  size_t backtracks = 0;
  bool reached_goal = false;
  /// MT: fraction of targets collected in MEMO. ST: Jaccard of the final
  /// group to the hidden target.
  double goal_quality = 0;
  double total_latency_ms = 0;  // sum of recommendation latencies
  std::vector<mining::GroupId> final_groups;  // last shown screen
};

class SimulatedExplorer {
 public:
  struct Options {
    size_t max_iterations = 30;
    /// MT: stop after collecting this many target users (0 = all of them).
    size_t mt_quota = 0;
    /// MT: a target member is "found" (bookmarkable) when it appears in a
    /// shown group of at most this size — the drill-down-to-inspectable
    /// granularity of the paper's STATS/Focus workflow.
    size_t mt_inspectable_size = 50;
    /// ST: stop when the clicked group reaches this Jaccard to the target.
    double st_success_similarity = 0.8;
    /// ST: disable the explorer's own visited-set memory. A memoryless
    /// max-similarity policy cycles among the same large groups unless the
    /// *system's* feedback learning shifts the screens — this is the
    /// configuration that isolates feedback's contribution (ablation D3;
    /// the paper's "distinguish an interactive process from a random
    /// walk").
    bool memoryless = false;
  };

  explicit SimulatedExplorer(Options options) : options_(options) {}

  /// Runs an MT session: collect the users of `targets` (a bitset over the
  /// universe). The session must be fresh (Start() is called here).
  ExplorationOutcome RunMultiTarget(ExplorationSession* session,
                                    const Bitset& targets) const;
  ExplorationOutcome RunMultiTarget(ExplorationSession* session,
                                    const HybridBitset& targets) const {
    return RunMultiTarget(session, targets.ToBitset());
  }

  /// Runs an ST session toward a hidden target member set.
  ExplorationOutcome RunSingleTarget(ExplorationSession* session,
                                     const Bitset& target_members) const;
  ExplorationOutcome RunSingleTarget(ExplorationSession* session,
                                     const HybridBitset& target_members) const {
    return RunSingleTarget(session, target_members.ToBitset());
  }

 private:
  Options options_;
};

}  // namespace vexus::core
