// VexusEngine — the system facade wiring Fig. 1's offline pipeline (group
// discovery → index generation) to the interactive components. Typical use:
//
//   auto dataset = data::BookCrossingGenerator::Generate({});
//   VEXUS_ASSIGN_OR_RETURN(auto engine,
//                          core::VexusEngine::Preprocess(std::move(dataset),
//                                                        {}, {}));
//   auto session = engine.CreateSession({});
//   session->Start();
//   session->SelectGroup(...);
#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "common/shard_map.h"
#include "common/trace.h"
#include "core/session.h"
#include "data/dataset.h"
#include "index/group_graph.h"
#include "index/inverted_index.h"
#include "mining/discovery.h"

namespace vexus::core {

class VexusEngine {
 public:
  /// Runs the full offline pipeline: group discovery over the dataset, then
  /// inverted-index construction, then the overlap graph. Takes ownership of
  /// the dataset (sessions reference it). `span`, when non-null, gets
  /// "discover" / "index" / "graph" children (counts: groups, postings).
  static Result<VexusEngine> Preprocess(
      data::Dataset dataset,
      const mining::DiscoveryOptions& discovery_options = {},
      const index::InvertedIndex::Options& index_options = {},
      const TraceSpan* span = nullptr);

  /// Restores an engine from a snapshot written by core::SaveSnapshot,
  /// skipping discovery and index construction entirely — the serving
  /// layer's cold-start path. The dataset must be the one the snapshot was
  /// preprocessed from: the user universe size is checked, and every stored
  /// description is validated against the dataset schema (FailedPrecondition
  /// on mismatch). `*dataset` is consumed only on success — on any error it
  /// is left intact, so a cold service can retry with a different snapshot
  /// path (Dataset is move-only; a by-value parameter would destroy it on
  /// the error path). The descriptor catalog is rebuilt from the dataset —
  /// it is derived data, linear in |U|, and not worth persisting. `span`,
  /// when non-null, gets a "load" child from LoadSnapshot plus a "graph"
  /// child for the overlap-graph rebuild.
  static Result<VexusEngine> FromSnapshot(data::Dataset* dataset,
                                          const std::string& path,
                                          const TraceSpan* span = nullptr);

  VexusEngine(VexusEngine&&) = default;
  VexusEngine& operator=(VexusEngine&&) = default;

  const data::Dataset& dataset() const { return *dataset_; }
  const mining::GroupStore& groups() const { return discovery_->groups; }
  const mining::DescriptorCatalog& catalog() const {
    return discovery_->catalog;
  }
  const index::InvertedIndex& index() const { return *index_; }
  const index::GroupGraph& graph() const { return *graph_; }
  const mining::DiscoveryResult& discovery() const { return *discovery_; }

  /// Id of the root group (empty description, all users) if discovery
  /// emitted one; used as a neutral exploration start.
  std::optional<mining::GroupId> RootGroup() const;

  /// Builds (or tears down, for num_shards <= 1) the engine's horizontal
  /// shard map over the user universe (common/shard_map.h; ROADMAP item 2).
  /// Sessions created afterwards run the scatter-gather greedy across the
  /// map unless their options already carry one. The count clamps to the
  /// universe's bitset-word count; selections are byte-identical for every
  /// shard count, so this is a throughput knob, never a results knob.
  void ConfigureSharding(size_t num_shards);

  /// The configured shard map, or nullptr when unsharded.
  const ShardMap* shard_map() const { return shard_map_.get(); }

  /// A fresh interactive session over the preprocessed structures. The
  /// engine must outlive its sessions. A configured shard map (see
  /// ConfigureSharding) is injected into the session's greedy options when
  /// they do not already name one.
  std::unique_ptr<ExplorationSession> CreateSession(
      SessionOptions options = {}) const;

  /// Pre-processing summary: groups, index postings, graph shape, timings.
  std::string Summary() const;

 private:
  VexusEngine() = default;

  std::unique_ptr<data::Dataset> dataset_;
  std::unique_ptr<mining::DiscoveryResult> discovery_;
  std::unique_ptr<index::InvertedIndex> index_;
  std::unique_ptr<index::GroupGraph> graph_;
  std::unique_ptr<ShardMap> shard_map_;  // null while unsharded
};

}  // namespace vexus::core
