// SwapObjective — incremental (delta) evaluation of the greedy objective
//
//     f(S) = λ·coverage(S|anchor) + (1−λ)·diversity(S) + μ·affinity(S)
//
// for the anytime best-improving swap loop (paper §II.B: the greedy is "the
// bottleneck of the framework"; every cycle saved per trial swap buys more
// refinement passes inside the 100 ms continuity budget, hence higher
// coverage/diversity at the same deadline — experiment E1).
//
// The from-scratch evaluator costs O(k·U/64 + k²) per *trial*: it rebuilds
// the full coverage union over all users and re-sums the pairwise diversity
// term. This class makes a trial swap (replace S[pos] by candidate c) cost
//
//     one word-parallel bitset pass  (|c ∩ anchor ∩ ¬rest(pos)|)  +  O(1)
//
// by maintaining, per *pass* (i.e. once per applied swap, not per trial):
//
//   · rest(pos)        = anchor-masked union of the selection minus slot
//                        `pos`, built from prefix/suffix union tables in
//                        O(k·U/64) with Bitset::AssignUnion /
//                        IntersectCountInto (no temporaries);
//   · rest_count(pos)  = |rest(pos)| — the coverage a trial at `pos` keeps;
//   · simrow[c][j]     = Jaccard(c, S[j]) — a dense candidate×selected
//                        similarity row matrix filled through the memoized
//                        PairwiseSimCache (only columns whose selected
//                        member changed are refilled);
//   · candrow_total[c] = Σ_j simrow[c][j] and selrow_sum[pos], so the
//                        diversity delta of a trial is O(1) float math;
//   · aff_sum          = Σ affinity(S) for an O(1) affinity delta.
//
// Threading contract: Reset/ApplySwap mutate and must run on the owning
// thread; Trial() is a pure read of pass-frozen state and is safe to call
// concurrently from the sharded candidate scan.
//
// EvaluateScratch() keeps the pre-incremental evaluator alive verbatim — it
// is the oracle the delta path is tested against (|Δ| ≤ 1e-9 over random
// swap sequences) and the baseline bench_greedy_incremental measures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "common/hybrid_bitset.h"
#include "index/similarity.h"
#include "mining/group.h"

namespace vexus {
class ShardMap;
class ThreadPool;
}  // namespace vexus

namespace vexus::core {

class SwapObjective {
 public:
  struct Config {
    /// Coverage weight λ (1−λ weighs diversity).
    double lambda = 0.5;
    /// μ: weight of the feedback-affinity term.
    double feedback_weight = 0.2;
    /// Optional horizontal partition of the user universe
    /// (common/shard_map.h; must span store->num_users()). Non-null with
    /// num_shards() > 1 turns on scatter-gather coverage: per-pass rebuilds
    /// scatter one task per shard over disjoint word ranges, and the
    /// sharded scan scores trials from per-shard partials
    /// (TrialCoveragePartial / TrialFromCovered). Every partial is an
    /// exact integer over a word-aligned subrange, so folding partials in
    /// shard order reproduces the unsharded integers — and therefore the
    /// unsharded objective doubles — bit for bit.
    const ShardMap* shards = nullptr;
    /// Pool the per-pass rebuild scatters over; null runs the shard loop
    /// serially (same integers either way). Safe to point at a shared
    /// pool — ParallelForChunked has the caller participate.
    ThreadPool* scatter_pool = nullptr;
  };

  /// All pointers must outlive the evaluator. `anchor_members` is null for
  /// the initial screen (coverage over the whole universe). `affinity` is
  /// indexed by pool position. `sims` is shared with the caller so pair
  /// similarities memoized here are reusable (and vice versa).
  SwapObjective(const mining::GroupStore* store,
                const std::vector<mining::GroupId>* pool,
                const Bitset* anchor_members,
                const std::vector<double>* affinity, Config config,
                index::PairwiseSimCache* sims);

  /// Binds the evaluator to `selected` (pool positions) and (re)builds all
  /// per-pass structures. O(k·U/64 + |pool|·k) on first use; later calls
  /// only refill similarity columns whose member changed.
  void Reset(const std::vector<size_t>& selected);

  /// Objective of the currently bound selection.
  double Current() const { return current_; }

  /// Objective if selected[pos] were replaced by pool candidate `cand`
  /// (which must not be in the selection). Thread-safe between Reset /
  /// ApplySwap calls: touches only pass-frozen state.
  double Trial(size_t pos, size_t cand) const;

  /// Shard `s`'s coverage partial of the trial (pos ← cand): how many
  /// anchor users inside the shard's word range the candidate would newly
  /// cover. Config.shards must be set. Thread-safe like Trial — the
  /// scatter phase of the sharded scan.
  uint32_t TrialCoveragePartial(size_t pos, size_t cand, size_t shard) const;

  /// The gather phase: the trial objective given the already-summed
  /// newly-covered count. Trial(pos, cand) ==
  /// TrialFromCovered(pos, cand, Σ_s TrialCoveragePartial(pos, cand, s))
  /// bit for bit — the count is an integer however it was partitioned.
  double TrialFromCovered(size_t pos, size_t cand,
                          size_t newly_covered) const;

  /// True when Config.shards engages the scatter-gather paths.
  bool sharded() const;

  /// Coverage-partial evaluations each shard has executed for per-pass
  /// rebuilds so far (k rest-table counts + 1 covered count per rebuild —
  /// identical per shard, since every shard rebuilds every table's own
  /// word range). Zero when unsharded.
  uint64_t rebuild_partials_per_shard() const { return rebuild_partials_; }

  /// Applies the swap selected[pos] ← cand and rebuilds pass structures in
  /// O(k·U/64 + |pool|) — per *applied* swap, not per trial. Current() is
  /// recomputed from the rebuilt structures (no additive drift).
  void ApplySwap(size_t pos, size_t cand);

  /// The pre-incremental from-scratch evaluator over an arbitrary selection
  /// (coverage union rebuild + O(k²) pair sum). Shares the memoizing sim
  /// cache, so it is NOT thread-safe. Oracle + bench baseline.
  double EvaluateScratch(const std::vector<size_t>& sel);

  const std::vector<size_t>& selected() const { return selected_; }

 private:
  void Rebuild();

  const mining::GroupStore* store_;
  const std::vector<mining::GroupId>* pool_;
  const Bitset* anchor_;  // null → universe coverage
  const std::vector<double>* affinity_;
  Config cfg_;
  index::PairwiseSimCache* sims_;

  double cov_denom_ = 0;
  std::vector<size_t> selected_;

  // ---- Pass-frozen state (rebuilt by Reset/ApplySwap, read by Trial). ----
  /// prefix_[i] = ∪ members(selected_[0..i)); suffix_[i] = ∪ members(
  /// selected_[i..k)). Scratch tables for building rest_.
  std::vector<Bitset> prefix_, suffix_;
  /// rest_[pos] = anchor-masked union of the selection without slot pos.
  std::vector<Bitset> rest_;
  std::vector<size_t> rest_count_;
  /// cand_anchor_[c] = members(pool[c]) ∩ anchor — built once per binding
  /// (first Reset) so a trial's coverage pass reads two operands, not
  /// three. Empty when anchor_ is null. Hybrid form: a sparse candidate's
  /// trial pass is O(|candidate|) id probes instead of O(U/64) words.
  std::vector<HybridBitset> cand_anchor_;
  /// simrow_[c * k + j] = Sim(pool c, selected_[j]).
  std::vector<float> simrow_;
  /// Which pool member currently owns simrow column j (SIZE_MAX = unfilled).
  std::vector<size_t> simrow_owner_;
  /// candrow_total_[c] = Σ_j simrow_[c*k + j].
  std::vector<double> candrow_total_;
  /// selrow_sum_[pos] = Σ_{j≠pos} Sim(S[pos], S[j]).
  std::vector<double> selrow_sum_;
  double sim_sum_ = 0;   // Σ_{i<j} Sim(S[i], S[j])
  double aff_sum_ = 0;   // Σ affinity(S)
  double current_ = 0;
  /// Per-shard rebuild coverage-partial count (see accessor above).
  uint64_t rebuild_partials_ = 0;

  // Scratch buffer for EvaluateScratch's coverage union.
  Bitset scratch_covered_;
};

}  // namespace vexus::core
