// Snapshot persistence for the offline pre-processing outputs.
//
// Fig. 1 splits VEXUS into an offline pipeline (group discovery + index
// generation) and the interactive modules. This file makes the split real
// across process restarts: the discovered GroupStore and the materialized
// InvertedIndex serialize to one versioned binary file, so a deployment
// mines once and serves many exploration sessions.
//
// Format (little-endian):
//   magic "VXSN" | u32 version | u64 num_users
//   u64 num_groups
//     per group: u32 desc_len, desc_len × (u32 attr, u32 value),
//                u64 member_count, member_count × u32 user ids (ascending)
//   u64 num_posting_lists (== num_groups)
//     per list: u32 len, len × (u32 group, f32 similarity)
//
// Corruption (truncation, bad magic, out-of-range references) is detected
// on load and reported as Status::Corruption.
#pragma once

#include <string>

#include "common/result.h"
#include "index/inverted_index.h"
#include "mining/group.h"

namespace vexus::core {

struct Snapshot {
  mining::GroupStore groups;
  index::InvertedIndex index;
};

/// Serializes the pre-processing outputs to `path` (atomically: written to
/// a temp file and renamed). IOError on filesystem failure.
Status SaveSnapshot(const mining::GroupStore& groups,
                    const index::InvertedIndex& index,
                    const std::string& path);

/// Loads a snapshot written by SaveSnapshot. Corruption on malformed input,
/// NotSupported on a future format version.
Result<Snapshot> LoadSnapshot(const std::string& path);

}  // namespace vexus::core
