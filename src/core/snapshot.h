// Snapshot persistence for the offline pre-processing outputs.
//
// Fig. 1 splits VEXUS into an offline pipeline (group discovery + index
// generation) and the interactive modules. This file makes the split real
// across process restarts: the discovered GroupStore and the materialized
// InvertedIndex serialize to one versioned binary file, so a deployment
// mines once and serves many exploration sessions. At the paper's
// BOOKCROSSING scale (278,858 users) cold start must be seconds, not
// minutes — which is why v2 stores members as compact blocks instead of one
// u32 per member per group, and why load validates checksums before
// trusting a single length field.
//
// Format v2 (little-endian throughout):
//
//   header   magic "VXSN" | u32 version=2 | u64 num_users        (16 bytes)
//   GROUPS section
//     u64 num_groups
//     per group: u32 desc_len, desc_len × (u32 attr, u32 value),
//                u64 member_count, u8 encoding,
//                encoding 0 (sparse):  member_count × uvarint deltas
//                                      (first = id₀, then idᵢ − idᵢ₋₁;
//                                      strictly ascending, so deltas ≥ 1)
//                encoding 1 (raw):     ceil(num_users/64) × u64 bitset words
//     The writer picks per group whichever encoding is smaller: dense groups
//     (≳ num_users/20 members) become raw words loaded with one memcpy;
//     sparse groups become varint deltas (~1–2 bytes/member vs v1's 4).
//   POSTINGS section
//     u64 num_lists (== num_groups)
//     per list: u32 len, len × (u32 group, f32 similarity)
//   trailer (fixed 48 bytes at EOF)
//     u64 groups_offset | u64 groups_len |
//     u64 postings_offset | u64 postings_len |
//     u32 groups_crc (CRC-32C of bytes [0, groups_offset + groups_len) —
//                     the header rides along so a flipped num_users bit is
//                     caught here, not by a far-away range check) |
//     u32 postings_crc (CRC-32C of the postings section) |
//     u32 trailer_crc (CRC-32C of the preceding 40 bytes) | magic "VXTR"
//
// Load reads the trailer first, checks that the two sections tile the file
// exactly (so appended garbage or a truncated tail fails before parsing),
// verifies each section's CRC-32C (common/crc32.h), then parses from the
// in-memory buffer. v1 snapshots (one u32 per member, no checksums) are
// still read behind the version switch; SaveOptions::version can write them
// for comparison benchmarks.
//
// Durability: SaveSnapshot writes path + ".tmp", fsyncs the tmp file,
// renames it over `path`, then fsyncs the parent directory — so a crash at
// any point leaves either the complete old snapshot or the complete new one
// at `path`, never a truncated file that std::rename made visible.
//
// Corruption (truncation, bad magic, checksum mismatch, duplicate member
// ids, out-of-range references, trailing bytes) is detected on load and
// reported as Status::Corruption.
//
// Format v3 (SnapshotSaveOptions::num_shards > 1; ROADMAP item 2) replaces
// the single GROUPS section with one *self-contained* section per horizontal
// shard of the user universe (common/shard_map.h): shard s's section holds,
// for every group, the descriptors plus the members that fall inside the
// shard's word-aligned user range (same sparse-delta/raw-words encoding,
// raw blocks spanning only the shard's words). The variable trailer gains a
// per-shard entry (offset | len | user_begin | user_end | CRC-32C), so a
// shard server can cold-start from just its own section via
// LoadSnapshotShard — and a flipped bit in one shard's section leaves every
// other shard loadable. Shard member sets are disjoint by construction, so
// the full-file load folds them back into exactly the store that was saved.
// Saving with num_shards == 1 (or a universe too small to split) writes
// plain v2, byte-identical to before.
#pragma once

#include <string>

#include "common/result.h"
#include "common/trace.h"
#include "index/inverted_index.h"
#include "mining/group.h"

namespace vexus::core {

struct Snapshot {
  mining::GroupStore groups;
  index::InvertedIndex index;
};

struct SnapshotSaveOptions {
  /// Format version to write. 2 (default) = checksummed block format above;
  /// 1 = the legacy per-member-u32 format, kept so the cold-start bench can
  /// compare and so fleets mid-upgrade can still produce old snapshots.
  uint32_t version = 2;
  /// fsync the tmp file before the rename and the parent directory after it
  /// (the crash-durability protocol). Tests may disable to avoid hammering
  /// slow CI disks; production callers should not.
  bool sync = true;
  /// Horizontal shard count over the user universe. > 1 writes format v3
  /// with one independently checksummed group section per shard (see the
  /// format comment above); 1 — or a universe with fewer bitset words than
  /// shards, which clamps — keeps the single-section v2/v1 output
  /// byte-identical to before this option existed. Ignored for version 1.
  size_t num_shards = 1;
};

/// One shard's slice of a snapshot, loaded independently of the others.
struct SnapshotShard {
  size_t shard = 0;
  size_t num_shards = 1;
  /// The shard's user range [user_begin, user_end) — word-aligned, matching
  /// ShardMap(num_users, num_shards).shard(shard).
  uint32_t user_begin = 0;
  uint32_t user_end = 0;
  /// Groups over the *full* universe size, with members restricted to the
  /// shard's range. Descriptors are complete (every section carries them).
  mining::GroupStore groups;
};

/// Serializes the pre-processing outputs to `path` atomically and durably
/// (tmp file + fsync + rename + directory fsync). IOError on filesystem
/// failure. `span`, when non-null, gets a "save" child span whose count is
/// the byte size written.
Status SaveSnapshot(const mining::GroupStore& groups,
                    const index::InvertedIndex& index, const std::string& path,
                    const SnapshotSaveOptions& options = {},
                    const TraceSpan* span = nullptr);

/// Loads a snapshot written by SaveSnapshot (either version). Corruption on
/// malformed input, NotSupported on a future format version. `span`, when
/// non-null, gets a "load" child span whose count is the byte size read.
Result<Snapshot> LoadSnapshot(const std::string& path,
                              const TraceSpan* span = nullptr);

/// Loads a single shard's group section from a v3 snapshot, verifying only
/// that section's CRC (plus the trailer's) — corruption elsewhere in the
/// file does not block this shard's cold start. v1/v2 files are accepted for
/// shard 0 of 1 (the whole store), so callers need not special-case
/// single-section deployments. Corruption / InvalidArgument (shard index out
/// of range) on failure.
Result<SnapshotShard> LoadSnapshotShard(const std::string& path, size_t shard,
                                        const TraceSpan* span = nullptr);

namespace internal {

/// Number of fsync(2) calls SaveSnapshot has issued (tmp files + parent
/// directories) since process start — lets the durability regression test
/// assert the crash protocol actually runs, which a pure round-trip test
/// cannot observe.
uint64_t SnapshotFsyncCountForTesting();

}  // namespace internal

}  // namespace vexus::core
