// Snapshot persistence for the offline pre-processing outputs.
//
// Fig. 1 splits VEXUS into an offline pipeline (group discovery + index
// generation) and the interactive modules. This file makes the split real
// across process restarts: the discovered GroupStore and the materialized
// InvertedIndex serialize to one versioned binary file, so a deployment
// mines once and serves many exploration sessions. At the paper's
// BOOKCROSSING scale (278,858 users) cold start must be seconds, not
// minutes — which is why v2 stores members as compact blocks instead of one
// u32 per member per group, and why load validates checksums before
// trusting a single length field.
//
// Format v2 (little-endian throughout):
//
//   header   magic "VXSN" | u32 version=2 | u64 num_users        (16 bytes)
//   GROUPS section
//     u64 num_groups
//     per group: u32 desc_len, desc_len × (u32 attr, u32 value),
//                u64 member_count, u8 encoding,
//                encoding 0 (sparse):  member_count × uvarint deltas
//                                      (first = id₀, then idᵢ − idᵢ₋₁;
//                                      strictly ascending, so deltas ≥ 1)
//                encoding 1 (raw):     ceil(num_users/64) × u64 bitset words
//     The writer picks per group whichever encoding is smaller: dense groups
//     (≳ num_users/20 members) become raw words loaded with one memcpy;
//     sparse groups become varint deltas (~1–2 bytes/member vs v1's 4).
//   POSTINGS section
//     u64 num_lists (== num_groups)
//     per list: u32 len, len × (u32 group, f32 similarity)
//   trailer (fixed 48 bytes at EOF)
//     u64 groups_offset | u64 groups_len |
//     u64 postings_offset | u64 postings_len |
//     u32 groups_crc (CRC-32C of bytes [0, groups_offset + groups_len) —
//                     the header rides along so a flipped num_users bit is
//                     caught here, not by a far-away range check) |
//     u32 postings_crc (CRC-32C of the postings section) |
//     u32 trailer_crc (CRC-32C of the preceding 40 bytes) | magic "VXTR"
//
// Load reads the trailer first, checks that the two sections tile the file
// exactly (so appended garbage or a truncated tail fails before parsing),
// verifies each section's CRC-32C (common/crc32.h), then parses from the
// in-memory buffer. v1 snapshots (one u32 per member, no checksums) are
// still read behind the version switch; SaveOptions::version can write them
// for comparison benchmarks.
//
// Durability: SaveSnapshot writes path + ".tmp", fsyncs the tmp file,
// renames it over `path`, then fsyncs the parent directory — so a crash at
// any point leaves either the complete old snapshot or the complete new one
// at `path`, never a truncated file that std::rename made visible.
//
// Corruption (truncation, bad magic, checksum mismatch, duplicate member
// ids, out-of-range references, trailing bytes) is detected on load and
// reported as Status::Corruption.
#pragma once

#include <string>

#include "common/result.h"
#include "common/trace.h"
#include "index/inverted_index.h"
#include "mining/group.h"

namespace vexus::core {

struct Snapshot {
  mining::GroupStore groups;
  index::InvertedIndex index;
};

struct SnapshotSaveOptions {
  /// Format version to write. 2 (default) = checksummed block format above;
  /// 1 = the legacy per-member-u32 format, kept so the cold-start bench can
  /// compare and so fleets mid-upgrade can still produce old snapshots.
  uint32_t version = 2;
  /// fsync the tmp file before the rename and the parent directory after it
  /// (the crash-durability protocol). Tests may disable to avoid hammering
  /// slow CI disks; production callers should not.
  bool sync = true;
};

/// Serializes the pre-processing outputs to `path` atomically and durably
/// (tmp file + fsync + rename + directory fsync). IOError on filesystem
/// failure. `span`, when non-null, gets a "save" child span whose count is
/// the byte size written.
Status SaveSnapshot(const mining::GroupStore& groups,
                    const index::InvertedIndex& index, const std::string& path,
                    const SnapshotSaveOptions& options = {},
                    const TraceSpan* span = nullptr);

/// Loads a snapshot written by SaveSnapshot (either version). Corruption on
/// malformed input, NotSupported on a future format version. `span`, when
/// non-null, gets a "load" child span whose count is the byte size read.
Result<Snapshot> LoadSnapshot(const std::string& path,
                              const TraceSpan* span = nullptr);

namespace internal {

/// Number of fsync(2) calls SaveSnapshot has issued (tmp files + parent
/// directories) since process start — lets the durability regression test
/// assert the crash protocol actually runs, which a pure round-trip test
/// cannot observe.
uint64_t SnapshotFsyncCountForTesting();

}  // namespace internal

}  // namespace vexus::core
