#include "core/simulated_explorer.h"

#include <algorithm>

#include "common/logging.h"

namespace vexus::core {

namespace {

using mining::GroupId;

/// Users of `targets` not yet bookmarked.
Bitset Remaining(const Bitset& targets, const Memo& memo, size_t n_users) {
  Bitset rem = targets;
  Bitset collected(n_users);
  for (data::UserId u : memo.users) collected.Set(u);
  rem.Subtract(collected);
  return rem;
}

}  // namespace

ExplorationOutcome SimulatedExplorer::RunMultiTarget(
    ExplorationSession* session, const Bitset& targets) const {
  VEXUS_CHECK(session != nullptr);
  ExplorationOutcome out;
  const mining::GroupStore& store = session->store();
  const size_t n_users = store.num_users();
  const size_t total_targets = targets.Count();
  if (total_targets == 0) {
    out.reached_goal = true;
    out.goal_quality = 1.0;
    return out;
  }
  size_t quota = options_.mt_quota == 0
                     ? total_targets
                     : std::min(options_.mt_quota, total_targets);

  const GreedySelection* shown = &session->Start();
  out.total_latency_ms += shown->elapsed_ms;

  // Like the ST policy: a human does not re-click a group already explored.
  std::vector<bool> visited(store.size(), false);

  while (out.iterations < options_.max_iterations) {
    Bitset remaining = Remaining(targets, session->memo(), n_users);

    // Inspect the screen: any shown group small enough to examine member-
    // by-member yields its target members into MEMO (the drill-down).
    for (GroupId g : shown->groups) {
      const mining::UserGroup& grp = store.group(g);
      if (grp.size() <= options_.mt_inspectable_size) {
        Bitset hits = grp.members() & remaining;
        hits.ForEach([&](uint32_t u) { session->BookmarkUser(u); });
      }
    }
    remaining = Remaining(targets, session->memo(), n_users);
    size_t collected = total_targets - remaining.Count();
    if (collected >= quota) {
      out.reached_goal = true;
      break;
    }

    // Click the unvisited shown group with the most still-needed targets;
    // prefer smaller groups on ties (they drill toward inspectable
    // granularity).
    GroupId best = 0;
    size_t best_overlap = 0;
    size_t best_size = SIZE_MAX;
    bool found = false;
    for (GroupId g : shown->groups) {
      if (visited[g]) continue;
      const mining::UserGroup& grp = store.group(g);
      size_t overlap = grp.members().IntersectCount(remaining);
      if (overlap > best_overlap ||
          (overlap == best_overlap && overlap > 0 && grp.size() < best_size)) {
        best = g;
        best_overlap = overlap;
        best_size = grp.size();
        found = overlap > 0;
      }
    }

    if (!found) {
      // Dead end: backtrack to the most recent step whose screen still has
      // an unvisited group with target overlap; give up if none.
      ++out.backtracks;
      bool resumed = false;
      for (size_t s = session->NumSteps(); s-- > 0;) {
        for (GroupId g : session->Step(s).shown.groups) {
          if (!visited[g] &&
              store.group(g).members().IntersectCount(remaining) > 0) {
            VEXUS_CHECK(session->Backtrack(s).ok());
            shown = &session->Current();
            resumed = true;
            break;
          }
        }
        if (resumed) break;
      }
      if (!resumed) break;
      continue;
    }

    visited[best] = true;
    shown = &session->SelectGroup(best);
    ++out.iterations;
    out.total_latency_ms += shown->elapsed_ms;
  }

  Bitset remaining = Remaining(targets, session->memo(), n_users);
  size_t collected = total_targets - remaining.Count();
  out.goal_quality =
      static_cast<double>(collected) / static_cast<double>(total_targets);
  out.reached_goal = collected >= quota;
  out.final_groups = session->Current().groups;
  return out;
}

ExplorationOutcome SimulatedExplorer::RunSingleTarget(
    ExplorationSession* session, const Bitset& target_members) const {
  VEXUS_CHECK(session != nullptr);
  ExplorationOutcome out;
  const mining::GroupStore& store = session->store();

  const GreedySelection* shown = &session->Start();
  out.total_latency_ms += shown->elapsed_ms;

  // A human never re-clicks a group they already examined; without this the
  // myopic max-similarity policy cycles between the root and its largest
  // children (their Jaccard to any target beats every refinement's).
  std::vector<bool> visited(store.size(), false);

  double best_reached = 0;
  while (out.iterations < options_.max_iterations) {
    // Click the *unvisited* shown group most similar to the hidden target
    // (a memoryless explorer considers every shown group, visited or not).
    GroupId best = 0;
    double best_sim = -1;
    for (GroupId g : shown->groups) {
      if (!options_.memoryless && visited[g]) continue;
      double sim = store.group(g).members().Jaccard(target_members);
      if (sim > best_sim) {
        best_sim = sim;
        best = g;
      }
    }
    if (best_sim <= 0) {
      // Dead end (everything visited or disjoint from the target):
      // backtrack to the most recent step whose screen still offers an
      // unvisited group with target overlap.
      bool resumed = false;
      for (size_t s = session->NumSteps(); s-- > 0;) {
        for (GroupId g : session->Step(s).shown.groups) {
          if (!visited[g] &&
              store.group(g).members().IntersectCount(target_members) > 0) {
            VEXUS_CHECK(session->Backtrack(s).ok());
            shown = &session->Current();
            ++out.backtracks;
            resumed = true;
            break;
          }
        }
        if (resumed) break;
      }
      if (!resumed) break;
      continue;
    }

    visited[best] = true;
    // Also record the best similarity seen on screen even before clicking
    // (the explorer *found* the group once it is displayed).
    best_reached = std::max(best_reached, best_sim);
    if (best_sim >= options_.st_success_similarity) {
      out.reached_goal = true;
      session->BookmarkGroup(best);
      break;
    }

    shown = &session->SelectGroup(best);
    ++out.iterations;
    out.total_latency_ms += shown->elapsed_ms;
  }

  out.goal_quality = best_reached;
  out.final_groups = session->Current().groups;
  return out;
}

}  // namespace vexus::core
