// Request-scoped span tracing for the 100 ms interactivity budget.
//
// The paper's P3 guarantee (every exploration step answers within the
// continuity budget) is enforced by deadlines, but a deadline only tells you
// *that* a request was slow — not where the time went. A Trace attributes
// one request's wall time to a tree of named stages:
//
//   request
//   ├─ queue       time between admission and a worker picking it up
//   ├─ admit       session admission (start_session only)
//   ├─ session     waiting for / acquiring the exclusive session lease
//   ├─ rank        candidate-pool construction + prior ranking
//   ├─ greedy      the anytime swap loop
//   │   ├─ seed      seeding: weighted-similarity scoring + sort
//   │   └─ pass ×N   one span per refinement pass (count = trial evals)
//   └─ serialize   screen/context payload construction
//
// Design constraints (this is request-path code):
//   * A *disabled* tracer costs one branch per span: every TraceSpan
//     operation starts with `if (trace_ == nullptr) return;`, and when
//     tracing is off no Trace object is ever allocated
//     (bench/bench_trace_overhead pins the cost).
//   * Span creation is thread-safe: the parallel greedy scan (and any other
//     fan-out) may open child spans from pool workers concurrently. Spans
//     live in a flat, mutex-guarded arena of parent-indexed records; a
//     span handle is (trace, index), so handles stay valid as the arena
//     grows.
//   * Bounded memory: a trace holds at most `max_spans` records; once full,
//     Open() returns the null handle and the subtree is silently dropped
//     (the enclosing spans still measure their time).
//   * Monotonic clocks only (Stopwatch / steady_clock): span offsets are
//     microseconds since the trace epoch, immune to wall-clock steps.
//
// The serving layer threads a TraceSpan through Dispatcher → Service →
// SessionManager → greedy (src/server/trace_log.h stores completed traces
// and serves them over the wire via the get_trace op).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.h"

namespace vexus {

class Trace;

/// RAII handle on one span of a Trace. A default-constructed TraceSpan is
/// the *disabled* span: every operation on it is a single branch, and
/// children of a disabled span are disabled. Move-only; destruction closes
/// the span (owned handles) or leaves it open (borrowed views).
class TraceSpan {
 public:
  /// The disabled span (tracing off / arena full / dropped subtree).
  TraceSpan() = default;

  TraceSpan(TraceSpan&& other) noexcept
      : trace_(other.trace_), index_(other.index_), owned_(other.owned_) {
    other.trace_ = nullptr;
    other.index_ = -1;
    other.owned_ = false;
  }
  /// Move-assignment would need to close an existing span mid-expression;
  /// construct a fresh TraceSpan instead.
  TraceSpan& operator=(TraceSpan&&) = delete;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { Close(); }

  /// A non-owning view of an existing span (destruction does NOT close it).
  /// The dispatcher uses this to lend the root span to the request handler.
  /// A null `trace` yields the disabled span.
  static TraceSpan View(Trace* trace, int32_t index);

  /// Opens a child span. `name` must have static storage duration (the
  /// arena stores the pointer). Thread-safe; may be called concurrently
  /// with other Child()/Close() calls on the same trace.
  TraceSpan Child(const char* name) const;

  /// Adds `n` to the span's work counter (e.g. greedy trial evaluations).
  void AddCount(uint64_t n) const;

  /// Closes the span now (idempotent; the destructor calls it for owned
  /// handles). After Close() the handle behaves as disabled.
  void Close();

  /// Disowns the handle, leaving the span OPEN, and returns its index (-1
  /// for a disabled span). Pair with Adopt() to carry a live span across a
  /// copyable-closure boundary (std::function cannot capture a move-only
  /// TraceSpan): the dispatcher detaches the `queue` span at admission and
  /// adopts it on the worker, where its destructor closes it.
  int32_t Detach();

  /// Re-adopts a span detached earlier: an *owned* handle whose destruction
  /// closes the span. A null trace / negative index yields the disabled
  /// span.
  static TraceSpan Adopt(Trace* trace, int32_t index);

  /// False for the disabled span — callers can skip expensive annotation
  /// work (string building, etc.) when tracing is off.
  bool enabled() const { return trace_ != nullptr; }

  Trace* trace() const { return trace_; }
  int32_t index() const { return index_; }

 private:
  friend class Trace;
  TraceSpan(Trace* trace, int32_t index, bool owned)
      : trace_(trace), index_(index), owned_(owned) {}

  Trace* trace_ = nullptr;
  int32_t index_ = -1;
  bool owned_ = false;
};

/// One request's span tree. The root span (index 0) opens at construction
/// and closes at Finish(); everything else hangs off it via TraceSpan.
class Trace {
 public:
  /// Index of the root span (always present).
  static constexpr int32_t kRootIndex = 0;

  struct Span {
    const char* name = "";     // static storage (see TraceSpan::Child)
    int32_t parent = -1;       // kRootIndex's parent is -1
    int64_t start_us = 0;      // offset from the trace epoch
    int64_t duration_us = -1;  // -1 while open
    uint64_t count = 0;        // optional work counter (AddCount)
  };

  /// Starts the trace; the root span opens immediately under `root_name`
  /// (static storage). `max_spans` bounds arena growth (≥ 1).
  explicit Trace(const char* root_name, size_t max_spans = 256);

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// A borrowed handle on the root span (never closes it).
  TraceSpan root() { return TraceSpan::View(this, kRootIndex); }

  /// Closes the root span (and any spans left open, so a truncated request
  /// still serializes a consistent tree). Idempotent.
  void Finish();

  /// Total wall time of the root span. Valid after Finish(); before it,
  /// reports the live elapsed time.
  int64_t total_us() const;

  /// Snapshot of the span arena (copy under the lock). Spans are in
  /// creation order; a span's parent always precedes it, so a single
  /// forward pass can rebuild the tree.
  std::vector<Span> spans() const;

  /// Number of spans dropped because the arena was full.
  uint64_t dropped() const;

 private:
  friend class TraceSpan;

  /// Returns the new span's index, or -1 when the arena is full.
  int32_t Open(int32_t parent, const char* name);
  void Close(int32_t index);
  void AddCount(int32_t index, uint64_t n);

  Stopwatch epoch_;
  size_t max_spans_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;   // guarded by mu_
  uint64_t dropped_ = 0;      // guarded by mu_
  bool finished_ = false;     // guarded by mu_
  int64_t total_us_ = 0;      // guarded by mu_ (set by Finish)
};

}  // namespace vexus
