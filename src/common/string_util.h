// Small string helpers shared by the ETL layer and renderers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vexus {

/// Splits on a single character; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict parse of a whole string (after trimming) as int64 / double.
/// Empty strings and trailing garbage yield nullopt.
std::optional<int64_t> ParseInt(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

/// Formats a double with up to `precision` fractional digits, trimming
/// trailing zeros ("1.50" -> "1.5", "2.00" -> "2").
std::string FormatDouble(double v, int precision = 4);

/// Human-readable count: 12345678 -> "12,345,678".
std::string WithThousands(uint64_t v);

}  // namespace vexus
