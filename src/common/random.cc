#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace vexus {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed, uint64_t stream) {
  // PCG32 initialization: the stream selector must be odd.
  inc_ = (stream << 1u) | 1u;
  state_ = 0;
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

uint32_t Rng::UniformU32(uint32_t bound) {
  VEXUS_DCHECK(bound > 0) << "UniformU32 bound must be positive";
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  uint64_t m = static_cast<uint64_t>(NextU32()) * bound;
  uint32_t low = static_cast<uint32_t>(m);
  if (low < bound) {
    uint32_t threshold = -bound % bound;
    while (low < threshold) {
      m = static_cast<uint64_t>(NextU32()) * bound;
      low = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  VEXUS_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  // 64-bit rejection sampling.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r;
  do {
    r = NextU64();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % span);
}

double Rng::UniformDouble() {
  // 53 random bits -> [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  // Box–Muller; discard the second variate for determinism across call sites.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double lambda) {
  VEXUS_DCHECK(lambda > 0);
  double u = UniformDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  VEXUS_DCHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    VEXUS_DCHECK(w >= 0) << "negative categorical weight";
    total += w;
  }
  VEXUS_DCHECK(total > 0) << "all categorical weights are zero";
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // floating-point edge
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  if (k >= n) {
    std::vector<uint32_t> all(n);
    for (uint32_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm would need a set; for simplicity use partial
  // Fisher–Yates over an index array when k is a large fraction of n, and a
  // hash-free rejection loop when k << n.
  if (k * 4 >= n) {
    std::vector<uint32_t> idx(n);
    for (uint32_t i = 0; i < n; ++i) idx[i] = i;
    for (uint32_t i = 0; i < k; ++i) {
      uint32_t j = i + UniformU32(n - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }
  std::vector<uint32_t> out;
  out.reserve(k);
  std::vector<bool> used(n, false);
  while (out.size() < k) {
    uint32_t c = UniformU32(n);
    if (!used[c]) {
      used[c] = true;
      out.push_back(c);
    }
  }
  return out;
}

ZipfSampler::ZipfSampler(uint32_t n, double s) : n_(n) {
  VEXUS_CHECK(n >= 1) << "ZipfSampler needs n >= 1";
  std::vector<double> p(n);
  double total = 0;
  for (uint32_t i = 0; i < n; ++i) {
    p[i] = 1.0 / std::pow(static_cast<double>(i) + 1.0, s);
    total += p[i];
  }
  for (uint32_t i = 0; i < n; ++i) p[i] = p[i] * n / total;  // mean 1

  // Vose's alias method.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    (p[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s_idx = small.back();
    small.pop_back();
    uint32_t l_idx = large.back();
    large.pop_back();
    prob_[s_idx] = p[s_idx];
    alias_[s_idx] = l_idx;
    p[l_idx] = (p[l_idx] + p[s_idx]) - 1.0;
    (p[l_idx] < 1.0 ? small : large).push_back(l_idx);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

uint32_t ZipfSampler::Sample(Rng* rng) const {
  uint32_t column = rng->UniformU32(n_);
  return rng->UniformDouble() < prob_[column] ? column : alias_[column];
}

}  // namespace vexus
