// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
// guarding snapshot sections (core/snapshot.h).
//
// Why CRC32C and not a cryptographic hash: the threat model is bit rot,
// truncated writes, and torn pages — not an adversary. CRC32C detects all
// single-bit and double-bit errors, any burst ≤ 32 bits, and random
// corruption with probability 1 − 2⁻³². The Castagnoli polynomial (rather
// than the zlib/IEEE one) buys two things: better Hamming distance at the
// message lengths snapshots use, and a hardware instruction — on x86-64
// with SSE4.2 the update loop runs at ~20 GB/s via the crc32 instruction
// (runtime-dispatched; the portable slicing-by-8 path below is the
// fallback and the reference for testing). Snapshot load verifies each
// section's CRC before parsing a single field, so a flipped bit surfaces
// as Status::Corruption instead of an out-of-range allocation or a crash.
//
// The value convention matches the common CRC32C definition (iSCSI,
// ext4): Crc32("123456789") == 0xE3069283, and Crc32Update(Crc32(a), b) ==
// Crc32(a ++ b), so callers can checksum streams incrementally without
// buffering.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vexus {

/// Continues a CRC-32C over `len` bytes. `crc` is the value returned by a
/// previous call (or 0 to start); chaining over consecutive buffers yields
/// the same value as one call over the concatenation.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

/// One-shot CRC-32C of a buffer.
inline uint32_t Crc32(const void* data, size_t len) {
  return Crc32Update(0, data, len);
}

namespace internal {

/// The table-driven software path, bypassing hardware dispatch. Exposed so
/// tests can assert the accelerated and portable implementations agree on
/// arbitrary buffers — a silent divergence would make snapshots written on
/// one machine unreadable on another.
uint32_t Crc32UpdateSoftwareForTesting(uint32_t crc, const void* data,
                                       size_t len);

}  // namespace internal

}  // namespace vexus
