// Fixed-size thread pool used by offline pre-processing (index construction
// parallelizes per-group neighbor computation; experiment E7). Interactive
// paths never block on the pool — the 100 ms greedy budget is single-threaded
// by design so latency is predictable.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vexus {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 -> hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is chunked to limit queue overhead.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable done_cv_;   // signals Wait()
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace vexus
