// Fixed-size thread pool used by offline pre-processing (index construction
// parallelizes per-group neighbor computation; experiment E7) and by the
// serving layer's dispatcher (src/server/dispatcher.h), which routes
// per-request work onto the pool. The greedy refinement loop itself stays
// single-threaded so the 100 ms continuity budget remains predictable.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vexus {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 -> hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Equivalent to Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Drains already-queued work, then joins all workers. Idempotent; called
  /// by the destructor. After Shutdown() returns, Submit() rejects new work
  /// — the serving-layer dispatcher relies on this to shed requests with
  /// RESOURCE_EXHAUSTED instead of losing them silently during teardown.
  void Shutdown();

  /// Enqueues a task. Tasks must not throw. Returns false — without
  /// enqueueing — once shutdown has begun; the task is simply dropped, so
  /// callers that must observe completion (e.g. a promise-completing
  /// wrapper) must handle the rejection themselves.
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is chunked to limit queue overhead.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable done_cv_;   // signals Wait()
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  bool joining_ = false;  // a Shutdown() caller owns the join
  bool joined_ = false;   // the join completed
};

}  // namespace vexus
