// Fixed-size thread pool used by offline pre-processing (index construction
// parallelizes per-group neighbor computation; experiment E7), by the
// serving layer's dispatcher (src/server/dispatcher.h), which routes
// per-request work onto the pool, and by the greedy swap loop's sharded
// candidate scan (ParallelForChunked — safe to call from *inside* a pool
// worker, which is exactly what a dispatched request does).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vexus {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 -> hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Equivalent to Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Drains already-queued work, then joins all workers. Idempotent; called
  /// by the destructor. After Shutdown() returns, Submit() rejects new work
  /// — the serving-layer dispatcher relies on this to shed requests with
  /// RESOURCE_EXHAUSTED instead of losing them silently during teardown.
  void Shutdown();

  /// Enqueues a task. Tasks must not throw. Returns false — without
  /// enqueueing — once shutdown has begun; the task is simply dropped, so
  /// callers that must observe completion (e.g. a promise-completing
  /// wrapper) must handle the rejection themselves.
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is chunked to limit queue overhead.
  ///
  /// NOT safe on a pool that is shared with other producers: the final wait
  /// is pool-global (Wait()), and calling it from inside a pool worker can
  /// deadlock. Offline preprocessing owns its pool, so it uses this one;
  /// request-path code must use ParallelForChunked below.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs fn(chunk, begin, end) for contiguous chunks of `chunk_size`
  /// indices covering [0, n), then returns once every index has run.
  ///
  /// Unlike ParallelFor this is safe on a *shared* pool and from within a
  /// pool worker (the serving dispatcher executes request handlers on this
  /// very pool, and the greedy candidate scan fans out from there): chunks
  /// are dealt through an atomic cursor and the *calling thread
  /// participates* in the chunk loop, so completion never depends on a free
  /// worker, and the final wait is scoped to this call's chunks rather than
  /// pool-global. Chunk boundaries are deterministic functions of (n,
  /// chunk_size); which thread runs a chunk is not — callers that need a
  /// deterministic reduction should write per-chunk results into a
  /// chunk-indexed array and fold it in chunk order afterwards (this is how
  /// the greedy scan keeps parallel and serial argmax byte-identical).
  void ParallelForChunked(
      size_t n, size_t chunk_size,
      const std::function<void(size_t chunk, size_t begin, size_t end)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable done_cv_;   // signals Wait()
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  bool joining_ = false;  // a Shutdown() caller owns the join
  bool joined_ = false;   // the join completed
};

}  // namespace vexus
