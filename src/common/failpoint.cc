#include "common/failpoint.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.h"

namespace vexus::failpoint {

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

/// Shared between the registry and the arming ScopedFailpoint, so counters
/// survive disarm (tests read them after the traffic they drove completed).
struct ScopedFailpoint::State {
  Policy policy;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> fires{0};
};

namespace {

using State = ScopedFailpoint::State;

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

/// site name -> armed state. Leaked singleton: failpoints may be evaluated
/// from detached pool workers during process teardown, after static
/// destructors would have run.
std::unordered_map<std::string, std::shared_ptr<State>>& Registry() {
  static auto* m = new std::unordered_map<std::string, std::shared_ptr<State>>();
  return *m;
}

std::shared_ptr<State> FindSite(std::string_view site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& reg = Registry();
  auto it = reg.find(std::string(site));
  return it == reg.end() ? nullptr : it->second;
}

/// splitmix64: the deterministic per-reach coin for kProbability.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Applies the policy for one reach; true iff the site fires. The reach is
/// counted regardless. Sleep (if any) happens here, before the caller acts
/// on the verdict.
bool Fire(State& st) {
  const Policy& p = st.policy;
  // 1-based ordinal of this reach, unique across threads.
  uint64_t ordinal = st.hits.fetch_add(1, std::memory_order_relaxed) + 1;

  bool fired = false;
  switch (p.mode) {
    case Policy::Mode::kOff:
      break;
    case Policy::Mode::kOnce:
      fired = ordinal == 1;
      break;
    case Policy::Mode::kEveryNth:
      fired = p.nth > 0 && ordinal % p.nth == 0;
      break;
    case Policy::Mode::kProbability: {
      // Deterministic in (seed, ordinal): replaying a schedule re-fires the
      // same reaches. 2^64 * probability as a threshold on a 64-bit hash.
      const double pr = p.probability;
      if (pr >= 1.0) {
        fired = true;
      } else if (pr > 0.0) {
        const auto threshold = static_cast<uint64_t>(
            pr * 18446744073709551616.0 /* 2^64 */);
        fired = Mix64(p.seed ^ ordinal) < threshold;
      }
      break;
    }
    case Policy::Mode::kAlways:
      fired = true;
      break;
  }
  if (!fired) return false;

  // Fire cap. The post-increment race between two threads both observing
  // count == max-1 is benign for tests (at most one extra fire under a cap
  // nobody sets that tight in a concurrent schedule).
  if (st.fires.load(std::memory_order_relaxed) >= p.max_fires) return false;
  st.fires.fetch_add(1, std::memory_order_relaxed);

  if (p.sleep_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(p.sleep_ms));
  }
  return true;
}

}  // namespace

namespace internal {

Status Evaluate(std::string_view site) {
  std::shared_ptr<State> st = FindSite(site);
  if (st == nullptr || !Fire(*st)) return Status::OK();
  if (st->policy.code == StatusCode::kOk) return Status::OK();
  return Status::FromCode(
      st->policy.code,
      st->policy.message.empty()
          ? "failpoint '" + std::string(site) + "' fired"
          : st->policy.message);
}

bool EvaluateFires(std::string_view site) {
  std::shared_ptr<State> st = FindSite(site);
  return st != nullptr && Fire(*st);
}

}  // namespace internal

ScopedFailpoint::ScopedFailpoint(std::string site, Policy policy)
    : site_(std::move(site)), state_(std::make_shared<State>()) {
  state_->policy = std::move(policy);
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    auto [it, inserted] = Registry().emplace(site_, state_);
    VEXUS_CHECK(inserted) << "failpoint '" << site_ << "' is already armed";
  }
  // Incremented after the registry insert: a reader that takes the fast
  // path's armed branch will find the site; one that misses the increment
  // simply skips this evaluation (arming is not a synchronization point for
  // traffic already in flight).
  internal::g_armed_count.fetch_add(1, std::memory_order_release);
}

ScopedFailpoint::~ScopedFailpoint() {
  internal::g_armed_count.fetch_sub(1, std::memory_order_release);
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& reg = Registry();
  auto it = reg.find(site_);
  if (it != reg.end() && it->second == state_) reg.erase(it);
}

uint64_t ScopedFailpoint::hits() const {
  return state_->hits.load(std::memory_order_relaxed);
}

uint64_t ScopedFailpoint::fires() const {
  return state_->fires.load(std::memory_order_relaxed);
}

void DisarmedSiteForBench() { VEXUS_FAILPOINT_HIT("bench.disarmed"); }

}  // namespace vexus::failpoint
