#include "common/trace.h"

#include <algorithm>

namespace vexus {

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

TraceSpan TraceSpan::View(Trace* trace, int32_t index) {
  if (trace == nullptr || index < 0) return TraceSpan();
  return TraceSpan(trace, index, /*owned=*/false);
}

TraceSpan TraceSpan::Child(const char* name) const {
  if (trace_ == nullptr) return TraceSpan();  // disabled: one branch
  int32_t idx = trace_->Open(index_, name);
  if (idx < 0) return TraceSpan();  // arena full: drop the subtree
  return TraceSpan(trace_, idx, /*owned=*/true);
}

void TraceSpan::AddCount(uint64_t n) const {
  if (trace_ == nullptr) return;
  trace_->AddCount(index_, n);
}

int32_t TraceSpan::Detach() {
  int32_t idx = trace_ == nullptr ? -1 : index_;
  trace_ = nullptr;
  index_ = -1;
  owned_ = false;
  return idx;
}

TraceSpan TraceSpan::Adopt(Trace* trace, int32_t index) {
  if (trace == nullptr || index < 0) return TraceSpan();
  return TraceSpan(trace, index, /*owned=*/true);
}

void TraceSpan::Close() {
  if (trace_ == nullptr) return;
  if (owned_) trace_->Close(index_);
  trace_ = nullptr;
  index_ = -1;
  owned_ = false;
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

Trace::Trace(const char* root_name, size_t max_spans)
    : max_spans_(std::max<size_t>(max_spans, 1)) {
  Span root;
  root.name = root_name;
  root.parent = -1;
  root.start_us = 0;
  spans_.reserve(std::min<size_t>(max_spans_, 32));
  spans_.push_back(root);
}

int32_t Trace::Open(int32_t parent, const char* name) {
  int64_t now = epoch_.ElapsedMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return -1;
  }
  Span s;
  s.name = name;
  s.parent = parent;
  s.start_us = now;
  spans_.push_back(s);
  return static_cast<int32_t>(spans_.size() - 1);
}

void Trace::Close(int32_t index) {
  int64_t now = epoch_.ElapsedMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || static_cast<size_t>(index) >= spans_.size()) return;
  Span& s = spans_[static_cast<size_t>(index)];
  if (s.duration_us < 0) s.duration_us = now - s.start_us;
}

void Trace::AddCount(int32_t index, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || static_cast<size_t>(index) >= spans_.size()) return;
  spans_[static_cast<size_t>(index)].count += n;
}

void Trace::Finish() {
  int64_t now = epoch_.ElapsedMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  // Close every span still open — a deadline-truncated request must still
  // serialize a consistent tree (open spans absorb time up to Finish()).
  for (Span& s : spans_) {
    if (s.duration_us < 0) s.duration_us = now - s.start_us;
  }
  total_us_ = spans_[kRootIndex].duration_us;
}

int64_t Trace::total_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return total_us_;
  return epoch_.ElapsedMicros();
}

std::vector<Trace::Span> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

uint64_t Trace::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace vexus
