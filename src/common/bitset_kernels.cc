#include "common/bitset_kernels.h"

#include <atomic>
#include <cstdlib>

#include "common/logging.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VEXUS_BITSET_SIMD 1
#include <immintrin.h>
#endif

namespace vexus::bitset_kernels {

namespace {

// ---------------------------------------------------------------------------
// Scalar tier — the pre-SIMD Bitset loops, verbatim. Reference for the
// parity fuzz, fallback for non-x86, and the bench baseline.
// ---------------------------------------------------------------------------

size_t ScalarCount(const uint64_t* a, size_t n) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(a[i]));
  }
  return c;
}

size_t ScalarAndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return c;
}

size_t ScalarAndNotCount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(a[i] & ~b[i]));
  }
  return c;
}

size_t ScalarAndAndNotCount(const uint64_t* a, const uint64_t* b,
                            const uint64_t* c, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(a[i] & b[i] & ~c[i]));
  }
  return count;
}

size_t ScalarOrCount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(a[i] | b[i]));
  }
  return c;
}

size_t ScalarAndCountInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                          size_t n) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t w = a[i] & b[i];
    out[i] = w;
    c += static_cast<size_t>(__builtin_popcountll(w));
  }
  return c;
}

void ScalarOr(const uint64_t* a, const uint64_t* b, uint64_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] | b[i];
}

size_t ScalarOrCountInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                         size_t n) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t w = a[i] | b[i];
    out[i] = w;
    c += static_cast<size_t>(__builtin_popcountll(w));
  }
  return c;
}

size_t ScalarOrAndCountInto(const uint64_t* a, const uint64_t* b,
                            const uint64_t* mask, uint64_t* out, size_t n) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t w = (a[i] | b[i]) & mask[i];
    out[i] = w;
    c += static_cast<size_t>(__builtin_popcountll(w));
  }
  return c;
}

void ScalarAndOrCount(const uint64_t* a, const uint64_t* b, size_t n,
                      size_t* inter, size_t* uni) {
  size_t ci = 0, cu = 0;
  for (size_t i = 0; i < n; ++i) {
    ci += static_cast<size_t>(__builtin_popcountll(a[i] & b[i]));
    cu += static_cast<size_t>(__builtin_popcountll(a[i] | b[i]));
  }
  *inter = ci;
  *uni = cu;
}

#ifdef VEXUS_BITSET_SIMD

// ---------------------------------------------------------------------------
// AVX2 tier. Popcount via the vpshufb nibble-LUT + vpsadbw reduction
// (Muła's algorithm): per 256-bit lane, per-byte popcounts from two
// 16-entry table lookups, summed into 4 × u64 by the horizontal SAD
// against zero. Four words per iteration with one add into a 64-bit
// accumulator vector — no lane can overflow (max 256 per step, 2^58
// steps away from wrap).
// ---------------------------------------------------------------------------

#define VEXUS_TARGET_AVX2 __attribute__((target("avx2")))

VEXUS_TARGET_AVX2 inline __m256i Popcnt256(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

VEXUS_TARGET_AVX2 inline size_t Hsum256(__m256i acc) {
  __m128i lo = _mm256_castsi256_si128(acc);
  __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<size_t>(_mm_cvtsi128_si64(s)) +
         static_cast<size_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

VEXUS_TARGET_AVX2 size_t Avx2Count(const uint64_t* a, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(acc, Popcnt256(va));
  }
  size_t c = Hsum256(acc);
  for (; i < n; ++i) c += static_cast<size_t>(__builtin_popcountll(a[i]));
  return c;
}

VEXUS_TARGET_AVX2 size_t Avx2AndCount(const uint64_t* a, const uint64_t* b,
                                      size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcnt256(_mm256_and_si256(va, vb)));
  }
  size_t c = Hsum256(acc);
  for (; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return c;
}

VEXUS_TARGET_AVX2 size_t Avx2AndNotCount(const uint64_t* a, const uint64_t* b,
                                         size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // vpandn computes ~first & second, so the operand order is (b, a).
    acc = _mm256_add_epi64(acc, Popcnt256(_mm256_andnot_si256(vb, va)));
  }
  size_t c = Hsum256(acc);
  for (; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(a[i] & ~b[i]));
  }
  return c;
}

VEXUS_TARGET_AVX2 size_t Avx2AndAndNotCount(const uint64_t* a,
                                            const uint64_t* b,
                                            const uint64_t* c, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i vc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    acc = _mm256_add_epi64(
        acc, Popcnt256(_mm256_andnot_si256(vc, _mm256_and_si256(va, vb))));
  }
  size_t count = Hsum256(acc);
  for (; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(a[i] & b[i] & ~c[i]));
  }
  return count;
}

VEXUS_TARGET_AVX2 size_t Avx2OrCount(const uint64_t* a, const uint64_t* b,
                                     size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcnt256(_mm256_or_si256(va, vb)));
  }
  size_t c = Hsum256(acc);
  for (; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(a[i] | b[i]));
  }
  return c;
}

VEXUS_TARGET_AVX2 size_t Avx2AndCountInto(const uint64_t* a, const uint64_t* b,
                                          uint64_t* out, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i w = _mm256_and_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), w);
    acc = _mm256_add_epi64(acc, Popcnt256(w));
  }
  size_t c = Hsum256(acc);
  for (; i < n; ++i) {
    uint64_t w = a[i] & b[i];
    out[i] = w;
    c += static_cast<size_t>(__builtin_popcountll(w));
  }
  return c;
}

VEXUS_TARGET_AVX2 void Avx2Or(const uint64_t* a, const uint64_t* b,
                              uint64_t* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) out[i] = a[i] | b[i];
}

VEXUS_TARGET_AVX2 size_t Avx2OrCountInto(const uint64_t* a, const uint64_t* b,
                                         uint64_t* out, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i w = _mm256_or_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), w);
    acc = _mm256_add_epi64(acc, Popcnt256(w));
  }
  size_t c = Hsum256(acc);
  for (; i < n; ++i) {
    uint64_t w = a[i] | b[i];
    out[i] = w;
    c += static_cast<size_t>(__builtin_popcountll(w));
  }
  return c;
}

VEXUS_TARGET_AVX2 size_t Avx2OrAndCountInto(const uint64_t* a,
                                            const uint64_t* b,
                                            const uint64_t* mask, uint64_t* out,
                                            size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i vm =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    __m256i w = _mm256_and_si256(_mm256_or_si256(va, vb), vm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), w);
    acc = _mm256_add_epi64(acc, Popcnt256(w));
  }
  size_t c = Hsum256(acc);
  for (; i < n; ++i) {
    uint64_t w = (a[i] | b[i]) & mask[i];
    out[i] = w;
    c += static_cast<size_t>(__builtin_popcountll(w));
  }
  return c;
}

VEXUS_TARGET_AVX2 void Avx2AndOrCount(const uint64_t* a, const uint64_t* b,
                                      size_t n, size_t* inter, size_t* uni) {
  __m256i acc_i = _mm256_setzero_si256();
  __m256i acc_u = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc_i = _mm256_add_epi64(acc_i, Popcnt256(_mm256_and_si256(va, vb)));
    acc_u = _mm256_add_epi64(acc_u, Popcnt256(_mm256_or_si256(va, vb)));
  }
  size_t ci = Hsum256(acc_i);
  size_t cu = Hsum256(acc_u);
  for (; i < n; ++i) {
    ci += static_cast<size_t>(__builtin_popcountll(a[i] & b[i]));
    cu += static_cast<size_t>(__builtin_popcountll(a[i] | b[i]));
  }
  *inter = ci;
  *uni = cu;
}

// ---------------------------------------------------------------------------
// AVX-512 tier: VPOPCNTDQ makes the popcount a single instruction over
// eight words, so every kernel is load → combine → vpopcntq → add.
// Gated on avx512f + avx512vpopcntdq at dispatch.
// ---------------------------------------------------------------------------

#define VEXUS_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512vpopcntdq")))

VEXUS_TARGET_AVX512 size_t Avx512Count(const uint64_t* a, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + i)));
  }
  size_t c = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) c += static_cast<size_t>(__builtin_popcountll(a[i]));
  return c;
}

VEXUS_TARGET_AVX512 size_t Avx512AndCount(const uint64_t* a, const uint64_t* b,
                                          size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i w =
        _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(w));
  }
  size_t c = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return c;
}

VEXUS_TARGET_AVX512 size_t Avx512AndNotCount(const uint64_t* a,
                                             const uint64_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i w = _mm512_andnot_si512(_mm512_loadu_si512(b + i),
                                    _mm512_loadu_si512(a + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(w));
  }
  size_t c = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(a[i] & ~b[i]));
  }
  return c;
}

VEXUS_TARGET_AVX512 size_t Avx512AndAndNotCount(const uint64_t* a,
                                                const uint64_t* b,
                                                const uint64_t* c, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i w = _mm512_andnot_si512(
        _mm512_loadu_si512(c + i),
        _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i)));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(w));
  }
  size_t count = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(a[i] & b[i] & ~c[i]));
  }
  return count;
}

VEXUS_TARGET_AVX512 size_t Avx512OrCount(const uint64_t* a, const uint64_t* b,
                                         size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i w =
        _mm512_or_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(w));
  }
  size_t c = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(a[i] | b[i]));
  }
  return c;
}

VEXUS_TARGET_AVX512 size_t Avx512AndCountInto(const uint64_t* a,
                                              const uint64_t* b, uint64_t* out,
                                              size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i w =
        _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    _mm512_storeu_si512(out + i, w);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(w));
  }
  size_t c = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    uint64_t w = a[i] & b[i];
    out[i] = w;
    c += static_cast<size_t>(__builtin_popcountll(w));
  }
  return c;
}

VEXUS_TARGET_AVX512 void Avx512Or(const uint64_t* a, const uint64_t* b,
                                  uint64_t* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(out + i, _mm512_or_si512(_mm512_loadu_si512(a + i),
                                                 _mm512_loadu_si512(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] | b[i];
}

VEXUS_TARGET_AVX512 size_t Avx512OrCountInto(const uint64_t* a,
                                             const uint64_t* b, uint64_t* out,
                                             size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i w =
        _mm512_or_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    _mm512_storeu_si512(out + i, w);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(w));
  }
  size_t c = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    uint64_t w = a[i] | b[i];
    out[i] = w;
    c += static_cast<size_t>(__builtin_popcountll(w));
  }
  return c;
}

VEXUS_TARGET_AVX512 size_t Avx512OrAndCountInto(const uint64_t* a,
                                                const uint64_t* b,
                                                const uint64_t* mask,
                                                uint64_t* out, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i w = _mm512_and_si512(
        _mm512_or_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i)),
        _mm512_loadu_si512(mask + i));
    _mm512_storeu_si512(out + i, w);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(w));
  }
  size_t c = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    uint64_t w = (a[i] | b[i]) & mask[i];
    out[i] = w;
    c += static_cast<size_t>(__builtin_popcountll(w));
  }
  return c;
}

VEXUS_TARGET_AVX512 void Avx512AndOrCount(const uint64_t* a, const uint64_t* b,
                                          size_t n, size_t* inter,
                                          size_t* uni) {
  __m512i acc_i = _mm512_setzero_si512();
  __m512i acc_u = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i va = _mm512_loadu_si512(a + i);
    __m512i vb = _mm512_loadu_si512(b + i);
    acc_i = _mm512_add_epi64(acc_i,
                             _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
    acc_u =
        _mm512_add_epi64(acc_u, _mm512_popcnt_epi64(_mm512_or_si512(va, vb)));
  }
  size_t ci = static_cast<size_t>(_mm512_reduce_add_epi64(acc_i));
  size_t cu = static_cast<size_t>(_mm512_reduce_add_epi64(acc_u));
  for (; i < n; ++i) {
    ci += static_cast<size_t>(__builtin_popcountll(a[i] & b[i]));
    cu += static_cast<size_t>(__builtin_popcountll(a[i] | b[i]));
  }
  *inter = ci;
  *uni = cu;
}

#endif  // VEXUS_BITSET_SIMD

// ---------------------------------------------------------------------------
// Dispatch: one table per tier, active pointer resolved once.
// ---------------------------------------------------------------------------

struct KernelTable {
  Level level;
  size_t (*count)(const uint64_t*, size_t);
  size_t (*and_count)(const uint64_t*, const uint64_t*, size_t);
  size_t (*and_not_count)(const uint64_t*, const uint64_t*, size_t);
  size_t (*and_and_not_count)(const uint64_t*, const uint64_t*,
                              const uint64_t*, size_t);
  size_t (*or_count)(const uint64_t*, const uint64_t*, size_t);
  size_t (*and_count_into)(const uint64_t*, const uint64_t*, uint64_t*,
                           size_t);
  void (*or_)(const uint64_t*, const uint64_t*, uint64_t*, size_t);
  size_t (*or_count_into)(const uint64_t*, const uint64_t*, uint64_t*, size_t);
  size_t (*or_and_count_into)(const uint64_t*, const uint64_t*,
                              const uint64_t*, uint64_t*, size_t);
  void (*and_or_count)(const uint64_t*, const uint64_t*, size_t, size_t*,
                       size_t*);
};

constexpr KernelTable kScalarTable = {
    Level::kScalar,       ScalarCount,       ScalarAndCount,
    ScalarAndNotCount,    ScalarAndAndNotCount, ScalarOrCount,
    ScalarAndCountInto,   ScalarOr,          ScalarOrCountInto,
    ScalarOrAndCountInto, ScalarAndOrCount,
};

#ifdef VEXUS_BITSET_SIMD
constexpr KernelTable kAvx2Table = {
    Level::kAvx2,       Avx2Count,       Avx2AndCount,
    Avx2AndNotCount,    Avx2AndAndNotCount, Avx2OrCount,
    Avx2AndCountInto,   Avx2Or,          Avx2OrCountInto,
    Avx2OrAndCountInto, Avx2AndOrCount,
};

constexpr KernelTable kAvx512Table = {
    Level::kAvx512,       Avx512Count,       Avx512AndCount,
    Avx512AndNotCount,    Avx512AndAndNotCount, Avx512OrCount,
    Avx512AndCountInto,   Avx512Or,          Avx512OrCountInto,
    Avx512OrAndCountInto, Avx512AndOrCount,
};
#endif

const KernelTable& TableFor(Level level) {
#ifdef VEXUS_BITSET_SIMD
  if (level == Level::kAvx512) return kAvx512Table;
  if (level == Level::kAvx2) return kAvx2Table;
#endif
  (void)level;
  return kScalarTable;
}

bool ForceScalarFromEnv() {
  const char* v = std::getenv("VEXUS_FORCE_SCALAR");
  // Any non-empty value other than literal "0" forces the scalar tier.
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

Level ResolveLevel() {
  if (ForceScalarFromEnv()) return Level::kScalar;
#ifdef VEXUS_BITSET_SIMD
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vpopcntdq")) {
    return Level::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

/// The active table. Resolved once at first use; only the testing hooks
/// ever store to it afterwards (documented as hostile to concurrent use).
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable& Active() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = &TableFor(ResolveLevel());
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Level ActiveLevel() { return Active().level; }

bool LevelSupported(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
#ifdef VEXUS_BITSET_SIMD
    case Level::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Level::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
    case Level::kAvx2:
    case Level::kAvx512:
      return false;
#endif
  }
  return false;
}

size_t Count(const uint64_t* a, size_t n) { return Active().count(a, n); }

size_t AndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  return Active().and_count(a, b, n);
}

size_t AndNotCount(const uint64_t* a, const uint64_t* b, size_t n) {
  return Active().and_not_count(a, b, n);
}

size_t AndAndNotCount(const uint64_t* a, const uint64_t* b, const uint64_t* c,
                      size_t n) {
  return Active().and_and_not_count(a, b, c, n);
}

size_t OrCount(const uint64_t* a, const uint64_t* b, size_t n) {
  return Active().or_count(a, b, n);
}

size_t AndCountInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                    size_t n) {
  return Active().and_count_into(a, b, out, n);
}

void Or(const uint64_t* a, const uint64_t* b, uint64_t* out, size_t n) {
  Active().or_(a, b, out, n);
}

size_t OrCountInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                   size_t n) {
  return Active().or_count_into(a, b, out, n);
}

size_t OrAndCountInto(const uint64_t* a, const uint64_t* b,
                      const uint64_t* mask, uint64_t* out, size_t n) {
  return Active().or_and_count_into(a, b, mask, out, n);
}

void AndOrCount(const uint64_t* a, const uint64_t* b, size_t n, size_t* inter,
                size_t* uni) {
  Active().and_or_count(a, b, n, inter, uni);
}

namespace internal {

void SetLevelForTesting(Level level) {
  VEXUS_CHECK(LevelSupported(level))
      << "kernel tier " << LevelName(level) << " not supported on this CPU";
  g_active.store(&TableFor(level), std::memory_order_release);
}

void ResetLevelForTesting() {
  g_active.store(&TableFor(ResolveLevel()), std::memory_order_release);
}

}  // namespace internal

}  // namespace vexus::bitset_kernels
