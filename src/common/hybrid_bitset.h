// Density-switched member-set container: the in-RAM twin of snapshot v2's
// per-group encoding choice. Small groups (the overwhelming majority of
// mined groups — a few hundred members out of 278,858 users) are stored as
// a strictly-ascending sorted id array, so per-candidate work is O(|group|)
// instead of O(U/64); groups above ~1/8 density switch to the dense Bitset
// and run the SIMD kernels (common/bitset_kernels). The form is canonical
// by content — every constructor and mutation normalizes against
// SparseThresholdFor(universe), and Set() transparently promotes a sparse
// set that crosses the threshold — so equality, hashing, and GroupStore
// dedup never see two forms of the same set.
//
// Every query returns exact integers (or floats derived from exact
// integers in a fixed order), so whether a group happens to be sparse or
// dense can never change greedy output — the same byte-identical gate the
// kernel tiers satisfy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/logging.h"

namespace vexus {

class HybridBitset {
 public:
  /// Member count at or below which a set over `universe` users stays in
  /// sparse (sorted id array) form. Mirrors snapshot v2's encoding switch:
  /// one uvarint byte per member vs universe/8 raw bitset bytes means the
  /// sparse encoding wins below ~1/8 density.
  static constexpr size_t SparseThresholdFor(size_t universe) {
    return universe / 8;
  }

  /// Empty set over a zero-sized universe.
  HybridBitset() = default;

  /// Empty set over `universe` users (sparse form).
  explicit HybridBitset(size_t universe) : universe_(universe) {}

  /// Builds from a dense bitset, choosing the form by density.
  static HybridBitset FromBitset(const Bitset& b);
  static HybridBitset FromBitset(Bitset&& b);

  /// Builds from strictly-ascending ids < universe (the snapshot v2 sparse
  /// decode path hands its uvarint-delta ids straight here — no word
  /// materialization for small groups). Promotes to dense above threshold.
  static HybridBitset FromSortedIds(size_t universe,
                                    std::vector<uint32_t> ids);

  /// Universe size (number of addressable users).
  size_t size() const { return universe_; }
  bool empty() const { return universe_ == 0; }

  /// True when stored as the sorted id array.
  bool is_sparse() const { return sparse_; }

  /// Number of members. O(1) sparse, O(words) dense.
  size_t Count() const {
    return sparse_ ? ids_.size() : dense_.Count();
  }

  bool None() const { return sparse_ ? ids_.empty() : dense_.None(); }

  bool Test(size_t i) const;

  /// Adds member `i`, transparently promoting to dense when the sparse
  /// form crosses the density threshold.
  void Set(size_t i);

  /// Index of the first member, or size() if none.
  size_t FindFirst() const;

  /// Content hash, equal to Bitset::Hash() of the same set regardless of
  /// form (the sparse path synthesizes the word stream on the fly).
  uint64_t Hash() const;

  /// Heap bytes of the active representation.
  size_t MemoryBytes() const {
    return sparse_ ? ids_.capacity() * sizeof(uint32_t)
                   : dense_.MemoryBytes();
  }

  /// Member ids in increasing order.
  std::vector<uint32_t> ToVector() const;

  /// Materializes the dense form (copying when already dense).
  Bitset ToBitset() const;

  /// The dense backing set; CHECK-fails when sparse. Snapshot encode uses
  /// this for raw-encoded groups (raw only wins above the density
  /// threshold, where the form is dense by invariant).
  const Bitset& dense_form() const {
    VEXUS_CHECK(!sparse_) << "dense_form() on a sparse HybridBitset";
    return dense_;
  }

  /// The sorted id array; CHECK-fails when dense.
  const std::vector<uint32_t>& sparse_ids() const {
    VEXUS_CHECK(sparse_) << "sparse_ids() on a dense HybridBitset";
    return ids_;
  }

  /// Re-canonicalizes the form by content (promote/demote across the
  /// threshold). Constructors and Set() already maintain this.
  void Normalize();

  /// Calls fn(id) for every member in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (sparse_) {
      for (uint32_t id : ids_) fn(id);
    } else {
      dense_.ForEach(fn);
    }
  }

  // --- queries against a dense Bitset (same universe) ---

  /// |this ∩ other|. O(|this|) sparse, SIMD kernel dense.
  size_t IntersectCount(const Bitset& other) const;

  /// |this ∩ ¬exclude| — the greedy coverage-gain kernel.
  size_t CountAndNot(const Bitset& exclude) const;

  /// |this ∩ other ∩ ¬exclude| in one pass.
  size_t IntersectCountAndNot(const Bitset& other, const Bitset& exclude) const;

  bool IsSubsetOf(const Bitset& other) const;

  double Jaccard(const Bitset& other) const;

  /// *out |= this.
  void OrInto(Bitset* out) const;

  /// *out = base | this (out must alias neither operand's storage when
  /// sparse; dense delegates to AssignUnion which allows out == base).
  void UnionInto(const Bitset& base, Bitset* out) const;

  /// this ∩ mask as a new hybrid set (normalized by the result's density).
  HybridBitset AndWith(const Bitset& mask) const;

  // --- word-subrange partials (horizontal sharding, common/shard_map.h) ---

  /// |this ∩ ¬exclude| restricted to words [word_begin, word_end) — the
  /// sharded trial-coverage partial. Summing over a word-aligned partition
  /// reproduces CountAndNot exactly (each member id lives in exactly one
  /// shard). Sparse: probes only the ids inside the range; dense: the
  /// subrange kernel.
  size_t CountAndNotRange(const Bitset& exclude, size_t word_begin,
                          size_t word_end) const;

  /// *out = base | this over words [word_begin, word_end) only. No resize:
  /// out must already share the universe, so different threads can fill
  /// disjoint shard ranges of the same output — the scattered rest-table
  /// build primitive.
  void UnionIntoRange(const Bitset& base, Bitset* out, size_t word_begin,
                      size_t word_end) const;

  /// Calls fn(id) for every member with id in [64·word_begin,
  /// 64·word_end), ascending — per-shard MinHash partial signatures walk
  /// members this way.
  template <typename Fn>
  void ForEachInRange(size_t word_begin, size_t word_end, Fn&& fn) const {
    if (sparse_) {
      for (size_t i = SparseLowerBound(word_begin * 64),
                  e = SparseLowerBound(word_end * 64);
           i < e; ++i) {
        fn(ids_[i]);
      }
    } else {
      const std::vector<uint64_t>& words = dense_.words();
      const size_t end = word_end < words.size() ? word_end : words.size();
      for (size_t w = word_begin; w < end; ++w) {
        uint64_t word = words[w];
        while (word != 0) {
          unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
          fn(static_cast<uint32_t>(w * 64 + bit));
          word &= word - 1;
        }
      }
    }
  }

  // --- queries against another HybridBitset (same universe) ---

  size_t IntersectCount(const HybridBitset& other) const;
  bool IsSubsetOf(const HybridBitset& other) const;
  double Jaccard(const HybridBitset& other) const;

  bool operator==(const HybridBitset& other) const;

  /// Ascending-id iteration regardless of form — the merged-walk primitive
  /// for order-sensitive float accumulation (index/similarity's
  /// WeightedJaccard must sum weights in exactly the order the dense word
  /// scan did, or the byte-identity gate breaks).
  class Cursor {
   public:
    explicit Cursor(const HybridBitset& h);
    bool AtEnd() const { return at_end_; }
    uint32_t Value() const { return value_; }
    void Next();

   private:
    void ScanDense();

    const std::vector<uint32_t>* ids_ = nullptr;  // sparse walk
    size_t idx_ = 0;
    const uint64_t* words_ = nullptr;  // dense walk
    size_t num_words_ = 0;
    size_t word_idx_ = 0;
    uint64_t cur_word_ = 0;
    uint32_t value_ = 0;
    bool at_end_ = true;
  };

 private:
  void CheckUniverse(size_t other_universe) const {
    // Hard CHECK for the same reason as Bitset::CheckCompatible — sparse
    // ids index into the other operand's words.
    VEXUS_CHECK(universe_ == other_universe)
        << "bitset universe mismatch: " << universe_ << " vs "
        << other_universe;
  }
  void PromoteToDense();
  /// Index of the first sparse id ≥ `id_bound` (ids_ is strictly
  /// ascending). `id_bound` is a 64-bit value so a word range covering the
  /// top of a 2^32 universe cannot wrap.
  size_t SparseLowerBound(uint64_t id_bound) const;

  size_t universe_ = 0;
  bool sparse_ = true;
  std::vector<uint32_t> ids_;  // strictly ascending; valid when sparse_
  Bitset dense_;               // valid when !sparse_
};

// --- free interop with Bitset accumulators (minimizes call-site churn:
// `covered |= grp.members()` and friends keep compiling) ---

inline Bitset& operator|=(Bitset& lhs, const HybridBitset& rhs) {
  rhs.OrInto(&lhs);
  return lhs;
}

inline Bitset operator|(const Bitset& lhs, const HybridBitset& rhs) {
  Bitset out = lhs;
  rhs.OrInto(&out);
  return out;
}

inline Bitset operator|(const HybridBitset& lhs, const Bitset& rhs) {
  return rhs | lhs;
}

/// Intersection with a dense set yields a dense set (callers use it as a
/// working accumulator, e.g. SimulatedExplorer's remaining-target mask).
Bitset operator&(const HybridBitset& lhs, const Bitset& rhs);
inline Bitset operator&(const Bitset& lhs, const HybridBitset& rhs) {
  return rhs & lhs;
}

bool operator==(const HybridBitset& lhs, const Bitset& rhs);
inline bool operator==(const Bitset& lhs, const HybridBitset& rhs) {
  return rhs == lhs;
}

}  // namespace vexus
