// Result<T>: a value or a Status, in the StatusOr/arrow::Result idiom.
#pragma once

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace vexus {

/// Holds either a T (on success) or a non-OK Status (on failure).
///
/// Accessing the value of a failed Result is a programmer error (DCHECK).
/// Typical use:
///
///   Result<Dataset> r = Dataset::FromCsv(path);
///   VEXUS_RETURN_NOT_OK(r.status());
///   Dataset ds = std::move(r).ValueOrDie();
///
/// or with the VEXUS_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Implicit from value: success.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. DCHECKs that the status is not OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    VEXUS_DCHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// OK when holding a value, otherwise the stored error.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Value access; DCHECKs ok().
  const T& ValueOrDie() const& {
    VEXUS_DCHECK(ok()) << status().ToString();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    VEXUS_DCHECK(ok()) << status().ToString();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    VEXUS_DCHECK(ok()) << status().ToString();
    return std::move(std::get<T>(repr_));
  }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const& {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates an expression producing Result<T>; on error returns the Status,
/// otherwise assigns the value to `lhs` (which must be declarable with auto).
#define VEXUS_ASSIGN_OR_RETURN(lhs, expr)                \
  VEXUS_ASSIGN_OR_RETURN_IMPL_(                          \
      VEXUS_CONCAT_(_vexus_result_, __LINE__), lhs, expr)

#define VEXUS_CONCAT_INNER_(a, b) a##b
#define VEXUS_CONCAT_(a, b) VEXUS_CONCAT_INNER_(a, b)
#define VEXUS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

}  // namespace vexus
