// ShardMap — the horizontal partitioning of the user universe (ROADMAP
// item 2: "278,858 users fast" → "millions of users flat").
//
// Each shard owns a contiguous user-id range whose boundaries are multiples
// of 64, i.e. whole 64-bit words of every Bitset over the universe. That
// alignment is the load-bearing property: a popcount (or fused
// AND/OR/ANDNOT popcount) over the whole universe equals the sum of the
// same kernel applied to each shard's word subrange, *exactly* — integer
// partials, not float partials — so per-shard scatter followed by a fold in
// shard order reproduces the unsharded integers bit for bit. Every float
// the greedy objective or the index builder derives from those integers is
// then byte-identical across shard counts (the same argument that makes
// kernel tiers and sparse/dense forms interchangeable).
//
// The map is a pure function of (num_users, num_shards): words are dealt
// out as evenly as possible (first `words % S` shards get one extra), and
// the shard count is clamped so no shard is empty. Two processes given the
// same pair compute the same boundaries — snapshot shard sections, the
// scatter-gather greedy, and the serving layer's per-shard counters all
// rely on that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vexus {

class ShardMap {
 public:
  struct Range {
    /// Owned users: [user_begin, user_end).
    uint32_t user_begin = 0;
    uint32_t user_end = 0;
    /// Owned Bitset words: [word_begin, word_end). user_begin == 64 *
    /// word_begin always; user_end == 64 * word_end except for the last
    /// shard, which owns the universe tail.
    size_t word_begin = 0;
    size_t word_end = 0;

    size_t num_words() const { return word_end - word_begin; }
    size_t num_users() const { return user_end - user_begin; }
    bool operator==(const Range&) const = default;
  };

  /// Single implicit shard over an empty universe.
  ShardMap() : ShardMap(0, 1) {}

  /// Partitions `num_users` across `num_shards` word-aligned contiguous
  /// ranges. `num_shards` is clamped to [1, max(1, ceil(num_users / 64))]
  /// so every shard owns at least one word (a universe smaller than 64·S
  /// simply gets fewer shards).
  ShardMap(size_t num_users, size_t num_shards);

  size_t num_users() const { return num_users_; }
  size_t num_shards() const { return ranges_.size(); }

  const Range& shard(size_t s) const { return ranges_[s]; }
  const std::vector<Range>& ranges() const { return ranges_; }

  /// The shard owning `user` (which must be < num_users()).
  size_t ShardOf(uint32_t user) const;

  bool operator==(const ShardMap&) const = default;

 private:
  size_t num_users_ = 0;
  std::vector<Range> ranges_;
};

}  // namespace vexus
