#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vexus {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<int64_t> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

std::string WithThousands(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (size_t i = digits.size(); i-- > 0;) {
    out += digits[i];
    if (++count == 3 && i != 0) {
      out += ',';
      count = 0;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace vexus
