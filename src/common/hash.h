// Hashing utilities: 64-bit mixing and combination, plus string hashing used
// by the MinHash signatures in src/index.
#pragma once

#include <cstdint>
#include <string_view>

namespace vexus {

/// Finalizing 64-bit mixer (MurmurHash3 fmix64). Bijective; good avalanche.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-dependent combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// FNV-1a over bytes.
uint64_t HashBytes(const void* data, size_t len);

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace vexus
