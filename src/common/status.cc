#include "common/status.h"

namespace vexus {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

StatusCode StatusCodeFromString(std::string_view name) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDeadlineExceeded); ++c) {
    auto code = static_cast<StatusCode>(c);
    if (StatusCodeToString(code) == name) return code;
  }
  return StatusCode::kUnknown;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

}  // namespace vexus
