// Dynamic bitset tuned for user-set algebra.
//
// Group members are represented as bitsets over the user universe; the hot
// operations of the whole system — Jaccard similarity (index construction,
// experiment E3) and coverage accumulation (greedy selection, experiment E1)
// — reduce to word-parallel AND/OR + popcount, which this class provides
// without materializing temporaries (IntersectCount / UnionCount / Jaccard).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vexus {

class Bitset {
 public:
  /// Empty set over a zero-sized universe.
  Bitset() = default;

  /// Set over a universe of `size` elements, all initially absent.
  explicit Bitset(size_t size);

  /// Universe size (number of addressable bits).
  size_t size() const { return size_; }

  /// True if the universe is empty.
  bool empty() const { return size_ == 0; }

  /// Grows (or shrinks) the universe; new bits are clear.
  void Resize(size_t size);

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// Sets all bits / clears all bits.
  void SetAll();
  void ClearAll();

  /// Number of set bits. O(words), word-parallel.
  size_t Count() const;

  /// True iff no bit is set.
  bool None() const;

  /// True iff every element of this set is also in `other` (sizes must match).
  bool IsSubsetOf(const Bitset& other) const;

  /// True iff the two sets share no element (sizes must match).
  bool IsDisjointWith(const Bitset& other) const;

  /// |this ∩ other| without allocating. Sizes must match.
  size_t IntersectCount(const Bitset& other) const;

  /// |this ∩ ¬exclude| without allocating. Sizes must match.
  size_t CountAndNot(const Bitset& exclude) const;

  /// |this ∩ other ∩ ¬exclude| in one word-parallel pass, no temporaries.
  /// The greedy swap loop's delta evaluator uses this as its inner kernel:
  /// "how many anchor users would candidate g newly cover?" is
  /// g.IntersectCountAndNot(anchor, rest) — one pass instead of three.
  size_t IntersectCountAndNot(const Bitset& other, const Bitset& exclude) const;

  /// Writes this ∩ other into *out (resized to this universe) and returns
  /// |this ∩ other| — intersection and popcount fused into one pass. `out`
  /// may alias neither operand.
  size_t IntersectCountInto(const Bitset& other, Bitset* out) const;

  /// this = a ∪ b in one pass (resized to a's universe; a and b must
  /// match). Avoids the copy+|= double pass when building prefix/suffix
  /// union tables.
  void AssignUnion(const Bitset& a, const Bitset& b);

  /// this = a ∪ b and returns |a ∪ b| — union and popcount fused into a
  /// single pass. The greedy rest(pos) table build uses this: the union's
  /// count is needed anyway for the coverage objective.
  size_t AssignUnionCount(const Bitset& a, const Bitset& b);

  /// this = (a ∪ b) ∩ mask and returns its cardinality in one pass — the
  /// anchored-greedy rest(pos) build (union of prefix/suffix coverage
  /// restricted to the anchor's members) in one sweep instead of three.
  size_t AssignUnionMaskedCount(const Bitset& a, const Bitset& b,
                                const Bitset& mask);

  /// |this ∪ other| without allocating. Sizes must match.
  size_t UnionCount(const Bitset& other) const;

  // --- Word-subrange partials (horizontal sharding, common/shard_map.h) ---
  //
  // Each runs the same kernel as its whole-universe counterpart but only
  // over words [word_begin, word_end). Because shard boundaries are
  // word-aligned and counts are integers, summing the partials over a
  // partition of the word array reproduces the whole-universe count
  // *exactly* — the byte-identity foundation of the scatter-gather greedy.

  /// popcount of words [word_begin, word_end).
  size_t CountRange(size_t word_begin, size_t word_end) const;

  /// |this ∩ other| restricted to the word subrange.
  size_t IntersectCountRange(const Bitset& other, size_t word_begin,
                             size_t word_end) const;

  /// |this ∩ ¬exclude| restricted to the word subrange.
  size_t CountAndNotRange(const Bitset& exclude, size_t word_begin,
                          size_t word_end) const;

  /// this = a ∪ b over the word subrange only (all operands must already
  /// share this universe — no resize, so disjoint subranges are safe to
  /// fill from different threads); returns the subrange's popcount.
  size_t AssignUnionCountRange(const Bitset& a, const Bitset& b,
                               size_t word_begin, size_t word_end);

  /// this = (a ∪ b) ∩ mask over the word subrange only; returns the
  /// subrange's popcount. Same no-resize contract as AssignUnionCountRange.
  size_t AssignUnionMaskedCountRange(const Bitset& a, const Bitset& b,
                                     const Bitset& mask, size_t word_begin,
                                     size_t word_end);

  /// Copies src's words [word_begin, word_end) into this (same universe;
  /// no resize — subrange writes from different threads stay disjoint).
  void AssignRange(const Bitset& src, size_t word_begin, size_t word_end);

  /// this = a ∪ b over the word subrange only, without the popcount.
  void AssignUnionRange(const Bitset& a, const Bitset& b, size_t word_begin,
                        size_t word_end);

  /// Jaccard similarity |a∩b| / |a∪b|; 1.0 when both sets are empty.
  double Jaccard(const Bitset& other) const;

  /// In-place set algebra. Sizes must match.
  Bitset& operator&=(const Bitset& other);
  Bitset& operator|=(const Bitset& other);
  Bitset& operator^=(const Bitset& other);
  /// Set difference: removes every element of `other` from this.
  Bitset& Subtract(const Bitset& other);

  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator^(Bitset a, const Bitset& b) { return a ^= b; }

  bool operator==(const Bitset& other) const;

  /// Read-only view of the backing 64-bit words (bit i of the set lives at
  /// words()[i / 64] >> (i % 64)). Tail bits beyond size() are zero by class
  /// invariant — snapshot serialization (core/snapshot.cc) writes these
  /// words verbatim as the dense "raw bitset" group encoding.
  const std::vector<uint64_t>& words() const { return words_; }

  /// Adopts `words` as the backing store of a `size`-bit universe — the
  /// deserialization inverse of words(). Returns false (leaving the set
  /// unchanged) when the word count does not match WordsFor(size) or a tail
  /// bit beyond `size` is set; snapshot load turns that into
  /// Status::Corruption rather than silently masking flipped bits.
  bool AdoptWords(size_t size, std::vector<uint64_t> words);

  /// Indices of set bits in increasing order.
  std::vector<uint32_t> ToVector() const;

  /// Builds a set from element indices (duplicates allowed).
  static Bitset FromVector(size_t size, const std::vector<uint32_t>& elems);

  /// Calls fn(index) for every set bit in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        fn(static_cast<uint32_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
  }

  /// Index of the first set bit, or size() if none.
  size_t FindFirst() const;

  /// 64-bit content hash (order-independent by construction).
  uint64_t Hash() const;

  /// Bytes of heap memory used by the word array.
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  void CheckCompatible(const Bitset& other) const;
  /// Clears bits beyond size_ in the last word (maintained as an invariant).
  void MaskTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace vexus
