// Status: lightweight error propagation for fallible library paths.
//
// Follows the RocksDB/Arrow idiom: functions that can fail for reasons the
// caller must handle return a Status (or a Result<T>, see result.h) instead of
// throwing. Programmer errors are asserted with VEXUS_DCHECK (logging.h).
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace vexus {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kCorruption = 7,
  kNotSupported = 8,
  kResourceExhausted = 9,
  kAborted = 10,
  kUnknown = 11,
  kDeadlineExceeded = 12,
};

/// Returns a stable human-readable name for a code ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString; returns kUnknown for unrecognized names.
/// Used by the serving layer's wire codec (src/server/protocol.h) to round-
/// trip status codes through line-delimited JSON.
StatusCode StatusCodeFromString(std::string_view name);

/// A Status holds either success (OK) or an error code plus a message.
///
/// Statuses are cheap to copy in the OK case (no allocation). Construction of
/// error statuses goes through the named factories: Status::InvalidArgument(...)
/// etc. A Status must be checked by the caller; helper macros
/// VEXUS_RETURN_NOT_OK / VEXUS_ASSERT_OK make that ergonomic.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Named factory: success.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// Constructs a status from an arbitrary code ("OK" codes ignore msg).
  /// Needed by the wire codec which decodes codes received as strings.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  /// True iff the status is success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Error message; empty for OK.
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prepends context to the message of an error status; no-op on OK.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define VEXUS_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::vexus::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace vexus
