#include "common/hybrid_bitset.h"

#include <algorithm>

namespace vexus {

namespace {
constexpr size_t kWordBits = 64;
size_t WordsFor(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

HybridBitset HybridBitset::FromBitset(const Bitset& b) {
  HybridBitset h(b.size());
  size_t count = b.Count();
  if (count <= SparseThresholdFor(b.size())) {
    h.ids_.reserve(count);
    b.ForEach([&h](uint32_t id) { h.ids_.push_back(id); });
  } else {
    h.sparse_ = false;
    h.dense_ = b;
  }
  return h;
}

HybridBitset HybridBitset::FromBitset(Bitset&& b) {
  HybridBitset h(b.size());
  size_t count = b.Count();
  if (count <= SparseThresholdFor(b.size())) {
    h.ids_.reserve(count);
    b.ForEach([&h](uint32_t id) { h.ids_.push_back(id); });
  } else {
    h.sparse_ = false;
    h.dense_ = std::move(b);
  }
  return h;
}

HybridBitset HybridBitset::FromSortedIds(size_t universe,
                                         std::vector<uint32_t> ids) {
  HybridBitset h(universe);
  for (size_t i = 0; i < ids.size(); ++i) {
    VEXUS_DCHECK(ids[i] < universe) << "id " << ids[i] << " out of universe";
    VEXUS_DCHECK(i == 0 || ids[i - 1] < ids[i]) << "ids not strictly ascending";
  }
  h.ids_ = std::move(ids);
  if (h.ids_.size() > SparseThresholdFor(universe)) h.PromoteToDense();
  return h;
}

bool HybridBitset::Test(size_t i) const {
  VEXUS_DCHECK(i < universe_);
  if (sparse_) {
    return std::binary_search(ids_.begin(), ids_.end(),
                              static_cast<uint32_t>(i));
  }
  return dense_.Test(i);
}

void HybridBitset::Set(size_t i) {
  VEXUS_DCHECK(i < universe_) << "bit " << i << " out of range " << universe_;
  if (!sparse_) {
    dense_.Set(i);
    return;
  }
  auto it = std::lower_bound(ids_.begin(), ids_.end(),
                             static_cast<uint32_t>(i));
  if (it != ids_.end() && *it == static_cast<uint32_t>(i)) return;
  ids_.insert(it, static_cast<uint32_t>(i));
  if (ids_.size() > SparseThresholdFor(universe_)) PromoteToDense();
}

size_t HybridBitset::FindFirst() const {
  if (sparse_) return ids_.empty() ? universe_ : ids_.front();
  return dense_.FindFirst();
}

uint64_t HybridBitset::Hash() const {
  if (!sparse_) return dense_.Hash();
  // Synthesize the exact word stream Bitset::Hash would absorb — including
  // the zero words between runs — so the hash is form-independent.
  uint64_t h = 1469598103934665603ULL ^ universe_;
  size_t num_words = WordsFor(universe_);
  size_t idx = 0;
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t word = 0;
    while (idx < ids_.size() && ids_[idx] / kWordBits == w) {
      word |= uint64_t{1} << (ids_[idx] % kWordBits);
      ++idx;
    }
    h ^= word;
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<uint32_t> HybridBitset::ToVector() const {
  if (sparse_) return ids_;
  return dense_.ToVector();
}

Bitset HybridBitset::ToBitset() const {
  if (!sparse_) return dense_;
  Bitset b(universe_);
  for (uint32_t id : ids_) b.Set(id);
  return b;
}

void HybridBitset::Normalize() {
  if (sparse_) {
    if (ids_.size() > SparseThresholdFor(universe_)) PromoteToDense();
    return;
  }
  size_t count = dense_.Count();
  if (count <= SparseThresholdFor(universe_)) {
    ids_.clear();
    ids_.reserve(count);
    dense_.ForEach([this](uint32_t id) { ids_.push_back(id); });
    dense_ = Bitset();
    sparse_ = true;
  }
}

void HybridBitset::PromoteToDense() {
  dense_ = Bitset(universe_);
  for (uint32_t id : ids_) dense_.Set(id);
  ids_.clear();
  ids_.shrink_to_fit();
  sparse_ = false;
}

// --- vs dense Bitset ---

size_t HybridBitset::IntersectCount(const Bitset& other) const {
  CheckUniverse(other.size());
  if (!sparse_) return dense_.IntersectCount(other);
  size_t c = 0;
  for (uint32_t id : ids_) c += other.Test(id) ? 1 : 0;
  return c;
}

size_t HybridBitset::CountAndNot(const Bitset& exclude) const {
  CheckUniverse(exclude.size());
  if (!sparse_) return dense_.CountAndNot(exclude);
  size_t c = 0;
  for (uint32_t id : ids_) c += exclude.Test(id) ? 0 : 1;
  return c;
}

size_t HybridBitset::IntersectCountAndNot(const Bitset& other,
                                          const Bitset& exclude) const {
  CheckUniverse(other.size());
  CheckUniverse(exclude.size());
  if (!sparse_) return dense_.IntersectCountAndNot(other, exclude);
  size_t c = 0;
  for (uint32_t id : ids_) {
    c += (other.Test(id) && !exclude.Test(id)) ? 1 : 0;
  }
  return c;
}

bool HybridBitset::IsSubsetOf(const Bitset& other) const {
  CheckUniverse(other.size());
  if (!sparse_) return dense_.IsSubsetOf(other);
  for (uint32_t id : ids_) {
    if (!other.Test(id)) return false;
  }
  return true;
}

double HybridBitset::Jaccard(const Bitset& other) const {
  CheckUniverse(other.size());
  if (!sparse_) return dense_.Jaccard(other);
  size_t inter = IntersectCount(other);
  size_t uni = other.Count() + ids_.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

void HybridBitset::OrInto(Bitset* out) const {
  CheckUniverse(out->size());
  if (!sparse_) {
    *out |= dense_;
    return;
  }
  for (uint32_t id : ids_) out->Set(id);
}

void HybridBitset::UnionInto(const Bitset& base, Bitset* out) const {
  CheckUniverse(base.size());
  if (!sparse_) {
    out->AssignUnion(base, dense_);
    return;
  }
  *out = base;
  for (uint32_t id : ids_) out->Set(id);
}

size_t HybridBitset::SparseLowerBound(uint64_t id_bound) const {
  auto it = std::lower_bound(
      ids_.begin(), ids_.end(), id_bound,
      [](uint32_t id, uint64_t bound) { return id < bound; });
  return static_cast<size_t>(it - ids_.begin());
}

size_t HybridBitset::CountAndNotRange(const Bitset& exclude,
                                      size_t word_begin,
                                      size_t word_end) const {
  CheckUniverse(exclude.size());
  if (!sparse_) {
    return dense_.CountAndNotRange(exclude, word_begin, word_end);
  }
  size_t c = 0;
  for (size_t i = SparseLowerBound(word_begin * 64),
              e = SparseLowerBound(word_end * 64);
       i < e; ++i) {
    c += exclude.Test(ids_[i]) ? 0 : 1;
  }
  return c;
}

void HybridBitset::UnionIntoRange(const Bitset& base, Bitset* out,
                                  size_t word_begin, size_t word_end) const {
  CheckUniverse(base.size());
  CheckUniverse(out->size());
  if (!sparse_) {
    out->AssignUnionRange(base, dense_, word_begin, word_end);
    return;
  }
  out->AssignRange(base, word_begin, word_end);
  for (size_t i = SparseLowerBound(word_begin * 64),
              e = SparseLowerBound(word_end * 64);
       i < e; ++i) {
    out->Set(ids_[i]);
  }
}

HybridBitset HybridBitset::AndWith(const Bitset& mask) const {
  CheckUniverse(mask.size());
  if (sparse_) {
    std::vector<uint32_t> kept;
    for (uint32_t id : ids_) {
      if (mask.Test(id)) kept.push_back(id);
    }
    return FromSortedIds(universe_, std::move(kept));
  }
  Bitset out;
  dense_.IntersectCountInto(mask, &out);
  return FromBitset(std::move(out));
}

// --- vs HybridBitset ---

size_t HybridBitset::IntersectCount(const HybridBitset& other) const {
  CheckUniverse(other.universe_);
  if (!sparse_ && !other.sparse_) {
    return dense_.IntersectCount(other.dense_);
  }
  if (sparse_ && other.sparse_) {
    size_t c = 0, i = 0, j = 0;
    while (i < ids_.size() && j < other.ids_.size()) {
      if (ids_[i] < other.ids_[j]) {
        ++i;
      } else if (ids_[i] > other.ids_[j]) {
        ++j;
      } else {
        ++c;
        ++i;
        ++j;
      }
    }
    return c;
  }
  const std::vector<uint32_t>& sp = sparse_ ? ids_ : other.ids_;
  const Bitset& dn = sparse_ ? other.dense_ : dense_;
  size_t c = 0;
  for (uint32_t id : sp) c += dn.Test(id) ? 1 : 0;
  return c;
}

bool HybridBitset::IsSubsetOf(const HybridBitset& other) const {
  CheckUniverse(other.universe_);
  if (!sparse_ && !other.sparse_) return dense_.IsSubsetOf(other.dense_);
  if (sparse_) {
    if (other.sparse_) {
      if (ids_.size() > other.ids_.size()) return false;
      size_t j = 0;
      for (uint32_t id : ids_) {
        while (j < other.ids_.size() && other.ids_[j] < id) ++j;
        if (j >= other.ids_.size() || other.ids_[j] != id) return false;
        ++j;
      }
      return true;
    }
    for (uint32_t id : ids_) {
      if (!other.dense_.Test(id)) return false;
    }
    return true;
  }
  // Dense ⊆ sparse: by the canonical-form invariant this means a big set
  // inside a small one — cheap count check first, then membership walk.
  if (dense_.Count() > other.ids_.size()) return false;
  bool ok = true;
  dense_.ForEach([&](uint32_t id) {
    if (ok && !std::binary_search(other.ids_.begin(), other.ids_.end(), id)) {
      ok = false;
    }
  });
  return ok;
}

double HybridBitset::Jaccard(const HybridBitset& other) const {
  CheckUniverse(other.universe_);
  if (!sparse_ && !other.sparse_) return dense_.Jaccard(other.dense_);
  size_t inter = IntersectCount(other);
  size_t uni = Count() + other.Count() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

bool HybridBitset::operator==(const HybridBitset& other) const {
  if (universe_ != other.universe_) return false;
  if (sparse_ && other.sparse_) return ids_ == other.ids_;
  if (!sparse_ && !other.sparse_) return dense_ == other.dense_;
  // Mixed forms of equal content cannot happen under the canonical-form
  // invariant, but compare by content anyway so the class has no hidden
  // normalization precondition.
  const HybridBitset& sp = sparse_ ? *this : other;
  const HybridBitset& dn = sparse_ ? other : *this;
  if (sp.ids_.size() != dn.dense_.Count()) return false;
  for (uint32_t id : sp.ids_) {
    if (!dn.dense_.Test(id)) return false;
  }
  return true;
}

// --- Cursor ---

HybridBitset::Cursor::Cursor(const HybridBitset& h) {
  if (h.sparse_) {
    ids_ = &h.ids_;
    at_end_ = ids_->empty();
    if (!at_end_) value_ = (*ids_)[0];
  } else {
    words_ = h.dense_.words().data();
    num_words_ = h.dense_.words().size();
    at_end_ = false;
    ScanDense();
  }
}

void HybridBitset::Cursor::ScanDense() {
  while (cur_word_ == 0) {
    if (word_idx_ >= num_words_) {
      at_end_ = true;
      return;
    }
    cur_word_ = words_[word_idx_++];
  }
  // word_idx_ has already advanced past the word being consumed.
  value_ = static_cast<uint32_t>((word_idx_ - 1) * kWordBits +
                                 __builtin_ctzll(cur_word_));
  cur_word_ &= cur_word_ - 1;
}

void HybridBitset::Cursor::Next() {
  if (at_end_) return;
  if (ids_ != nullptr) {
    ++idx_;
    if (idx_ >= ids_->size()) {
      at_end_ = true;
    } else {
      value_ = (*ids_)[idx_];
    }
    return;
  }
  ScanDense();
}

// --- free operators ---

Bitset operator&(const HybridBitset& lhs, const Bitset& rhs) {
  if (!lhs.is_sparse()) return lhs.dense_form() & rhs;
  Bitset out(rhs.size());
  for (uint32_t id : lhs.sparse_ids()) {
    if (rhs.Test(id)) out.Set(id);
  }
  return out;
}

bool operator==(const HybridBitset& lhs, const Bitset& rhs) {
  if (lhs.size() != rhs.size()) return false;
  if (!lhs.is_sparse()) return lhs.dense_form() == rhs;
  if (lhs.Count() != rhs.Count()) return false;
  for (uint32_t id : lhs.sparse_ids()) {
    if (!rhs.Test(id)) return false;
  }
  return true;
}

}  // namespace vexus
