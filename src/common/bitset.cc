#include "common/bitset.h"

#include "common/bitset_kernels.h"
#include "common/logging.h"

namespace vexus {

namespace {
constexpr size_t kWordBits = 64;
size_t WordsFor(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

namespace kernels = ::vexus::bitset_kernels;

Bitset::Bitset(size_t size) : size_(size), words_(WordsFor(size), 0) {}

void Bitset::Resize(size_t size) {
  size_ = size;
  words_.resize(WordsFor(size), 0);
  MaskTail();
}

void Bitset::Set(size_t i) {
  VEXUS_DCHECK(i < size_) << "bit " << i << " out of range " << size_;
  words_[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
}

void Bitset::Clear(size_t i) {
  VEXUS_DCHECK(i < size_);
  words_[i / kWordBits] &= ~(uint64_t{1} << (i % kWordBits));
}

bool Bitset::Test(size_t i) const {
  VEXUS_DCHECK(i < size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void Bitset::SetAll() {
  for (auto& w : words_) w = ~uint64_t{0};
  MaskTail();
}

void Bitset::ClearAll() {
  for (auto& w : words_) w = 0;
}

size_t Bitset::Count() const {
  return kernels::Count(words_.data(), words_.size());
}

bool Bitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool Bitset::IsDisjointWith(const Bitset& other) const {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return false;
  }
  return true;
}

size_t Bitset::IntersectCount(const Bitset& other) const {
  CheckCompatible(other);
  return kernels::AndCount(words_.data(), other.words_.data(), words_.size());
}

size_t Bitset::CountAndNot(const Bitset& exclude) const {
  CheckCompatible(exclude);
  return kernels::AndNotCount(words_.data(), exclude.words_.data(),
                              words_.size());
}

size_t Bitset::IntersectCountAndNot(const Bitset& other,
                                    const Bitset& exclude) const {
  CheckCompatible(other);
  CheckCompatible(exclude);
  return kernels::AndAndNotCount(words_.data(), other.words_.data(),
                                 exclude.words_.data(), words_.size());
}

size_t Bitset::IntersectCountInto(const Bitset& other, Bitset* out) const {
  CheckCompatible(other);
  out->size_ = size_;
  out->words_.resize(words_.size());
  return kernels::AndCountInto(words_.data(), other.words_.data(),
                               out->words_.data(), words_.size());
}

void Bitset::AssignUnion(const Bitset& a, const Bitset& b) {
  a.CheckCompatible(b);
  size_ = a.size_;
  words_.resize(a.words_.size());
  kernels::Or(a.words_.data(), b.words_.data(), words_.data(), words_.size());
}

size_t Bitset::AssignUnionCount(const Bitset& a, const Bitset& b) {
  a.CheckCompatible(b);
  size_ = a.size_;
  words_.resize(a.words_.size());
  return kernels::OrCountInto(a.words_.data(), b.words_.data(), words_.data(),
                              words_.size());
}

size_t Bitset::AssignUnionMaskedCount(const Bitset& a, const Bitset& b,
                                      const Bitset& mask) {
  a.CheckCompatible(b);
  a.CheckCompatible(mask);
  size_ = a.size_;
  words_.resize(a.words_.size());
  return kernels::OrAndCountInto(a.words_.data(), b.words_.data(),
                                 mask.words_.data(), words_.data(),
                                 words_.size());
}

size_t Bitset::CountRange(size_t word_begin, size_t word_end) const {
  VEXUS_DCHECK(word_begin <= word_end && word_end <= words_.size());
  return kernels::Count(words_.data() + word_begin, word_end - word_begin);
}

size_t Bitset::IntersectCountRange(const Bitset& other, size_t word_begin,
                                   size_t word_end) const {
  CheckCompatible(other);
  VEXUS_DCHECK(word_begin <= word_end && word_end <= words_.size());
  return kernels::AndCount(words_.data() + word_begin,
                           other.words_.data() + word_begin,
                           word_end - word_begin);
}

size_t Bitset::CountAndNotRange(const Bitset& exclude, size_t word_begin,
                                size_t word_end) const {
  CheckCompatible(exclude);
  VEXUS_DCHECK(word_begin <= word_end && word_end <= words_.size());
  return kernels::AndNotCount(words_.data() + word_begin,
                              exclude.words_.data() + word_begin,
                              word_end - word_begin);
}

size_t Bitset::AssignUnionCountRange(const Bitset& a, const Bitset& b,
                                     size_t word_begin, size_t word_end) {
  CheckCompatible(a);
  a.CheckCompatible(b);
  VEXUS_DCHECK(word_begin <= word_end && word_end <= words_.size());
  return kernels::OrCountInto(a.words_.data() + word_begin,
                              b.words_.data() + word_begin,
                              words_.data() + word_begin,
                              word_end - word_begin);
}

size_t Bitset::AssignUnionMaskedCountRange(const Bitset& a, const Bitset& b,
                                           const Bitset& mask,
                                           size_t word_begin,
                                           size_t word_end) {
  CheckCompatible(a);
  a.CheckCompatible(b);
  a.CheckCompatible(mask);
  VEXUS_DCHECK(word_begin <= word_end && word_end <= words_.size());
  return kernels::OrAndCountInto(
      a.words_.data() + word_begin, b.words_.data() + word_begin,
      mask.words_.data() + word_begin, words_.data() + word_begin,
      word_end - word_begin);
}

void Bitset::AssignRange(const Bitset& src, size_t word_begin,
                         size_t word_end) {
  CheckCompatible(src);
  VEXUS_DCHECK(word_begin <= word_end && word_end <= words_.size());
  for (size_t w = word_begin; w < word_end; ++w) words_[w] = src.words_[w];
}

void Bitset::AssignUnionRange(const Bitset& a, const Bitset& b,
                              size_t word_begin, size_t word_end) {
  CheckCompatible(a);
  a.CheckCompatible(b);
  VEXUS_DCHECK(word_begin <= word_end && word_end <= words_.size());
  kernels::Or(a.words_.data() + word_begin, b.words_.data() + word_begin,
              words_.data() + word_begin, word_end - word_begin);
}

size_t Bitset::UnionCount(const Bitset& other) const {
  CheckCompatible(other);
  return kernels::OrCount(words_.data(), other.words_.data(), words_.size());
}

double Bitset::Jaccard(const Bitset& other) const {
  CheckCompatible(other);
  size_t inter = 0, uni = 0;
  kernels::AndOrCount(words_.data(), other.words_.data(), words_.size(),
                      &inter, &uni);
  if (uni == 0) return 1.0;  // two empty sets are identical
  return static_cast<double>(inter) / static_cast<double>(uni);
}

Bitset& Bitset::operator&=(const Bitset& other) {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  CheckCompatible(other);
  kernels::Or(words_.data(), other.words_.data(), words_.data(),
              words_.size());
  return *this;
}

Bitset& Bitset::operator^=(const Bitset& other) {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

Bitset& Bitset::Subtract(const Bitset& other) {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool Bitset::operator==(const Bitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

bool Bitset::AdoptWords(size_t size, std::vector<uint64_t> words) {
  if (words.size() != WordsFor(size)) return false;
  size_t tail = size % kWordBits;
  if (tail != 0 && !words.empty() &&
      (words.back() & ~((uint64_t{1} << tail) - 1)) != 0) {
    return false;  // a bit beyond the universe is set — corrupt input
  }
  size_ = size;
  words_ = std::move(words);
  return true;
}

std::vector<uint32_t> Bitset::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEach([&out](uint32_t i) { out.push_back(i); });
  return out;
}

Bitset Bitset::FromVector(size_t size, const std::vector<uint32_t>& elems) {
  Bitset b(size);
  for (uint32_t e : elems) b.Set(e);
  return b;
}

size_t Bitset::FindFirst() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits + static_cast<size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return size_;
}

uint64_t Bitset::Hash() const {
  // FNV-1a over words plus the size, so sets over different universes differ.
  uint64_t h = 1469598103934665603ULL ^ size_;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ULL;
  }
  return h;
}

void Bitset::CheckCompatible(const Bitset& other) const {
  // Hard CHECK, not DCHECK: the kernel entry points read raw word arrays,
  // and a universe mismatch in Release used to sail past the compiled-out
  // DCHECK straight into an out-of-bounds read. Fail loudly in every build.
  VEXUS_CHECK(size_ == other.size_)
      << "bitset universe mismatch: " << size_ << " vs " << other.size_;
}

void Bitset::MaskTail() {
  size_t tail = size_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

}  // namespace vexus
