#include "common/bitset.h"

#include "common/logging.h"

namespace vexus {

namespace {
constexpr size_t kWordBits = 64;
size_t WordsFor(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

Bitset::Bitset(size_t size) : size_(size), words_(WordsFor(size), 0) {}

void Bitset::Resize(size_t size) {
  size_ = size;
  words_.resize(WordsFor(size), 0);
  MaskTail();
}

void Bitset::Set(size_t i) {
  VEXUS_DCHECK(i < size_) << "bit " << i << " out of range " << size_;
  words_[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
}

void Bitset::Clear(size_t i) {
  VEXUS_DCHECK(i < size_);
  words_[i / kWordBits] &= ~(uint64_t{1} << (i % kWordBits));
}

bool Bitset::Test(size_t i) const {
  VEXUS_DCHECK(i < size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void Bitset::SetAll() {
  for (auto& w : words_) w = ~uint64_t{0};
  MaskTail();
}

void Bitset::ClearAll() {
  for (auto& w : words_) w = 0;
}

size_t Bitset::Count() const {
  size_t c = 0;
  for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
  return c;
}

bool Bitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool Bitset::IsDisjointWith(const Bitset& other) const {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return false;
  }
  return true;
}

size_t Bitset::IntersectCount(const Bitset& other) const {
  CheckCompatible(other);
  size_t c = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    c += static_cast<size_t>(__builtin_popcountll(words_[i] & other.words_[i]));
  }
  return c;
}

size_t Bitset::CountAndNot(const Bitset& exclude) const {
  CheckCompatible(exclude);
  size_t c = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    c += static_cast<size_t>(
        __builtin_popcountll(words_[i] & ~exclude.words_[i]));
  }
  return c;
}

size_t Bitset::IntersectCountAndNot(const Bitset& other,
                                    const Bitset& exclude) const {
  CheckCompatible(other);
  CheckCompatible(exclude);
  size_t c = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    c += static_cast<size_t>(__builtin_popcountll(
        words_[i] & other.words_[i] & ~exclude.words_[i]));
  }
  return c;
}

size_t Bitset::IntersectCountInto(const Bitset& other, Bitset* out) const {
  CheckCompatible(other);
  out->size_ = size_;
  out->words_.resize(words_.size());
  size_t c = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t w = words_[i] & other.words_[i];
    out->words_[i] = w;
    c += static_cast<size_t>(__builtin_popcountll(w));
  }
  return c;
}

void Bitset::AssignUnion(const Bitset& a, const Bitset& b) {
  a.CheckCompatible(b);
  size_ = a.size_;
  words_.resize(a.words_.size());
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] = a.words_[i] | b.words_[i];
  }
}

size_t Bitset::UnionCount(const Bitset& other) const {
  CheckCompatible(other);
  size_t c = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    c += static_cast<size_t>(__builtin_popcountll(words_[i] | other.words_[i]));
  }
  return c;
}

double Bitset::Jaccard(const Bitset& other) const {
  CheckCompatible(other);
  size_t inter = 0, uni = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    inter +=
        static_cast<size_t>(__builtin_popcountll(words_[i] & other.words_[i]));
    uni +=
        static_cast<size_t>(__builtin_popcountll(words_[i] | other.words_[i]));
  }
  if (uni == 0) return 1.0;  // two empty sets are identical
  return static_cast<double>(inter) / static_cast<double>(uni);
}

Bitset& Bitset::operator&=(const Bitset& other) {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset& Bitset::operator^=(const Bitset& other) {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

Bitset& Bitset::Subtract(const Bitset& other) {
  CheckCompatible(other);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool Bitset::operator==(const Bitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

bool Bitset::AdoptWords(size_t size, std::vector<uint64_t> words) {
  if (words.size() != WordsFor(size)) return false;
  size_t tail = size % kWordBits;
  if (tail != 0 && !words.empty() &&
      (words.back() & ~((uint64_t{1} << tail) - 1)) != 0) {
    return false;  // a bit beyond the universe is set — corrupt input
  }
  size_ = size;
  words_ = std::move(words);
  return true;
}

std::vector<uint32_t> Bitset::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEach([&out](uint32_t i) { out.push_back(i); });
  return out;
}

Bitset Bitset::FromVector(size_t size, const std::vector<uint32_t>& elems) {
  Bitset b(size);
  for (uint32_t e : elems) b.Set(e);
  return b;
}

size_t Bitset::FindFirst() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits + static_cast<size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return size_;
}

uint64_t Bitset::Hash() const {
  // FNV-1a over words plus the size, so sets over different universes differ.
  uint64_t h = 1469598103934665603ULL ^ size_;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ULL;
  }
  return h;
}

void Bitset::CheckCompatible(const Bitset& other) const {
  VEXUS_DCHECK(size_ == other.size_)
      << "bitset universe mismatch: " << size_ << " vs " << other.size_;
  (void)other;
}

void Bitset::MaskTail() {
  size_t tail = size_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

}  // namespace vexus
