// SIMD kernels for the word-parallel bitset operations on the greedy hot
// path (ROADMAP item 4). Every trial swap of the incremental evaluator is
// one pass over ceil(U/64) words of the 278,858-user universe — popcounts
// fused with AND/OR — so these loops are where the 100 ms interaction
// budget is actually spent (BENCH_greedy_incremental: evals/sec is the
// currency).
//
// Dispatch follows the pattern common/crc32 established: the vector
// bodies live in one translation unit (bitset_kernels.cc) compiled with
// __attribute__((target(...))), so the rest of the build needs no -mavx2;
// __builtin_cpu_supports picks the widest supported tier once, at first
// use. The scalar loops are kept verbatim from the pre-SIMD Bitset — they
// are the fallback on non-x86/old CPUs, the reference the parity fuzz
// checks against, and the baseline the bench reports speedups over.
// Setting VEXUS_FORCE_SCALAR=1 in the environment pins dispatch to the
// scalar tier (CI runs the sanitizer jobs both ways).
//
// Every kernel returns an exact integer (counts, not estimates), so the
// tier in use can never change greedy output: objective floats are
// computed from the same integers in the same order — byte-identical
// selections across scalar/AVX2/AVX-512 is a tested invariant, not a
// hope.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vexus::bitset_kernels {

/// Dispatch tiers, widest last. kAvx512 requires AVX-512F + VPOPCNTDQ
/// (the vector popcount instruction is the whole point of the tier).
enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Human-readable tier name ("scalar", "avx2", "avx512").
const char* LevelName(Level level);

/// The tier dispatch resolved to (CPU capability ∩ VEXUS_FORCE_SCALAR
/// override), after any SetLevelForTesting override.
Level ActiveLevel();

/// True when the running CPU can execute `level` (ignores the env
/// override) — the parity fuzz uses this to enumerate testable tiers.
bool LevelSupported(Level level);

// ---------------------------------------------------------------------------
// Dispatched kernels. All operate on arrays of `n` 64-bit words; callers
// (common/bitset.cc) guarantee matching lengths and masked tail bits.
// `out` may equal `a` or `b` for the pure bitwise kernels (word i depends
// only on word i of the inputs) but must not partially overlap.
// ---------------------------------------------------------------------------

/// popcount(a)
size_t Count(const uint64_t* a, size_t n);
/// popcount(a & b)
size_t AndCount(const uint64_t* a, const uint64_t* b, size_t n);
/// popcount(a & ~b)
size_t AndNotCount(const uint64_t* a, const uint64_t* b, size_t n);
/// popcount(a & b & ~c) — the anchored trial-swap coverage kernel.
size_t AndAndNotCount(const uint64_t* a, const uint64_t* b, const uint64_t* c,
                      size_t n);
/// popcount(a | b) — fused union-popcount.
size_t OrCount(const uint64_t* a, const uint64_t* b, size_t n);
/// out = a & b, returns popcount(out).
size_t AndCountInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                    size_t n);
/// out = a | b (no count — prefix/suffix union table build).
void Or(const uint64_t* a, const uint64_t* b, uint64_t* out, size_t n);
/// out = a | b, returns popcount(out) — fused union-popcount with store.
size_t OrCountInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                   size_t n);
/// out = (a | b) & mask, returns popcount(out) — the rest(pos) build of
/// the anchored greedy pass in one sweep instead of three.
size_t OrAndCountInto(const uint64_t* a, const uint64_t* b,
                      const uint64_t* mask, uint64_t* out, size_t n);
/// *inter = popcount(a & b), *uni = popcount(a | b) in one pass — the
/// Jaccard kernel.
void AndOrCount(const uint64_t* a, const uint64_t* b, size_t n, size_t* inter,
                size_t* uni);

namespace internal {

/// Pins dispatch to `level` for the calling process (CHECKs
/// LevelSupported). Test/bench only: not thread-safe against concurrent
/// kernel calls, so flip it only while no other thread touches bitsets.
void SetLevelForTesting(Level level);

/// Restores the level dispatch originally resolved (CPU ∩ env override).
void ResetLevelForTesting();

}  // namespace internal

}  // namespace vexus::bitset_kernels
