// Failpoints — deterministic fault injection for robustness testing.
//
// A failpoint is a *named site* compiled into production code where a test
// can inject a failure: an error Status, a sleep (to widen race windows or
// burn a deadline), or a boolean "this operation failed" verdict. Sites are
// identified by stable string names ("snapshot.save.fsync",
// "dispatcher.admit", ...; DESIGN.md §12 is the catalog) and are inert
// unless a test arms them through a ScopedFailpoint.
//
// Design constraints (failpoints live on the 100 ms serving path):
//
//   * Zero cost when disarmed. Every macro begins with a single relaxed
//     atomic load of a process-global armed count wrapped in
//     __builtin_expect(..., 0): one predicted-untaken branch, no function
//     call, no allocation (bench_overload pins the cost alongside the
//     serving-throughput gate). The slow path — registry lookup under a
//     mutex — is only ever reached while some test holds a ScopedFailpoint.
//   * Deterministic. Trigger decisions are pure functions of (policy,
//     per-site hit ordinal, seed): fire-once, every-Nth, probability-p
//     under a seeded hash, always. A chaos schedule replayed with the same
//     seed takes the same branches (modulo thread interleaving, which the
//     chaos harness treats as part of the search space).
//   * Observable. Each armed site counts how often it was *reached* and how
//     often it *fired*, so a chaos run can assert its faults actually
//     landed (a fault schedule that never reaches its sites tests nothing).
//
// Usage, production side:
//
//   Status SaveThing(...) {
//     VEXUS_FAILPOINT("thing.save.open");          // may return a Status
//     if (VEXUS_FAILPOINT_FIRES("thing.save.io"))  // bool verdict
//       return Status::IOError("injected");
//     VEXUS_FAILPOINT_HIT("thing.save.slow");      // count + optional sleep
//     ...
//   }
//
// Usage, test side:
//
//   failpoint::Policy p;
//   p.mode = failpoint::Policy::Mode::kEveryNth;
//   p.nth = 3;
//   p.code = StatusCode::kIOError;
//   failpoint::ScopedFailpoint fp("thing.save.open", p);
//   ... drive the system ...
//   EXPECT_GT(fp.fires(), 0u);
//
// (In the style of the failpoint/fault-injection registries production C++
// storage stacks compile into their release binaries.)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace vexus::failpoint {

/// Trigger policy of one armed site.
struct Policy {
  enum class Mode {
    kOff,          ///< armed but never fires (still counts reaches)
    kOnce,         ///< fires on the first reach only
    kEveryNth,     ///< fires on reaches nth, 2·nth, 3·nth, ...
    kProbability,  ///< fires with probability `probability`, seeded hash
    kAlways,       ///< fires on every reach
  };
  Mode mode = Mode::kAlways;

  /// kEveryNth period (>= 1; 0 behaves as kOff).
  uint64_t nth = 1;
  /// kProbability fire chance in [0, 1]; decided by a deterministic hash of
  /// (seed, reach ordinal) so runs replay bit-identically per site.
  double probability = 0.0;
  uint64_t seed = 0;

  /// Status injected when the site fires through VEXUS_FAILPOINT /
  /// Inject(). kOk means "fire without an error" — useful for sleep-only
  /// sites; VEXUS_FAILPOINT then injects nothing.
  StatusCode code = StatusCode::kUnknown;
  /// Message of the injected Status; default names the site.
  std::string message;

  /// Sleep this long (wall clock) every time the site fires, before the
  /// status/verdict is produced. Widens race windows; burns deadlines.
  double sleep_ms = 0.0;

  /// Stop firing (but keep counting reaches) after this many fires.
  uint64_t max_fires = UINT64_MAX;
};

/// Arms `site` with `policy` for this object's lifetime (RAII). At most one
/// ScopedFailpoint per site name may be live at a time (checked). Counters
/// remain readable after disarm — they are shared with, not owned by, the
/// registry.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, Policy policy);
  ~ScopedFailpoint();

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const std::string& site() const { return site_; }
  /// Times the site was reached while armed.
  uint64_t hits() const;
  /// Times the site actually fired (injected a fault).
  uint64_t fires() const;

  /// Implementation detail, public so the registry (failpoint.cc) can share
  /// ownership of the counters with this object.
  struct State;

 private:
  std::string site_;
  std::shared_ptr<State> state_;
};

namespace internal {

/// Count of live ScopedFailpoints. The macros' fast path is one relaxed
/// load of this — when zero, nothing else runs.
extern std::atomic<int> g_armed_count;

inline bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// Slow path: looks `site` up, applies its policy, sleeps if configured,
/// and returns the injected Status (OK when the site is not armed, did not
/// fire, or fired with code kOk).
Status Evaluate(std::string_view site);

/// Slow path returning the fired verdict (sleep still applied).
bool EvaluateFires(std::string_view site);

}  // namespace internal

/// Function form of VEXUS_FAILPOINT for call sites that need to clean up
/// before propagating (close fds, roll back state): OK unless some armed
/// policy on `site` fires with an error code.
inline Status Inject(std::string_view site) {
  if (__builtin_expect(internal::AnyArmed(), 0)) {
    return internal::Evaluate(site);
  }
  return Status::OK();
}

/// True when `site` is armed and its policy fires (sleep applied). The
/// caller supplies the failure behaviour.
inline bool Fires(std::string_view site) {
  if (__builtin_expect(internal::AnyArmed(), 0)) {
    return internal::EvaluateFires(site);
  }
  return false;
}

/// Benchmark hook: a never-armed site behind a non-inlined call, so
/// bench_overload can measure the disarmed fast-path cost without the
/// optimizer deleting the loop.
void DisarmedSiteForBench();

}  // namespace vexus::failpoint

/// Returns the injected error Status from the enclosing function when
/// `site` fires. Works in functions returning Status or Result<T> (Result
/// converts from Status implicitly). One predicted branch when disarmed.
#define VEXUS_FAILPOINT(site)                                         \
  do {                                                                \
    if (__builtin_expect(::vexus::failpoint::internal::AnyArmed(),    \
                         0)) {                                        \
      ::vexus::Status _vexus_fp_status =                              \
          ::vexus::failpoint::internal::Evaluate(site);               \
      if (!_vexus_fp_status.ok()) return _vexus_fp_status;            \
    }                                                                 \
  } while (0)

/// Boolean expression: true when `site` fires. For sites whose failure mode
/// is not a Status (a bool return, a corrupted buffer, a dropped task).
#define VEXUS_FAILPOINT_FIRES(site)                                 \
  (__builtin_expect(::vexus::failpoint::internal::AnyArmed(), 0) && \
   ::vexus::failpoint::internal::EvaluateFires(site))

/// Side effects only (reach counting + configured sleep); never alters
/// control flow. For hot-loop sites where the interesting injection is
/// burning wall clock (e.g. forcing the greedy deadline path).
#define VEXUS_FAILPOINT_HIT(site)                                      \
  do {                                                                 \
    if (__builtin_expect(::vexus::failpoint::internal::AnyArmed(), 0)) \
      (void)::vexus::failpoint::internal::EvaluateFires(site);         \
  } while (0)
