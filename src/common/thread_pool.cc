#include "common/thread_pool.h"

#include <algorithm>

#include "common/failpoint.h"

namespace vexus {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_ && joined_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  {
    // Only one caller joins; concurrent Shutdown() calls wait on done_cv_
    // until the joiner finishes (joining the same std::thread twice is UB).
    std::unique_lock<std::mutex> lock(mutex_);
    if (joining_) {
      done_cv_.wait(lock, [this] { return joined_; });
      return;
    }
    joining_ = true;
  }
  for (auto& t : workers_) t.join();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    joined_ = true;
  }
  done_cv_.notify_all();
}

bool ThreadPool::Submit(std::function<void()> task) {
  // Simulates pool exhaustion / a shutdown race: the caller sees the same
  // `false` it would get from a pool that is tearing down.
  if (VEXUS_FAILPOINT_FIRES("threadpool.submit")) return false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_) return false;  // shedding: see header contract
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, workers_.size() * 4);
  size_t per = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per;
    size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    auto task = [begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    };
    // A ParallelFor racing Shutdown() falls back to inline execution so the
    // loop body still runs exactly once per index.
    if (!Submit(task)) task();
  }
  Wait();
}

void ThreadPool::ParallelForChunked(
    size_t n, size_t chunk_size,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& fn) {
  if (n == 0) return;
  if (chunk_size == 0) chunk_size = 1;
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;

  // Shared between the caller and helper tasks. Heap-allocated + shared so a
  // helper that only gets scheduled after the caller has returned (its
  // chunks were all drained by faster threads) still finds live state: it
  // observes an exhausted cursor and exits without touching anything else.
  struct State {
    std::function<void(size_t, size_t, size_t)> fn;  // copy: outlives caller
    size_t n = 0, chunk_size = 0, num_chunks = 0;
    std::atomic<size_t> cursor{0};
    std::atomic<size_t> done{0};
    std::mutex m;
    std::condition_variable cv;
  };
  auto st = std::make_shared<State>();
  st->fn = fn;
  st->n = n;
  st->chunk_size = chunk_size;
  st->num_chunks = num_chunks;

  auto drain = [st] {
    while (true) {
      size_t c = st->cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= st->num_chunks) return;
      size_t begin = c * st->chunk_size;
      size_t end = std::min(st->n, begin + st->chunk_size);
      st->fn(c, begin, end);
      if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          st->num_chunks) {
        // Last chunk: wake the caller. Lock pairs with the caller's wait so
        // the notify cannot slip between its predicate check and sleep.
        std::lock_guard<std::mutex> lock(st->m);
        st->cv.notify_all();
      }
    }
  };

  // Helpers are best-effort accelerators: a rejected Submit (shutdown race)
  // or a busy pool just means the caller drains more chunks itself.
  size_t helpers = std::min(workers_.size(), num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    if (!Submit(drain)) break;
  }
  drain();
  std::unique_lock<std::mutex> lock(st->m);
  st->cv.wait(lock, [&] {
    return st->done.load(std::memory_order_acquire) == st->num_chunks;
  });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace vexus
