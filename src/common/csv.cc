#include "common/csv.h"

#include <sstream>

namespace vexus {

CsvReader::CsvReader(std::istream* in, Options options)
    : in_(in), options_(options) {
  if (options_.has_header) {
    std::vector<std::string> row;
    if (ParseRecord(&row)) {
      header_ = std::move(row);
    }
  }
}

bool CsvReader::Next(std::vector<std::string>* row) {
  if (done_ || !status_.ok()) return false;
  return ParseRecord(row);
}

bool CsvReader::ParseRecord(std::vector<std::string>* row) {
  row->clear();
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  int c;
  while ((c = in_->get()) != std::istream::traits_type::eof()) {
    saw_any = true;
    char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == options_.quote) {
        int peek = in_->peek();
        if (peek == options_.quote) {
          in_->get();
          field += options_.quote;  // doubled quote -> literal quote
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
        if (ch == '\n') ++line_number_;
      }
    } else if (ch == options_.quote && field.empty()) {
      in_quotes = true;
    } else if (ch == options_.separator) {
      row->push_back(std::move(field));
      field.clear();
    } else if (ch == '\r') {
      // Swallow; CRLF handled at the '\n'.
    } else if (ch == '\n') {
      ++line_number_;
      row->push_back(std::move(field));
      return true;
    } else {
      field += ch;
    }
  }
  done_ = true;
  if (in_quotes) {
    status_ = Status::Corruption("CSV ended inside a quoted field (line " +
                                 std::to_string(line_number_ + 1) + ")");
    return false;
  }
  if (!saw_any) return false;
  ++line_number_;
  row->push_back(std::move(field));
  return true;
}

CsvWriter::CsvWriter(std::ostream* out, char separator)
    : out_(out), separator_(separator) {}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << separator_;
    const std::string& f = fields[i];
    bool needs_quote = f.find(separator_) != std::string::npos ||
                       f.find('"') != std::string::npos ||
                       f.find('\n') != std::string::npos ||
                       f.find('\r') != std::string::npos;
    if (needs_quote) {
      *out_ << '"';
      for (char ch : f) {
        if (ch == '"') *out_ << '"';
        *out_ << ch;
      }
      *out_ << '"';
    } else {
      *out_ << f;
    }
  }
  *out_ << '\n';
}

Result<std::vector<std::vector<std::string>>> ParseCsvString(
    const std::string& text, CsvReader::Options options) {
  std::istringstream in(text);
  CsvReader reader(&in, options);
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  while (reader.Next(&row)) rows.push_back(row);
  if (!reader.status().ok()) return reader.status();
  return rows;
}

}  // namespace vexus
