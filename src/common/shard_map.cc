#include "common/shard_map.h"

#include <algorithm>

#include "common/logging.h"

namespace vexus {

namespace {
constexpr size_t kWordBits = 64;
size_t WordsFor(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

ShardMap::ShardMap(size_t num_users, size_t num_shards)
    : num_users_(num_users) {
  const size_t words = WordsFor(num_users);
  size_t shards = std::clamp<size_t>(num_shards, 1, std::max<size_t>(1, words));
  ranges_.resize(shards);
  const size_t base = words / shards;
  const size_t extra = words % shards;
  size_t word = 0;
  for (size_t s = 0; s < shards; ++s) {
    Range& r = ranges_[s];
    r.word_begin = word;
    word += base + (s < extra ? 1 : 0);
    r.word_end = word;
    r.user_begin = static_cast<uint32_t>(r.word_begin * kWordBits);
    r.user_end = static_cast<uint32_t>(
        std::min(r.word_end * kWordBits, num_users));
  }
  VEXUS_CHECK(word == words);
}

size_t ShardMap::ShardOf(uint32_t user) const {
  VEXUS_DCHECK(user < num_users_);
  const size_t word = user / kWordBits;
  // Words are dealt base/base+1: the first `extra` shards hold base+1.
  const size_t words = ranges_.back().word_end;
  const size_t shards = ranges_.size();
  const size_t base = words / shards;
  const size_t extra = words % shards;
  size_t s;
  if (base == 0) {
    s = word;  // one word per shard, `words == shards` after clamping
  } else if (word < extra * (base + 1)) {
    s = word / (base + 1);
  } else {
    s = extra + (word - extra * (base + 1)) / base;
  }
  VEXUS_DCHECK(word >= ranges_[s].word_begin && word < ranges_[s].word_end);
  return s;
}

}  // namespace vexus
