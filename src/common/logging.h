// Minimal leveled logging plus CHECK/DCHECK assertions.
//
// Library code logs through VEXUS_LOG(Level) << ...; the sink defaults to
// stderr and can be silenced or redirected by applications and tests.
// VEXUS_CHECK aborts on violation in all builds; VEXUS_DCHECK compiles to a
// dead (never-executed but still type-checked) statement in NDEBUG builds and
// is reserved for programmer errors (contract violations).
#pragma once

#include <sstream>
#include <string>

namespace vexus {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global minimum level actually emitted (default kInfo).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Redirect log output. `sink` receives fully formatted lines (no trailing
/// newline). Passing nullptr restores the default stderr sink.
using LogSink = void (*)(LogLevel, const std::string& line);
void SetLogSink(LogSink sink);

namespace internal {

/// Stream-collecting helper behind VEXUS_LOG / VEXUS_CHECK. Emits on
/// destruction; aborts the process for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Turns a streamed LogMessage expression into void so it can sit in the
/// false branch of the CHECK ternary (glog's "voidify" idiom). operator&
/// binds looser than << and tighter than ?:.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace vexus

#define VEXUS_LOG(level)                                               \
  ::vexus::internal::LogMessage(::vexus::LogLevel::k##level, __FILE__, \
                                __LINE__)

/// Hard assertion, active in all build types. Streams extra context:
///   VEXUS_CHECK(n > 0) << "need at least one group";
#define VEXUS_CHECK(cond)                                             \
  (cond) ? (void)0                                                    \
         : ::vexus::internal::Voidify() &                             \
               ::vexus::internal::LogMessage(::vexus::LogLevel::kFatal, \
                                             __FILE__, __LINE__)      \
                   << "Check failed: " #cond " "

#ifdef NDEBUG
// Never executed, but the condition and streamed operands stay type-checked
// and odr-used, so no -Wunused warnings appear in release builds.
#define VEXUS_DCHECK(cond) \
  while (false) VEXUS_CHECK(cond)
#else
#define VEXUS_DCHECK(cond) VEXUS_CHECK(cond)
#endif
