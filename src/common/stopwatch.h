// Wall-clock stopwatch and deadline helpers used to enforce the paper's
// 100 ms "continuity preserving latency" budget in the anytime greedy
// optimizer (principle P3), and to time benchmark phases.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>

namespace vexus {

/// Monotonic stopwatch. Starts on construction; Restart() resets.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point in monotonic time after which anytime algorithms must stop.
///
/// Deadline::Infinite() never expires — used by benchmarks that measure the
/// unbounded optimum (experiment E1's denominator).
class Deadline {
 public:
  /// Expires `millis` from now.
  ///
  /// Budget clamping (the serving layer and the greedy loop both rely on
  /// this being uniform): zero, negative, or NaN budgets yield an
  /// *already-expired* deadline ("expire immediately"); +infinity and
  /// anything beyond ~30 years yield an infinite deadline. This keeps
  /// `Deadline::AfterMillis(remaining_budget)` safe no matter what arithmetic
  /// produced `remaining_budget`.
  static Deadline AfterMillis(double millis) {
    if (std::isnan(millis) || millis <= 0) {
      return Deadline(Clock::time_point::min());
    }
    if (millis >= kInfiniteBudgetMillis) return Infinite();
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(millis)));
  }

  /// Never expires.
  static Deadline Infinite() { return Deadline(Clock::time_point::max()); }

  /// Budgets at or above this many milliseconds (~30 years) are treated as
  /// infinite by AfterMillis. Callers that want "unbounded" should pass
  /// std::numeric_limits<double>::infinity().
  static constexpr double kInfiniteBudgetMillis = 1e12;

  bool Expired() const {
    return when_ != Clock::time_point::max() && Clock::now() >= when_;
  }

  bool IsInfinite() const { return when_ == Clock::time_point::max(); }

  /// Remaining budget in milliseconds (clamped at 0; huge when infinite).
  ///
  /// Unified with Expired(): for every non-infinite deadline,
  /// `Expired() == (RemainingMillis() == 0)`. The born-expired sentinel
  /// (time_point::min(), produced by AfterMillis for zero/negative/NaN
  /// budgets) is special-cased *before* any subtraction — computing
  /// `min() - now()` underflows the clock's integer representation (UB)
  /// and used to wrap to a huge *positive* remaining budget, handing an
  /// already-expired request an effectively unbounded greedy time limit.
  double RemainingMillis() const {
    if (IsInfinite()) return 1e18;
    if (when_ == Clock::time_point::min()) return 0;  // born expired
    auto now = Clock::now();
    if (now >= when_) return 0;
    return std::chrono::duration<double, std::milli>(when_ - now).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  explicit Deadline(Clock::time_point when) : when_(when) {}
  Clock::time_point when_;
};

}  // namespace vexus
