#include "common/crc32.h"

#include <array>
#include <cstring>

namespace vexus {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli polynomial

/// 8 slicing tables: table[0] is the classic byte-at-a-time table;
/// table[k][b] extends table[k-1] by one zero byte, letting the hot loop
/// fold 8 input bytes per iteration with 8 independent lookups.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (c >> 1) ^ kPoly : c >> 1;
      }
      t[0][i] = c;
    }
    for (size_t k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = t[k - 1][i];
        t[k][i] = t[0][c & 0xffu] ^ (c >> 8);
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

uint32_t UpdateSoftware(uint32_t crc, const unsigned char* p, size_t len) {
  const auto& t = tables().t;
  uint32_t c = ~crc;

  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__
    lo = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
    hi = static_cast<uint32_t>(p[4]) | static_cast<uint32_t>(p[5]) << 8 |
         static_cast<uint32_t>(p[6]) << 16 | static_cast<uint32_t>(p[7]) << 24;
#endif
    lo ^= c;
    c = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^ t[5][(lo >> 16) & 0xffu] ^
        t[4][(lo >> 24) & 0xffu] ^ t[3][hi & 0xffu] ^ t[2][(hi >> 8) & 0xffu] ^
        t[1][(hi >> 16) & 0xffu] ^ t[0][(hi >> 24) & 0xffu];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    c = t[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  return ~c;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VEXUS_CRC32_HW 1

/// The SSE4.2 crc32 instruction computes exactly this polynomial; one
/// 8-byte fold per cycle (three in flight) ≈ 20 GB/s. Compiled with a
/// target attribute so the translation unit itself needs no -msse4.2;
/// callers reach it only through the __builtin_cpu_supports dispatch below.
__attribute__((target("sse4.2"))) uint32_t UpdateHardware(
    uint32_t crc, const unsigned char* p, size_t len) {
  uint64_t c = ~crc;  // zero-extended; the instruction keeps the high bits 0
  while (len >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    c = __builtin_ia32_crc32di(c, w);
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    c = __builtin_ia32_crc32qi(static_cast<uint32_t>(c), *p++);
  }
  return ~static_cast<uint32_t>(c);
}
#endif

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
#ifdef VEXUS_CRC32_HW
  static const bool hw = __builtin_cpu_supports("sse4.2");
  if (hw) return UpdateHardware(crc, p, len);
#endif
  return UpdateSoftware(crc, p, len);
}

namespace internal {

uint32_t Crc32UpdateSoftwareForTesting(uint32_t crc, const void* data,
                                       size_t len) {
  return UpdateSoftware(crc, static_cast<const unsigned char*>(data), len);
}

}  // namespace internal

}  // namespace vexus
