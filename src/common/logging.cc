#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace vexus {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<LogSink> g_sink{nullptr};
std::mutex g_stderr_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) { g_sink.store(sink, std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const std::string line = stream_.str();
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    LogSink sink = g_sink.load(std::memory_order_relaxed);
    if (sink != nullptr) {
      sink(level_, line);
    } else {
      std::lock_guard<std::mutex> lock(g_stderr_mutex);
      std::fprintf(stderr, "%s\n", line.c_str());
      std::fflush(stderr);
    }
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace vexus
