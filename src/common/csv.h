// RFC-4180-style CSV reading and writing for the ETL layer.
//
// The reader handles quoted fields (embedded separators, quotes doubled,
// embedded newlines), CRLF line endings, and streams row-by-row so paper-scale
// inputs (10^6 rating rows, experiment E7) never need to fit in memory twice.
#pragma once

#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace vexus {

/// Streaming CSV reader over any std::istream.
class CsvReader {
 public:
  struct Options {
    char separator = ',';
    char quote = '"';
    /// When true, the first row is exposed via header() instead of Next().
    bool has_header = true;
  };

  CsvReader(std::istream* in, Options options);
  explicit CsvReader(std::istream* in) : CsvReader(in, Options{}) {}

  /// Column names from the header row (empty when has_header is false).
  /// Valid after construction.
  const std::vector<std::string>& header() const { return header_; }

  /// Reads the next record into *row. Returns true on success, false at end
  /// of input. Malformed rows (unterminated quote at EOF) set the last-error
  /// status and stop iteration.
  bool Next(std::vector<std::string>* row);

  /// OK unless the stream ended inside a quoted field or an I/O error
  /// occurred.
  const Status& status() const { return status_; }

  /// 1-based line number of the most recently returned record.
  size_t line_number() const { return line_number_; }

 private:
  bool ParseRecord(std::vector<std::string>* row);

  std::istream* in_;
  Options options_;
  std::vector<std::string> header_;
  Status status_;
  size_t line_number_ = 0;
  bool done_ = false;
};

/// Writes rows with minimal quoting (only when a field needs it).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream* out, char separator = ',');

  void WriteRow(const std::vector<std::string>& fields);

 private:
  std::ostream* out_;
  char separator_;
};

/// Convenience: parses an entire CSV string into rows (excluding the header
/// if options.has_header). Returns Corruption on malformed input.
Result<std::vector<std::vector<std::string>>> ParseCsvString(
    const std::string& text, CsvReader::Options options = CsvReader::Options());

}  // namespace vexus
