#include "common/hash.h"

namespace vexus {

uint64_t HashBytes(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  // Final mix improves short-string dispersion.
  return Mix64(h);
}

}  // namespace vexus
