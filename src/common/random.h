// Deterministic pseudo-random generation for reproducible datasets and
// experiments. Every VEXUS experiment seeds its generator explicitly, so runs
// are bit-identical across platforms (no std::mt19937 distribution drift:
// all distributions here are implemented from scratch).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vexus {

/// PCG32 generator (O'Neill, 2014): small state, excellent statistical
/// quality, stable cross-platform output.
class Rng {
 public:
  /// Seeds the generator; the same (seed, stream) always produces the same
  /// sequence.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Next 32 uniformly distributed bits.
  uint32_t NextU32();

  /// Next 64 uniformly distributed bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound), bias-free (Lemire's method with rejection).
  /// bound must be > 0.
  uint32_t UniformU32(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative and not all zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformU32(static_cast<uint32_t>(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k > n returns all of [0,n)).
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// Zipf(s) sampler over ranks {0..n-1}: P(rank=i) ∝ 1/(i+1)^s.
///
/// Uses the alias method after an O(n) build, so sampling is O(1) — this is
/// what lets the BookCrossing generator emit the paper-scale 10^6 ratings in
/// well under a second (experiment E7).
class ZipfSampler {
 public:
  /// n must be >= 1; s >= 0 (s=0 is uniform).
  ZipfSampler(uint32_t n, double s);

  uint32_t Sample(Rng* rng) const;

  uint32_t n() const { return n_; }

 private:
  uint32_t n_;
  std::vector<double> prob_;    // alias-method acceptance probabilities
  std::vector<uint32_t> alias_;  // alias targets
};

/// SplitMix64: used to derive independent stream seeds from one master seed.
uint64_t SplitMix64(uint64_t* state);

}  // namespace vexus
