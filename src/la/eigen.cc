#include "la/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace vexus::la {

namespace {

/// Sum of squares of off-diagonal entries.
double OffDiagonalNormSq(const Matrix& a) {
  double s = 0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (i != j) s += a(i, j) * a(i, j);
    }
  }
  return s;
}

}  // namespace

Result<EigenDecomposition> SymmetricEigen(const Matrix& a_in, double tol,
                                          int max_sweeps) {
  if (a_in.rows() != a_in.cols()) {
    return Status::InvalidArgument("SymmetricEigen: matrix is not square");
  }
  if (!a_in.IsSymmetric(1e-8 * (1.0 + a_in.FrobeniusNorm()))) {
    return Status::InvalidArgument("SymmetricEigen: matrix is not symmetric");
  }
  size_t n = a_in.rows();
  Matrix a = a_in;
  Matrix v = Matrix::Identity(n);

  double threshold_sq = tol * tol * (1.0 + a.FrobeniusNorm());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (OffDiagonalNormSq(a) < threshold_sq) break;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = a(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        double app = a(p, p);
        double aqq = a(q, q);
        // Jacobi rotation angle.
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        // Apply rotation to rows/cols p and q of A.
        for (size_t k = 0; k < n; ++k) {
          double akp = a(k, p);
          double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          double apk = a(p, k);
          double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (size_t k = 0; k < n; ++k) {
          double vkp = v(k, p);
          double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Collect and sort by decreasing eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&a](size_t x, size_t y) { return a(x, x) > a(y, y); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t c = 0; c < n; ++c) {
    out.values[c] = a(order[c], order[c]);
    for (size_t r = 0; r < n; ++r) out.vectors(r, c) = v(r, order[c]);
  }
  return out;
}

Result<EigenDecomposition> GeneralizedSymmetricEigen(const Matrix& a,
                                                     const Matrix& b,
                                                     double tol) {
  if (a.rows() != a.cols() || b.rows() != b.cols() || a.rows() != b.rows()) {
    return Status::InvalidArgument(
        "GeneralizedSymmetricEigen: shape mismatch");
  }
  // B = L·Lᵀ; reduce to the standard problem C·y = λ·y with
  // C = L⁻¹·A·L⁻ᵀ, then map back v = L⁻ᵀ·y.
  VEXUS_ASSIGN_OR_RETURN(Matrix l, Cholesky(b));
  Matrix linv = InvertLowerTriangular(l);
  Matrix c = linv.Multiply(a).Multiply(linv.Transpose());
  // Symmetrize against rounding before the Jacobi sweep.
  for (size_t i = 0; i < c.rows(); ++i) {
    for (size_t j = i + 1; j < c.cols(); ++j) {
      double m = 0.5 * (c(i, j) + c(j, i));
      c(i, j) = m;
      c(j, i) = m;
    }
  }
  VEXUS_ASSIGN_OR_RETURN(EigenDecomposition std_eig, SymmetricEigen(c, tol));

  size_t n = a.rows();
  Matrix linv_t = linv.Transpose();
  EigenDecomposition out;
  out.values = std_eig.values;
  out.vectors = Matrix(n, n);
  for (size_t col = 0; col < n; ++col) {
    std::vector<double> y(n);
    for (size_t r = 0; r < n; ++r) y[r] = std_eig.vectors(r, col);
    std::vector<double> vcol = linv_t.MultiplyVector(y);
    for (size_t r = 0; r < n; ++r) out.vectors(r, col) = vcol[r];
  }
  return out;
}

}  // namespace vexus::la
