// Symmetric eigensolvers.
//
// LDA's projection (Focus View) requires the leading eigenvectors of
// Sw⁻¹·Sb. Since Sw is symmetric positive definite (after ridge
// regularization) and Sb symmetric, we solve the generalized symmetric
// eigenproblem Sb·v = λ·Sw·v by reduction through the Cholesky factor of Sw
// and a cyclic Jacobi sweep on the resulting symmetric matrix.
#pragma once

#include <vector>

#include "common/result.h"
#include "la/matrix.h"

namespace vexus::la {

struct EigenDecomposition {
  /// Eigenvalues in decreasing order.
  std::vector<double> values;
  /// Column i of `vectors` is the eigenvector for values[i].
  Matrix vectors;
};

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
/// Returns InvalidArgument for non-square / non-symmetric input.
/// Converges to off-diagonal Frobenius norm < tol (or max_sweeps reached).
Result<EigenDecomposition> SymmetricEigen(const Matrix& a, double tol = 1e-12,
                                          int max_sweeps = 64);

/// Solves A·v = λ·B·v for symmetric A and symmetric positive-definite B.
/// The returned eigenvectors are B-orthonormal (vᵀ·B·v = 1) and stored as
/// columns, eigenvalues in decreasing order.
Result<EigenDecomposition> GeneralizedSymmetricEigen(const Matrix& a,
                                                     const Matrix& b,
                                                     double tol = 1e-12);

}  // namespace vexus::la
