#include "la/matrix.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace vexus::la {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(size_t rows, size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    VEXUS_CHECK(rows[r].size() == m.cols_) << "ragged row " << r;
    for (size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

double& Matrix::operator()(size_t r, size_t c) {
  VEXUS_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(size_t r, size_t c) const {
  VEXUS_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double* Matrix::Row(size_t r) {
  VEXUS_DCHECK(r < rows_);
  return data_.data() + r * cols_;
}

const double* Matrix::Row(size_t r) const {
  VEXUS_DCHECK(r < rows_);
  return data_.data() + r * cols_;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  VEXUS_CHECK(cols_ == other.rows_)
      << "shape mismatch " << rows_ << "x" << cols_ << " * " << other.rows_
      << "x" << other.cols_;
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.Row(k);
      double* orow = out.Row(i);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  VEXUS_CHECK(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    double acc = 0;
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  VEXUS_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  VEXUS_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::Scale(double factor) {
  for (double& d : data_) d *= factor;
  return *this;
}

void Matrix::AddToDiagonal(double value) {
  size_t n = std::min(rows_, cols_);
  for (size_t i = 0; i < n; ++i) (*this)(i, i) += value;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  VEXUS_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

double Matrix::FrobeniusNorm() const {
  double s = 0;
  for (double d : data_) s += d * d;
  return std::sqrt(s);
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << vexus::FormatDouble((*this)(r, c), precision);
    }
    os << "]\n";
  }
  return os.str();
}

Result<Matrix> Cholesky(const Matrix& a) {
  VEXUS_CHECK(a.rows() == a.cols()) << "Cholesky needs a square matrix";
  size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::FailedPrecondition(
              "matrix is not positive definite (pivot " +
              std::to_string(i) + " = " + std::to_string(sum) + ")");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> ForwardSubstitute(const Matrix& l,
                                      const std::vector<double>& b) {
  size_t n = l.rows();
  VEXUS_CHECK(b.size() == n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t j = 0; j < i; ++j) sum -= l(i, j) * y[j];
    y[i] = sum / l(i, i);
  }
  return y;
}

std::vector<double> BackwardSubstituteTranspose(const Matrix& l,
                                                const std::vector<double>& y) {
  size_t n = l.rows();
  VEXUS_CHECK(y.size() == n);
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t j = ii + 1; j < n; ++j) sum -= l(j, ii) * x[j];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

Matrix InvertLowerTriangular(const Matrix& l) {
  size_t n = l.rows();
  Matrix inv(n, n);
  for (size_t col = 0; col < n; ++col) {
    std::vector<double> e(n, 0.0);
    e[col] = 1.0;
    std::vector<double> x = ForwardSubstitute(l, e);
    for (size_t r = 0; r < n; ++r) inv(r, col) = x[r];
  }
  return inv;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  VEXUS_CHECK(a.size() == b.size());
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

}  // namespace vexus::la
