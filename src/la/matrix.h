// Dense double-precision matrices, sized for the Focus View's LDA projection
// (dimensions = number of encoded demographic features, typically < 100).
// Row-major storage; all operations are straightforward O(n^3)/O(n^2) loops —
// adequate because LDA here runs on scatter matrices, not raw data.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace vexus::la {

class Matrix {
 public:
  /// 0x0 matrix.
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(size_t rows, size_t cols);

  /// rows x cols filled with `value`.
  Matrix(size_t rows, size_t cols, double value);

  /// Identity matrix of order n.
  static Matrix Identity(size_t n);

  /// Builds from nested initializer-style data; all rows must have equal size.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c);
  double operator()(size_t r, size_t c) const;

  /// Mutable pointer to row r (contiguous cols() doubles).
  double* Row(size_t r);
  const double* Row(size_t r) const;

  Matrix Transpose() const;

  /// Matrix product; inner dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; v.size() must equal cols().
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& Scale(double factor);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    return a.Multiply(b);
  }

  /// Adds `value` to every diagonal entry (ridge regularization for LDA's
  /// within-class scatter, which is often singular on categorical data).
  void AddToDiagonal(double value);

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  double MaxAbsDiff(const Matrix& other) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  bool IsSymmetric(double tol = 1e-9) const;

  std::string ToString(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite matrix.
/// Returns FailedPrecondition if A is not (numerically) positive definite.
Result<Matrix> Cholesky(const Matrix& a);

/// Solves L·y = b for lower-triangular L (forward substitution).
std::vector<double> ForwardSubstitute(const Matrix& l,
                                      const std::vector<double>& b);

/// Solves Lᵀ·x = y for lower-triangular L (backward substitution on Lᵀ).
std::vector<double> BackwardSubstituteTranspose(const Matrix& l,
                                                const std::vector<double>& y);

/// Inverts a lower-triangular matrix.
Matrix InvertLowerTriangular(const Matrix& l);

/// Dot product; sizes must match.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm(const std::vector<double>& v);

}  // namespace vexus::la
