#include "viz/canvas.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace vexus::viz {

SvgCanvas::SvgCanvas(double width, double height)
    : width_(width), height_(height) {}

std::string SvgCanvas::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

void SvgCanvas::Circle(double cx, double cy, double r, const std::string& fill,
                       double opacity, const std::string& tooltip) {
  std::ostringstream os;
  os << "<circle cx=\"" << FormatDouble(cx, 2) << "\" cy=\""
     << FormatDouble(cy, 2) << "\" r=\"" << FormatDouble(r, 2)
     << "\" fill=\"" << Escape(fill) << "\" fill-opacity=\""
     << FormatDouble(opacity, 3) << "\">";
  if (!tooltip.empty()) os << "<title>" << Escape(tooltip) << "</title>";
  os << "</circle>";
  elements_.push_back(os.str());
}

void SvgCanvas::Line(double x1, double y1, double x2, double y2,
                     const std::string& stroke, double width) {
  std::ostringstream os;
  os << "<line x1=\"" << FormatDouble(x1, 2) << "\" y1=\""
     << FormatDouble(y1, 2) << "\" x2=\"" << FormatDouble(x2, 2)
     << "\" y2=\"" << FormatDouble(y2, 2) << "\" stroke=\"" << Escape(stroke)
     << "\" stroke-width=\"" << FormatDouble(width, 2) << "\"/>";
  elements_.push_back(os.str());
}

void SvgCanvas::Rect(double x, double y, double w, double h,
                     const std::string& fill, double opacity) {
  std::ostringstream os;
  os << "<rect x=\"" << FormatDouble(x, 2) << "\" y=\"" << FormatDouble(y, 2)
     << "\" width=\"" << FormatDouble(w, 2) << "\" height=\""
     << FormatDouble(h, 2) << "\" fill=\"" << Escape(fill)
     << "\" fill-opacity=\"" << FormatDouble(opacity, 3) << "\"/>";
  elements_.push_back(os.str());
}

void SvgCanvas::Text(double x, double y, const std::string& text,
                     const std::string& fill, int font_size) {
  std::ostringstream os;
  os << "<text x=\"" << FormatDouble(x, 2) << "\" y=\"" << FormatDouble(y, 2)
     << "\" fill=\"" << Escape(fill) << "\" font-size=\"" << font_size
     << "\" font-family=\"sans-serif\">" << Escape(text) << "</text>";
  elements_.push_back(os.str());
}

std::string SvgCanvas::ToString() const {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << FormatDouble(width_, 0) << "\" height=\"" << FormatDouble(height_, 0)
     << "\" viewBox=\"0 0 " << FormatDouble(width_, 0) << " "
     << FormatDouble(height_, 0) << "\">\n";
  for (const std::string& e : elements_) os << "  " << e << "\n";
  os << "</svg>\n";
  return os.str();
}

Status SvgCanvas::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << ToString();
  if (!out) return Status::IOError("failed writing '" + path + "'");
  return Status::OK();
}

AsciiCanvas::AsciiCanvas(size_t cols, size_t rows)
    : cols_(cols), rows_(rows), grid_(rows, std::string(cols, ' ')) {}

void AsciiCanvas::Put(long col, long row, char c) {
  if (col < 0 || row < 0 || col >= static_cast<long>(cols_) ||
      row >= static_cast<long>(rows_)) {
    return;
  }
  grid_[static_cast<size_t>(row)][static_cast<size_t>(col)] = c;
}

void AsciiCanvas::Circle(double cx, double cy, double r, char glyph,
                         const std::string& label) {
  // Character cells are ~2:1 tall; compensate on the y axis.
  //
  // The step count is bounded *before* the int cast: r is caller-controlled
  // and `static_cast<int>(r * 8)` is UB once r * 8 leaves int range (a
  // degenerate layout radius, or NaN). Past ~4096 steps extra samples land
  // on cells already painted anyway — a terminal canvas has nowhere near
  // that many perimeter cells — so the cap costs nothing visually.
  constexpr double kMaxSteps = 4096;
  const double want = r * 8;
  int steps = 8;  // NaN falls through the comparison to the floor
  if (want > 8) {
    steps = want < kMaxSteps ? static_cast<int>(want)
                             : static_cast<int>(kMaxSteps);
  }
  for (int i = 0; i < steps; ++i) {
    double a = 2 * M_PI * i / steps;
    Put(static_cast<long>(std::lround(cx + r * std::cos(a))),
        static_cast<long>(std::lround(cy + r * std::sin(a) * 0.5)), glyph);
  }
  if (!label.empty()) {
    Text(cx - static_cast<double>(label.size()) / 2, cy, label);
  }
}

void AsciiCanvas::Point(double x, double y, char glyph) {
  Put(static_cast<long>(std::lround(x)), static_cast<long>(std::lround(y)),
      glyph);
}

void AsciiCanvas::Text(double x, double y, const std::string& text) {
  long col = static_cast<long>(std::lround(x));
  long row = static_cast<long>(std::lround(y));
  for (size_t i = 0; i < text.size(); ++i) {
    Put(col + static_cast<long>(i), row, text[i]);
  }
}

std::string AsciiCanvas::ToString() const {
  std::string out;
  out.reserve((cols_ + 1) * rows_);
  for (const std::string& row : grid_) {
    out += row;
    out += '\n';
  }
  return out;
}

const std::string& PaletteColor(size_t index) {
  static const std::vector<std::string> kPalette = {
      "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
      "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf"};
  return kPalette[index % kPalette.size()];
}

}  // namespace vexus::viz
