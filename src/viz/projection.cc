#include "viz/projection.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/logging.h"
#include "la/eigen.h"

namespace vexus::viz {

namespace {

using la::Matrix;

/// Column means of the row matrix.
std::vector<double> Mean(const std::vector<std::vector<double>>& rows) {
  std::vector<double> mu(rows[0].size(), 0.0);
  for (const auto& r : rows) {
    for (size_t j = 0; j < mu.size(); ++j) mu[j] += r[j];
  }
  for (double& m : mu) m /= static_cast<double>(rows.size());
  return mu;
}

/// Projects rows onto two direction vectors.
std::vector<Point2D> ProjectOn(const std::vector<std::vector<double>>& rows,
                               const std::vector<double>& v1,
                               const std::vector<double>& v2) {
  std::vector<Point2D> out(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    double x = 0, y = 0;
    for (size_t j = 0; j < rows[i].size(); ++j) {
      x += rows[i][j] * v1[j];
      y += rows[i][j] * v2[j];
    }
    out[i] = Point2D{x, y};
  }
  return out;
}

}  // namespace

double SeparationScore(const std::vector<Point2D>& points,
                       const std::vector<uint32_t>& labels) {
  VEXUS_CHECK(points.size() == labels.size());
  // Per-class centroid and spread in the plane.
  struct ClassAcc {
    double sx = 0, sy = 0;
    size_t n = 0;
    double spread = 0;
  };
  std::map<uint32_t, ClassAcc> classes;
  for (size_t i = 0; i < points.size(); ++i) {
    ClassAcc& c = classes[labels[i]];
    c.sx += points[i].x;
    c.sy += points[i].y;
    ++c.n;
  }
  if (classes.size() < 2) return 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    ClassAcc& c = classes[labels[i]];
    double dx = points[i].x - c.sx / c.n;
    double dy = points[i].y - c.sy / c.n;
    classes[labels[i]].spread += std::sqrt(dx * dx + dy * dy);
  }
  double within = 0;
  for (auto& [label, c] : classes) within += c.spread;
  within /= static_cast<double>(points.size());

  double between = 0;
  size_t pairs = 0;
  for (auto a = classes.begin(); a != classes.end(); ++a) {
    for (auto b = std::next(a); b != classes.end(); ++b) {
      double dx = a->second.sx / a->second.n - b->second.sx / b->second.n;
      double dy = a->second.sy / a->second.n - b->second.sy / b->second.n;
      between += std::sqrt(dx * dx + dy * dy);
      ++pairs;
    }
  }
  between /= static_cast<double>(pairs);
  return within > 1e-12 ? between / within : between > 0 ? 1e12 : 0.0;
}

Result<ProjectionResult> PcaProject(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Status::InvalidArgument("PCA needs rows");
  size_t dim = rows[0].size();
  if (dim < 1) return Status::InvalidArgument("PCA needs features");

  std::vector<double> mu = Mean(rows);
  Matrix cov(dim, dim);
  for (const auto& r : rows) {
    for (size_t i = 0; i < dim; ++i) {
      double di = r[i] - mu[i];
      for (size_t j = i; j < dim; ++j) {
        cov(i, j) += di * (r[j] - mu[j]);
      }
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = i; j < dim; ++j) {
      double v = cov(i, j) / static_cast<double>(rows.size());
      cov(i, j) = v;
      cov(j, i) = v;
    }
  }

  VEXUS_ASSIGN_OR_RETURN(la::EigenDecomposition eig, la::SymmetricEigen(cov));
  std::vector<double> v1(dim), v2(dim, 0.0);
  for (size_t i = 0; i < dim; ++i) v1[i] = eig.vectors(i, 0);
  if (dim >= 2) {
    for (size_t i = 0; i < dim; ++i) v2[i] = eig.vectors(i, 1);
  }

  // Center before projecting so the embedding is origin-centered.
  std::vector<std::vector<double>> centered = rows;
  for (auto& r : centered) {
    for (size_t j = 0; j < dim; ++j) r[j] -= mu[j];
  }

  ProjectionResult out;
  out.points = ProjectOn(centered, v1, v2);
  out.method = "pca";
  out.eigenvalue1 = eig.values.empty() ? 0 : eig.values[0];
  out.eigenvalue2 = eig.values.size() > 1 ? eig.values[1] : 0;
  return out;
}

Result<ProjectionResult> LinearDiscriminantAnalysis::Project(
    const std::vector<std::vector<double>>& rows,
    const std::vector<uint32_t>& labels, const Options& options) {
  if (rows.empty()) return Status::InvalidArgument("LDA needs rows");
  if (rows.size() != labels.size()) {
    return Status::InvalidArgument("rows/labels size mismatch");
  }
  size_t dim = rows[0].size();
  if (dim < 1) return Status::InvalidArgument("LDA needs features");

  // Class partitions.
  std::unordered_map<uint32_t, std::vector<size_t>> classes;
  for (size_t i = 0; i < rows.size(); ++i) classes[labels[i]].push_back(i);

  auto fallback = [&]() -> Result<ProjectionResult> {
    if (!options.pca_fallback) {
      return Status::FailedPrecondition(
          "LDA needs at least two classes (pca_fallback disabled)");
    }
    VEXUS_ASSIGN_OR_RETURN(ProjectionResult r, PcaProject(rows));
    r.separation = SeparationScore(r.points, labels);
    return r;
  };
  if (classes.size() < 2) return fallback();

  // Scatter matrices.
  std::vector<double> mu = Mean(rows);
  Matrix sw(dim, dim);
  Matrix sb(dim, dim);
  for (const auto& [label, idx] : classes) {
    std::vector<double> cmu(dim, 0.0);
    for (size_t i : idx) {
      for (size_t j = 0; j < dim; ++j) cmu[j] += rows[i][j];
    }
    for (double& v : cmu) v /= static_cast<double>(idx.size());

    for (size_t i : idx) {
      for (size_t a = 0; a < dim; ++a) {
        double da = rows[i][a] - cmu[a];
        for (size_t b = a; b < dim; ++b) {
          sw(a, b) += da * (rows[i][b] - cmu[b]);
        }
      }
    }
    double n = static_cast<double>(idx.size());
    for (size_t a = 0; a < dim; ++a) {
      double da = cmu[a] - mu[a];
      for (size_t b = a; b < dim; ++b) {
        sb(a, b) += n * da * (cmu[b] - mu[b]);
      }
    }
  }
  for (size_t a = 0; a < dim; ++a) {
    for (size_t b = a + 1; b < dim; ++b) {
      sw(b, a) = sw(a, b);
      sb(b, a) = sb(a, b);
    }
  }
  sw.AddToDiagonal(options.regularization *
                   (1.0 + sw.FrobeniusNorm() / static_cast<double>(dim)));

  auto eig_result = la::GeneralizedSymmetricEigen(sb, sw);
  if (!eig_result.ok()) return fallback();
  const la::EigenDecomposition& eig = *eig_result;

  std::vector<double> v1(dim), v2(dim, 0.0);
  for (size_t i = 0; i < dim; ++i) v1[i] = eig.vectors(i, 0);
  if (dim >= 2) {
    for (size_t i = 0; i < dim; ++i) v2[i] = eig.vectors(i, 1);
  }

  std::vector<std::vector<double>> centered = rows;
  for (auto& r : centered) {
    for (size_t j = 0; j < dim; ++j) r[j] -= mu[j];
  }

  ProjectionResult out;
  out.points = ProjectOn(centered, v1, v2);
  out.method = "lda";
  out.eigenvalue1 = eig.values.empty() ? 0 : eig.values[0];
  out.eigenvalue2 = eig.values.size() > 1 ? eig.values[1] : 0;
  out.separation = SeparationScore(out.points, labels);
  return out;
}

}  // namespace vexus::viz
