#include "viz/groupviz.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "viz/canvas.h"

namespace vexus::viz {

Result<GroupVizScene> GroupVizScene::Build(
    const data::Dataset& dataset, const mining::GroupStore& store,
    const std::vector<mining::GroupId>& shown, const Options& options) {
  GroupVizScene scene;
  scene.options_ = options;
  if (shown.empty()) return scene;

  std::optional<data::AttributeId> color_attr;
  if (!options.color_attribute.empty()) {
    VEXUS_ASSIGN_OR_RETURN(data::AttributeId id,
                           dataset.schema().Require(options.color_attribute));
    color_attr = id;
  }

  // Radii: area ∝ member count → radius ∝ sqrt, normalized to the range.
  size_t max_size = 1;
  for (mining::GroupId g : shown) {
    max_size = std::max(max_size, store.group(g).size());
  }
  std::vector<double> radii;
  radii.reserve(shown.size());
  for (mining::GroupId g : shown) {
    double frac = std::sqrt(static_cast<double>(store.group(g).size()) /
                            static_cast<double>(max_size));
    radii.push_back(options.min_radius +
                    frac * (options.max_radius - options.min_radius));
  }

  // Edges between non-disjoint shown groups (the visible slice of graph G).
  std::vector<ForceLayout::Link> links;
  for (size_t i = 0; i < shown.size(); ++i) {
    for (size_t j = i + 1; j < shown.size(); ++j) {
      double sim = store.group(shown[i])
                       .members()
                       .Jaccard(store.group(shown[j]).members());
      if (sim > 0) {
        links.push_back(ForceLayout::Link{static_cast<uint32_t>(i),
                                          static_cast<uint32_t>(j), sim});
        scene.edges_.push_back(SceneEdge{i, j, sim});
      }
    }
  }

  ForceLayout::Options lopt;
  lopt.width = options.width;
  lopt.height = options.height;
  lopt.seed = options.layout_seed;
  ForceLayout layout(radii, links, lopt);
  layout.Run();
  scene.overlaps_ = layout.CountOverlaps();

  for (size_t i = 0; i < shown.size(); ++i) {
    const mining::UserGroup& g = store.group(shown[i]);
    CircleSpec c;
    c.group = shown[i];
    c.x = layout.nodes()[i].x;
    c.y = layout.nodes()[i].y;
    c.radius = layout.nodes()[i].radius;
    c.label = "g" + std::to_string(shown[i]) + " (" +
              WithThousands(g.size()) + ")";
    c.description = g.DescriptionString(dataset.schema());

    if (color_attr.has_value()) {
      // Majority value of the color attribute inside the group.
      const data::Attribute& attr = dataset.schema().attribute(*color_attr);
      std::vector<size_t> counts(attr.values().size(), 0);
      g.members().ForEach([&](uint32_t u) {
        data::ValueId v = dataset.users().Value(u, *color_attr);
        if (v != data::kNullValue && v < counts.size()) ++counts[v];
      });
      size_t best = 0;
      for (size_t v = 1; v < counts.size(); ++v) {
        if (counts[v] > counts[best]) best = v;
      }
      c.color = counts.empty() ? PaletteColor(0) : PaletteColor(best);
      if (!counts.empty() && counts[best] > 0) {
        c.description += " | " + attr.name() + "≈" + attr.values().Name(best);
      }
    } else {
      c.color = PaletteColor(0);
    }
    scene.circles_.push_back(std::move(c));
  }
  return scene;
}

std::string GroupVizScene::ToSvg() const {
  SvgCanvas canvas(options_.width, options_.height);
  canvas.Rect(0, 0, options_.width, options_.height, "#fafafa");
  for (const SceneEdge& e : edges_) {
    canvas.Line(circles_[e.a].x, circles_[e.a].y, circles_[e.b].x,
                circles_[e.b].y, "#cccccc", 1.0 + 3.0 * e.weight);
  }
  for (const CircleSpec& c : circles_) {
    canvas.Circle(c.x, c.y, c.radius, c.color, 0.75,
                  c.description + " — " + c.label);
    canvas.Text(c.x - c.radius, c.y - c.radius - 4, c.label, "#555", 11);
  }
  return canvas.ToString();
}

std::string GroupVizScene::ToAscii(size_t cols, size_t rows) const {
  AsciiCanvas canvas(cols, rows);
  double sx = static_cast<double>(cols) / options_.width;
  double sy = static_cast<double>(rows) / options_.height;
  for (size_t i = 0; i < circles_.size(); ++i) {
    const CircleSpec& c = circles_[i];
    char glyph = static_cast<char>('A' + (i % 26));
    canvas.Circle(c.x * sx, c.y * sy, c.radius * sx, glyph,
                  "g" + std::to_string(c.group));
  }
  return canvas.ToString();
}

}  // namespace vexus::viz
