#include "viz/stats_view.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace vexus::viz {

StatsView::StatsView(const data::Dataset* dataset, const Bitset& members)
    : dataset_(dataset) {
  VEXUS_CHECK(dataset != nullptr);
  VEXUS_CHECK(members.size() == dataset->num_users());
  members_ = std::vector<data::UserId>();
  members_.reserve(members.Count());
  members.ForEach([this](uint32_t u) { members_.push_back(u); });

  filter_ = std::make_unique<Crossfilter>(members_.size());

  const data::Schema& schema = dataset->schema();
  for (data::AttributeId a = 0; a < schema.num_attributes(); ++a) {
    const data::Attribute& attr = schema.attribute(a);
    AttrBinding b;
    b.attr = a;
    if (attr.kind() == data::AttributeKind::kNumeric) {
      b.numeric = true;
      std::vector<double> vals(members_.size());
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < members_.size(); ++r) {
        vals[r] = dataset->users().Numeric(members_[r], a);
        if (!std::isnan(vals[r])) {
          lo = std::min(lo, vals[r]);
          hi = std::max(hi, vals[r]);
        }
      }
      if (!(lo < hi)) {  // all-missing or constant column
        lo = std::isfinite(lo) ? lo : 0.0;
        hi = lo + 1.0;
      }
      b.lo = lo;
      b.data_max = hi;
      b.hi = std::nextafter(hi, std::numeric_limits<double>::infinity());
      b.bins = 10;
      b.dim = filter_->AddNumericDimension(std::move(vals));
      b.group = filter_->AddHistogram(b.dim, b.bins, b.lo, b.hi);
    } else {
      b.numeric = false;
      std::vector<uint32_t> codes(members_.size());
      for (size_t r = 0; r < members_.size(); ++r) {
        codes[r] = dataset->users().Value(members_[r], a);
      }
      b.bins = attr.values().size();
      b.dim = filter_->AddCategoricalDimension(std::move(codes), b.bins);
      b.group = filter_->AddCategoryCounts(b.dim);
    }
    bindings_.push_back(b);
  }
}

Result<const StatsView::AttrBinding*> StatsView::FindBinding(
    const std::string& attribute) const {
  VEXUS_ASSIGN_OR_RETURN(data::AttributeId id,
                         dataset_->schema().Require(attribute));
  for (const AttrBinding& b : bindings_) {
    if (b.attr == id) return &b;
  }
  return Status::NotFound("attribute '" + attribute + "' has no binding");
}

StatsView::Distribution StatsView::BuildDistribution(
    const AttrBinding& b) const {
  const data::Attribute& attr = dataset_->schema().attribute(b.attr);
  Distribution d;
  d.attribute = attr.name();
  d.counts = filter_->Counts(b.group);
  if (b.numeric) {
    double width = (b.hi - b.lo) / static_cast<double>(b.bins);
    for (size_t i = 0; i < b.bins; ++i) {
      d.labels.push_back(
          "[" + vexus::FormatDouble(b.lo + width * i, 2) + "," +
          vexus::FormatDouble(b.lo + width * (i + 1), 2) + ")");
    }
  } else {
    for (data::ValueId v = 0; v < attr.values().size(); ++v) {
      d.labels.push_back(attr.values().Name(v));
    }
  }
  return d;
}

std::vector<StatsView::Distribution> StatsView::Distributions() const {
  std::vector<Distribution> out;
  out.reserve(bindings_.size());
  for (const AttrBinding& b : bindings_) out.push_back(BuildDistribution(b));
  return out;
}

Result<StatsView::Distribution> StatsView::DistributionOf(
    const std::string& attribute) const {
  VEXUS_ASSIGN_OR_RETURN(const AttrBinding* b, FindBinding(attribute));
  return BuildDistribution(*b);
}

Status StatsView::Brush(const std::string& attribute,
                        const std::vector<std::string>& values) {
  VEXUS_ASSIGN_OR_RETURN(const AttrBinding* b, FindBinding(attribute));
  if (b->numeric) {
    return Status::InvalidArgument("attribute '" + attribute +
                                   "' is numeric; use BrushRange");
  }
  const data::Attribute& attr = dataset_->schema().attribute(b->attr);
  std::vector<uint32_t> codes;
  for (const std::string& v : values) {
    auto code = attr.values().Find(v);
    if (!code.has_value()) {
      return Status::NotFound("value '" + v + "' not in attribute '" +
                              attribute + "'");
    }
    codes.push_back(*code);
  }
  filter_->FilterValues(b->dim, codes);
  return Status::OK();
}

Status StatsView::BrushRange(const std::string& attribute, double lo,
                             double hi) {
  VEXUS_ASSIGN_OR_RETURN(const AttrBinding* b, FindBinding(attribute));
  if (!b->numeric) {
    return Status::InvalidArgument("attribute '" + attribute +
                                   "' is categorical; use Brush");
  }
  // Closed-at-the-top edge rule (see the header): a brush whose upper edge
  // reaches the observed maximum must keep max-valued members. Nudging hi
  // one ulp up turns [lo, max] into [lo, nextafter(max)) — the same trick
  // the constructor uses for the histogram domain — while any hi strictly
  // below the max keeps exact right-open semantics.
  if (hi >= b->data_max) {
    hi = std::nextafter(hi, std::numeric_limits<double>::infinity());
  }
  filter_->FilterRange(b->dim, lo, hi);
  return Status::OK();
}

Status StatsView::ClearBrush(const std::string& attribute) {
  VEXUS_ASSIGN_OR_RETURN(const AttrBinding* b, FindBinding(attribute));
  filter_->ClearFilter(b->dim);
  return Status::OK();
}

std::vector<std::string> StatsView::SelectedUsers(size_t limit) const {
  std::vector<std::string> out;
  Bitset passing = filter_->PassingSet();
  passing.ForEach([&](uint32_t r) {
    if (out.size() < limit) {
      out.push_back(dataset_->users().ExternalId(members_[r]));
    }
  });
  return out;
}

std::vector<data::UserId> StatsView::SelectedUserIds() const {
  std::vector<data::UserId> out;
  Bitset passing = filter_->PassingSet();
  passing.ForEach([&](uint32_t r) { out.push_back(members_[r]); });
  return out;
}

}  // namespace vexus::viz
