// Crossfilter — the coordinated-views engine behind STATS (paper §II.B,
// "Interoperability"):
//
//   "Histograms are implemented using Crossfilter charts. Crossfilter
//    employs the methodology of coordinated views where a brush on one
//    histogram updates all other statistics instantaneously. … efficiency
//    is ensured by employing the concept of incremental queries which
//    prevents redundant query executions by sub-setting the data under the
//    brush, on-the-fly."
//
// This is a faithful C++ port of the crossfilter.js model:
//   * fixed record set; dimensions carry per-record values and a filter;
//   * a per-record count of failing dimensions makes "passes all filters"
//     an O(1) test;
//   * a group (reduction) on dimension d counts records that pass every
//     *other* dimension's filter (so brushing a histogram never filters
//     itself — the classic crossfilter semantics);
//   * numeric dimensions keep a sorted record order, so moving a brush
//     touches only the records *entering or leaving* the window
//     (O(log N + Δ), crossfilter.js's core trick); categorical dimensions
//     keep per-code posting lists with the same effect. Each touched
//     record patches every group count by ±1 — the "incremental query"
//     the paper cites (experiment E8 measures this against full re-scan).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"

namespace vexus::viz {

class Crossfilter {
 public:
  using DimensionId = size_t;
  using GroupId = size_t;

  /// A crossfilter over `num_records` fixed records.
  explicit Crossfilter(size_t num_records);

  size_t num_records() const { return num_records_; }

  /// Numeric dimension from per-record values (size must equal
  /// num_records). NaNs never pass a range filter.
  DimensionId AddNumericDimension(std::vector<double> values);

  /// Categorical dimension from per-record codes in [0, cardinality) or
  /// UINT32_MAX for missing (never passes a value filter).
  DimensionId AddCategoricalDimension(std::vector<uint32_t> codes,
                                      size_t cardinality);

  /// --- filters (brushes) ---

  /// Keep records with lo <= value < hi.
  void FilterRange(DimensionId dim, double lo, double hi);

  /// Keep records whose code is in `values`.
  void FilterValues(DimensionId dim, const std::vector<uint32_t>& values);

  /// Remove the dimension's filter (all records pass it).
  void ClearFilter(DimensionId dim);

  /// --- groups (reductions) ---

  /// Histogram on a numeric dimension: `num_bins` equal-width bins spanning
  /// [lo, hi); out-of-range records fall in the edge bins.
  GroupId AddHistogram(DimensionId dim, size_t num_bins, double lo, double hi);

  /// One bin per category code of a categorical dimension.
  GroupId AddCategoryCounts(DimensionId dim);

  /// Current bin counts of a group (crossfilter semantics: the group's own
  /// dimension filter is ignored).
  const std::vector<size_t>& Counts(GroupId group) const;

  /// --- global views ---

  /// Records passing all filters.
  size_t PassingCount() const;

  /// The passing record set (the "updated list of selected users" table).
  Bitset PassingSet() const;

  /// Incremental work counter: records whose pass/fail state changed across
  /// all filter updates so far (benchmark E8 compares this to
  /// num_records × brushes for re-scan).
  size_t records_touched() const { return records_touched_; }

 private:
  struct Dimension {
    bool numeric = false;
    std::vector<double> values;
    std::vector<uint32_t> codes;
    size_t cardinality = 0;
    /// Numeric: record ids ascending by value; the first `non_nan` entries
    /// are comparable, NaN records trail.
    std::vector<uint32_t> sorted_order;
    size_t non_nan = 0;
    /// Categorical: record ids per code, plus the missing-code records.
    std::vector<std::vector<uint32_t>> code_records;
    std::vector<uint32_t> missing_records;

    /// Current filter.
    bool filtered = false;
    /// Numeric window over sorted_order: records in [lo_idx, hi_idx) pass.
    size_t lo_idx = 0, hi_idx = 0;
    std::vector<uint8_t> value_pass;  // categorical filter per code
    /// status[r] = record r passes this dimension's filter.
    std::vector<uint8_t> status;
  };

  struct Group {
    DimensionId dim = 0;
    bool numeric = false;
    size_t num_bins = 0;
    double lo = 0, hi = 0;
    /// Precomputed bin per record (UINT32_MAX = unbinnable/missing).
    std::vector<uint32_t> bin_of;
    std::vector<size_t> counts;
  };

  /// Flips record r's status on dimension `dim` to `new_s`, patching
  /// fail counts and every group incrementally.
  void FlipRecord(DimensionId dim, uint32_t r, uint8_t new_s);
  /// Flips a contiguous run of dimension `dim`'s sorted_order.
  void FlipSortedRange(DimensionId dim, size_t begin, size_t end,
                       uint8_t new_s);
  /// First index in sorted_order whose value is >= v (non-NaN prefix only).
  static size_t LowerBound(const Dimension& d, double v);
  /// True iff record passes every dimension except `except`.
  bool PassesAllOthers(size_t record, DimensionId except) const;

  size_t num_records_;
  std::vector<Dimension> dimensions_;
  std::vector<Group> groups_;
  /// Number of dimensions whose filter the record fails.
  std::vector<uint16_t> fail_count_;
  size_t records_touched_ = 0;
};

}  // namespace vexus::viz
