// STATS — the granular-analysis module of paper §II.B:
//
//   "histograms will show an exhaustive list of demographic distributions …
//    The explorer can brush on histograms and constrain the set of users.
//    … An updated list of selected users is shown in a table."
//
// StatsView wires a group's members into a Crossfilter with one dimension
// per demographic attribute (categorical codes or raw numerics) and exposes
// brush / clear / distribution / selected-users operations. Every brush is a
// coordinated update: all other histograms change instantaneously.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/hybrid_bitset.h"
#include "data/dataset.h"
#include "viz/crossfilter.h"

namespace vexus::viz {

class StatsView {
 public:
  /// Builds the view over the members of a group (records are the members,
  /// in ascending UserId order).
  StatsView(const data::Dataset* dataset, const Bitset& members);
  StatsView(const data::Dataset* dataset, const HybridBitset& members)
      : StatsView(dataset, members.ToBitset()) {}

  size_t num_members() const { return members_.size(); }

  /// One histogram: labels + current (filtered) counts + total counts.
  struct Distribution {
    std::string attribute;
    std::vector<std::string> labels;
    std::vector<size_t> counts;
  };

  /// The full STATS panel: one distribution per attribute, each respecting
  /// every brush except its own.
  std::vector<Distribution> Distributions() const;

  /// Distribution of a single attribute by name.
  Result<Distribution> DistributionOf(const std::string& attribute) const;

  /// Brush a categorical attribute to the given value names (e.g. gender →
  /// {"female"}). Unknown attribute/value names fail.
  Status Brush(const std::string& attribute,
               const std::vector<std::string>& values);

  /// Brush a numeric attribute to [lo, hi) — except that when `hi` reaches
  /// the attribute's observed maximum the interval is treated as *closed*
  /// at the top. A UI brushing across the whole histogram hands us
  /// [domain min, domain max]; strict right-openness silently dropped every
  /// member sitting exactly on the max (the histogram's last bin shows them,
  /// the selected-users table lost them — the classic right-open off-by-one
  /// at the domain edge).
  Status BrushRange(const std::string& attribute, double lo, double hi);

  /// Remove one attribute's brush.
  Status ClearBrush(const std::string& attribute);

  /// The selected-users table: external ids of members passing all brushes.
  std::vector<std::string> SelectedUsers(size_t limit = 50) const;

  /// Members passing all brushes, as UserIds.
  std::vector<data::UserId> SelectedUserIds() const;

  size_t SelectedCount() const { return filter_->PassingCount(); }

  const Crossfilter& crossfilter() const { return *filter_; }

 private:
  struct AttrBinding {
    data::AttributeId attr;
    Crossfilter::DimensionId dim;
    Crossfilter::GroupId group;
    bool numeric;
    double lo = 0, hi = 0;  // histogram range for numeric
    double data_max = 0;    // largest observed value (BrushRange edge rule)
    size_t bins = 0;
  };

  Result<const AttrBinding*> FindBinding(const std::string& attribute) const;
  Distribution BuildDistribution(const AttrBinding& b) const;

  const data::Dataset* dataset_;
  std::vector<data::UserId> members_;  // record -> UserId
  std::unique_ptr<Crossfilter> filter_;
  std::vector<AttrBinding> bindings_;
};

}  // namespace vexus::viz
