#include "viz/session_views.h"

#include <sstream>

#include "common/string_util.h"

namespace vexus::viz {

std::string RenderContext(const core::ExplorationSession& session,
                          size_t max_tokens) {
  std::ostringstream os;
  os << "CONTEXT";
  auto tokens = session.ContextTokens(max_tokens);
  if (tokens.empty()) {
    os << " (empty — no feedback yet)\n";
    return os.str();
  }
  os << "\n";
  for (const auto& ts : tokens) {
    os << "  [" << session.tokens().Label(ts.token, session.dataset())
       << "] " << vexus::FormatDouble(ts.score, 4) << "\n";
  }
  return os.str();
}

std::string RenderHistory(const core::ExplorationSession& session) {
  std::ostringstream os;
  os << "HISTORY  start";
  const auto& schema = session.dataset().schema();
  for (size_t s = 1; s < session.NumSteps(); ++s) {
    auto selected = session.Step(s).selected;
    if (!selected.has_value()) continue;
    const auto& grp = session.store().group(*selected);
    os << " -> g" << *selected << " \"" << grp.DescriptionString(schema)
       << "\"";
  }
  os << " (current)\n";
  return os.str();
}

std::string RenderMemo(const core::ExplorationSession& session,
                       size_t max_users) {
  std::ostringstream os;
  const auto& memo = session.memo();
  os << "MEMO  " << memo.groups.size() << " group(s), " << memo.users.size()
     << " user(s)\n";
  const auto& schema = session.dataset().schema();
  for (auto g : memo.groups) {
    os << "  group g" << g << ": "
       << session.store().group(g).DescriptionString(schema) << " ("
       << session.store().group(g).size() << " users)\n";
  }
  size_t shown = 0;
  for (auto u : memo.users) {
    if (shown++ >= max_users) {
      os << "  … and " << memo.users.size() - max_users << " more users\n";
      break;
    }
    os << "  user " << session.dataset().users().ExternalId(u) << "\n";
  }
  return os.str();
}

std::string RenderDashboard(const core::ExplorationSession& session) {
  std::ostringstream os;
  os << RenderHistory(session) << "\n" << RenderContext(session) << "\n";
  os << "GROUPVIZ (current screen)\n";
  const auto& shown = session.Current();
  const auto& schema = session.dataset().schema();
  for (auto g : shown.groups) {
    const auto& grp = session.store().group(g);
    os << "  g" << g << " [" << vexus::WithThousands(grp.size())
       << " users] " << grp.DescriptionString(schema) << "\n";
  }
  os << "  (diversity " << vexus::FormatDouble(shown.quality.diversity, 2)
     << ", coverage " << vexus::FormatDouble(shown.quality.coverage, 2)
     << ", " << vexus::FormatDouble(shown.elapsed_ms, 1) << " ms)\n\n";
  os << RenderMemo(session);
  return os.str();
}

}  // namespace vexus::viz
