#include "viz/crossfilter.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace vexus::viz {

Crossfilter::Crossfilter(size_t num_records)
    : num_records_(num_records), fail_count_(num_records, 0) {}

Crossfilter::DimensionId Crossfilter::AddNumericDimension(
    std::vector<double> values) {
  VEXUS_CHECK(values.size() == num_records_)
      << "dimension size mismatch: " << values.size() << " vs "
      << num_records_;
  Dimension d;
  d.numeric = true;
  d.values = std::move(values);
  d.status.assign(num_records_, 1);  // unfiltered: everything passes

  // Sorted order with the NaN records trailing.
  d.sorted_order.resize(num_records_);
  std::iota(d.sorted_order.begin(), d.sorted_order.end(), 0u);
  std::stable_sort(d.sorted_order.begin(), d.sorted_order.end(),
                   [&d](uint32_t a, uint32_t b) {
                     double va = d.values[a];
                     double vb = d.values[b];
                     bool na = std::isnan(va);
                     bool nb = std::isnan(vb);
                     if (na != nb) return nb;  // non-NaN first
                     if (na && nb) return false;
                     return va < vb;
                   });
  d.non_nan = num_records_;
  while (d.non_nan > 0 &&
         std::isnan(d.values[d.sorted_order[d.non_nan - 1]])) {
    --d.non_nan;
  }
  dimensions_.push_back(std::move(d));
  return dimensions_.size() - 1;
}

Crossfilter::DimensionId Crossfilter::AddCategoricalDimension(
    std::vector<uint32_t> codes, size_t cardinality) {
  VEXUS_CHECK(codes.size() == num_records_);
  Dimension d;
  d.numeric = false;
  d.codes = std::move(codes);
  d.cardinality = cardinality;
  d.status.assign(num_records_, 1);
  d.code_records.resize(cardinality);
  for (uint32_t r = 0; r < num_records_; ++r) {
    uint32_t c = d.codes[r];
    if (c < cardinality) {
      d.code_records[c].push_back(r);
    } else {
      d.missing_records.push_back(r);
    }
  }
  dimensions_.push_back(std::move(d));
  return dimensions_.size() - 1;
}

size_t Crossfilter::LowerBound(const Dimension& d, double v) {
  size_t lo = 0, hi = d.non_nan;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (d.values[d.sorted_order[mid]] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void Crossfilter::FlipRecord(DimensionId dim, uint32_t r, uint8_t new_s) {
  Dimension& d = dimensions_[dim];
  if (d.status[r] == new_s) return;
  ++records_touched_;

  // Groups on OTHER dimensions see this record appear/disappear when the
  // record passes all dimensions except (possibly) their own. Evaluate
  // membership before and after the status flip.
  uint16_t fails_before = fail_count_[r];
  uint16_t fails_after =
      static_cast<uint16_t>(fails_before + (new_s ? -1 : +1));
  for (Group& g : groups_) {
    if (g.dim == dim) continue;  // own-dimension status is ignored anyway
    uint32_t bin = g.bin_of[r];
    if (bin == UINT32_MAX) continue;
    bool own_fails = dimensions_[g.dim].status[r] == 0;
    bool in_before =
        fails_before == 0 || (fails_before == 1 && own_fails);
    bool in_after = fails_after == 0 || (fails_after == 1 && own_fails);
    if (in_before && !in_after) {
      --g.counts[bin];
    } else if (!in_before && in_after) {
      ++g.counts[bin];
    }
  }
  fail_count_[r] = fails_after;
  d.status[r] = new_s;
}

void Crossfilter::FlipSortedRange(DimensionId dim, size_t begin, size_t end,
                                  uint8_t new_s) {
  Dimension& d = dimensions_[dim];
  for (size_t i = begin; i < end; ++i) {
    FlipRecord(dim, d.sorted_order[i], new_s);
  }
}

void Crossfilter::FilterRange(DimensionId dim, double lo, double hi) {
  VEXUS_CHECK(dim < dimensions_.size());
  Dimension& d = dimensions_[dim];
  VEXUS_CHECK(d.numeric) << "FilterRange on a categorical dimension";

  size_t nlo = LowerBound(d, lo);
  size_t nhi = LowerBound(d, hi);

  if (!d.filtered) {
    // Unfiltered -> windowed: everything outside [nlo, nhi) fails,
    // including the NaN tail.
    FlipSortedRange(dim, 0, nlo, 0);
    FlipSortedRange(dim, nhi, num_records_, 0);
  } else {
    size_t old_lo = d.lo_idx, old_hi = d.hi_idx;
    // Leaving = old \ new.
    FlipSortedRange(dim, old_lo, std::min(old_hi, nlo), 0);
    FlipSortedRange(dim, std::max(old_lo, nhi), old_hi, 0);
    // Entering = new \ old.
    FlipSortedRange(dim, nlo, std::min(nhi, old_lo), 1);
    FlipSortedRange(dim, std::max(nlo, old_hi), nhi, 1);
  }
  d.filtered = true;
  d.lo_idx = nlo;
  d.hi_idx = nhi;
}

void Crossfilter::FilterValues(DimensionId dim,
                               const std::vector<uint32_t>& values) {
  VEXUS_CHECK(dim < dimensions_.size());
  Dimension& d = dimensions_[dim];
  VEXUS_CHECK(!d.numeric) << "FilterValues on a numeric dimension";

  std::vector<uint8_t> new_pass(d.cardinality, 0);
  for (uint32_t v : values) {
    if (v < d.cardinality) new_pass[v] = 1;
  }

  if (!d.filtered) {
    // Unfiltered -> filtered: codes not in the set fail, missing fails.
    for (uint32_t c = 0; c < d.cardinality; ++c) {
      if (!new_pass[c]) {
        for (uint32_t r : d.code_records[c]) FlipRecord(dim, r, 0);
      }
    }
    for (uint32_t r : d.missing_records) FlipRecord(dim, r, 0);
  } else {
    for (uint32_t c = 0; c < d.cardinality; ++c) {
      if (new_pass[c] == d.value_pass[c]) continue;
      for (uint32_t r : d.code_records[c]) FlipRecord(dim, r, new_pass[c]);
    }
  }
  d.filtered = true;
  d.value_pass = std::move(new_pass);
}

void Crossfilter::ClearFilter(DimensionId dim) {
  VEXUS_CHECK(dim < dimensions_.size());
  Dimension& d = dimensions_[dim];
  if (!d.filtered) return;
  if (d.numeric) {
    FlipSortedRange(dim, 0, d.lo_idx, 1);
    FlipSortedRange(dim, d.hi_idx, num_records_, 1);
  } else {
    for (uint32_t c = 0; c < d.cardinality; ++c) {
      if (!d.value_pass[c]) {
        for (uint32_t r : d.code_records[c]) FlipRecord(dim, r, 1);
      }
    }
    for (uint32_t r : d.missing_records) FlipRecord(dim, r, 1);
    d.value_pass.clear();
  }
  d.filtered = false;
}

bool Crossfilter::PassesAllOthers(size_t record, DimensionId except) const {
  uint16_t fails = fail_count_[record];
  if (fails == 0) return true;
  return fails == 1 && dimensions_[except].status[record] == 0;
}

namespace {
uint32_t BinForValue(double v, size_t num_bins, double lo, double hi) {
  if (std::isnan(v)) return UINT32_MAX;
  if (v < lo) return 0;
  if (v >= hi) return static_cast<uint32_t>(num_bins - 1);
  double width = (hi - lo) / static_cast<double>(num_bins);
  auto bin = static_cast<uint32_t>((v - lo) / width);
  return std::min<uint32_t>(bin, static_cast<uint32_t>(num_bins - 1));
}
}  // namespace

Crossfilter::GroupId Crossfilter::AddHistogram(DimensionId dim,
                                               size_t num_bins, double lo,
                                               double hi) {
  VEXUS_CHECK(dim < dimensions_.size());
  VEXUS_CHECK(num_bins >= 1 && hi > lo);
  const Dimension& d = dimensions_[dim];
  VEXUS_CHECK(d.numeric) << "AddHistogram needs a numeric dimension";

  Group g;
  g.dim = dim;
  g.numeric = true;
  g.num_bins = num_bins;
  g.lo = lo;
  g.hi = hi;
  g.bin_of.resize(num_records_);
  g.counts.assign(num_bins, 0);
  for (size_t r = 0; r < num_records_; ++r) {
    g.bin_of[r] = BinForValue(d.values[r], num_bins, lo, hi);
    if (g.bin_of[r] != UINT32_MAX && PassesAllOthers(r, dim)) {
      ++g.counts[g.bin_of[r]];
    }
  }
  groups_.push_back(std::move(g));
  return groups_.size() - 1;
}

Crossfilter::GroupId Crossfilter::AddCategoryCounts(DimensionId dim) {
  VEXUS_CHECK(dim < dimensions_.size());
  const Dimension& d = dimensions_[dim];
  VEXUS_CHECK(!d.numeric) << "AddCategoryCounts needs a categorical dimension";

  Group g;
  g.dim = dim;
  g.numeric = false;
  g.num_bins = d.cardinality;
  g.bin_of.resize(num_records_);
  g.counts.assign(d.cardinality, 0);
  for (size_t r = 0; r < num_records_; ++r) {
    uint32_t c = d.codes[r];
    g.bin_of[r] = c < d.cardinality ? c : UINT32_MAX;
    if (g.bin_of[r] != UINT32_MAX && PassesAllOthers(r, dim)) {
      ++g.counts[g.bin_of[r]];
    }
  }
  groups_.push_back(std::move(g));
  return groups_.size() - 1;
}

const std::vector<size_t>& Crossfilter::Counts(GroupId group) const {
  VEXUS_CHECK(group < groups_.size());
  return groups_[group].counts;
}

size_t Crossfilter::PassingCount() const {
  size_t n = 0;
  for (uint16_t f : fail_count_) n += (f == 0);
  return n;
}

Bitset Crossfilter::PassingSet() const {
  Bitset b(num_records_);
  for (size_t r = 0; r < num_records_; ++r) {
    if (fail_count_[r] == 0) b.Set(r);
  }
  return b;
}

}  // namespace vexus::viz
