// Focus View projections (paper §II.B, "Granular Analysis"):
//
//   "VEXUS employs Linear Discriminant Analysis as a dimensionality
//    reduction approach to obtain a 2D projection of members of a desired
//    group. Members whose profile are more similar appear closer to each
//    other."
//
// LDA maximizes between-class over within-class scatter: solve
// Sb·v = λ·Sw·v (generalized symmetric eigenproblem, src/la) and project on
// the top-2 eigenvectors. Classes come from a chosen categorical attribute
// (or any labeling); with fewer than two classes — or a defective Sw — the
// projection falls back to PCA on the covariance, which only needs the data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "la/matrix.h"

namespace vexus::viz {

struct Point2D {
  double x = 0;
  double y = 0;
};

struct ProjectionResult {
  std::vector<Point2D> points;  // one per input row
  /// "lda" or "pca" (which path produced the projection).
  std::string method;
  /// Leading eigenvalues (discriminability / explained variance).
  double eigenvalue1 = 0;
  double eigenvalue2 = 0;
  /// Class-separation score: mean between-class centroid distance divided
  /// by mean within-class spread, in the projected plane (0 when
  /// single-class). Experiment E9's quality metric.
  double separation = 0;
};

class LinearDiscriminantAnalysis {
 public:
  struct Options {
    /// Ridge added to Sw's diagonal (one-hot features make Sw singular).
    double regularization = 1e-3;
    /// Fall back to PCA when fewer than 2 classes have members.
    bool pca_fallback = true;
  };

  /// rows: feature vectors (all equal length, at least 1 row);
  /// labels: class of each row (use a single label to force the PCA path
  /// when pca_fallback is on).
  static Result<ProjectionResult> Project(
      const std::vector<std::vector<double>>& rows,
      const std::vector<uint32_t>& labels, const Options& options);
  static Result<ProjectionResult> Project(
      const std::vector<std::vector<double>>& rows,
      const std::vector<uint32_t>& labels) {
    return Project(rows, labels, Options{});
  }
};

/// PCA to 2D: eigenvectors of the covariance matrix.
Result<ProjectionResult> PcaProject(
    const std::vector<std::vector<double>>& rows);

/// Separation score of a labeled 2D embedding (see ProjectionResult).
double SeparationScore(const std::vector<Point2D>& points,
                       const std::vector<uint32_t>& labels);

}  // namespace vexus::viz
