// Headless renderings of Fig. 2's session panels:
//   (b) CONTEXT — the feedback tokens, as the "[cikm][male]" chips the demo
//       shows, with scores;
//   (d) HISTORY — the sequence of selected groups with arrow markers and
//       the current position;
//   (e) MEMO — the bookmarked groups and users (the explorer's "analysis
//       goal").
// The GROUPVIZ (a) and STATS (c) panels are rendered by GroupVizScene and
// StatsView respectively; together the five views cover the full screen of
// the paper's demo, printable from any example or test.
#pragma once

#include <string>

#include "core/session.h"

namespace vexus::viz {

/// CONTEXT panel: one line per token, highest score first.
///   [gender=male] 0.1845
///   [user:author42] 0.0213
std::string RenderContext(const core::ExplorationSession& session,
                          size_t max_tokens = 8);

/// HISTORY panel: the clicked trail, e.g.
///   start -> g12 "gender=female" -> g57 "…" (current)
/// Backtracked-away steps are gone (the session truncates them), matching
/// the paper's semantics of resuming from an earlier point.
std::string RenderHistory(const core::ExplorationSession& session);

/// MEMO panel: bookmarked groups (with descriptions) and users (external
/// ids), the order they were collected in.
std::string RenderMemo(const core::ExplorationSession& session,
                       size_t max_users = 20);

/// The whole dashboard: HISTORY + CONTEXT + MEMO + the current GROUPVIZ
/// screen as a compact text block (for terminal demos and golden tests).
std::string RenderDashboard(const core::ExplorationSession& session);

}  // namespace vexus::viz
