// Directed force layout for GROUPVIZ (paper §II.A):
//
//   "GROUPVIZ visualizes k groups in the form of circles … The position of
//    circles is enforced by a directed force layout to prevent visual
//    clutter. The size of circles reflects the number of users in groups."
//
// A d3-force-style velocity integrator with four forces:
//   * many-body repulsion (Coulomb-like, O(n²) — n ≤ a few hundred circles),
//   * link springs toward a rest length shrinking with similarity
//     (similar groups sit closer),
//   * centering gravity,
//   * pairwise collision resolution on circle radii (the no-clutter
//     guarantee experiment E9 checks: zero residual overlaps).
// Deterministic: initial positions come from a seeded RNG.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace vexus::viz {

class ForceLayout {
 public:
  struct Node {
    double x = 0, y = 0;
    double vx = 0, vy = 0;
    double radius = 10;
  };

  struct Link {
    uint32_t a = 0;
    uint32_t b = 0;
    /// Similarity in [0,1]; higher pulls the circles closer.
    double weight = 0.5;
  };

  struct Options {
    double width = 800;
    double height = 600;
    double repulsion = 3000;      // many-body strength
    double spring = 0.08;         // link force stiffness
    double gravity = 0.03;        // centering strength
    double damping = 0.85;        // velocity decay per tick
    double collision_padding = 4; // extra clearance between circles
    int iterations = 300;
    uint64_t seed = 1234;
  };

  /// `radii` sets each node's circle radius (size ∝ group cardinality is the
  /// caller's mapping); links reference node indices.
  ForceLayout(std::vector<double> radii, std::vector<Link> links,
              Options options);
  ForceLayout(std::vector<double> radii, std::vector<Link> links)
      : ForceLayout(std::move(radii), std::move(links), Options{}) {}

  /// Runs the simulation to completion (options.iterations ticks plus a
  /// final hard collision sweep).
  void Run();

  /// One integration step; exposed for animation-style drivers.
  void Tick();

  const std::vector<Node>& nodes() const { return nodes_; }

  /// Number of overlapping circle pairs (0 after a successful Run).
  size_t CountOverlaps() const;

  /// Sum of node displacement magnitudes in the last tick (convergence
  /// monitor for experiment E9).
  double last_movement() const { return last_movement_; }

 private:
  void ResolveCollisions();

  Options options_;
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  double last_movement_ = 0;
};

}  // namespace vexus::viz
