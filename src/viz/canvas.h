// Headless render targets. The paper's front-end draws in a browser; the
// reproduction renders the same scenes to SVG files (inspectable artifacts
// produced by the examples) and to ASCII (terminal demos, golden tests).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace vexus::viz {

/// Minimal retained-mode SVG canvas.
class SvgCanvas {
 public:
  SvgCanvas(double width, double height);

  void Circle(double cx, double cy, double r, const std::string& fill,
              double opacity = 1.0, const std::string& tooltip = "");
  void Line(double x1, double y1, double x2, double y2,
            const std::string& stroke, double width = 1.0);
  void Rect(double x, double y, double w, double h, const std::string& fill,
            double opacity = 1.0);
  void Text(double x, double y, const std::string& text,
            const std::string& fill = "#333", int font_size = 12);

  /// Serializes the SVG document.
  std::string ToString() const;

  /// Writes to a file; IOError on failure.
  Status WriteFile(const std::string& path) const;

 private:
  static std::string Escape(const std::string& s);

  double width_, height_;
  std::vector<std::string> elements_;
};

/// Character-cell canvas for terminal output.
class AsciiCanvas {
 public:
  AsciiCanvas(size_t cols, size_t rows);

  /// Draws a circle outline with the given glyph; center label optional.
  void Circle(double cx, double cy, double r, char glyph,
              const std::string& label = "");
  void Point(double x, double y, char glyph);
  void Text(double x, double y, const std::string& text);

  std::string ToString() const;

 private:
  void Put(long col, long row, char c);

  size_t cols_, rows_;
  std::vector<std::string> grid_;
};

/// A categorical color palette (d3.schemeCategory10) for color-coding
/// circles by attribute value (paper: "circles can be color-coded by any
/// attribute of choice").
const std::string& PaletteColor(size_t index);

}  // namespace vexus::viz
