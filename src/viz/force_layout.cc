#include "viz/force_layout.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vexus::viz {

ForceLayout::ForceLayout(std::vector<double> radii, std::vector<Link> links,
                         Options options)
    : options_(options), links_(std::move(links)) {
  nodes_.resize(radii.size());
  Rng rng(options_.seed, 3);
  // Phyllotaxis-like deterministic initial placement keeps the start
  // untangled; jitter avoids exact symmetry lock-in.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    double angle = 2.399963 * static_cast<double>(i);  // golden angle
    double r = 20.0 * std::sqrt(static_cast<double>(i) + 0.5);
    nodes_[i].x = options_.width / 2 + r * std::cos(angle) +
                  rng.UniformDouble(-1, 1);
    nodes_[i].y = options_.height / 2 + r * std::sin(angle) +
                  rng.UniformDouble(-1, 1);
    nodes_[i].radius = radii[i];
  }
  for (const Link& l : links_) {
    VEXUS_CHECK(l.a < nodes_.size() && l.b < nodes_.size())
        << "link endpoint out of range";
  }
}

void ForceLayout::Tick() {
  size_t n = nodes_.size();
  // Many-body repulsion.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double dx = nodes_[j].x - nodes_[i].x;
      double dy = nodes_[j].y - nodes_[i].y;
      double d2 = dx * dx + dy * dy;
      if (d2 < 1e-6) {
        dx = 0.1 * (static_cast<double>(i) - static_cast<double>(j));
        dy = 0.1;
        d2 = dx * dx + dy * dy;
      }
      double f = options_.repulsion / d2;
      double d = std::sqrt(d2);
      double fx = f * dx / d;
      double fy = f * dy / d;
      nodes_[i].vx -= fx;
      nodes_[i].vy -= fy;
      nodes_[j].vx += fx;
      nodes_[j].vy += fy;
    }
  }
  // Link springs: rest length shrinks as similarity grows.
  for (const Link& l : links_) {
    Node& a = nodes_[l.a];
    Node& b = nodes_[l.b];
    double rest =
        (a.radius + b.radius + options_.collision_padding) +
        120.0 * (1.0 - std::clamp(l.weight, 0.0, 1.0));
    double dx = b.x - a.x;
    double dy = b.y - a.y;
    double d = std::sqrt(dx * dx + dy * dy);
    if (d < 1e-6) continue;
    double f = options_.spring * (d - rest);
    double fx = f * dx / d;
    double fy = f * dy / d;
    a.vx += fx;
    a.vy += fy;
    b.vx -= fx;
    b.vy -= fy;
  }
  // Centering gravity.
  double cx = options_.width / 2;
  double cy = options_.height / 2;
  for (Node& node : nodes_) {
    node.vx += (cx - node.x) * options_.gravity;
    node.vy += (cy - node.y) * options_.gravity;
  }
  // Integrate with damping.
  last_movement_ = 0;
  for (Node& node : nodes_) {
    node.vx *= options_.damping;
    node.vy *= options_.damping;
    node.x += node.vx;
    node.y += node.vy;
    last_movement_ += std::sqrt(node.vx * node.vx + node.vy * node.vy);
  }
  ResolveCollisions();
  // Keep circles inside the viewport.
  for (Node& node : nodes_) {
    node.x = std::clamp(node.x, node.radius, options_.width - node.radius);
    node.y = std::clamp(node.y, node.radius, options_.height - node.radius);
  }
}

void ForceLayout::ResolveCollisions() {
  size_t n = nodes_.size();
  // A couple of relaxation sweeps per tick separate overlapping pairs.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        Node& a = nodes_[i];
        Node& b = nodes_[j];
        double min_d = a.radius + b.radius + options_.collision_padding;
        double dx = b.x - a.x;
        double dy = b.y - a.y;
        double d = std::sqrt(dx * dx + dy * dy);
        if (d >= min_d) continue;
        if (d < 1e-6) {
          dx = 1.0;
          dy = 0.0;
          d = 1.0;
        }
        double push = 0.5 * (min_d - d);
        double px = push * dx / d;
        double py = push * dy / d;
        a.x -= px;
        a.y -= py;
        b.x += px;
        b.y += py;
      }
    }
  }
}

void ForceLayout::Run() {
  for (int i = 0; i < options_.iterations; ++i) Tick();
  // Final hard sweep: repeat collision resolution until clean (bounded).
  for (int sweep = 0; sweep < 50 && CountOverlaps() > 0; ++sweep) {
    ResolveCollisions();
  }
}

size_t ForceLayout::CountOverlaps() const {
  size_t overlaps = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (size_t j = i + 1; j < nodes_.size(); ++j) {
      double dx = nodes_[j].x - nodes_[i].x;
      double dy = nodes_[j].y - nodes_[i].y;
      double min_d = nodes_[i].radius + nodes_[j].radius;
      if (dx * dx + dy * dy < min_d * min_d - 1e-9) ++overlaps;
    }
  }
  return overlaps;
}

}  // namespace vexus::viz
