// GroupVizScene — assembles the GROUPVIZ screen of Fig. 2: the current
// selection's k groups as circles (area ∝ member count), positioned by the
// directed force layout, color-coded by a chosen attribute's majority value,
// with the description as tooltip/hover text; overlap edges drawn between
// non-disjoint groups.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "mining/group.h"
#include "viz/force_layout.h"

namespace vexus::viz {

class GroupVizScene {
 public:
  struct Options {
    double width = 800;
    double height = 600;
    double min_radius = 14;
    double max_radius = 70;
    /// Attribute whose per-group majority value drives circle color
    /// (empty = single color).
    std::string color_attribute;
    uint64_t layout_seed = 1234;
  };

  /// One laid-out circle.
  struct CircleSpec {
    mining::GroupId group = 0;
    double x = 0, y = 0, radius = 0;
    std::string color;
    std::string label;        // e.g. "g12 (1,204 users)"
    std::string description;  // hover text
  };

  /// Builds and lays out the scene for a set of groups. Fails on unknown
  /// color attribute.
  static Result<GroupVizScene> Build(const data::Dataset& dataset,
                                     const mining::GroupStore& store,
                                     const std::vector<mining::GroupId>& shown,
                                     const Options& options);
  static Result<GroupVizScene> Build(
      const data::Dataset& dataset, const mining::GroupStore& store,
      const std::vector<mining::GroupId>& shown) {
    return Build(dataset, store, shown, Options{});
  }

  const std::vector<CircleSpec>& circles() const { return circles_; }
  size_t overlaps() const { return overlaps_; }

  /// Renders the scene as a standalone SVG document.
  std::string ToSvg() const;

  /// Renders an ASCII sketch (for terminal demos).
  std::string ToAscii(size_t cols = 100, size_t rows = 30) const;

 private:
  Options options_;
  std::vector<CircleSpec> circles_;
  /// Edges between shown groups with their similarity (drawn as lines).
  struct SceneEdge {
    size_t a, b;
    double weight;
  };
  std::vector<SceneEdge> edges_;
  size_t overlaps_ = 0;
};

}  // namespace vexus::viz
