#include "net/shard_client.h"

#include <algorithm>
#include <cmath>

namespace vexus::net {

using server::Request;
using server::Response;

ShardClient::ShardClient(std::string host, uint16_t port, Options options)
    : host_(std::move(host)), port_(port), options_(options) {
  if (options_.latency_window == 0) options_.latency_window = 1;
}

std::string ShardClient::address() const {
  return host_ + ":" + std::to_string(port_);
}

void ShardClient::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  primary_.reset();
}

uint64_t ShardClient::hedges_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hedges_sent_;
}

uint64_t ShardClient::hedge_wins() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hedge_wins_;
}

double ShardClient::HedgeDelayMillis() const {
  std::lock_guard<std::mutex> lock(mu_);
  return HedgeDelayLocked();
}

Status ShardClient::EnsureConnected(const Deadline& deadline) {
  if (primary_.has_value()) return Status::OK();
  double budget =
      std::min(deadline.RemainingMillis(), options_.connect_timeout_ms);
  auto client = LineClient::Connect(host_, port_, budget);
  VEXUS_RETURN_NOT_OK(client.status());
  primary_ = std::move(client).ValueOrDie();
  return Status::OK();
}

void ShardClient::RecordLatency(double ms) {
  if (latency_ring_.size() < options_.latency_window) {
    latency_ring_.push_back(ms);
  } else {
    latency_ring_[latency_next_ % latency_ring_.size()] = ms;
  }
  ++latency_next_;
}

double ShardClient::HedgeDelayLocked() const {
  double p99 = options_.hedge_max_ms;
  if (!latency_ring_.empty()) {
    std::vector<double> sorted = latency_ring_;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(
        std::ceil(0.99 * static_cast<double>(sorted.size())));
    p99 = sorted[std::min(idx, sorted.size()) - (idx > 0 ? 1 : 0)];
    if (idx == 0) p99 = sorted[0];
  }
  return std::clamp(p99, options_.hedge_min_ms, options_.hedge_max_ms);
}

Result<Response> ShardClient::Call(const Request& req, double budget_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  Deadline deadline = Deadline::AfterMillis(budget_ms);
  VEXUS_RETURN_NOT_OK(EnsureConnected(deadline));

  const std::string line = req.Encode();
  Stopwatch watch;
  Status sent = primary_->SendLine(line);
  if (!sent.ok()) {
    primary_.reset();
    return sent;
  }

  auto decode = [&](std::string text) -> Result<Response> {
    RecordLatency(watch.ElapsedMillis());
    return Response::Decode(text);
  };

  // First wait: the primary gets until the hedge delay (or the whole
  // budget when hedging is off / the budget is tighter).
  double first_wait = deadline.RemainingMillis();
  if (options_.hedging) {
    first_wait = std::min(first_wait, HedgeDelayLocked());
  }
  auto first = primary_->ReadLine(first_wait);
  if (first.ok()) return decode(std::move(first).ValueOrDie());
  if (first.status().code() != StatusCode::kDeadlineExceeded) {
    primary_.reset();
    return first.status();
  }
  if (!options_.hedging || deadline.Expired()) {
    primary_.reset();  // the pending response would desync the next call
    return Status::DeadlineExceeded("shard " + address() +
                                    " timed out before hedge");
  }

  // Hedge: a fresh connection re-sends the same request; alternate short
  // read laps between both until one answers. LineFramer keeps partial
  // bytes across DeadlineExceeded laps, so alternating cannot tear a
  // response. The loser is always closed — its late response must never be
  // read as a future call's answer.
  ++hedges_sent_;
  std::optional<LineClient> hedge;
  {
    double budget =
        std::min(deadline.RemainingMillis(), options_.connect_timeout_ms);
    auto client = LineClient::Connect(host_, port_, budget);
    if (client.ok()) {
      hedge = std::move(client).ValueOrDie();
      if (!hedge->SendLine(line).ok()) hedge.reset();
    }
  }
  const double lap = std::max(0.5, options_.hedge_lap_ms);
  while (!deadline.Expired()) {
    if (primary_.has_value()) {
      auto from_primary =
          primary_->ReadLine(std::min(lap, deadline.RemainingMillis()));
      if (from_primary.ok()) {
        hedge.reset();
        return decode(std::move(from_primary).ValueOrDie());
      }
      if (from_primary.status().code() != StatusCode::kDeadlineExceeded) {
        // Primary died mid-hedge; the hedge connection (if any) is now the
        // only hope and becomes the next call's primary on success.
        primary_.reset();
        if (!hedge.has_value()) return from_primary.status();
      }
    }
    if (hedge.has_value() && !deadline.Expired()) {
      auto from_hedge =
          hedge->ReadLine(std::min(lap, deadline.RemainingMillis()));
      if (from_hedge.ok()) {
        ++hedge_wins_;
        primary_ = std::move(hedge);  // old primary (if alive) is dropped
        return decode(std::move(from_hedge).ValueOrDie());
      }
      if (from_hedge.status().code() != StatusCode::kDeadlineExceeded) {
        hedge.reset();
        if (!primary_.has_value()) return from_hedge.status();
      }
    }
    if (!primary_.has_value() && !hedge.has_value()) {
      return Status::IOError("shard " + address() +
                             ": both connections failed mid-hedge");
    }
  }
  primary_.reset();
  hedge.reset();
  return Status::DeadlineExceeded("shard " + address() +
                                  " exhausted its call budget");
}

}  // namespace vexus::net
