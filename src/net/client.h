// LineClient — the simple blocking client for the line-JSON wire protocol.
//
// One TCP connection, one outstanding style of use: SendLine/ReadLine for
// raw-line tooling (the REPL's --connect mode pipes user text through
// unmodified), Call() for typed request/response. Framing is the shared
// server::LineFramer — the client does NOT reimplement a parser, so client
// and server can never disagree about where a response ends (the satellite
// contract in ISSUE.md).
//
// Pipelining: callers may SendLine() several times before reading; responses
// come back in send order (the server's per-connection flush contract).
// ReadLine() returns them one at a time. Call() is strictly one-shot
// (send + wait) and must not be interleaved with manual pipelining.
//
// Not thread-safe. The multiplexed benchmark client does not use this class
// (it needs nonblocking fds); tests and the REPL do.
#pragma once

#include <optional>
#include <string>

#include "common/result.h"
#include "net/socket.h"
#include "server/protocol.h"

namespace vexus::net {

class LineClient {
 public:
  /// Connects (blocking, bounded by timeout_ms) and returns a ready client.
  static Result<LineClient> Connect(const std::string& host, uint16_t port,
                                    double timeout_ms = 5000);

  /// Wraps an already-connected stream socket (blocking or nonblocking —
  /// ReadLine polls before every recv). The socketpair harness the client
  /// regression tests drive; Connect() remains the TCP path.
  static LineClient FromFd(Fd fd) { return LineClient(std::move(fd)); }

  LineClient(LineClient&&) = default;
  LineClient& operator=(LineClient&&) = default;

  /// Writes `line` + '\n' (appends the terminator; `line` must not contain
  /// one — that would be two requests).
  Status SendLine(const std::string& line);

  /// Blocks until one complete response line arrives (or timeout/EOF).
  /// Returns DeadlineExceeded on timeout, IOError on EOF/transport error.
  Result<std::string> ReadLine(double timeout_ms = 5000);

  /// Encode + SendLine + ReadLine + Decode.
  Result<server::Response> Call(const server::Request& req,
                                double timeout_ms = 5000);

  /// Half-closes the write side (SHUT_WR): tells the server "no more
  /// requests" while leaving the read side open for pipelined responses —
  /// the lame-duck path the server tests exercise.
  void ShutdownWrite();

  int fd() const { return fd_.get(); }

 private:
  LineClient(Fd fd);

  Fd fd_;
  server::LineFramer framer_;
};

}  // namespace vexus::net
