#include "net/socket.h"

#include <arpa/inet.h>
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/stopwatch.h"

namespace vexus::net {

void Fd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL, O_NONBLOCK)", errno);
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)", errno);
  }
  return Status::OK();
}

Result<sockaddr_in> ResolveHost(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    return addr;
  }
  // Numeric first: a dotted quad must never block on the resolver (the
  // event loop and the gather client's reconnect laps call this on hot
  // paths with numeric addresses).
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    if (res != nullptr) ::freeaddrinfo(res);
    return Status::InvalidArgument(
        "cannot resolve \"" + host + "\": not an IPv4 address and hostname " +
        "lookup failed (" + (rc != 0 ? ::gai_strerror(rc) : "no result") +
        ")");
  }
  addr.sin_addr =
      reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return addr;
}

Result<Fd> ListenTcp(const std::string& host, uint16_t port, int backlog,
                     uint16_t* bound_port, bool reuseport) {
  auto addr = ResolveHost(host, port);
  VEXUS_RETURN_NOT_OK(addr.status());

  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket", errno);
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)", errno);
  }
  if (reuseport &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
          0) {
    return ErrnoStatus("setsockopt(SO_REUSEPORT)", errno);
  }
  sockaddr_in sa = addr.ValueOrDie();
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) <
      0) {
    return ErrnoStatus("bind(" + host + ":" + std::to_string(port) + ")",
                       errno);
  }
  if (::listen(fd.get(), backlog) < 0) return ErrnoStatus("listen", errno);
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) <
        0) {
      return ErrnoStatus("getsockname", errno);
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return std::move(fd);
}

Result<Fd> ConnectTcp(const std::string& host, uint16_t port,
                      double timeout_ms) {
  auto addr = ResolveHost(host.empty() ? "127.0.0.1" : host, port);
  VEXUS_RETURN_NOT_OK(addr.status());

  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket", errno);
  sockaddr_in sa = addr.ValueOrDie();
  int rc =
      ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (rc < 0 && errno != EINPROGRESS) return ErrnoStatus("connect", errno);
  if (rc < 0) {
    // In progress: wait for writability, then read the final verdict. The
    // budget runs through Deadline + PollLapTimeoutMillis — the former bare
    // static_cast<int>(timeout_ms) was UB for NaN and for infinite-sentinel
    // budgets (1e12 cast negative, which poll(2) reads as "block forever").
    Deadline deadline = Deadline::AfterMillis(timeout_ms);
    for (;;) {
      pollfd pfd{fd.get(), POLLOUT, 0};
      int n = ::poll(&pfd, 1, PollLapTimeoutMillis(deadline.RemainingMillis()));
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("poll(connect)", errno);
      }
      if (n > 0) break;
      if (deadline.Expired()) {
        return Status::DeadlineExceeded("connect to " + host + ":" +
                                        std::to_string(port) + " timed out");
      }
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)", errno);
    }
    if (err != 0) {
      return ErrnoStatus(
          "connect to " + host + ":" + std::to_string(port), err);
    }
  }
  // Back to blocking: the simple-client contract (see socket.h).
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(clear O_NONBLOCK)", errno);
  }
  VEXUS_RETURN_NOT_OK(SetNoDelay(fd.get()));
  return std::move(fd);
}

Result<std::pair<Fd, Fd>> NonBlockingSocketPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0,
                   fds) < 0) {
    return ErrnoStatus("socketpair", errno);
  }
  return std::make_pair(Fd(fds[0]), Fd(fds[1]));
}

int PollLapTimeoutMillis(double remaining_ms) {
  // NaN compares false against everything, so it falls through to the
  // "expired" lap below — matching Deadline::AfterMillis, which treats a
  // NaN budget as born-expired.
  if (!(remaining_ms > 0)) return 0;
  // Cap each lap: the deadline (not poll) owns the total wait, and capping
  // keeps the int cast in-range for Deadline's 1e12-style infinite
  // sentinels (the pre-fix cast of those values was UB; see socket.h).
  constexpr double kMaxLapMs = 60'000;
  return static_cast<int>(std::ceil(std::min(remaining_ms, kMaxLapMs)));
}

}  // namespace vexus::net
