// POSIX socket primitives for the TCP front-end: an owning fd wrapper and
// the handful of syscall recipes (listen, connect, socketpair, fcntl) the
// event loop and clients share. Everything returns Status/Result — errno is
// translated at the boundary so the rest of the subsystem never reads it.
//
// IPv4 only for now: the front-end binds loopback or 0.0.0.0 and the
// benchmark drives loopback; AF_INET6 would be a mechanical extension.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace vexus::net {

/// Owning file descriptor (move-only RAII). Closing ignores EINTR per
/// POSIX.1-2008 semantics (the fd is gone either way on Linux).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();

 private:
  int fd_ = -1;
};

/// Builds an errno-carrying Status ("what: strerror(errno)").
Status ErrnoStatus(const std::string& what, int err);

/// Marks `fd` nonblocking (O_NONBLOCK).
Status SetNonBlocking(int fd);

/// Disables Nagle (TCP_NODELAY) — a line-oriented request/response protocol
/// inside a 100 ms budget cannot afford 40 ms delayed-ACK stalls.
Status SetNoDelay(int fd);

/// Creates a nonblocking listening socket bound to host:port (port 0 =
/// ephemeral; SO_REUSEADDR set). On success *bound_port holds the actual
/// port (what tests and --port 0 deployments need).
///
/// `reuseport` additionally sets SO_REUSEPORT before bind, allowing several
/// listeners on the same host:port — the kernel then steers each accepted
/// connection to exactly one of them (the multi-loop front-end's listener
/// group; DESIGN.md §13.1). Every socket in the group must set it, so the
/// first listener of a group needs reuseport=true too.
Result<Fd> ListenTcp(const std::string& host, uint16_t port, int backlog,
                     uint16_t* bound_port, bool reuseport = false);

/// Resolves `host` to an IPv4 socket address. Numeric dotted-quads go
/// through inet_pton (never blocks, never consults the resolver); anything
/// else falls back to getaddrinfo(AF_INET), so "localhost" and DNS names
/// work for `--connect` and shard-backend address lists. Empty or "*"
/// resolves to INADDR_ANY. InvalidArgument carries both failure modes in
/// the message ("not an IPv4 address and hostname lookup failed").
Result<sockaddr_in> ResolveHost(const std::string& host, uint16_t port);

/// Blocking-connect with a timeout (nonblocking connect + poll), returning
/// a *blocking* connected socket with TCP_NODELAY set. The simple-client
/// shape: net::LineClient and tests use this; the benchmark flips the fd
/// back to nonblocking for its multiplexed loop. The timeout is a Deadline
/// budget (common/stopwatch.h semantics): NaN/zero/negative fail fast with
/// DeadlineExceeded, >= 1e12 waits indefinitely — each poll lap is clamped
/// through PollLapTimeoutMillis, never a raw int cast.
Result<Fd> ConnectTcp(const std::string& host, uint16_t port,
                      double timeout_ms);

/// Nonblocking AF_UNIX stream pair — the Connection unit tests' harness
/// (drive OnReadable/OnWritable without a real listener).
Result<std::pair<Fd, Fd>> NonBlockingSocketPair();

/// Poll/epoll timeout (ms) for one wait lap given the remaining deadline
/// budget. Shared by every spot that narrows a double budget to the int
/// poll(2)/epoll_wait(2) expect, because the naive `static_cast<int>` is
/// wrong three ways: it is UB for NaN and for budgets beyond INT_MAX
/// (Deadline-style "infinite" sentinels like 1e12 — in practice the cast
/// went negative, which the kernel reads as "block forever", turning a
/// bounded wait into an unbounded one); and it truncates sub-millisecond
/// budgets to a busy-spinning 0 instead of rounding them up. Semantics:
/// NaN or expired → 0, sub-ms → ceil, and every lap capped (60 s) so
/// quasi-infinite budgets still re-check their deadline periodically.
int PollLapTimeoutMillis(double remaining_ms);

}  // namespace vexus::net
