#include "net/tcp_server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "server/overload.h"

namespace vexus::net {

using server::ExplorationService;
using server::OverloadRung;
using server::Request;

struct TcpServer::AtomicStats {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> accept_rejected{0};
  std::atomic<uint64_t> accept_faults{0};
  std::atomic<uint64_t> lines_framed{0};
  std::atomic<uint64_t> parse_errors{0};
  std::atomic<uint64_t> oversized_lines{0};
  std::atomic<uint64_t> requests_submitted{0};
  std::atomic<uint64_t> responses_routed{0};
  std::atomic<uint64_t> responses_dropped{0};
  std::atomic<uint64_t> peer_closes{0};
  std::atomic<uint64_t> io_error_closes{0};
  std::atomic<uint64_t> idle_closes{0};
  std::atomic<uint64_t> slow_client_closes{0};
  std::atomic<uint64_t> drain_forced_closes{0};
};

namespace {
inline void Bump(std::atomic<uint64_t>& c) {
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}
}  // namespace

struct TcpServer::CompletionQueue {
  std::mutex mu;
  std::vector<Completion> pending;
  bool alive = true;  // guarded by mu; false once the loop is gone
  Wakeup wakeup;
  /// Shared with TcpServer so a completion landing after the loop exited
  /// still retires its request as dropped (the conservation invariant
  /// `submitted == routed + dropped` must survive late workers).
  std::shared_ptr<AtomicStats> stats;

  void Push(Completion c) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!alive) {
        // Loop gone: no connection can receive these bytes anymore.
        Bump(stats->responses_dropped);
        return;
      }
      pending.push_back(std::move(c));
    }
    wakeup.Signal();
  }
};

TcpServer::TcpServer(ExplorationService* service, TcpServerOptions options)
    : service_(service),
      options_(std::move(options)),
      cq_(std::make_shared<CompletionQueue>()),
      stats_(std::make_shared<AtomicStats>()) {
  VEXUS_CHECK(service_ != nullptr);
  if (options_.tick_ms <= 0) options_.tick_ms = 100;
  cq_->stats = stats_;
}

TcpServer::~TcpServer() { Drain(); }

Status TcpServer::Start() {
  VEXUS_CHECK(!started_) << "Start() called twice";
  auto listener =
      ListenTcp(options_.host, options_.port, options_.backlog, &port_);
  VEXUS_RETURN_NOT_OK(listener.status());
  listener_ = std::move(listener).ValueOrDie();

  epoll_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) return ErrnoStatus("epoll_create1", errno);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // 0 = listener, UINT64_MAX = wakeup, else conn id
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.get(), &ev) < 0) {
    return ErrnoStatus("epoll_ctl(listener)", errno);
  }
  ev.events = EPOLLIN;
  ev.data.u64 = UINT64_MAX;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, cq_->wakeup.fd(), &ev) < 0) {
    return ErrnoStatus("epoll_ctl(wakeup)", errno);
  }

  started_ = true;
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void TcpServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  cq_->wakeup.Signal();
}

void TcpServer::Drain() {
  if (!started_ || drained_) return;
  RequestDrain();
  loop_thread_.join();
  drained_ = true;
  {
    // Final sweep: completions pushed between the loop's last
    // DrainCompletions() and its exit have no connection left to route to.
    // Count them as dropped; anything later drops (and counts) at Push().
    std::lock_guard<std::mutex> lock(cq_->mu);
    cq_->alive = false;
    for (size_t i = 0; i < cq_->pending.size(); ++i) {
      Bump(stats_->responses_dropped);
    }
    cq_->pending.clear();
  }
  // Workers may still be finishing requests whose connections were fault-
  // or force-closed; their Push() calls retire them as dropped. Wait
  // (bounded) for those stragglers so Stats() read right after Drain()
  // observes the conservation invariant.
  Stopwatch wait;
  while (wait.ElapsedMillis() < options_.drain_timeout_ms) {
    uint64_t retired =
        stats_->responses_routed.load(std::memory_order_relaxed) +
        stats_->responses_dropped.load(std::memory_order_relaxed);
    if (retired >= stats_->requests_submitted.load(std::memory_order_relaxed))
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TcpServerStats TcpServer::Stats() const {
  TcpServerStats s;
  s.accepted = stats_->accepted.load(std::memory_order_relaxed);
  s.accept_rejected = stats_->accept_rejected.load(std::memory_order_relaxed);
  s.accept_faults = stats_->accept_faults.load(std::memory_order_relaxed);
  s.lines_framed = stats_->lines_framed.load(std::memory_order_relaxed);
  s.parse_errors = stats_->parse_errors.load(std::memory_order_relaxed);
  s.oversized_lines = stats_->oversized_lines.load(std::memory_order_relaxed);
  s.requests_submitted =
      stats_->requests_submitted.load(std::memory_order_relaxed);
  s.responses_routed = stats_->responses_routed.load(std::memory_order_relaxed);
  s.responses_dropped =
      stats_->responses_dropped.load(std::memory_order_relaxed);
  s.peer_closes = stats_->peer_closes.load(std::memory_order_relaxed);
  s.io_error_closes = stats_->io_error_closes.load(std::memory_order_relaxed);
  s.idle_closes = stats_->idle_closes.load(std::memory_order_relaxed);
  s.slow_client_closes =
      stats_->slow_client_closes.load(std::memory_order_relaxed);
  s.drain_forced_closes =
      stats_->drain_forced_closes.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void TcpServer::Loop() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  Stopwatch since_tick;

  for (;;) {
    int timeout = static_cast<int>(options_.tick_ms);
    int n = ::epoll_wait(epoll_.get(), events, kMaxEvents, timeout);
    if (n < 0 && errno != EINTR) {
      VEXUS_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }

    for (int i = 0; i < std::max(n, 0); ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        HandleAccept();
      } else if (tag == UINT64_MAX) {
        cq_->wakeup.Drain();
      } else {
        HandleConnEvent(tag, events[i].events);
      }
    }

    DrainCompletions();

    if (drain_requested_.load(std::memory_order_relaxed)) StartDrainOnce();

    if (since_tick.ElapsedMillis() >= options_.tick_ms || drain_started_) {
      since_tick.Restart();
      Tick();
    }

    if (drain_started_ && conns_.empty()) break;
  }
}

void TcpServer::HandleAccept() {
  for (;;) {
    int raw = ::accept4(listener_.get(), nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      // EMFILE/ENFILE & friends: drop this attempt, keep serving. The
      // kernel already completed the handshake; nothing to free but our
      // patience.
      return;
    }
    Fd fd(raw);
    // Chaos site: the accept path failing post-handshake (fd table
    // pressure, a TLS layer rejecting). The client sees a close.
    if (VEXUS_FAILPOINT_FIRES("net.accept")) {
      Bump(stats_->accept_faults);
      continue;  // Fd closes raw
    }
    if (drain_started_ || conns_.size() >= options_.max_connections) {
      Bump(stats_->accept_rejected);
      continue;
    }
    (void)SetNoDelay(fd.get());
    if (options_.so_sndbuf > 0) {
      ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }

    uint64_t id = next_conn_id_++;
    ConnEntry entry;
    entry.conn = std::make_unique<Connection>(
        std::move(fd), id, options_.connection,
        [this, id](uint64_t seq, std::string line, bool oversized) {
          OnLine(id, seq, std::move(line), oversized);
        });
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, entry.conn->fd(), &ev) < 0) {
      Bump(stats_->accept_rejected);
      continue;  // entry.conn closes the fd
    }
    entry.epoll_mask = EPOLLIN;
    conns_.emplace(id, std::move(entry));
    Bump(stats_->accepted);
    active_connections_.store(conns_.size(), std::memory_order_relaxed);
  }
}

void TcpServer::OnLine(uint64_t conn_id, uint64_t seq, std::string line,
                       bool oversized) {
  Bump(stats_->lines_framed);
  auto it = conns_.find(conn_id);
  VEXUS_DCHECK(it != conns_.end());  // sink fires from inside the conn

  if (oversized) {
    Bump(stats_->oversized_lines);
    it->second.conn->Complete(
        seq, server::EncodeParseError(Status::InvalidArgument(
                 "request line exceeds " +
                 std::to_string(options_.connection.max_line_bytes) +
                 " bytes")));
    return;
  }
  auto req = Request::Decode(line);
  if (!req.ok()) {
    // Per-line parse error: answer and stay in sync — a malformed request
    // (even one whose raw '\n' split it into several frames) never desyncs
    // the stream (server/protocol.h LineFramer contract).
    Bump(stats_->parse_errors);
    it->second.conn->Complete(seq, server::EncodeParseError(req.status()));
    return;
  }

  Bump(stats_->requests_submitted);
  // Submitted at read time: the Dispatcher stamps the deadline now, so the
  // budget covers queueing and execution from the moment the bytes arrived.
  std::shared_ptr<CompletionQueue> cq = cq_;
  service_->DispatchAsync(
      std::move(req).ValueOrDie(),
      [cq, conn_id, seq](server::Response resp) {
        // Worker thread: serialize here (off the loop), then hand over.
        cq->Push(Completion{conn_id, seq, resp.Encode()});
      });
}

void TcpServer::HandleConnEvent(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // closed earlier this batch
  Connection* conn = it->second.conn.get();

  if ((events & (EPOLLHUP | EPOLLERR)) != 0 &&
      (events & (EPOLLIN | EPOLLOUT)) == 0) {
    Bump(stats_->io_error_closes);
    CloseConn(conn_id);
    return;
  }

  if ((events & EPOLLOUT) != 0) {
    if (conn->OnWritable() == Connection::IoStatus::kError) {
      Bump(stats_->io_error_closes);
      CloseConn(conn_id);
      return;
    }
  }
  if ((events & EPOLLIN) != 0 && !drain_started_ && !conn->peer_eof()) {
    switch (conn->OnReadable()) {
      case Connection::IoStatus::kOk:
        break;
      case Connection::IoStatus::kPeerClosed:
        Bump(stats_->peer_closes);
        conn->set_peer_eof();
        break;
      case Connection::IoStatus::kError:
        Bump(stats_->io_error_closes);
        CloseConn(conn_id);
        return;
    }
  }
  FlushAndUpdate(conn_id);
}

void TcpServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(cq_->mu);
    batch.swap(cq_->pending);
  }
  for (Completion& c : batch) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) {
      // The connection died (slow client, fault, force-close) while its
      // request executed. The request itself was retired by the
      // dispatcher; only the bytes have nowhere to go.
      Bump(stats_->responses_dropped);
      continue;
    }
    Bump(stats_->responses_routed);
    it->second.conn->Complete(c.seq, std::move(c.line));
    // Completions free pipeline slots. Requests framed beyond the cap sit
    // in the framer with the kernel buffer possibly already empty, so
    // re-arming level-triggered EPOLLIN alone would never surface them —
    // emit them now (a no-op while still paused or when nothing is
    // buffered). This applies to live peers, not just half-closed ones.
    it->second.conn->EmitBufferedLines();
  }
  // Flush + interest updates once per touched connection would need a set;
  // connections are few per batch in practice, so just sweep the batch.
  for (Completion& c : batch) {
    if (conns_.count(c.conn_id) != 0) FlushAndUpdate(c.conn_id);
  }
}

void TcpServer::FlushAndUpdate(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.conn.get();

  if (conn->wants_write()) {
    if (conn->OnWritable() == Connection::IoStatus::kError) {
      Bump(stats_->io_error_closes);
      CloseConn(conn_id);
      return;
    }
  }
  if (conn->over_write_cap()) {
    // Slow client: responses are completing faster than the peer reads.
    // Disconnecting is the only move that protects the loop's memory; the
    // explorer can reconnect and start_session again.
    Bump(stats_->slow_client_closes);
    CloseConn(conn_id);
    return;
  }
  if ((conn->peer_eof() || drain_started_) && conn->drained()) {
    CloseConn(conn_id);
    return;
  }
  UpdateInterest(conn_id);
}

void TcpServer::UpdateInterest(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ConnEntry& entry = it->second;
  uint32_t mask = 0;
  if (!entry.conn->paused() && !entry.conn->peer_eof() && !drain_started_) {
    mask |= EPOLLIN;
  }
  if (entry.conn->wants_write()) mask |= EPOLLOUT;
  if (mask == entry.epoll_mask) return;
  epoll_event ev{};
  ev.events = mask;
  ev.data.u64 = conn_id;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, entry.conn->fd(), &ev) == 0) {
    entry.epoll_mask = mask;
  }
}

void TcpServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Chaos site: widen the window between deciding to close and the fd
  // actually dying (a peer racing its last pipelined write).
  VEXUS_FAILPOINT_HIT("net.conn.close");
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, it->second.conn->fd(), nullptr);
  conns_.erase(it);
  active_connections_.store(conns_.size(), std::memory_order_relaxed);
}

void TcpServer::StartDrainOnce() {
  if (drain_started_) return;
  drain_started_ = true;
  drain_watch_.Restart();
  // 1. Refuse new connections at the kernel.
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, listener_.get(), nullptr);
  listener_.Reset();
  // 2. Stop reading request bytes; flush/close what can be.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, entry] : conns_) ids.push_back(id);
  for (uint64_t id : ids) FlushAndUpdate(id);
}

void TcpServer::Tick() {
  const OverloadRung rung = service_->dispatcher().overload().rung();
  // Under sustained overload the ladder is already sacrificing answer
  // quality; transport-side patience shrinks too, reclaiming fds and write
  // buffers from clients that aren't keeping up (DESIGN.md §13.4).
  const double tighten = rung >= OverloadRung::kReduceK ? 0.25 : 1.0;
  const double idle_limit = options_.idle_timeout_ms * tighten;
  const double stall_limit = options_.write_stall_timeout_ms * tighten;

  std::vector<uint64_t> idle, stalled;
  for (auto& [id, entry] : conns_) {
    Connection* conn = entry.conn.get();
    double stall = conn->write_stall_ms();
    if (stall > 0 && options_.overload_write_stall_signal) {
      // A response aging in a write buffer is end-to-end queueing the
      // dispatcher cannot see; feed it to the same CoDel signal. (Min-
      // over-window semantics mean one stalled reader never escalates the
      // ladder by itself — only fleet-wide stall does.)
      service_->dispatcher().overload().OnQueueDelay(stall);
    }
    if (stall > stall_limit) {
      stalled.push_back(id);
    } else if (conn->idle_ms() > idle_limit && conn->in_flight() == 0 &&
               !conn->wants_write()) {
      idle.push_back(id);
    }
  }
  for (uint64_t id : stalled) {
    Bump(stats_->slow_client_closes);
    CloseConn(id);
  }
  for (uint64_t id : idle) {
    Bump(stats_->idle_closes);
    CloseConn(id);
  }

  if (drain_started_) {
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (auto& [id, entry] : conns_) ids.push_back(id);
    if (drain_watch_.ElapsedMillis() > options_.drain_timeout_ms) {
      for (uint64_t id : ids) {
        Bump(stats_->drain_forced_closes);
        CloseConn(id);
      }
    } else {
      for (uint64_t id : ids) FlushAndUpdate(id);
    }
  }
}

}  // namespace vexus::net
