#include "net/tcp_server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "server/overload.h"

namespace vexus::net {

using server::ExplorationService;
using server::OverloadRung;
using server::Request;

struct TcpServer::AtomicStats {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> accept_rejected{0};
  std::atomic<uint64_t> accept_faults{0};
  std::atomic<uint64_t> lines_framed{0};
  std::atomic<uint64_t> parse_errors{0};
  std::atomic<uint64_t> oversized_lines{0};
  std::atomic<uint64_t> requests_submitted{0};
  std::atomic<uint64_t> responses_routed{0};
  std::atomic<uint64_t> responses_dropped{0};
  std::atomic<uint64_t> peer_closes{0};
  std::atomic<uint64_t> io_error_closes{0};
  std::atomic<uint64_t> idle_closes{0};
  std::atomic<uint64_t> slow_client_closes{0};
  std::atomic<uint64_t> drain_forced_closes{0};

  void AddTo(TcpServerStats* out) const {
    auto load = [](const std::atomic<uint64_t>& c) {
      return c.load(std::memory_order_relaxed);
    };
    out->accepted += load(accepted);
    out->accept_rejected += load(accept_rejected);
    out->accept_faults += load(accept_faults);
    out->lines_framed += load(lines_framed);
    out->parse_errors += load(parse_errors);
    out->oversized_lines += load(oversized_lines);
    out->requests_submitted += load(requests_submitted);
    out->responses_routed += load(responses_routed);
    out->responses_dropped += load(responses_dropped);
    out->peer_closes += load(peer_closes);
    out->io_error_closes += load(io_error_closes);
    out->idle_closes += load(idle_closes);
    out->slow_client_closes += load(slow_client_closes);
    out->drain_forced_closes += load(drain_forced_closes);
  }
};

namespace {

inline void Bump(std::atomic<uint64_t>& c) {
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

}  // namespace

struct TcpServer::RetireSignal {
  std::mutex mu;
  std::condition_variable cv;

  /// Locks mu around the notify so a waiter between its predicate check
  /// and the cv wait cannot miss the wakeup.
  void Notify() {
    std::lock_guard<std::mutex> lock(mu);
    cv.notify_all();
  }
};

struct TcpServer::CompletionQueue {
  std::mutex mu;
  std::vector<Completion> pending;
  bool alive = true;  // guarded by mu; false once the owning loop is gone
  Wakeup wakeup;
  /// Shared with the loop's stats so a completion landing after the loop
  /// exited still retires its request as dropped (the conservation
  /// invariant `submitted == routed + dropped` must survive late workers).
  std::shared_ptr<AtomicStats> stats;
  /// Server-wide; notified whenever a dead-queue Push retires a request.
  std::shared_ptr<RetireSignal> retire;

  void Push(Completion c) {
    bool was_empty = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!alive) {
        // Loop gone: no connection can receive these bytes anymore.
        Bump(stats->responses_dropped);
        retire->Notify();
        return;
      }
      was_empty = pending.empty();
      pending.push_back(std::move(c));
    }
    // Batched wakeup: ring the doorbell only on the empty→nonempty
    // transition. The loop drains the whole queue per wakeup, so every
    // completion pushed while the queue is nonempty rides the wakeup
    // already in flight — N completions, one eventfd write, one epoll
    // return. (A push racing the loop's swap sees the fresh-empty queue
    // and signals again; worst case is one spurious no-op drain.)
    if (was_empty) wakeup.Signal();
  }
};

/// One event loop. Owns its listener, epoll set, connection table, and
/// counters outright; shares only the completion queue (with workers), the
/// server's aggregate connection count, and the drain request flag. All
/// methods below run on this loop's thread.
struct TcpServer::EventLoop {
  TcpServer* server = nullptr;
  size_t index = 0;

  Fd listener;
  Fd epoll;
  std::thread thread;
  std::shared_ptr<CompletionQueue> cq;
  std::shared_ptr<AtomicStats> stats;

  bool drain_started = false;  // loop-thread view of the server-wide flag
  Stopwatch drain_watch;
  uint64_t next_conn_seq = 1;
  struct ConnEntry {
    std::unique_ptr<Connection> conn;
    uint32_t epoll_mask = 0;
  };
  std::unordered_map<uint64_t, ConnEntry> conns;

  EventLoop(TcpServer* s, size_t i)
      : server(s),
        index(i),
        cq(std::make_shared<CompletionQueue>()),
        stats(std::make_shared<AtomicStats>()) {
    cq->stats = stats;
    cq->retire = s->retire_signal_;
  }

  /// Conn ids are globally unique (the loop index rides the high bits) so
  /// log lines and stats attribution never confuse two loops' sockets; the
  /// epoll sentinel tags 0 (listener) and UINT64_MAX (wakeup) stay
  /// unreachable.
  uint64_t NextConnId() {
    return (static_cast<uint64_t>(index) << 48) | next_conn_seq++;
  }

  void Run();
  void HandleAccept();
  void HandleConnEvent(uint64_t conn_id, uint32_t events);
  void OnLine(uint64_t conn_id, uint64_t seq, std::string line,
              bool oversized);
  void DrainCompletions();
  void Tick();
  void StartDrainOnce();
  /// Flush, then re-derive the epoll interest mask; closes slow clients.
  void FlushAndUpdate(uint64_t conn_id);
  void UpdateInterest(uint64_t conn_id);
  void CloseConn(uint64_t conn_id);
};

TcpServer::TcpServer(ExplorationService* service, TcpServerOptions options)
    : service_(service),
      options_(std::move(options)),
      retire_signal_(std::make_shared<RetireSignal>()) {
  VEXUS_CHECK(service_ != nullptr);
  // `!(x > 0)` and not `x <= 0`: NaN compares false both ways, so the old
  // form let a NaN tick through to the epoll timeout cast below (UB).
  if (!(options_.tick_ms > 0)) options_.tick_ms = 100;
  num_loops_ = options_.num_loops;
  if (num_loops_ == 0) {
    const size_t hw = std::max(1u, std::thread::hardware_concurrency());
    num_loops_ = std::min<size_t>(4, hw);
  }
}

TcpServer::~TcpServer() { Drain(); }

Status TcpServer::Start() {
  VEXUS_CHECK(!started_) << "Start() called twice";
  // One listener per loop, all on the same port. With several loops the
  // whole group runs SO_REUSEPORT (every member must set it, including the
  // first); the kernel then steers each accepted connection to exactly one
  // loop. Listener 0 resolves an ephemeral port for the rest of the group.
  const bool reuseport = num_loops_ > 1;
  for (size_t i = 0; i < num_loops_; ++i) {
    auto loop = std::make_unique<EventLoop>(this, i);
    const uint16_t want = i == 0 ? options_.port : port_;
    auto listener = ListenTcp(options_.host, want, options_.backlog,
                              i == 0 ? &port_ : nullptr, reuseport);
    VEXUS_RETURN_NOT_OK(listener.status());
    loop->listener = std::move(listener).ValueOrDie();

    loop->epoll = Fd(::epoll_create1(EPOLL_CLOEXEC));
    if (!loop->epoll.valid()) return ErrnoStatus("epoll_create1", errno);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0;  // 0 = listener, UINT64_MAX = wakeup, else conn id
    if (::epoll_ctl(loop->epoll.get(), EPOLL_CTL_ADD, loop->listener.get(),
                    &ev) < 0) {
      return ErrnoStatus("epoll_ctl(listener)", errno);
    }
    ev.events = EPOLLIN;
    ev.data.u64 = UINT64_MAX;
    if (::epoll_ctl(loop->epoll.get(), EPOLL_CTL_ADD, loop->cq->wakeup.fd(),
                    &ev) < 0) {
      return ErrnoStatus("epoll_ctl(wakeup)", errno);
    }
    loops_.push_back(std::move(loop));
  }

  started_ = true;
  for (auto& loop : loops_) {
    EventLoop* lp = loop.get();
    lp->thread = std::thread([lp] { lp->Run(); });
  }
  return Status::OK();
}

void TcpServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  // Async-signal-safe: relaxed loads over a vector that is immutable after
  // Start(), plus one eventfd write per loop.
  for (auto& loop : loops_) loop->cq->wakeup.Signal();
}

void TcpServer::Drain() {
  if (!started_ || drained_) return;
  RequestDrain();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  drained_ = true;
  for (auto& loop : loops_) {
    // Final sweep per loop: completions pushed between the loop's last
    // DrainCompletions() and its exit have no connection left to route to.
    // Count them as dropped; anything later drops (and counts) at Push().
    std::lock_guard<std::mutex> lock(loop->cq->mu);
    loop->cq->alive = false;
    for (size_t i = 0; i < loop->cq->pending.size(); ++i) {
      Bump(loop->stats->responses_dropped);
    }
    loop->cq->pending.clear();
  }
  // Workers may still be finishing requests whose connections were fault-
  // or force-closed; their Push() calls retire them as dropped. Wait
  // (bounded) for those stragglers so Stats() read right after Drain()
  // observes the conservation invariant — aggregate implies per-loop here,
  // because every loop's retired count can only lag (never exceed) its
  // submitted count. Event-driven: each dead-queue Push notifies
  // retire_signal_, so drain completes the instant the last straggler
  // retires instead of quantizing to a poll period; the lap cap only
  // bounds the wait against a worker that never finishes.
  const auto retired = [this] {
    TcpServerStats s = Stats();
    return s.responses_routed + s.responses_dropped >= s.requests_submitted;
  };
  Deadline deadline = Deadline::AfterMillis(options_.drain_timeout_ms);
  std::unique_lock<std::mutex> lock(retire_signal_->mu);
  while (!retired() && !deadline.Expired()) {
    int lap = PollLapTimeoutMillis(deadline.RemainingMillis());
    if (lap <= 0) break;
    retire_signal_->cv.wait_for(lock, std::chrono::milliseconds(lap));
  }
}

TcpServerStats TcpServer::Stats() const {
  TcpServerStats s;
  for (const auto& loop : loops_) loop->stats->AddTo(&s);
  return s;
}

TcpServerStats TcpServer::LoopStats(size_t loop) const {
  TcpServerStats s;
  VEXUS_CHECK(loop < loops_.size());
  loops_[loop]->stats->AddTo(&s);
  return s;
}

// ---------------------------------------------------------------------------
// Event loop (all methods below run on the owning loop's thread)
// ---------------------------------------------------------------------------

void TcpServer::EventLoop::Run() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  Stopwatch since_tick;
  const double tick_ms = server->options_.tick_ms;

  for (;;) {
    // Shared lap clamp (socket.h), not a bare cast: a sub-millisecond tick
    // used to truncate to 0 (a busy-spinning epoll), and a tick beyond
    // INT_MAX cast to a negative timeout the kernel reads as "block
    // forever" — which parked the loop and stopped idle/stall sweeps and
    // drain checks entirely.
    int timeout = PollLapTimeoutMillis(tick_ms);
    int n = ::epoll_wait(epoll.get(), events, kMaxEvents, timeout);
    if (n < 0 && errno != EINTR) {
      VEXUS_LOG(Error) << "loop " << index
                       << " epoll_wait: " << std::strerror(errno);
      break;
    }

    for (int i = 0; i < std::max(n, 0); ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        HandleAccept();
      } else if (tag == UINT64_MAX) {
        cq->wakeup.Drain();
      } else {
        HandleConnEvent(tag, events[i].events);
      }
    }

    DrainCompletions();

    if (server->drain_requested_.load(std::memory_order_relaxed)) {
      StartDrainOnce();
    }

    if (since_tick.ElapsedMillis() >= tick_ms || drain_started) {
      since_tick.Restart();
      Tick();
    }

    if (drain_started && conns.empty()) break;
  }
}

void TcpServer::EventLoop::HandleAccept() {
  for (;;) {
    int raw = ::accept4(listener.get(), nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      // EMFILE/ENFILE & friends: drop this attempt, keep serving. The
      // kernel already completed the handshake; nothing to free but our
      // patience.
      return;
    }
    Fd fd(raw);
    // Chaos site: the accept path failing post-handshake (fd table
    // pressure, a TLS layer rejecting). The client sees a close.
    if (VEXUS_FAILPOINT_FIRES("net.accept")) {
      Bump(stats->accept_faults);
      continue;  // Fd closes raw
    }
    if (drain_started ||
        server->active_connections_.load(std::memory_order_relaxed) >=
            server->options_.max_connections) {
      Bump(stats->accept_rejected);
      continue;
    }
    (void)SetNoDelay(fd.get());
    if (server->options_.so_sndbuf > 0) {
      ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF,
                   &server->options_.so_sndbuf,
                   sizeof(server->options_.so_sndbuf));
    }

    uint64_t id = NextConnId();
    ConnEntry entry;
    entry.conn = std::make_unique<Connection>(
        std::move(fd), id, server->options_.connection,
        [this, id](uint64_t seq, std::string line, bool oversized) {
          OnLine(id, seq, std::move(line), oversized);
        },
        index);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, entry.conn->fd(), &ev) < 0) {
      Bump(stats->accept_rejected);
      continue;  // entry.conn closes the fd
    }
    entry.epoll_mask = EPOLLIN;
    conns.emplace(id, std::move(entry));
    Bump(stats->accepted);
    server->active_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TcpServer::EventLoop::OnLine(uint64_t conn_id, uint64_t seq,
                                  std::string line, bool oversized) {
  Bump(stats->lines_framed);
  auto it = conns.find(conn_id);
  VEXUS_DCHECK(it != conns.end());  // sink fires from inside the conn

  if (oversized) {
    Bump(stats->oversized_lines);
    it->second.conn->Complete(
        seq, server::EncodeParseError(Status::InvalidArgument(
                 "request line exceeds " +
                 std::to_string(
                     server->options_.connection.max_line_bytes) +
                 " bytes")));
    return;
  }
  auto req = Request::Decode(line);
  if (!req.ok()) {
    // Per-line parse error: answer and stay in sync — a malformed request
    // (even one whose raw '\n' split it into several frames) never desyncs
    // the stream (server/protocol.h LineFramer contract).
    Bump(stats->parse_errors);
    it->second.conn->Complete(seq, server::EncodeParseError(req.status()));
    return;
  }

  Bump(stats->requests_submitted);
  // Submitted at read time: the Dispatcher stamps the deadline now, so the
  // budget covers queueing and execution from the moment the bytes arrived.
  // The callback captures THIS loop's queue — completions always route back
  // to the loop that owns the connection.
  std::shared_ptr<CompletionQueue> queue = cq;
  server->service_->DispatchAsync(
      std::move(req).ValueOrDie(),
      [queue, conn_id, seq](server::Response resp) {
        // Worker thread: serialize here (off the loop), then hand over.
        queue->Push(Completion{conn_id, seq, resp.Encode()});
      });
}

void TcpServer::EventLoop::HandleConnEvent(uint64_t conn_id,
                                           uint32_t events) {
  auto it = conns.find(conn_id);
  if (it == conns.end()) return;  // closed earlier this batch
  Connection* conn = it->second.conn.get();

  if ((events & (EPOLLHUP | EPOLLERR)) != 0 &&
      (events & (EPOLLIN | EPOLLOUT)) == 0) {
    Bump(stats->io_error_closes);
    CloseConn(conn_id);
    return;
  }

  if ((events & EPOLLOUT) != 0) {
    if (conn->OnWritable() == Connection::IoStatus::kError) {
      Bump(stats->io_error_closes);
      CloseConn(conn_id);
      return;
    }
  }
  if ((events & EPOLLIN) != 0 && !drain_started && !conn->peer_eof()) {
    switch (conn->OnReadable()) {
      case Connection::IoStatus::kOk:
        break;
      case Connection::IoStatus::kPeerClosed:
        Bump(stats->peer_closes);
        conn->set_peer_eof();
        break;
      case Connection::IoStatus::kError:
        Bump(stats->io_error_closes);
        CloseConn(conn_id);
        return;
    }
  }
  FlushAndUpdate(conn_id);
}

void TcpServer::EventLoop::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(cq->mu);
    batch.swap(cq->pending);
  }
  for (Completion& c : batch) {
    auto it = conns.find(c.conn_id);
    if (it == conns.end()) {
      // The connection died (slow client, fault, force-close) while its
      // request executed. The request itself was retired by the
      // dispatcher; only the bytes have nowhere to go.
      Bump(stats->responses_dropped);
      continue;
    }
    Bump(stats->responses_routed);
    it->second.conn->Complete(c.seq, std::move(c.line));
    // Completions free pipeline slots. Requests framed beyond the cap sit
    // in the framer with the kernel buffer possibly already empty, so
    // re-arming level-triggered EPOLLIN alone would never surface them —
    // emit them now (a no-op while still paused or when nothing is
    // buffered). This applies to live peers, not just half-closed ones.
    it->second.conn->EmitBufferedLines();
  }
  // Flush + interest updates once per touched connection would need a set;
  // connections are few per batch in practice, so just sweep the batch.
  for (Completion& c : batch) {
    if (conns.count(c.conn_id) != 0) FlushAndUpdate(c.conn_id);
  }
}

void TcpServer::EventLoop::FlushAndUpdate(uint64_t conn_id) {
  auto it = conns.find(conn_id);
  if (it == conns.end()) return;
  Connection* conn = it->second.conn.get();

  if (conn->wants_write()) {
    if (conn->OnWritable() == Connection::IoStatus::kError) {
      Bump(stats->io_error_closes);
      CloseConn(conn_id);
      return;
    }
  }
  if (conn->over_write_cap()) {
    // Slow client: responses are completing faster than the peer reads.
    // Disconnecting is the only move that protects the loop's memory; the
    // explorer can reconnect and start_session again.
    Bump(stats->slow_client_closes);
    CloseConn(conn_id);
    return;
  }
  if ((conn->peer_eof() || drain_started) && conn->drained()) {
    CloseConn(conn_id);
    return;
  }
  UpdateInterest(conn_id);
}

void TcpServer::EventLoop::UpdateInterest(uint64_t conn_id) {
  auto it = conns.find(conn_id);
  if (it == conns.end()) return;
  ConnEntry& entry = it->second;
  uint32_t mask = 0;
  if (!entry.conn->paused() && !entry.conn->peer_eof() && !drain_started) {
    mask |= EPOLLIN;
  }
  if (entry.conn->wants_write()) mask |= EPOLLOUT;
  if (mask == entry.epoll_mask) return;
  epoll_event ev{};
  ev.events = mask;
  ev.data.u64 = conn_id;
  if (::epoll_ctl(epoll.get(), EPOLL_CTL_MOD, entry.conn->fd(), &ev) == 0) {
    entry.epoll_mask = mask;
  }
}

void TcpServer::EventLoop::CloseConn(uint64_t conn_id) {
  auto it = conns.find(conn_id);
  if (it == conns.end()) return;
  // Chaos site: widen the window between deciding to close and the fd
  // actually dying (a peer racing its last pipelined write).
  VEXUS_FAILPOINT_HIT("net.conn.close");
  ::epoll_ctl(epoll.get(), EPOLL_CTL_DEL, it->second.conn->fd(), nullptr);
  conns.erase(it);
  server->active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void TcpServer::EventLoop::StartDrainOnce() {
  if (drain_started) return;
  drain_started = true;
  drain_watch.Restart();
  // 1. Refuse new connections at the kernel. (With several loops the group
  // shrinks one listener at a time; a connect racing the teardown lands on
  // a not-yet-closed member and drains there — never on a dead socket.)
  ::epoll_ctl(epoll.get(), EPOLL_CTL_DEL, listener.get(), nullptr);
  listener.Reset();
  // 2. Stop reading request bytes; flush/close what can be.
  std::vector<uint64_t> ids;
  ids.reserve(conns.size());
  for (auto& [id, entry] : conns) ids.push_back(id);
  for (uint64_t id : ids) FlushAndUpdate(id);
}

void TcpServer::EventLoop::Tick() {
  auto& overload = server->service_->dispatcher().overload();
  const OverloadRung rung = overload.rung();
  // Under sustained overload the ladder is already sacrificing answer
  // quality; transport-side patience shrinks too, reclaiming fds and write
  // buffers from clients that aren't keeping up (DESIGN.md §13.4).
  const double tighten = rung >= OverloadRung::kReduceK ? 0.25 : 1.0;
  const double idle_limit = server->options_.idle_timeout_ms * tighten;
  const double stall_limit =
      server->options_.write_stall_timeout_ms * tighten;

  std::vector<uint64_t> idle, stalled;
  for (auto& [id, entry] : conns) {
    Connection* conn = entry.conn.get();
    double stall = conn->write_stall_ms();
    if (stall > 0 && server->options_.overload_write_stall_signal) {
      // A response aging in a write buffer is end-to-end queueing the
      // dispatcher cannot see; feed it to the same CoDel signal as this
      // loop's own source. Min-over-window semantics mean one stalled
      // reader never escalates the ladder by itself; max-of-mins across
      // sources means one uniformly stalled loop still does even while
      // the dispatcher and the other loops run clear.
      overload.OnQueueDelay(stall, 1 + index);
    }
    if (stall > stall_limit) {
      stalled.push_back(id);
    } else if (conn->idle_ms() > idle_limit && conn->in_flight() == 0 &&
               !conn->wants_write()) {
      idle.push_back(id);
    }
  }
  for (uint64_t id : stalled) {
    Bump(stats->slow_client_closes);
    CloseConn(id);
  }
  for (uint64_t id : idle) {
    Bump(stats->idle_closes);
    CloseConn(id);
  }

  if (drain_started) {
    std::vector<uint64_t> ids;
    ids.reserve(conns.size());
    for (auto& [id, entry] : conns) ids.push_back(id);
    if (drain_watch.ElapsedMillis() > server->options_.drain_timeout_ms) {
      for (uint64_t id : ids) {
        Bump(stats->drain_forced_closes);
        CloseConn(id);
      }
    } else {
      for (uint64_t id : ids) FlushAndUpdate(id);
    }
  }
}

}  // namespace vexus::net
