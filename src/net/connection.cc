#include "net/connection.h"

#include <cerrno>
#include <sys/socket.h>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"

namespace vexus::net {

Connection::Connection(Fd fd, uint64_t id, ConnectionOptions options,
                       LineSink on_line, size_t loop_id)
    : fd_(std::move(fd)),
      id_(id),
      loop_id_(loop_id),
      options_(options),
      on_line_(std::move(on_line)),
      framer_([&] {
        server::LineFramer::Options f;
        f.max_frame_bytes = options.max_line_bytes;
        return f;
      }()) {
  VEXUS_CHECK(fd_.valid());
  VEXUS_CHECK(on_line_ != nullptr);
}

void Connection::EmitBufferedLines() {
  while (!paused()) {
    auto frame = framer_.Next();
    if (!frame.has_value()) break;
    uint64_t seq = next_seq_++;
    on_line_(seq, std::move(frame->text), frame->oversized);
  }
}

Connection::IoStatus Connection::OnReadable() {
  // Chaos site: a read fault models the peer vanishing (RST, mid-request
  // power loss) the instant bytes were expected.
  if (VEXUS_FAILPOINT_FIRES("net.conn.read")) return IoStatus::kError;

  char buf[64 * 1024];
  const size_t chunk = std::min(sizeof(buf), options_.read_chunk);
  for (;;) {
    // Emit everything already framed before deciding whether to read more:
    // pausing must count lines buffered this pass, and a paused connection
    // must not keep pulling bytes it cannot yet answer.
    EmitBufferedLines();
    if (paused()) return IoStatus::kOk;

    ssize_t n = ::recv(fd_.get(), buf, chunk, 0);
    if (n > 0) {
      bytes_read_ += static_cast<uint64_t>(n);
      last_activity_.Restart();
      framer_.Append(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      // Orderly EOF. Lines already framed still deserve answers — surface
      // them (up to the pipeline cap) so a client that writes-then-
      // shutdowns gets its responses; the owner keeps calling
      // EmitBufferedLines() as completions drain the pipeline.
      EmitBufferedLines();
      return IoStatus::kPeerClosed;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
}

Connection::IoStatus Connection::OnWritable() {
  // Chaos site: a write fault models the peer resetting while a response
  // was being delivered (the answered-but-never-received case conservation
  // accounting must survive).
  if (VEXUS_FAILPOINT_FIRES("net.conn.write")) return IoStatus::kError;

  bool progressed = false;
  while (out_offset_ < out_.size()) {
    ssize_t n = ::send(fd_.get(), out_.data() + out_offset_,
                       out_.size() - out_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      out_offset_ += static_cast<size_t>(n);
      bytes_written_ += static_cast<uint64_t>(n);
      last_activity_.Restart();
      progressed = true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return IoStatus::kError;
  }
  // The stall clock measures time since the last flushed byte, not time
  // since the buffer became nonempty: a reader making steady progress whose
  // buffer never fully drains is slow, not stalled — it must neither be
  // disconnected at the stall timeout nor feed inflated ages into the
  // overload controller.
  if (progressed) oldest_unflushed_.Restart();
  if (out_offset_ == out_.size()) {
    out_.clear();
    out_offset_ = 0;
  } else if (out_offset_ > options_.write_buffer_cap / 2) {
    // Compact so over_write_cap() measures *unflushed* bytes, not history.
    out_.erase(0, out_offset_);
    out_offset_ = 0;
  }
  return IoStatus::kOk;
}

void Connection::Complete(uint64_t seq, std::string encoded) {
  VEXUS_DCHECK(seq < next_seq_);
  ++completed_;
  out_of_order_.emplace(seq, std::move(encoded));
  // Move the contiguous head of the pipeline into the write buffer: seq
  // order is the wire order (see the pipelining contract in the header).
  bool was_empty = out_.empty();
  auto it = out_of_order_.begin();
  while (it != out_of_order_.end() && it->first == next_flush_) {
    out_.append(it->second);
    out_.push_back('\n');
    ++next_flush_;
    ++responses_flushed_;
    it = out_of_order_.erase(it);
  }
  if (was_empty && !out_.empty()) oldest_unflushed_.Restart();
}

}  // namespace vexus::net
