// Connection — one accepted socket's read/parse/write state machine.
//
// Deliberately loop-agnostic: it owns the fd, the LineFramer, the pipeline
// bookkeeping, and the write buffer, but performs I/O only when its owner
// calls OnReadable()/OnWritable(). The TcpServer event loop drives it off
// epoll; the unit tests drive it off a socketpair with no loop at all.
//
// Pipelining. Clients may send many request lines without waiting. Each
// framed line gets a monotonically increasing slot number `seq` and is
// handed to the owner's LineSink; completions arrive via Complete(seq, ...)
// in *any* order (worker threads finish when they finish) but are flushed
// to the socket strictly in seq order — a line protocol has no request ids,
// so arrival order is the only correlation a client has (same contract as
// Redis/HTTP-1.1 pipelining).
//
// Backpressure, both directions:
//   * inbound  — when `max_pipelined` requests are in flight the connection
//     reports paused() and OnReadable() stops consuming the socket; the
//     owner drops EPOLLIN until completions drain the pipeline. The kernel
//     socket buffer then fills and TCP pushes back on the sender.
//   * outbound — responses queue in an in-memory write buffer while the
//     socket is unwritable (EPOLLOUT re-armed by the owner). A reader that
//     stalls while responses keep completing would grow that buffer without
//     bound, so crossing `write_buffer_cap` flips over_write_cap() and the
//     owner disconnects the slow client (DESIGN.md §13.4).
//
// Failpoints: "net.conn.read" and "net.conn.write" inject transport
// failures (ECONNRESET-equivalents) at the recv/send boundaries so the
// chaos harness can kill connections mid-request and mid-response.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/stopwatch.h"
#include "net/socket.h"
#include "server/protocol.h"

namespace vexus::net {

struct ConnectionOptions {
  /// Longest request line buffered before the framer discards and answers
  /// an oversized-line error (server/protocol.h LineFramer).
  size_t max_line_bytes = 1 << 20;
  /// Unflushed response bytes beyond which the peer is a slow client and
  /// gets disconnected.
  size_t write_buffer_cap = 1 << 20;
  /// In-flight (submitted, uncompleted) requests beyond which reading
  /// pauses.
  size_t max_pipelined = 64;
  /// recv() chunk size.
  size_t read_chunk = 16 * 1024;
};

class Connection {
 public:
  /// One framed request line, already assigned its pipeline slot. Called
  /// synchronously from OnReadable() on the owner's thread. `oversized`
  /// frames carry no text (the bytes were discarded; answer an error).
  using LineSink =
      std::function<void(uint64_t seq, std::string line, bool oversized)>;

  enum class IoStatus {
    kOk,          ///< made progress (possibly none); keep the connection
    kPeerClosed,  ///< orderly EOF from the peer
    kError,       ///< transport error (or injected fault); drop the peer
  };

  /// `loop_id` tags the connection with the index of the event loop that
  /// owns it (0 in single-loop servers and loop-less unit tests). Purely a
  /// label: per-loop ownership is enforced by the owner never sharing the
  /// object, but stats attribution and log lines need to say which loop a
  /// socket lived on.
  Connection(Fd fd, uint64_t id, ConnectionOptions options, LineSink on_line,
             size_t loop_id = 0);

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Drains the socket (until EAGAIN, EOF, or paused()) and emits complete
  /// lines to the sink.
  IoStatus OnReadable();

  /// Flushes as much of the write buffer as the socket accepts.
  IoStatus OnWritable();

  /// Delivers the encoded response line (no trailing '\n') for slot `seq`.
  /// Out-of-order friendly; contiguous-from-head responses move to the
  /// write buffer immediately. Call OnWritable() afterwards to push bytes.
  void Complete(uint64_t seq, std::string encoded);

  /// Emits any lines still sitting in the framer (up to the pipeline cap).
  /// OnReadable() does this implicitly; the owner calls it whenever
  /// completions free pipeline slots — excess frames from a large burst
  /// live here with the kernel buffer possibly empty, so no epoll event
  /// will ever surface them (half-closed or not). No-op while paused.
  void EmitBufferedLines();

  // --- state the owner polls to manage epoll interest & lifecycle ---
  bool wants_write() const { return !out_.empty(); }
  bool paused() const { return in_flight() >= options_.max_pipelined; }
  bool over_write_cap() const {
    return out_.size() - out_offset_ > options_.write_buffer_cap;
  }
  /// Requests emitted to the sink but not yet Complete()d.
  uint64_t in_flight() const { return next_seq_ - completed_; }
  /// True when every emitted request was completed *and* flushed — the
  /// "safe to close" predicate the drain sequence waits on.
  bool drained() const { return in_flight() == 0 && out_.empty(); }
  /// Milliseconds since the last byte moved in either direction.
  double idle_ms() const { return last_activity_.ElapsedMillis(); }
  /// Milliseconds since the write buffer last flushed a byte while holding
  /// unflushed data (0 when empty). The slow-client signal the server feeds
  /// into the overload controller — a reader making steady progress keeps
  /// resetting this clock even if its buffer never fully drains.
  double write_stall_ms() const {
    return out_.empty() ? 0.0 : oldest_unflushed_.ElapsedMillis();
  }

  int fd() const { return fd_.get(); }
  uint64_t id() const { return id_; }
  size_t loop_id() const { return loop_id_; }
  uint64_t lines_read() const { return next_seq_; }
  uint64_t responses_flushed() const { return responses_flushed_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }

  /// Peer sent EOF but responses are still in flight/unflushed: the owner
  /// marks the connection lame-duck and closes it once drained().
  void set_peer_eof() { peer_eof_ = true; }
  bool peer_eof() const { return peer_eof_; }

 private:
  Fd fd_;
  uint64_t id_;
  size_t loop_id_;
  ConnectionOptions options_;
  LineSink on_line_;
  server::LineFramer framer_;

  uint64_t next_seq_ = 0;    // next pipeline slot to assign
  uint64_t completed_ = 0;   // Complete() calls received
  uint64_t next_flush_ = 0;  // next seq the write buffer is waiting for
  std::map<uint64_t, std::string> out_of_order_;  // completed, gap ahead

  std::string out_;          // ordered, encoded, '\n'-terminated responses
  size_t out_offset_ = 0;    // flushed prefix of out_
  Stopwatch oldest_unflushed_;  // restarted on empty→nonempty and on every
                                // flush that makes progress

  Stopwatch last_activity_;
  bool peer_eof_ = false;
  uint64_t responses_flushed_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace vexus::net
