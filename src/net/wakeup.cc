#include "net/wakeup.h"

#include <cerrno>
#include <cstdint>
#include <unistd.h>

#ifdef __linux__
#include <sys/eventfd.h>
#endif

#include "common/logging.h"

namespace vexus::net {

Wakeup::Wakeup() {
#ifdef __linux__
  read_ = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  VEXUS_CHECK(read_.valid()) << "eventfd failed";
#else
  int fds[2];
  VEXUS_CHECK(::pipe(fds) == 0) << "pipe failed";
  read_ = Fd(fds[0]);
  write_ = Fd(fds[1]);
  (void)SetNonBlocking(read_.get());
  (void)SetNonBlocking(write_.get());
#endif
}

void Wakeup::Signal() {
  const uint64_t one = 1;
#ifdef __linux__
  // EAGAIN means the counter is already near-saturated — the loop is
  // certainly waking up; dropping the increment is the coalescing we want.
  ssize_t rc;
  do {
    rc = ::write(read_.get(), &one, sizeof(one));
  } while (rc < 0 && errno == EINTR);
#else
  ssize_t rc;
  do {
    rc = ::write(write_.get(), &one, 1);
  } while (rc < 0 && errno == EINTR);
#endif
  (void)rc;
}

void Wakeup::Drain() {
#ifdef __linux__
  uint64_t buf;
  while (::read(read_.get(), &buf, sizeof(buf)) > 0) {
  }
#else
  char buf[256];
  while (::read(read_.get(), buf, sizeof(buf)) > 0) {
  }
#endif
}

}  // namespace vexus::net
