#include "net/client.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "common/stopwatch.h"

namespace vexus::net {

LineClient::LineClient(Fd fd) : fd_(std::move(fd)) {}

Result<LineClient> LineClient::Connect(const std::string& host, uint16_t port,
                                       double timeout_ms) {
  auto fd = ConnectTcp(host, port, timeout_ms);
  VEXUS_RETURN_NOT_OK(fd.status());
  return LineClient(std::move(fd).ValueOrDie());
}

Status LineClient::SendLine(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t n = ::send(fd_.get(), framed.data() + off, framed.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

Result<std::string> LineClient::ReadLine(double timeout_ms) {
  // One deadline for the whole call: every lap below re-derives its budget
  // from this, so EAGAIN laps, partial lines, and poll wakeups with no
  // usable bytes all burn down the same clock and the call returns
  // DeadlineExceeded the moment it hits zero.
  const Deadline deadline = Deadline::AfterMillis(timeout_ms);
  for (;;) {
    // Surface anything already framed before touching the socket: pipelined
    // responses often arrive several-per-read.
    if (auto frame = framer_.Next(); frame.has_value()) {
      if (frame->oversized) {
        return Status::IOError("server sent an oversized response line");
      }
      return std::move(frame->text);
    }

    const double remaining = deadline.RemainingMillis();
    if (remaining <= 0) {
      return Status::DeadlineExceeded("no response line within " +
                                      std::to_string(timeout_ms) + " ms");
    }
    pollfd pfd{fd_.get(), POLLIN, 0};
    int rc = ::poll(&pfd, 1, PollLapTimeoutMillis(remaining));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll", errno);
    }
    if (rc == 0) continue;  // loop re-checks the deadline

    char buf[16 * 1024];
    ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      framer_.Append(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoStatus("recv", errno);
  }
}

Result<server::Response> LineClient::Call(const server::Request& req,
                                          double timeout_ms) {
  VEXUS_RETURN_NOT_OK(SendLine(req.Encode()));
  auto line = ReadLine(timeout_ms);
  VEXUS_RETURN_NOT_OK(line.status());
  return server::Response::Decode(line.ValueOrDie());
}

void LineClient::ShutdownWrite() { ::shutdown(fd_.get(), SHUT_WR); }

}  // namespace vexus::net
