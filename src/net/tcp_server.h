// TcpServer — N independent epoll event loops serving the line-JSON wire
// protocol behind one SO_REUSEPORT listener group (DESIGN.md §13).
//
//            kernel steers each connect to exactly one loop
//                 │                │                 │
//        ┌────────▼───────┐ ┌─────▼──────────┐ ┌────▼───────────┐
//        │ loop 0         │ │ loop 1         │ │ loop N-1       │
//        │ listener fd    │ │ listener fd    │ │ listener fd    │
//        │ epoll + wakeup │ │ epoll + wakeup │ │ epoll + wakeup │
//        │ conn table     │ │ conn table     │ │ conn table     │
//        │ completion q   │ │ completion q   │ │ completion q   │
//        └───────▲────────┘ └──────▲─────────┘ └───────▲────────┘
//                └───────────┬─────┴───────────────────┘
//                   worker threads (Dispatcher) push each
//                   completion to its OWNING loop's queue
//
// Threading model: every socket, Connection object, and epoll set belongs
// to exactly ONE event-loop thread for its whole life — the kernel's
// SO_REUSEPORT steering decides which loop at accept time and nothing ever
// migrates. A loop never computes a screen; the service's worker pool
// executes requests and completions cross back via the owning loop's
// mutex-guarded queue plus an eventfd (net/wakeup.h). The eventfd is rung
// only on the queue's empty→nonempty transition: one wakeup retires every
// completion pending for that loop (batched drain), not one wakeup per
// completion. Loops share nothing but the service pointer, the aggregate
// connection counter, and the overload controller.
//
// Deadlines: request lines are submitted to the Dispatcher synchronously
// inside the read handler, so the admission-stamped deadline starts at
// socket read time — queueing, worker time, and (for the client) response
// serialization all count against the explorer's 100 ms budget, exactly as
// the in-process path behaves.
//
// Overload: the Dispatcher's ladder applies unchanged (it is the same
// Dispatcher). Each loop adds the transport-side signal the in-process path
// never sees — response bytes stalled in a connection's write buffer — as
// its own per-loop delay source; the controller aggregates sources as
// max-of-mins so one hot loop still trips the ladder even while the others
// idle (server/overload.h). Slow/idle clients are disconnected per loop,
// aggressively so when the ladder is escalated (§13.4).
//
// Drain (SIGTERM sequence): RequestDrain() is async-signal-safe (one atomic
// store + one eventfd write per loop). Each loop then independently
// (1) closes its listener — the kernel re-steers stragglers to remaining
// listeners until all are gone; (2) stops reading request bytes;
// (3) lets admitted requests complete and flushes their responses;
// (4) closes each connection once drained, force-closing stragglers after
// drain_timeout_ms. Drain() joins all loops and then settles stragglers so
// every admitted request is retired exactly once, per loop and in
// aggregate (the conservation property the chaos harness storms with net
// failpoints).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "net/connection.h"
#include "net/socket.h"
#include "net/wakeup.h"
#include "server/service.h"

namespace vexus::net {

struct TcpServerOptions {
  /// Bind address. Loopback by default: exposing an unauthenticated
  /// exploration service on a routable interface is an explicit choice.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the actual port from port() after Start()).
  uint16_t port = 0;
  int backlog = 512;
  /// Event-loop threads, each owning a SO_REUSEPORT listener, an epoll
  /// instance, and a private connection table. 0 = min(4, hw threads).
  /// With 1 the server binds a single plain listener (no SO_REUSEPORT),
  /// byte-for-byte the pre-multi-loop behavior.
  size_t num_loops = 0;
  /// Accepted connections beyond this are immediately closed (the
  /// fd-exhaustion guard; the dispatcher's ladder guards CPU). Enforced on
  /// the aggregate across loops; racing accepts on different loops may
  /// overshoot by at most num_loops - 1.
  size_t max_connections = 4096;
  ConnectionOptions connection;
  /// Connections with no traffic and no work in flight for this long are
  /// closed (quartered while the overload ladder is at reduce_k or above).
  double idle_timeout_ms = 60'000;
  /// A response stalled unflushed in the write buffer for this long marks a
  /// dead-slow reader; the connection is closed (also quartered under
  /// overload). The write_buffer_cap handles fast-filling buffers; this
  /// handles readers that stop ACKing entirely.
  double write_stall_timeout_ms = 10'000;
  /// Event-loop housekeeping cadence (idle scan, stall scan, drain checks).
  double tick_ms = 100;
  /// Force-close window of the drain sequence.
  double drain_timeout_ms = 10'000;
  /// Report write-buffer stall ages to the overload controller as per-loop
  /// queue delay sources (see the Overload note above).
  bool overload_write_stall_signal = true;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Setting it
  /// locks out kernel autotuning (which otherwise grows send buffers to
  /// megabytes), so the slow-client tests can fill the userspace write
  /// buffer deterministically instead of racing a 4 MB kernel cushion.
  int so_sndbuf = 0;
};

/// Monotonic counters. Each loop thread writes its own set; Stats() returns
/// the aggregate and LoopStats(i) one loop's share — conservation
/// (`requests_submitted == responses_routed + responses_dropped` once
/// drained) holds for both views.
struct TcpServerStats {
  uint64_t accepted = 0;
  uint64_t accept_rejected = 0;     // over max_connections
  uint64_t accept_faults = 0;       // injected via net.accept
  uint64_t lines_framed = 0;
  uint64_t parse_errors = 0;
  uint64_t oversized_lines = 0;
  uint64_t requests_submitted = 0;  // handed to DispatchAsync
  uint64_t responses_routed = 0;    // completion matched a live connection
  uint64_t responses_dropped = 0;   // completion for an already-dead conn
  uint64_t peer_closes = 0;
  uint64_t io_error_closes = 0;     // transport errors (incl. injected)
  uint64_t idle_closes = 0;
  uint64_t slow_client_closes = 0;  // write cap or stall timeout
  uint64_t drain_forced_closes = 0;
};

class TcpServer {
 public:
  /// `service` must outlive the server (callbacks in flight at destruction
  /// are dropped via a shared alive flag, but the service pool itself is
  /// not owned here).
  TcpServer(server::ExplorationService* service, TcpServerOptions options = {});

  /// Drains (idempotent) and joins every loop.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds + listens every loop's listener synchronously (so callers see
  /// bind errors), then starts the event-loop threads. Call at most once.
  Status Start();

  /// Actual bound port (valid after a successful Start(); all listeners of
  /// the SO_REUSEPORT group share it).
  uint16_t port() const { return port_; }

  /// Resolved loop count (valid after construction).
  size_t num_loops() const { return num_loops_; }

  /// Effective options after constructor normalization (e.g. a non-finite
  /// or non-positive tick_ms falls back to the default) — what the event
  /// loops actually run with. Regression surface for the epoll-timeout
  /// clamp.
  const TcpServerOptions& options() const { return options_; }

  /// Triggers the drain sequence without blocking. Async-signal-safe: one
  /// atomic store and one eventfd write per loop — install it in a SIGTERM
  /// handler.
  void RequestDrain();

  /// RequestDrain + join. Returns once every connection on every loop is
  /// closed and all loops have exited. Idempotent.
  void Drain();

  /// True from RequestDrain() on (new connections are being refused).
  bool draining() const { return drain_requested_.load(std::memory_order_relaxed); }

  size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

  /// Aggregate across loops.
  TcpServerStats Stats() const;
  /// One loop's counters (loop < num_loops()).
  TcpServerStats LoopStats(size_t loop) const;

 private:
  struct Completion {
    uint64_t conn_id;
    uint64_t seq;
    std::string line;
  };
  /// Shared between worker callbacks and the owning loop; outlives both via
  /// shared_ptr so a completion firing after ~TcpServer only touches the
  /// alive flag and the (still-allocated) queue.
  struct CompletionQueue;
  /// Condvar shared across every loop's queue: each post-drain retirement
  /// (a straggler worker's Push() landing on a dead queue) notifies it, so
  /// Drain() waits event-driven instead of quantizing straggler latency to
  /// a fixed sleep period.
  struct RetireSignal;
  /// Counters (loop-thread writes; relaxed atomics so Stats() is callable
  /// from tests/benchmarks while the loops run).
  struct AtomicStats;
  /// One event loop: listener, epoll, wakeup, completion queue, connection
  /// table, stats, drain state, and the thread driving them. Defined in
  /// tcp_server.cc — nothing outside the server touches one.
  struct EventLoop;

  server::ExplorationService* service_;
  TcpServerOptions options_;
  size_t num_loops_ = 1;
  uint16_t port_ = 0;
  bool started_ = false;
  bool drained_ = false;

  std::shared_ptr<RetireSignal> retire_signal_;

  std::atomic<bool> drain_requested_{false};
  /// Aggregate live-connection count (the max_connections gate); each loop
  /// fetch_add/sub's around its table updates.
  std::atomic<size_t> active_connections_{0};

  std::vector<std::unique_ptr<EventLoop>> loops_;
};

}  // namespace vexus::net
