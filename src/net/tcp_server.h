// TcpServer — the epoll event loop serving the line-JSON wire protocol
// (DESIGN.md §13).
//
//        accept ──▶ Connection{framer, pipeline, write buf} ─┐ OnLine
//          ▲                ▲                                ▼
//   epoll_wait  ◀── wakeup eventfd ◀── worker threads ◀── ExplorationService
//   (loop thread)     (completions)     (Dispatcher)        ::DispatchAsync
//
// Threading model: ONE event-loop thread owns every socket, every
// Connection object, and the epoll set; it never computes a screen. The
// service's worker pool executes requests; completions cross back via a
// mutex-guarded queue plus an eventfd (net/wakeup.h). Nothing else is
// shared, so the loop runs lock-free except for that queue swap.
//
// Deadlines: request lines are submitted to the Dispatcher synchronously
// inside the read handler, so the admission-stamped deadline starts at
// socket read time — queueing, worker time, and (for the client) response
// serialization all count against the explorer's 100 ms budget, exactly as
// the in-process path behaves.
//
// Overload: the Dispatcher's ladder applies unchanged (it is the same
// Dispatcher). The loop adds the transport-side signals the in-process path
// never sees: response bytes stalled in a connection's write buffer are
// reported to the overload controller as queue delay, and slow/idle clients
// are disconnected — aggressively so when the ladder is escalated
// (§13.4) — so socket-side pathology surfaces in the same control loop as
// CPU overload.
//
// Drain (SIGTERM sequence): RequestDrain() is async-signal-safe. The loop
// then (1) closes the listener — new connections are refused by the kernel;
// (2) stops reading request bytes from every connection; (3) lets admitted
// requests complete and flushes their responses; (4) closes each connection
// once drained, and force-closes stragglers after drain_timeout_ms. Every
// admitted request is retired exactly once (the conservation property the
// chaos harness storms with net failpoints).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/stopwatch.h"
#include "net/connection.h"
#include "net/socket.h"
#include "net/wakeup.h"
#include "server/service.h"

namespace vexus::net {

struct TcpServerOptions {
  /// Bind address. Loopback by default: exposing an unauthenticated
  /// exploration service on a routable interface is an explicit choice.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the actual port from port() after Start()).
  uint16_t port = 0;
  int backlog = 512;
  /// Accepted connections beyond this are immediately closed (the
  /// fd-exhaustion guard; the dispatcher's ladder guards CPU).
  size_t max_connections = 4096;
  ConnectionOptions connection;
  /// Connections with no traffic and no work in flight for this long are
  /// closed (quartered while the overload ladder is at reduce_k or above).
  double idle_timeout_ms = 60'000;
  /// A response stalled unflushed in the write buffer for this long marks a
  /// dead-slow reader; the connection is closed (also quartered under
  /// overload). The write_buffer_cap handles fast-filling buffers; this
  /// handles readers that stop ACKing entirely.
  double write_stall_timeout_ms = 10'000;
  /// Event-loop housekeeping cadence (idle scan, stall scan, drain checks).
  double tick_ms = 100;
  /// Force-close window of the drain sequence.
  double drain_timeout_ms = 10'000;
  /// Report write-buffer stall ages to the overload controller as queue
  /// delay samples (see the Overload note above).
  bool overload_write_stall_signal = true;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Setting it
  /// locks out kernel autotuning (which otherwise grows send buffers to
  /// megabytes), so the slow-client tests can fill the userspace write
  /// buffer deterministically instead of racing a 4 MB kernel cushion.
  int so_sndbuf = 0;
};

/// Monotonic counters, written by the loop thread, readable from any thread.
struct TcpServerStats {
  uint64_t accepted = 0;
  uint64_t accept_rejected = 0;     // over max_connections
  uint64_t accept_faults = 0;       // injected via net.accept
  uint64_t lines_framed = 0;
  uint64_t parse_errors = 0;
  uint64_t oversized_lines = 0;
  uint64_t requests_submitted = 0;  // handed to DispatchAsync
  uint64_t responses_routed = 0;    // completion matched a live connection
  uint64_t responses_dropped = 0;   // completion for an already-dead conn
  uint64_t peer_closes = 0;
  uint64_t io_error_closes = 0;     // transport errors (incl. injected)
  uint64_t idle_closes = 0;
  uint64_t slow_client_closes = 0;  // write cap or stall timeout
  uint64_t drain_forced_closes = 0;
};

class TcpServer {
 public:
  /// `service` must outlive the server (callbacks in flight at destruction
  /// are dropped via a shared alive flag, but the service pool itself is
  /// not owned here).
  TcpServer(server::ExplorationService* service, TcpServerOptions options = {});

  /// Drains (idempotent) and joins the loop.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds + listens synchronously (so callers see bind errors), then
  /// starts the event-loop thread. Call at most once.
  Status Start();

  /// Actual bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// Triggers the drain sequence without blocking. Async-signal-safe: one
  /// atomic store and one eventfd write — install it in a SIGTERM handler.
  void RequestDrain();

  /// RequestDrain + join. Returns once every connection is closed and the
  /// loop has exited. Idempotent.
  void Drain();

  /// True from RequestDrain() on (new connections are being refused).
  bool draining() const { return drain_requested_.load(std::memory_order_relaxed); }

  size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

  TcpServerStats Stats() const;

 private:
  struct Completion {
    uint64_t conn_id;
    uint64_t seq;
    std::string line;
  };
  /// Shared between worker callbacks and the loop; outlives both via
  /// shared_ptr so a completion firing after ~TcpServer only touches the
  /// alive flag and the (still-allocated) queue.
  struct CompletionQueue;

  struct ConnEntry {
    std::unique_ptr<Connection> conn;
    uint32_t epoll_mask = 0;
  };

  void Loop();
  void HandleAccept();
  void HandleConnEvent(uint64_t conn_id, uint32_t events);
  void OnLine(uint64_t conn_id, uint64_t seq, std::string line,
              bool oversized);
  void DrainCompletions();
  void Tick();
  void StartDrainOnce();
  /// Flush, then re-derive the epoll interest mask; closes slow clients.
  void FlushAndUpdate(uint64_t conn_id);
  void UpdateInterest(uint64_t conn_id);
  void CloseConn(uint64_t conn_id);

  server::ExplorationService* service_;
  TcpServerOptions options_;

  Fd listener_;
  Fd epoll_;
  uint16_t port_ = 0;
  std::thread loop_thread_;
  bool started_ = false;
  bool drained_ = false;

  std::shared_ptr<CompletionQueue> cq_;
  std::atomic<bool> drain_requested_{false};
  bool drain_started_ = false;  // loop-thread view
  Stopwatch drain_watch_;

  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, ConnEntry> conns_;
  std::atomic<size_t> active_connections_{0};

  /// Counters (loop-thread writes; relaxed atomic so Stats() is callable
  /// from tests/benchmarks while the loop runs).
  struct AtomicStats;
  /// Shared with the CompletionQueue so completions landing after the loop
  /// exits are still retired as responses_dropped.
  std::shared_ptr<AtomicStats> stats_;
};

}  // namespace vexus::net
