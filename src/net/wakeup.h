// Wakeup — the worker→event-loop doorbell.
//
// Pool workers finish requests on their own threads; the owning
// connection's buffers live on the event-loop thread. Completions therefore
// cross via a queue plus this wakeup fd: the worker enqueues, calls
// Signal(), and the loop's epoll_wait returns. On Linux this is an eventfd
// (one 8-byte counter, one fd); elsewhere a self-pipe. Signal() is
// async-signal-safe (a single write()), which is also what lets a SIGTERM
// handler kick the loop into its drain sequence directly.
#pragma once

#include "common/status.h"
#include "net/socket.h"

namespace vexus::net {

class Wakeup {
 public:
  /// Creates the eventfd/pipe; VEXUS_CHECK-fails only on fd exhaustion.
  Wakeup();

  Wakeup(const Wakeup&) = delete;
  Wakeup& operator=(const Wakeup&) = delete;

  /// The fd to register for EPOLLIN.
  int fd() const { return read_.get(); }

  /// Rings the doorbell. Nonblocking, async-signal-safe, coalescing (many
  /// signals before a Drain() produce one readable event).
  void Signal();

  /// Swallows pending signals so epoll level-triggering quiesces.
  void Drain();

 private:
  Fd read_;
  Fd write_;  // unused with eventfd (read_ is both ends)
};

}  // namespace vexus::net
