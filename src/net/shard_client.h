// ShardClient — the TCP transport behind the gather coordinator
// (server/gather.h): one shard backend, one (usually) cached LineClient
// connection, reconnect-on-demand, and tail-latency hedging.
//
// Hedging (DESIGN.md §16.3): the slow-shard tail usually comes from one
// stalled connection (a dropped packet inside the RTO, a backend thread
// descheduled mid-write), not a slow computation — the same request re-sent
// on a FRESH connection typically answers at median latency. So Call()
// first waits on the primary connection for a hedge delay derived from the
// observed p99 (clamped to [hedge_min_ms, hedge_max_ms]); if nothing
// arrived, it opens a second connection, re-sends, and alternates short
// read laps between both until one answers or the budget ends. The loser's
// connection is closed (its response, whenever it lands, must not
// desynchronize a future call's read stream). The healthy path pays zero
// extra bytes — a hedge only exists after the primary has already missed
// its p99.
//
// Thread-safety: all state is behind one mutex. The coordinator drives a
// shard from one thread per scatter, but health probes may overlap a lap.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/client.h"
#include "server/gather.h"

namespace vexus::net {

class ShardClient : public server::ShardTransport {
 public:
  struct Options {
    /// Budget for (re)connecting, clamped to the call budget.
    double connect_timeout_ms = 1000;
    /// Hedge-delay clamp. The delay itself tracks the observed p99; the
    /// floor keeps loopback tests from hedging on scheduler noise, the
    /// ceiling bounds how long a stalled connection can stretch the tail
    /// (the BENCH_gather slow-shard p99 gate).
    double hedge_min_ms = 5;
    double hedge_max_ms = 50;
    /// Read-lap width while alternating between primary and hedge.
    double hedge_lap_ms = 2;
    /// 0 disables hedging (single read against the full budget).
    bool hedging = true;
    /// Latency samples kept for the p99 estimate.
    size_t latency_window = 128;
  };

  ShardClient(std::string host, uint16_t port, Options options);
  ShardClient(std::string host, uint16_t port)
      : ShardClient(std::move(host), port, Options()) {}

  Result<server::Response> Call(const server::Request& req,
                                double budget_ms) override;
  void Reset() override;
  std::string address() const override;

  /// Hedge accounting (tests + membership stats).
  uint64_t hedges_sent() const;
  uint64_t hedge_wins() const;

  /// Current hedge delay (p99 estimate after clamping) — test surface.
  double HedgeDelayMillis() const;

 private:
  /// Ensures `primary_` is connected; consumes from `deadline`.
  Status EnsureConnected(const Deadline& deadline);
  void RecordLatency(double ms);
  double HedgeDelayLocked() const;

  std::string host_;
  uint16_t port_;
  Options options_;

  mutable std::mutex mu_;
  std::optional<LineClient> primary_;
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  uint64_t hedges_sent_ = 0;
  uint64_t hedge_wins_ = 0;
};

}  // namespace vexus::net
