#include "index/inverted_index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/shard_map.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "index/minhash.h"

namespace vexus::index {

namespace {

using mining::GroupId;
using mining::GroupStore;

/// Sorts by similarity desc (ties on group id for determinism), truncates to
/// the materialized length, and drops sub-threshold postings.
void FinalizeList(std::vector<Neighbor>* list, size_t keep,
                  double min_similarity) {
  std::sort(list->begin(), list->end(), [](const Neighbor& a,
                                           const Neighbor& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.group < b.group;
  });
  if (list->size() > keep) list->resize(keep);
  while (!list->empty() && list->back().similarity < min_similarity) {
    list->pop_back();
  }
  list->shrink_to_fit();
}

}  // namespace

Result<InvertedIndex> InvertedIndex::Build(const GroupStore& store,
                                           const Options& options) {
  if (options.materialization_fraction < 0 ||
      options.materialization_fraction > 1) {
    return Status::InvalidArgument(
        "materialization_fraction must be in [0, 1]");
  }
  InvertedIndex idx;
  const size_t n = store.size();
  idx.postings_.resize(n);
  if (n <= 1) return idx;

  Stopwatch watch;
  size_t keep = std::max(
      options.min_neighbors,
      static_cast<size_t>(
          std::ceil(options.materialization_fraction *
                    static_cast<double>(n - 1))));

  std::atomic<size_t> candidate_pairs{0};
  std::atomic<size_t> full_postings{0};

  const ShardMap shards(store.num_users(),
                        std::max<size_t>(1, options.num_shards));
  const size_t S = shards.num_shards();

  if (options.strategy == BuildStrategy::kCooccurrence) {
    // Per-shard user -> groups adjacency, indexed by u - user_begin. Each
    // shard's slice depends only on its own word range, so slices build
    // independently (in parallel when pooled); concatenating them in shard
    // order reproduces the global adjacency exactly. S == 1 is the original
    // single-table build.
    std::vector<std::vector<std::vector<GroupId>>> adj(S);
    auto build_adjacency = [&](size_t s) {
      const ShardMap::Range& r = shards.shard(s);
      adj[s].resize(r.num_users());
      for (GroupId g = 0; g < n; ++g) {
        store.group(g).members().ForEachInRange(
            r.word_begin, r.word_end,
            [&](uint32_t u) { adj[s][u - r.user_begin].push_back(g); });
      }
    };

    auto build_one = [&](size_t g_idx, std::vector<uint32_t>* counts) {
      GroupId g = static_cast<GroupId>(g_idx);
      const mining::UserGroup& gg = store.group(g);
      std::vector<GroupId> touched;
      // Walking shards in ascending order visits members in ascending user
      // order — the same order the unsharded walk used — so touched-order,
      // and therefore the posting list, is byte-identical for every S.
      for (size_t s = 0; s < S; ++s) {
        const ShardMap::Range& r = shards.shard(s);
        gg.members().ForEachInRange(r.word_begin, r.word_end, [&](uint32_t u) {
          for (GroupId h : adj[s][u - r.user_begin]) {
            if (h == g) continue;
            if ((*counts)[h]++ == 0) touched.push_back(h);
          }
        });
      }
      std::vector<Neighbor>& list = idx.postings_[g];
      list.reserve(touched.size());
      size_t gsize = gg.size();
      for (GroupId h : touched) {
        uint32_t inter = (*counts)[h];
        (*counts)[h] = 0;  // reset for reuse
        size_t uni = gsize + store.group(h).size() - inter;
        float sim = uni == 0 ? 0.0f
                             : static_cast<float>(inter) /
                                   static_cast<float>(uni);
        list.push_back(Neighbor{h, sim});
      }
      candidate_pairs += touched.size();
      full_postings += list.size();
      FinalizeList(&list, keep, options.min_similarity);
    };

    if (options.num_threads == 1) {
      for (size_t s = 0; s < S; ++s) build_adjacency(s);
      std::vector<uint32_t> counts(n, 0);
      for (size_t g = 0; g < n; ++g) build_one(g, &counts);
    } else {
      // Sharded over ParallelForChunked with one counts buffer per chunk.
      // Chunk sizing caps the number of chunks near the worker count so the
      // n-sized buffers stay bounded; each posting list is written by
      // exactly one chunk, so the parallel result is byte-identical to the
      // serial one (tested in inverted_index_test).
      ThreadPool pool(options.num_threads);
      pool.ParallelForChunked(S, /*chunk_size=*/1,
                              [&](size_t, size_t begin, size_t end) {
                                for (size_t s = begin; s < end; ++s) {
                                  build_adjacency(s);
                                }
                              });
      size_t workers = pool.num_threads() + 1;  // the caller participates
      size_t chunk_size = (n + workers - 1) / workers;
      size_t num_chunks = (n + chunk_size - 1) / chunk_size;
      std::vector<std::vector<uint32_t>> buffers(
          num_chunks, std::vector<uint32_t>(n, 0));
      pool.ParallelForChunked(n, chunk_size,
                              [&](size_t chunk, size_t begin, size_t end) {
                                for (size_t g = begin; g < end; ++g) {
                                  build_one(g, &buffers[chunk]);
                                }
                              });
    }
  } else {
    // MinHash + LSH candidates, exact verification. Signature computation,
    // banding, and candidate verification all shard over the pool; outputs
    // are position-indexed (signatures, per-pair similarity) or canonically
    // re-sorted (LSH pairs), so parallel == serial byte-identically.
    if (options.minhash_hashes % options.minhash_bands != 0) {
      return Status::InvalidArgument(
          "minhash_bands must divide minhash_hashes");
    }
    std::unique_ptr<ThreadPool> pool;
    if (options.num_threads != 1) {
      pool = std::make_unique<ThreadPool>(options.num_threads);
    }
    MinHasher hasher(options.minhash_hashes);
    std::vector<std::vector<uint64_t>> sigs;
    if (S == 1) {
      sigs = hasher.Signatures(store, pool.get());
    } else {
      // Per-shard signature partials folded by elementwise min — exact for
      // any S, since each member lives in exactly one shard and a signature
      // component is a min over members (see MinHasher::AccumulateSignature).
      sigs.assign(n, std::vector<uint64_t>(hasher.num_hashes(),
                                           MinHasher::kEmptySentinel));
      auto accumulate = [&](size_t g) {
        for (size_t s = 0; s < S; ++s) {
          const ShardMap::Range& r = shards.shard(s);
          hasher.AccumulateSignature(
              store.group(static_cast<GroupId>(g)).members(), r.word_begin,
              r.word_end, &sigs[g]);
        }
      };
      if (pool == nullptr) {
        for (size_t g = 0; g < n; ++g) accumulate(g);
      } else {
        pool->ParallelForChunked(n, /*chunk_size=*/64,
                                 [&](size_t, size_t begin, size_t end) {
                                   for (size_t g = begin; g < end; ++g) {
                                     accumulate(g);
                                   }
                                 });
      }
    }
    auto pairs = LshCandidatePairs(sigs, options.minhash_bands, pool.get());
    candidate_pairs = pairs.size();

    std::vector<float> sims(pairs.size());
    auto verify = [&](size_t i) {
      const auto& [a, b] = pairs[i];
      sims[i] = static_cast<float>(
          store.group(a).members().Jaccard(store.group(b).members()));
    };
    if (pool == nullptr) {
      for (size_t i = 0; i < pairs.size(); ++i) verify(i);
    } else {
      pool->ParallelForChunked(pairs.size(), /*chunk_size=*/256,
                               [&](size_t, size_t begin, size_t end) {
                                 for (size_t i = begin; i < end; ++i) {
                                   verify(i);
                                 }
                               });
    }
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (sims[i] <= 0) continue;
      idx.postings_[pairs[i].first].push_back(
          Neighbor{pairs[i].second, sims[i]});
      idx.postings_[pairs[i].second].push_back(
          Neighbor{pairs[i].first, sims[i]});
    }
    for (GroupId g = 0; g < n; ++g) {
      full_postings += idx.postings_[g].size();
      FinalizeList(&idx.postings_[g], keep, options.min_similarity);
    }
  }

  idx.stats_.elapsed_ms = watch.ElapsedMillis();
  idx.stats_.candidate_pairs = candidate_pairs;
  idx.stats_.full_postings = full_postings;
  for (const auto& list : idx.postings_) idx.stats_.postings += list.size();
  idx.stats_.memory_bytes = idx.MemoryBytes();
  return idx;
}

InvertedIndex InvertedIndex::FromPostings(
    std::vector<std::vector<Neighbor>> lists) {
  InvertedIndex idx;
  idx.postings_ = std::move(lists);
  for (const auto& list : idx.postings_) {
    idx.stats_.postings += list.size();
  }
  idx.stats_.full_postings = idx.stats_.postings;
  idx.stats_.memory_bytes = idx.MemoryBytes();
  return idx;
}

const std::vector<Neighbor>& InvertedIndex::Neighbors(
    mining::GroupId g) const {
  VEXUS_DCHECK(g < postings_.size());
  return postings_[g];
}

std::vector<Neighbor> InvertedIndex::TopK(mining::GroupId g, size_t k) const {
  const auto& list = Neighbors(g);
  std::vector<Neighbor> out(list.begin(),
                            list.begin() + std::min(k, list.size()));
  return out;
}

size_t InvertedIndex::MemoryBytes() const {
  size_t bytes = postings_.capacity() * sizeof(std::vector<Neighbor>);
  for (const auto& list : postings_) {
    bytes += list.capacity() * sizeof(Neighbor);
  }
  return bytes;
}

}  // namespace vexus::index
