// The group graph G of paper §II: "Groups form a disconnected undirected
// graph G where an edge exists between two groups if they are not disjoint.
// Group exploration is a navigation in that graph." Built from the inverted
// index (whose postings are exactly the non-disjoint pairs with their
// Jaccard weights, truncated to the materialized fraction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "mining/group.h"

namespace vexus::index {

class GroupGraph {
 public:
  /// Builds the undirected graph from an index (edges are symmetrized:
  /// a posting in either direction creates the edge).
  static GroupGraph FromIndex(const InvertedIndex& index);

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }

  struct Edge {
    mining::GroupId to = 0;
    float weight = 0.0f;  // Jaccard similarity
  };

  const std::vector<Edge>& Neighbors(mining::GroupId g) const;
  size_t Degree(mining::GroupId g) const { return Neighbors(g).size(); }

  /// Connected components; out[i] = component id of node i (0-based, by
  /// discovery order). Returns the number of components — the paper calls
  /// the graph "disconnected"; exploration cannot leave a component by
  /// similarity steps alone (HISTORY/backtrack can).
  size_t ConnectedComponents(std::vector<uint32_t>* out) const;

  double AverageDegree() const;

  /// "nodes=…, edges=…, components=…, avg_degree=…"
  std::string Summary() const;

 private:
  std::vector<std::vector<Edge>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace vexus::index
