// Group-to-group similarity measures.
//
// The paper uses Jaccard distance between member sets for index construction
// (§II.A) and a *weighted* similarity for feedback personalization (§II.B):
// users the explorer has rewarded weigh more in the overlap, so groups
// aligned with the feedback vector rank higher among the k recommendations.
#pragma once

#include <vector>

#include "common/bitset.h"
#include "mining/group.h"

namespace vexus::index {

/// Plain Jaccard |a∩b| / |a∪b| over member sets.
inline double Jaccard(const mining::UserGroup& a, const mining::UserGroup& b) {
  return a.members().Jaccard(b.members());
}

/// Weighted Jaccard: Σ_{u∈a∩b} w(u) / Σ_{u∈a∪b} w(u).
///
/// `weights` is indexed by UserId and must cover the universe; weights are
/// expected non-negative (a uniform vector reduces this to plain Jaccard).
/// Returns 1.0 when both sets are empty, 0.0 when the union has zero weight.
double WeightedJaccard(const Bitset& a, const Bitset& b,
                       const std::vector<double>& weights);

/// Overlap coefficient |a∩b| / min(|a|,|b|) — used by tests as an
/// alternative lens on containment-heavy group pairs.
double OverlapCoefficient(const Bitset& a, const Bitset& b);

/// Sørensen–Dice 2|a∩b| / (|a|+|b|).
double Dice(const Bitset& a, const Bitset& b);

}  // namespace vexus::index
