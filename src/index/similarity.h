// Group-to-group similarity measures.
//
// The paper uses Jaccard distance between member sets for index construction
// (§II.A) and a *weighted* similarity for feedback personalization (§II.B):
// users the explorer has rewarded weigh more in the overlap, so groups
// aligned with the feedback vector rank higher among the k recommendations.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitset.h"
#include "common/hybrid_bitset.h"
#include "mining/group.h"

namespace vexus::index {

/// Plain Jaccard |a∩b| / |a∪b| over member sets.
inline double Jaccard(const mining::UserGroup& a, const mining::UserGroup& b) {
  return a.members().Jaccard(b.members());
}

/// Weighted Jaccard: Σ_{u∈a∩b} w(u) / Σ_{u∈a∪b} w(u).
///
/// `weights` is indexed by UserId and must cover the universe; weights are
/// expected non-negative (a uniform vector reduces this to plain Jaccard).
/// Returns 1.0 when both sets are empty, 0.0 when the union has zero weight.
double WeightedJaccard(const Bitset& a, const Bitset& b,
                       const std::vector<double>& weights);

/// Hybrid-container overload. Sums weights over the union in the same
/// strictly-ascending user order as the dense version (a merged cursor
/// walk), so the float accumulation — and therefore greedy output — is
/// bit-identical whatever form the operands happen to be stored in.
double WeightedJaccard(const HybridBitset& a, const HybridBitset& b,
                       const std::vector<double>& weights);

/// Overlap coefficient |a∩b| / min(|a|,|b|) — used by tests as an
/// alternative lens on containment-heavy group pairs.
double OverlapCoefficient(const Bitset& a, const Bitset& b);

/// Sørensen–Dice 2|a∩b| / (|a|+|b|).
double Dice(const Bitset& a, const Bitset& b);

/// Memoized pairwise Jaccard over a fixed candidate pool.
///
/// Indices are positions into `pool` (NOT GroupIds). k and |pool| are both
/// small, but the greedy swap loop revisits pairs constantly — memoization
/// keeps each pair at one bitset pass for the lifetime of a Run, across
/// passes and applied swaps.
///
/// Threading contract: Sim() memoizes lazily and is single-writer — call it
/// only from the thread that owns the cache (the greedy loop fills its
/// candidate×selected similarity rows through Sim() *between* scan passes).
/// The parallel candidate scan never calls Sim(); it reads the dense row
/// matrix the owner filled, so no synchronization is needed on this class.
class PairwiseSimCache {
 public:
  PairwiseSimCache(const mining::GroupStore* store,
                   const std::vector<mining::GroupId>* pool)
      : store_(store),
        pool_(pool),
        cache_(pool->size() * pool->size(), -1.0f) {}

  /// Jaccard(pool[a], pool[b]), memoized. Symmetric; Sim(a, a) == 1.
  float Sim(size_t a, size_t b) {
    if (a == b) return 1.0f;
    float& slot = cache_[a * pool_->size() + b];
    if (slot < 0) {
      slot = static_cast<float>(
          store_->group((*pool_)[a])
              .members()
              .Jaccard(store_->group((*pool_)[b]).members()));
      cache_[b * pool_->size() + a] = slot;
    }
    return slot;
  }

  /// Bytes held by the pair matrix (|pool|² floats).
  size_t MemoryBytes() const { return cache_.size() * sizeof(float); }

 private:
  const mining::GroupStore* store_;
  const std::vector<mining::GroupId>* pool_;
  std::vector<float> cache_;
};

}  // namespace vexus::index
