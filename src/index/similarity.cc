#include "index/similarity.h"

#include "common/logging.h"

namespace vexus::index {

double WeightedJaccard(const Bitset& a, const Bitset& b,
                       const std::vector<double>& weights) {
  VEXUS_DCHECK(a.size() == b.size());
  VEXUS_DCHECK(weights.size() >= a.size());
  double inter = 0, uni = 0;
  // One pass over the union.
  Bitset u = a | b;
  u.ForEach([&](uint32_t user) {
    double w = weights[user];
    uni += w;
    if (a.Test(user) && b.Test(user)) inter += w;
  });
  if (uni <= 0) {
    // Zero-weight union: fall back on set semantics.
    return a.UnionCount(b) == 0 ? 1.0 : 0.0;
  }
  return inter / uni;
}

double OverlapCoefficient(const Bitset& a, const Bitset& b) {
  size_t ca = a.Count();
  size_t cb = b.Count();
  size_t m = std::min(ca, cb);
  if (m == 0) return ca == cb ? 1.0 : 0.0;
  return static_cast<double>(a.IntersectCount(b)) / static_cast<double>(m);
}

double Dice(const Bitset& a, const Bitset& b) {
  size_t ca = a.Count();
  size_t cb = b.Count();
  if (ca + cb == 0) return 1.0;
  return 2.0 * static_cast<double>(a.IntersectCount(b)) /
         static_cast<double>(ca + cb);
}

}  // namespace vexus::index
