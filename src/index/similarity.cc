#include "index/similarity.h"

#include "common/logging.h"

namespace vexus::index {

double WeightedJaccard(const Bitset& a, const Bitset& b,
                       const std::vector<double>& weights) {
  VEXUS_DCHECK(a.size() == b.size());
  VEXUS_DCHECK(weights.size() >= a.size());
  double inter = 0, uni = 0;
  // One pass over the union.
  Bitset u = a | b;
  u.ForEach([&](uint32_t user) {
    double w = weights[user];
    uni += w;
    if (a.Test(user) && b.Test(user)) inter += w;
  });
  if (uni <= 0) {
    // Zero-weight union: fall back on set semantics.
    return a.UnionCount(b) == 0 ? 1.0 : 0.0;
  }
  return inter / uni;
}

double WeightedJaccard(const HybridBitset& a, const HybridBitset& b,
                       const std::vector<double>& weights) {
  VEXUS_DCHECK(a.size() == b.size());
  VEXUS_DCHECK(weights.size() >= a.size());
  double inter = 0, uni = 0;
  // Merged ascending walk over both member streams: weights accumulate in
  // exactly the per-user order the dense overload's union scan uses, so
  // the two overloads return bit-identical doubles for equal sets.
  HybridBitset::Cursor ca(a);
  HybridBitset::Cursor cb(b);
  size_t union_count = 0;
  while (!ca.AtEnd() || !cb.AtEnd()) {
    uint32_t user;
    bool in_both = false;
    if (cb.AtEnd() || (!ca.AtEnd() && ca.Value() < cb.Value())) {
      user = ca.Value();
      ca.Next();
    } else if (ca.AtEnd() || cb.Value() < ca.Value()) {
      user = cb.Value();
      cb.Next();
    } else {
      user = ca.Value();
      in_both = true;
      ca.Next();
      cb.Next();
    }
    ++union_count;
    double w = weights[user];
    uni += w;
    if (in_both) inter += w;
  }
  if (uni <= 0) {
    // Zero-weight union: fall back on set semantics.
    return union_count == 0 ? 1.0 : 0.0;
  }
  return inter / uni;
}

double OverlapCoefficient(const Bitset& a, const Bitset& b) {
  size_t ca = a.Count();
  size_t cb = b.Count();
  size_t m = std::min(ca, cb);
  if (m == 0) return ca == cb ? 1.0 : 0.0;
  return static_cast<double>(a.IntersectCount(b)) / static_cast<double>(m);
}

double Dice(const Bitset& a, const Bitset& b) {
  size_t ca = a.Count();
  size_t cb = b.Count();
  if (ca + cb == 0) return 1.0;
  return 2.0 * static_cast<double>(a.IntersectCount(b)) /
         static_cast<double>(ca + cb);
}

}  // namespace vexus::index
