// Per-group inverted similarity index — the paper's core scalability device
// (§II.A): "we build an inverted index per group g ∈ G that contains all
// groups in G − {g} in decreasing order of their similarity to g … we only
// materialize 10% of each inverted index which is shown to be adequate".
//
// Construction strategies:
//   * kCooccurrence (exact): for each group, count member co-occurrences via
//     user → group adjacency; Jaccard follows from |g∩h| and the two sizes.
//     Cost O(Σ_u deg(u)²), independent of |G|² when overlap is sparse.
//   * kMinHash (approximate): LSH candidate pairs, exact Jaccard verified on
//     candidates only — sub-quadratic for huge group counts (ablation D5).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "mining/group.h"

namespace vexus::index {

/// One inverted-index posting: a neighbor group and its similarity.
struct Neighbor {
  mining::GroupId group = 0;
  float similarity = 0.0f;
};

class InvertedIndex {
 public:
  enum class BuildStrategy { kCooccurrence, kMinHash };

  struct Options {
    /// Fraction of each group's full neighbor list to materialize
    /// (the paper's 10%). Clamped to [0, 1].
    double materialization_fraction = 0.10;
    /// Materialize at least this many neighbors regardless of the fraction
    /// (small |G| would otherwise truncate to nothing).
    size_t min_neighbors = 16;
    /// Drop neighbors below this similarity even within the fraction.
    double min_similarity = 0.0;
    BuildStrategy strategy = BuildStrategy::kCooccurrence;
    /// MinHash parameters (strategy == kMinHash).
    size_t minhash_hashes = 96;
    size_t minhash_bands = 24;
    /// Worker threads for the build (0 = hardware concurrency).
    size_t num_threads = 1;
    /// Horizontal shards of the user universe (common/shard_map.h; ROADMAP
    /// item 2). The co-occurrence adjacency and MinHash signatures are then
    /// built per shard and folded in shard order. Both folds are exact —
    /// co-occurrence counts are integer sums over disjoint user ranges, and
    /// a MinHash component is a min over the partition — so the index is
    /// byte-identical for every shard count (tested). Clamped to ≥ 1.
    size_t num_shards = 1;
  };

  struct BuildStats {
    double elapsed_ms = 0;
    size_t postings = 0;          // total materialized neighbors
    size_t full_postings = 0;     // before truncation
    size_t candidate_pairs = 0;   // similarity evaluations performed
    size_t memory_bytes = 0;
  };

  /// Builds the index over all groups in the store.
  static Result<InvertedIndex> Build(const mining::GroupStore& store,
                                     const Options& options);

  /// Reconstructs an index from materialized posting lists (snapshot
  /// loading; see core/snapshot.h). Lists are adopted as-is — callers are
  /// responsible for their ordering invariant (descending similarity).
  static InvertedIndex FromPostings(std::vector<std::vector<Neighbor>> lists);

  size_t num_groups() const { return postings_.size(); }

  /// Materialized neighbors of g, sorted by decreasing similarity.
  const std::vector<Neighbor>& Neighbors(mining::GroupId g) const;

  /// Top-k of the materialized list (k may exceed it; returns what exists).
  std::vector<Neighbor> TopK(mining::GroupId g, size_t k) const;

  const BuildStats& build_stats() const { return stats_; }

  /// Bytes used by the posting lists.
  size_t MemoryBytes() const;

 private:
  std::vector<std::vector<Neighbor>> postings_;
  BuildStats stats_;
};

}  // namespace vexus::index
