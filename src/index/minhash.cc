#include "index/minhash.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/hash.h"
#include "common/random.h"
#include "common/logging.h"

namespace vexus::index {

MinHasher::MinHasher(size_t num_hashes, uint64_t seed) {
  VEXUS_CHECK(num_hashes >= 1);
  salts_.reserve(num_hashes);
  uint64_t state = seed;
  for (size_t i = 0; i < num_hashes; ++i) {
    salts_.push_back(SplitMix64(&state));
  }
}

std::vector<uint64_t> MinHasher::Signature(const Bitset& members) const {
  std::vector<uint64_t> sig(salts_.size(),
                            std::numeric_limits<uint64_t>::max());
  members.ForEach([&](uint32_t u) {
    for (size_t i = 0; i < salts_.size(); ++i) {
      uint64_t h = Mix64(salts_[i] ^ (static_cast<uint64_t>(u) + 1));
      if (h < sig[i]) sig[i] = h;
    }
  });
  return sig;
}

double MinHasher::EstimateJaccard(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  VEXUS_DCHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) agree += (a[i] == b[i]);
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

std::vector<std::pair<uint32_t, uint32_t>> LshCandidatePairs(
    const std::vector<std::vector<uint64_t>>& signatures, size_t bands) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  if (signatures.empty()) return out;
  size_t k = signatures[0].size();
  VEXUS_CHECK(bands >= 1 && k % bands == 0)
      << "bands (" << bands << ") must divide signature length (" << k << ")";
  size_t rows = k / bands;

  std::vector<uint64_t> seen;  // encoded pairs for dedup
  for (size_t band = 0; band < bands; ++band) {
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    for (uint32_t g = 0; g < signatures.size(); ++g) {
      uint64_t h = 0x100001b3ULL + band;
      for (size_t r = 0; r < rows; ++r) {
        h = HashCombine(h, signatures[g][band * rows + r]);
      }
      buckets[h].push_back(g);
    }
    for (const auto& [hash, members] : buckets) {
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          seen.push_back((static_cast<uint64_t>(members[i]) << 32) |
                         members[j]);
        }
      }
    }
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  out.reserve(seen.size());
  for (uint64_t enc : seen) {
    out.emplace_back(static_cast<uint32_t>(enc >> 32),
                     static_cast<uint32_t>(enc & 0xffffffffu));
  }
  return out;
}

}  // namespace vexus::index
