#include "index/minhash.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"

namespace vexus::index {

MinHasher::MinHasher(size_t num_hashes, uint64_t seed) {
  VEXUS_CHECK(num_hashes >= 1);
  salts_.reserve(num_hashes);
  uint64_t state = seed;
  for (size_t i = 0; i < num_hashes; ++i) {
    salts_.push_back(SplitMix64(&state));
  }
}

namespace {

template <typename Set>
std::vector<uint64_t> SignatureOf(const Set& members,
                                  const std::vector<uint64_t>& salts) {
  std::vector<uint64_t> sig(salts.size(), MinHasher::kEmptySentinel);
  members.ForEach([&](uint32_t u) {
    for (size_t i = 0; i < salts.size(); ++i) {
      uint64_t h = Mix64(salts[i] ^ (static_cast<uint64_t>(u) + 1));
      if (h < sig[i]) sig[i] = h;
    }
  });
  return sig;
}

}  // namespace

std::vector<uint64_t> MinHasher::Signature(const Bitset& members) const {
  return SignatureOf(members, salts_);
}

std::vector<uint64_t> MinHasher::Signature(const HybridBitset& members) const {
  return SignatureOf(members, salts_);
}

void MinHasher::AccumulateSignature(const HybridBitset& members,
                                    size_t word_begin, size_t word_end,
                                    std::vector<uint64_t>* sig) const {
  VEXUS_DCHECK(sig->size() == salts_.size());
  members.ForEachInRange(word_begin, word_end, [&](uint32_t u) {
    for (size_t i = 0; i < salts_.size(); ++i) {
      uint64_t h = Mix64(salts_[i] ^ (static_cast<uint64_t>(u) + 1));
      if (h < (*sig)[i]) (*sig)[i] = h;
    }
  });
}

std::vector<std::vector<uint64_t>> MinHasher::Signatures(
    const mining::GroupStore& store, ThreadPool* pool) const {
  const size_t n = store.size();
  std::vector<std::vector<uint64_t>> sigs(n);
  auto compute = [&](size_t g) {
    sigs[g] = Signature(store.group(static_cast<mining::GroupId>(g)).members());
  };
  if (pool == nullptr || n < 2) {
    for (size_t g = 0; g < n; ++g) compute(g);
  } else {
    // Each slot is written by exactly one chunk; output is position-indexed,
    // so the parallel result is byte-identical to the serial one.
    pool->ParallelForChunked(n, /*chunk_size=*/64,
                             [&](size_t, size_t begin, size_t end) {
                               for (size_t g = begin; g < end; ++g) compute(g);
                             });
  }
  return sigs;
}

bool MinHasher::IsEmptySignature(const std::vector<uint64_t>& sig) {
  for (uint64_t v : sig) {
    if (v != kEmptySentinel) return false;
  }
  return true;
}

double MinHasher::EstimateJaccard(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  VEXUS_DCHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    // Two sentinels mean two empty sets, which share nothing — that is
    // *dis*agreement for similarity purposes (pre-fix this returned 1.0 and
    // LSH bucketed every empty group with every other empty group).
    agree += (a[i] == b[i] && a[i] != kEmptySentinel);
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

std::vector<std::pair<uint32_t, uint32_t>> LshCandidatePairs(
    const std::vector<std::vector<uint64_t>>& signatures, size_t bands,
    ThreadPool* pool) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  if (signatures.empty()) return out;
  size_t k = signatures[0].size();
  VEXUS_CHECK(bands >= 1 && k % bands == 0)
      << "bands (" << bands << ") must divide signature length (" << k << ")";
  // Pre-fix only signatures[0] was measured; a shorter signature later in
  // the vector made the banding loop read out of bounds.
  for (size_t g = 0; g < signatures.size(); ++g) {
    VEXUS_CHECK(signatures[g].size() == k)
        << "ragged signature: group " << g << " has " << signatures[g].size()
        << " components, expected " << k;
  }
  size_t rows = k / bands;

  // Empty sets share no member with anything; keeping their all-sentinel
  // signatures out of the buckets stops every empty group colliding with
  // every other empty group in every band.
  std::vector<char> skip(signatures.size(), 0);
  for (size_t g = 0; g < signatures.size(); ++g) {
    skip[g] = MinHasher::IsEmptySignature(signatures[g]) ? 1 : 0;
  }

  // Bands are independent; band_pairs is band-indexed so the parallel fold
  // (band order, then sort+unique) is byte-identical to the serial path.
  std::vector<std::vector<uint64_t>> band_pairs(bands);
  auto scan_band = [&](size_t band) {
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    for (uint32_t g = 0; g < signatures.size(); ++g) {
      if (skip[g]) continue;
      uint64_t h = 0x100001b3ULL + band;
      for (size_t r = 0; r < rows; ++r) {
        h = HashCombine(h, signatures[g][band * rows + r]);
      }
      buckets[h].push_back(g);
    }
    std::vector<uint64_t>& pairs = band_pairs[band];
    for (const auto& [hash, members] : buckets) {
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          pairs.push_back((static_cast<uint64_t>(members[i]) << 32) |
                          members[j]);
        }
      }
    }
  };
  if (pool == nullptr || bands < 2) {
    for (size_t band = 0; band < bands; ++band) scan_band(band);
  } else {
    pool->ParallelForChunked(bands, /*chunk_size=*/1,
                             [&](size_t, size_t begin, size_t end) {
                               for (size_t b = begin; b < end; ++b) {
                                 scan_band(b);
                               }
                             });
  }

  std::vector<uint64_t> seen;  // encoded pairs for dedup
  size_t total = 0;
  for (const auto& pairs : band_pairs) total += pairs.size();
  seen.reserve(total);
  for (const auto& pairs : band_pairs) {
    seen.insert(seen.end(), pairs.begin(), pairs.end());
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  out.reserve(seen.size());
  for (uint64_t enc : seen) {
    out.emplace_back(static_cast<uint32_t>(enc >> 32),
                     static_cast<uint32_t>(enc & 0xffffffffu));
  }
  return out;
}

}  // namespace vexus::index
