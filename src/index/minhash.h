// MinHash signatures + banded LSH for approximate Jaccard.
//
// Exact all-pairs similarity is quadratic in the number of groups; at paper
// scale (§I: 10^6 potential groups) the inverted-index build needs a
// sub-quadratic candidate generator. MinHash gives an unbiased Jaccard
// estimate from k independent permutations; banding the signature into
// b bands of r rows (k = b·r) yields candidate pairs whose probability of
// colliding is the classic S-curve 1 − (1 − s^r)^b. Ablation D5 compares
// this against the exact builder.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "mining/group.h"

namespace vexus::index {

class MinHasher {
 public:
  /// k hash functions derived deterministically from `seed`.
  MinHasher(size_t num_hashes, uint64_t seed = 0x9e3779b97f4a7c15ULL);

  size_t num_hashes() const { return salts_.size(); }

  /// Signature of a user set: per hash function, the min over members of
  /// h_i(u). Empty sets yield all-max signatures.
  std::vector<uint64_t> Signature(const Bitset& members) const;

  /// Fraction of agreeing components — an unbiased Jaccard estimate.
  static double EstimateJaccard(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b);

 private:
  std::vector<uint64_t> salts_;
};

/// Banded LSH over signatures: groups whose signature agrees on all rows of
/// at least one band become candidate pairs. `bands` must divide the
/// signature length. Pairs are returned deduplicated, each (i < j).
std::vector<std::pair<uint32_t, uint32_t>> LshCandidatePairs(
    const std::vector<std::vector<uint64_t>>& signatures, size_t bands);

}  // namespace vexus::index
