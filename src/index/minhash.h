// MinHash signatures + banded LSH for approximate Jaccard.
//
// Exact all-pairs similarity is quadratic in the number of groups; at paper
// scale (§I: 10^6 potential groups) the inverted-index build needs a
// sub-quadratic candidate generator. MinHash gives an unbiased Jaccard
// estimate from k independent permutations; banding the signature into
// b bands of r rows (k = b·r) yields candidate pairs whose probability of
// colliding is the classic S-curve 1 − (1 − s^r)^b. Ablation D5 compares
// this against the exact builder.
//
// Empty sets are a degenerate corner: they have no members to take a min
// over, so their signature is all-kEmptySentinel. Such signatures estimate
// Jaccard 0 against everything (including each other — the true Jaccard of
// two empty sets is 0/undefined for similarity purposes, NOT 1) and never
// enter an LSH bucket, so empty groups cannot flood a band with bogus
// candidate pairs.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/hybrid_bitset.h"
#include "common/thread_pool.h"
#include "mining/group.h"

namespace vexus::index {

class MinHasher {
 public:
  /// Signature component of an empty set (no member to take the min over).
  static constexpr uint64_t kEmptySentinel =
      std::numeric_limits<uint64_t>::max();

  /// k hash functions derived deterministically from `seed`.
  MinHasher(size_t num_hashes, uint64_t seed = 0x9e3779b97f4a7c15ULL);

  size_t num_hashes() const { return salts_.size(); }

  /// Signature of a user set: per hash function, the min over members of
  /// h_i(u). Empty sets yield all-kEmptySentinel signatures. Both member
  /// representations hash identically (ForEach order is ascending in both).
  std::vector<uint64_t> Signature(const Bitset& members) const;
  std::vector<uint64_t> Signature(const HybridBitset& members) const;

  /// Min-accumulates the shard partial of a signature into `sig` (which must
  /// hold num_hashes() components, seeded with kEmptySentinel): for each
  /// hash i, sig[i] = min(sig[i], min over members in word range
  /// [word_begin, word_end) of h_i(u)). Each member lives in exactly one
  /// shard and min is associative/commutative, so folding the partials of a
  /// word-aligned partition — in any order — reproduces Signature(members)
  /// bit for bit (the sharded inverted-index build relies on this).
  void AccumulateSignature(const HybridBitset& members, size_t word_begin,
                           size_t word_end, std::vector<uint64_t>* sig) const;

  /// Signatures of every group in the store, sharded across `pool` when
  /// non-null (groups are independent, so the parallel result is
  /// byte-identical to the serial one).
  std::vector<std::vector<uint64_t>> Signatures(const mining::GroupStore& store,
                                                ThreadPool* pool = nullptr) const;

  /// True iff `sig` is the all-sentinel signature of an empty set.
  static bool IsEmptySignature(const std::vector<uint64_t>& sig);

  /// Fraction of agreeing components — an unbiased Jaccard estimate.
  /// Sentinel components (empty sets) never count as agreement, so two empty
  /// groups estimate 0, matching |∅ ∩ ∅| = 0 shared members.
  static double EstimateJaccard(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b);

 private:
  std::vector<uint64_t> salts_;
};

/// Banded LSH over signatures: groups whose signature agrees on all rows of
/// at least one band become candidate pairs. `bands` must divide the
/// signature length, and every signature must have the same length (checked;
/// ragged input previously read out of bounds). Empty-set signatures are
/// skipped — an empty group shares no member with anything, so it belongs in
/// no bucket. Pairs are returned deduplicated, each (i < j), in ascending
/// encoded order. `pool`, when non-null, shards the banding; the result is
/// byte-identical to the serial one (the final sort canonicalizes order).
std::vector<std::pair<uint32_t, uint32_t>> LshCandidatePairs(
    const std::vector<std::vector<uint64_t>>& signatures, size_t bands,
    ThreadPool* pool = nullptr);

}  // namespace vexus::index
