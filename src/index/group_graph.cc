#include "index/group_graph.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace vexus::index {

GroupGraph GroupGraph::FromIndex(const InvertedIndex& index) {
  GroupGraph g;
  size_t n = index.num_groups();
  g.adjacency_.resize(n);
  for (mining::GroupId a = 0; a < n; ++a) {
    for (const Neighbor& nb : index.Neighbors(a)) {
      if (nb.similarity <= 0) continue;
      g.adjacency_[a].push_back(Edge{nb.group, nb.similarity});
      g.adjacency_[nb.group].push_back(Edge{a, nb.similarity});
    }
  }
  // Dedup (postings can exist in both directions).
  for (auto& list : g.adjacency_) {
    std::sort(list.begin(), list.end(), [](const Edge& x, const Edge& y) {
      return x.to < y.to;
    });
    list.erase(std::unique(list.begin(), list.end(),
                           [](const Edge& x, const Edge& y) {
                             return x.to == y.to;
                           }),
               list.end());
    g.num_edges_ += list.size();
  }
  g.num_edges_ /= 2;
  return g;
}

const std::vector<GroupGraph::Edge>& GroupGraph::Neighbors(
    mining::GroupId gid) const {
  VEXUS_DCHECK(gid < adjacency_.size());
  return adjacency_[gid];
}

size_t GroupGraph::ConnectedComponents(std::vector<uint32_t>* out) const {
  size_t n = adjacency_.size();
  std::vector<uint32_t> comp(n, UINT32_MAX);
  uint32_t next = 0;
  std::vector<uint32_t> stack;
  for (uint32_t start = 0; start < n; ++start) {
    if (comp[start] != UINT32_MAX) continue;
    comp[start] = next;
    stack.push_back(start);
    while (!stack.empty()) {
      uint32_t v = stack.back();
      stack.pop_back();
      for (const Edge& e : adjacency_[v]) {
        if (comp[e.to] == UINT32_MAX) {
          comp[e.to] = next;
          stack.push_back(e.to);
        }
      }
    }
    ++next;
  }
  if (out != nullptr) *out = std::move(comp);
  return next;
}

double GroupGraph::AverageDegree() const {
  if (adjacency_.empty()) return 0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(adjacency_.size());
}

std::string GroupGraph::Summary() const {
  std::ostringstream os;
  os << "nodes=" << num_nodes() << " edges=" << num_edges()
     << " components=" << ConnectedComponents(nullptr)
     << " avg_degree=" << vexus::FormatDouble(AverageDegree(), 2);
  return os.str();
}

}  // namespace vexus::index
