#include "mining/birch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace vexus::mining {

/// Clustering feature: n points, linear sum LS, scalar squared sum SS.
struct BirchTree::CF {
  size_t n = 0;
  std::vector<double> ls;
  double ss = 0;
  std::vector<data::UserId> members;  // leaf entries only

  explicit CF(size_t dim) : ls(dim, 0.0) {}

  void AddPoint(const std::vector<double>& x, data::UserId user,
                bool keep_member) {
    ++n;
    double s = 0;
    for (size_t i = 0; i < ls.size(); ++i) {
      ls[i] += x[i];
      s += x[i] * x[i];
    }
    ss += s;
    if (keep_member) members.push_back(user);
  }

  void Merge(const CF& other) {
    n += other.n;
    for (size_t i = 0; i < ls.size(); ++i) ls[i] += other.ls[i];
    ss += other.ss;
    members.insert(members.end(), other.members.begin(), other.members.end());
  }

  std::vector<double> Centroid() const {
    std::vector<double> c(ls.size(), 0.0);
    if (n == 0) return c;
    for (size_t i = 0; i < ls.size(); ++i) c[i] = ls[i] / n;
    return c;
  }

  /// Mean distance of points to the centroid: sqrt(SS/n − ‖LS/n‖²).
  double Radius() const {
    if (n == 0) return 0;
    double c2 = 0;
    for (double v : ls) c2 += (v / n) * (v / n);
    double r2 = ss / n - c2;
    return r2 > 0 ? std::sqrt(r2) : 0.0;
  }

  double DistanceTo(const std::vector<double>& x) const {
    double d = 0;
    for (size_t i = 0; i < ls.size(); ++i) {
      double diff = x[i] - ls[i] / std::max<size_t>(n, 1);
      d += diff * diff;
    }
    return std::sqrt(d);
  }

  double CentroidDistance(const CF& other) const {
    double d = 0;
    for (size_t i = 0; i < ls.size(); ++i) {
      double diff = ls[i] / std::max<size_t>(n, 1) -
                    other.ls[i] / std::max<size_t>(other.n, 1);
      d += diff * diff;
    }
    return std::sqrt(d);
  }
};

struct BirchTree::Node {
  bool is_leaf = true;
  std::vector<CF> entries;
  std::vector<std::unique_ptr<Node>> children;  // parallel to entries (internal)
};

BirchTree::BirchTree(size_t dim, Config config)
    : dim_(dim), config_(config), root_(std::make_unique<Node>()) {
  VEXUS_CHECK(dim >= 1);
  VEXUS_CHECK(config_.branching >= 2);
  VEXUS_CHECK(config_.threshold > 0);
}

BirchTree::~BirchTree() = default;

void BirchTree::Insert(const std::vector<double>& x, data::UserId user) {
  VEXUS_CHECK(x.size() == dim_) << "feature dimensionality mismatch";
  ++points_;
  std::unique_ptr<Node> sibling = InsertInto(root_.get(), x, user);
  if (sibling != nullptr) {
    // Root split: grow a new root with the two halves as children.
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    CF left(dim_), right(dim_);
    for (const CF& e : root_->entries) left.Merge(e);
    for (const CF& e : sibling->entries) right.Merge(e);
    // Internal CFs never duplicate member lists (leaves own them).
    left.members.clear();
    right.members.clear();
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    root_ = std::move(new_root);
  }
}

std::unique_ptr<BirchTree::Node> BirchTree::InsertInto(
    Node* node, const std::vector<double>& x, data::UserId user) {
  if (node->is_leaf) {
    // Nearest entry.
    size_t best = SIZE_MAX;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->entries.size(); ++i) {
      double d = node->entries[i].DistanceTo(x);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    if (best != SIZE_MAX) {
      // Try absorbing: radius of the merged entry must stay in threshold.
      CF trial = node->entries[best];
      trial.AddPoint(x, user, /*keep_member=*/false);
      if (trial.Radius() <= config_.threshold) {
        node->entries[best].AddPoint(x, user, /*keep_member=*/true);
        return nullptr;
      }
    }
    CF fresh(dim_);
    fresh.AddPoint(x, user, /*keep_member=*/true);
    node->entries.push_back(std::move(fresh));
    if (node->entries.size() > config_.branching) return SplitNode(node);
    return nullptr;
  }

  // Internal: descend into the child whose CF centroid is nearest.
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->entries.size(); ++i) {
    double d = node->entries[i].DistanceTo(x);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  std::unique_ptr<Node> child_sibling =
      InsertInto(node->children[best].get(), x, user);
  // Refresh the descended entry's CF (cheap: add the point).
  node->entries[best].AddPoint(x, user, /*keep_member=*/false);

  if (child_sibling != nullptr) {
    // Recompute the split child's CF and add the sibling's.
    CF left(dim_), right(dim_);
    for (const CF& e : node->children[best]->entries) left.Merge(e);
    for (const CF& e : child_sibling->entries) right.Merge(e);
    left.members.clear();
    right.members.clear();
    node->entries[best] = std::move(left);
    node->entries.push_back(std::move(right));
    node->children.push_back(std::move(child_sibling));
    if (node->entries.size() > config_.branching) return SplitNode(node);
  }
  return nullptr;
}

std::unique_ptr<BirchTree::Node> BirchTree::SplitNode(Node* node) {
  ++splits_;
  // Seed with the farthest entry pair, then assign each entry to the nearer
  // seed.
  size_t n = node->entries.size();
  size_t seed_a = 0, seed_b = 1;
  double best = -1;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = node->entries[i].CentroidDistance(node->entries[j]);
      if (d > best) {
        best = d;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;

  // Snapshot the seed centroids before entries start moving out of the node
  // (a moved-from CF has an empty LS vector).
  const std::vector<double> centroid_a = node->entries[seed_a].Centroid();
  const std::vector<double> centroid_b = node->entries[seed_b].Centroid();

  std::vector<CF> keep_entries;
  std::vector<std::unique_ptr<Node>> keep_children;
  for (size_t i = 0; i < n; ++i) {
    double da = node->entries[i].DistanceTo(centroid_a);
    double db = node->entries[i].DistanceTo(centroid_b);
    bool to_sibling = (i == seed_b) || (i != seed_a && db < da);
    if (to_sibling) {
      sibling->entries.push_back(std::move(node->entries[i]));
      if (!node->is_leaf) {
        sibling->children.push_back(std::move(node->children[i]));
      }
    } else {
      keep_entries.push_back(std::move(node->entries[i]));
      if (!node->is_leaf) {
        keep_children.push_back(std::move(node->children[i]));
      }
    }
  }
  node->entries = std::move(keep_entries);
  node->children = std::move(keep_children);
  return sibling;
}

std::vector<BirchTree::LeafEntry> BirchTree::LeafEntries() const {
  std::vector<LeafEntry> out;
  // Iterative DFS to avoid exposing Node in the header's implementation.
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf) {
      for (const CF& e : node->entries) {
        LeafEntry le;
        le.n = e.n;
        le.centroid = e.Centroid();
        le.radius = e.Radius();
        le.members = e.members;
        out.push_back(std::move(le));
      }
    } else {
      for (const auto& c : node->children) stack.push_back(c.get());
    }
  }
  return out;
}

BirchTree::Stats BirchTree::ComputeStats() const {
  Stats s;
  s.points = points_;
  s.splits = splits_;
  size_t height = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++height;
    node = node->children.front().get();
  }
  s.height = height;
  s.leaf_entries = LeafEntries().size();
  return s;
}

std::vector<Bitset> BirchTree::Cluster(size_t k, size_t num_users) const {
  std::vector<LeafEntry> leaves = LeafEntries();
  if (leaves.empty()) return {};
  k = std::max<size_t>(1, std::min(k, leaves.size()));

  // Agglomerative merging of leaf entries by weighted centroid distance.
  struct Cluster {
    size_t n;
    std::vector<double> sum;  // LS
    std::vector<data::UserId> members;
    bool alive = true;
  };
  std::vector<Cluster> clusters;
  clusters.reserve(leaves.size());
  for (LeafEntry& le : leaves) {
    Cluster c;
    c.n = le.n;
    c.sum.assign(le.centroid.size(), 0.0);
    for (size_t i = 0; i < le.centroid.size(); ++i) {
      c.sum[i] = le.centroid[i] * le.n;
    }
    c.members = std::move(le.members);
    clusters.push_back(std::move(c));
  }

  auto dist = [](const Cluster& a, const Cluster& b) {
    double d = 0;
    for (size_t i = 0; i < a.sum.size(); ++i) {
      double diff = a.sum[i] / a.n - b.sum[i] / b.n;
      d += diff * diff;
    }
    return d;
  };

  size_t alive = clusters.size();
  while (alive > k) {
    double best = std::numeric_limits<double>::infinity();
    size_t bi = SIZE_MAX, bj = SIZE_MAX;
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (!clusters[i].alive) continue;
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        if (!clusters[j].alive) continue;
        double d = dist(clusters[i], clusters[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    if (bi == SIZE_MAX) break;
    Cluster& a = clusters[bi];
    Cluster& b = clusters[bj];
    a.n += b.n;
    for (size_t i = 0; i < a.sum.size(); ++i) a.sum[i] += b.sum[i];
    a.members.insert(a.members.end(), b.members.begin(), b.members.end());
    b.alive = false;
    b.members.clear();
    --alive;
  }

  std::vector<Bitset> out;
  for (const Cluster& c : clusters) {
    if (!c.alive) continue;
    Bitset b(num_users);
    for (data::UserId u : c.members) {
      if (u < num_users) b.Set(u);
    }
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace vexus::mining
