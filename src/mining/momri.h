// α-MOMRI — multi-objective group-set discovery (Omidvar-Tehrani, Amer-Yahia,
// Dutot, Trystram, PKDD 2016), the paper's alternative offline discovery
// algorithm [13].
//
// Unlike LCM (which enumerates *all* closed groups), MOMRI searches for
// *sets of k groups* that are Pareto-optimal under multiple objectives —
// here coverage (fraction of all users inside the set) and diversity
// (1 − mean pairwise Jaccard). Exact multi-objective search is exponential;
// α-approximation keeps only solutions not α-dominated (x α-dominates y when
// (1+α)·x ≥ y component-wise), which bounds the frontier width while
// guaranteeing every exact-Pareto solution is within factor (1+α) of a kept
// one. The search is level-wise: extend every frontier solution by one
// candidate group, re-prune, repeat k times.
#pragma once

#include <cstdint>
#include <vector>

#include "mining/group.h"

namespace vexus::mining {

class MomriMiner {
 public:
  struct Config {
    /// Groups per solution (the paper shows k ≤ 7 to the explorer).
    size_t k = 5;
    /// Approximation slack; larger α → smaller frontier, faster, coarser.
    double alpha = 0.05;
    /// Candidate pool: the largest `max_candidates` groups are considered
    /// (0 = all groups in the store).
    size_t max_candidates = 200;
    /// Hard cap on frontier width per level (keeps worst case bounded even
    /// for tiny α).
    size_t max_frontier = 128;
  };

  /// One k-group solution with its objective vector.
  struct Solution {
    std::vector<GroupId> groups;
    double coverage = 0.0;   // |∪ members| / |U|
    double diversity = 0.0;  // 1 − mean pairwise Jaccard (1.0 for singletons)
  };

  MomriMiner(const GroupStore* store, Config config);

  /// Returns the α-approximate Pareto frontier of k-group solutions, sorted
  /// by decreasing coverage.
  std::vector<Solution> Mine() const;

  /// True iff a α-dominates b on (coverage, diversity).
  static bool AlphaDominates(const Solution& a, const Solution& b,
                             double alpha);

 private:
  const GroupStore* store_;
  Config config_;
};

}  // namespace vexus::mining
