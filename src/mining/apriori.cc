#include "mining/apriori.h"

#include <algorithm>

#include "common/logging.h"

namespace vexus::mining {

namespace {

/// A candidate itemset at the current level with its extent.
struct Node {
  std::vector<DescriptorId> items;  // ascending
  Bitset extent;
};

}  // namespace

AprioriMiner::AprioriMiner(const DescriptorCatalog* catalog, Config config)
    : catalog_(catalog), config_(config) {
  VEXUS_CHECK(catalog != nullptr);
  VEXUS_CHECK(config_.min_support >= 1);
}

AprioriMiner::Stats AprioriMiner::Mine(GroupStore* store) {
  Stats stats;
  auto emit = [&](const Node& node) {
    ++stats.frequent_itemsets;
    if (store == nullptr) return;
    if (config_.max_groups != 0 &&
        stats.groups_emitted >= config_.max_groups) {
      stats.truncated = true;
      return;
    }
    std::vector<Descriptor> desc;
    desc.reserve(node.items.size());
    for (DescriptorId d : node.items) desc.push_back(catalog_->descriptor(d));
    store->Add(UserGroup(std::move(desc), node.extent));
    ++stats.groups_emitted;
  };

  // Level 1.
  std::vector<Node> level;
  for (DescriptorId d = 0; d < catalog_->size(); ++d) {
    ++stats.candidates_generated;
    if (catalog_->Support(d) >= config_.min_support) {
      Node n{{d}, catalog_->UserSet(d)};
      emit(n);
      level.push_back(std::move(n));
    }
  }

  // Levels 2..max_description: join frequent k-sets sharing a (k-1)-prefix.
  for (size_t k = 2; k <= config_.max_description && level.size() > 1; ++k) {
    std::vector<Node> next;
    for (size_t a = 0; a < level.size(); ++a) {
      for (size_t b = a + 1; b < level.size(); ++b) {
        const auto& ia = level[a].items;
        const auto& ib = level[b].items;
        // Join condition: identical prefix, distinct last items. `level` is
        // lexicographically ordered by construction, so once prefixes
        // diverge, later b's diverge too.
        if (!std::equal(ia.begin(), ia.end() - 1, ib.begin())) break;
        ++stats.candidates_generated;
        Bitset extent = level[a].extent & level[b].extent;
        if (extent.Count() < config_.min_support) continue;
        std::vector<DescriptorId> items = ia;
        items.push_back(ib.back());
        // Apriori prune: all (k-1)-subsets must be frequent. The join
        // guarantees two of them; with bitset extents the direct support
        // count above already subsumes the rest at our scales, so the
        // classic subset check is skipped (it is an optimization, not a
        // correctness requirement, when supports are counted exactly).
        Node n{std::move(items), std::move(extent)};
        emit(n);
        next.push_back(std::move(n));
      }
    }
    level = std::move(next);
  }
  return stats;
}

}  // namespace vexus::mining
