#include "mining/discovery.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace vexus::mining {

std::vector<std::vector<double>> BuildFeatureVectors(
    const data::Dataset& dataset, std::vector<std::string>* feature_names,
    size_t max_onehot) {
  const data::Schema& schema = dataset.schema();
  const data::UserTable& users = dataset.users();
  size_t n = dataset.num_users();

  struct Column {
    data::AttributeId attr;
    bool numeric;
    data::ValueId value;  // one-hot target for categorical
    double mean = 0, stddev = 1;
  };
  std::vector<Column> cols;
  if (feature_names != nullptr) feature_names->clear();

  for (data::AttributeId a = 0; a < schema.num_attributes(); ++a) {
    const data::Attribute& attr = schema.attribute(a);
    if (attr.kind() == data::AttributeKind::kNumeric) {
      // Standardized raw numeric column.
      double sum = 0, sum2 = 0;
      size_t cnt = 0;
      for (data::UserId u = 0; u < n; ++u) {
        double v = users.Numeric(u, a);
        if (!std::isnan(v)) {
          sum += v;
          sum2 += v * v;
          ++cnt;
        }
      }
      Column c{a, true, 0, 0, 1};
      if (cnt > 0) {
        c.mean = sum / cnt;
        double var = sum2 / cnt - c.mean * c.mean;
        c.stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
      }
      cols.push_back(c);
      if (feature_names != nullptr) feature_names->push_back(attr.name());
    } else {
      if (attr.values().size() > max_onehot) continue;
      for (data::ValueId v = 0; v < attr.values().size(); ++v) {
        cols.push_back(Column{a, false, v, 0, 1});
        if (feature_names != nullptr) {
          feature_names->push_back(attr.name() + "=" + attr.values().Name(v));
        }
      }
    }
  }

  std::vector<std::vector<double>> rows(n,
                                        std::vector<double>(cols.size(), 0.0));
  for (data::UserId u = 0; u < n; ++u) {
    for (size_t c = 0; c < cols.size(); ++c) {
      const Column& col = cols[c];
      if (col.numeric) {
        double v = users.Numeric(u, col.attr);
        rows[u][c] = std::isnan(v) ? 0.0 : (v - col.mean) / col.stddev;
      } else {
        rows[u][c] = users.Value(u, col.attr) == col.value ? 1.0 : 0.0;
      }
    }
  }
  return rows;
}

std::vector<Descriptor> LabelCluster(const data::Dataset& dataset,
                                     const Bitset& members,
                                     double min_purity) {
  std::vector<Descriptor> out;
  size_t m = members.Count();
  if (m == 0) return out;
  const data::Schema& schema = dataset.schema();
  for (data::AttributeId a = 0; a < schema.num_attributes(); ++a) {
    const data::Attribute& attr = schema.attribute(a);
    std::vector<size_t> counts(attr.values().size(), 0);
    members.ForEach([&](uint32_t u) {
      data::ValueId v = dataset.users().Value(u, a);
      if (v != data::kNullValue && v < counts.size()) ++counts[v];
    });
    size_t best = 0;
    for (size_t v = 1; v < counts.size(); ++v) {
      if (counts[v] > counts[best]) best = v;
    }
    if (!counts.empty() &&
        static_cast<double>(counts[best]) / m >= min_purity) {
      out.push_back(Descriptor{a, static_cast<data::ValueId>(best)});
    }
  }
  return out;
}

Result<DiscoveryResult> DiscoverGroups(const data::Dataset& dataset,
                                       const DiscoveryOptions& options) {
  if (dataset.num_users() == 0) {
    return Status::InvalidArgument("dataset has no users");
  }
  std::vector<data::AttributeId> attrs;
  for (const std::string& name : options.attributes) {
    VEXUS_ASSIGN_OR_RETURN(data::AttributeId id,
                           dataset.schema().Require(name));
    attrs.push_back(id);
  }

  size_t min_support = std::max<size_t>(
      1, static_cast<size_t>(options.min_support_fraction *
                             static_cast<double>(dataset.num_users())));

  Stopwatch watch;
  DescriptorCatalog catalog =
      DescriptorCatalog::Build(dataset, attrs, /*min_count=*/1);
  GroupStore store(dataset.num_users());
  DiscoveryResult result(std::move(store), std::move(catalog));

  // Shared pool for the LCM candidate expansion (also backing MOMRI's
  // candidate pass). The mined store is byte-identical to the serial run,
  // so parallelism here is purely a wall-clock knob.
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads != 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }

  switch (options.algorithm) {
    case DiscoveryAlgorithm::kLcm: {
      LcmMiner::Config cfg;
      cfg.min_support = min_support;
      cfg.max_description = options.max_description;
      cfg.max_groups = options.max_groups;
      cfg.emit_root = options.emit_root;
      cfg.pool = pool.get();
      LcmMiner miner(&result.catalog, cfg);
      result.lcm_stats = miner.Mine(&result.groups);
      break;
    }
    case DiscoveryAlgorithm::kMomri: {
      // MOMRI selects sets from LCM candidates; materialize candidates first.
      LcmMiner::Config cfg;
      cfg.min_support = min_support;
      cfg.max_description = options.max_description;
      cfg.max_groups = options.max_groups;
      cfg.emit_root = false;
      cfg.pool = pool.get();
      GroupStore candidates(dataset.num_users());
      LcmMiner miner(&result.catalog, cfg);
      result.lcm_stats = miner.Mine(&candidates);

      MomriMiner::Config mcfg;
      mcfg.k = options.momri_k;
      mcfg.alpha = options.momri_alpha;
      MomriMiner momri(&candidates, mcfg);
      std::vector<MomriMiner::Solution> frontier = momri.Mine();
      result.momri_frontier = frontier.size();
      for (const auto& sol : frontier) {
        for (GroupId g : sol.groups) {
          result.groups.Add(candidates.group(g));
        }
      }
      if (options.emit_root) {
        Bitset all(dataset.num_users());
        all.SetAll();
        result.groups.Add(UserGroup({}, std::move(all)));
      }
      break;
    }
    case DiscoveryAlgorithm::kStream: {
      StreamMiner::Config scfg;
      scfg.epsilon = options.stream_epsilon;
      scfg.max_itemset = options.max_description;
      StreamMiner miner(scfg);
      // The "stream" replays users in arrival (id) order, one transaction
      // per user — the demographics of each user arriving online.
      for (data::UserId u = 0; u < dataset.num_users(); ++u) {
        miner.AddTransaction(result.catalog.Transaction(u));
      }
      miner.ExportGroups(result.catalog, options.min_support_fraction,
                         &result.groups);
      result.stream_stats = miner.stats();
      if (options.emit_root) {
        Bitset all(dataset.num_users());
        all.SetAll();
        result.groups.Add(UserGroup({}, std::move(all)));
      }
      break;
    }
    case DiscoveryAlgorithm::kBirch: {
      std::vector<std::string> names;
      std::vector<std::vector<double>> features =
          BuildFeatureVectors(dataset, &names);
      if (features.empty() || features[0].empty()) {
        return Status::FailedPrecondition(
            "BIRCH needs at least one usable feature column");
      }
      BirchTree::Config bcfg;
      bcfg.threshold = options.birch_threshold;
      bcfg.branching = options.birch_branching;
      BirchTree tree(features[0].size(), bcfg);
      for (data::UserId u = 0; u < dataset.num_users(); ++u) {
        tree.Insert(features[u], u);
      }
      result.birch_stats = tree.ComputeStats();
      std::vector<Bitset> clusters =
          tree.Cluster(options.birch_clusters, dataset.num_users());
      for (Bitset& members : clusters) {
        if (members.Count() < min_support) continue;
        std::vector<Descriptor> label =
            LabelCluster(dataset, members, options.birch_label_purity);
        result.groups.Add(UserGroup(std::move(label), std::move(members)));
      }
      if (options.emit_root) {
        Bitset all(dataset.num_users());
        all.SetAll();
        result.groups.Add(UserGroup({}, std::move(all)));
      }
      break;
    }
  }

  result.elapsed_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace vexus::mining
