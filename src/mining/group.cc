#include "mining/group.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace vexus::mining {

UserGroup::UserGroup(std::vector<Descriptor> description, Bitset members)
    : UserGroup(std::move(description),
                HybridBitset::FromBitset(std::move(members))) {}

UserGroup::UserGroup(std::vector<Descriptor> description, HybridBitset members)
    : description_(std::move(description)), members_(std::move(members)) {
  std::sort(description_.begin(), description_.end());
  description_.erase(std::unique(description_.begin(), description_.end()),
                     description_.end());
  size_ = members_.Count();
}

std::string UserGroup::DescriptionString(const data::Schema& schema) const {
  if (description_.empty()) return "<cluster>";
  std::string out;
  for (size_t i = 0; i < description_.size(); ++i) {
    if (i > 0) out += " ∧ ";
    const data::Attribute& attr = schema.attribute(description_[i].attribute);
    out += attr.name();
    out += "=";
    out += attr.ValueName(description_[i].value);
  }
  return out;
}

uint64_t UserGroup::DescriptionHash() const {
  uint64_t h = 0x5851f42d4c957f2dULL;
  for (const Descriptor& d : description_) {
    h = HashCombine(h, (static_cast<uint64_t>(d.attribute) << 32) | d.value);
  }
  return h;
}

bool UserGroup::DescriptionIsPrefixOf(const UserGroup& other) const {
  // Both descriptions are sorted; subset test by merge walk.
  size_t j = 0;
  for (const Descriptor& d : description_) {
    while (j < other.description_.size() && other.description_[j] < d) ++j;
    if (j == other.description_.size() || !(other.description_[j] == d)) {
      return false;
    }
  }
  return true;
}

GroupId GroupStore::Add(UserGroup group) {
  uint64_t h = group.DescriptionHash();
  auto it = hash_index_.find(h);
  if (it != hash_index_.end()) {
    for (GroupId id : it->second) {
      // Dedup requires identical description AND extent: clustering miners
      // (BIRCH) can produce distinct clusters that share a label.
      if (groups_[id].description() == group.description() &&
          groups_[id].members() == group.members()) {
        return id;
      }
    }
  }
  GroupId id = static_cast<GroupId>(groups_.size());
  VEXUS_DCHECK(group.members().size() == num_users_)
      << "group universe mismatch";
  groups_.push_back(std::move(group));
  hash_index_[h].push_back(id);
  return id;
}

const UserGroup& GroupStore::group(GroupId id) const {
  VEXUS_DCHECK(id < groups_.size());
  return groups_[id];
}

std::vector<GroupId> GroupStore::GroupsOfUser(data::UserId u) const {
  std::vector<GroupId> out;
  for (GroupId id = 0; id < groups_.size(); ++id) {
    if (groups_[id].ContainsUser(u)) out.push_back(id);
  }
  return out;
}

size_t GroupStore::MemoryBytes() const {
  size_t total = 0;
  for (const auto& g : groups_) total += g.members().MemoryBytes();
  return total;
}

}  // namespace vexus::mining
