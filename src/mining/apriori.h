// Apriori (Agrawal & Srikant) — the classical level-wise frequent-itemset
// baseline. VEXUS itself uses closed mining (LCM); Apriori is implemented to
// quantify the group-space explosion argument of §I (experiment E6): the
// number of *all* frequent conjunctions versus closed ones.
#pragma once

#include <cstdint>
#include <vector>

#include "mining/descriptor_catalog.h"
#include "mining/group.h"

namespace vexus::mining {

class AprioriMiner {
 public:
  struct Config {
    size_t min_support = 2;
    size_t max_description = 4;
    /// Emission cap (0 = unlimited). Counting continues past the cap so the
    /// explosion is still measured; only group materialization stops.
    size_t max_groups = 500000;
  };

  struct Stats {
    size_t frequent_itemsets = 0;   // across all levels (excl. empty set)
    size_t candidates_generated = 0;
    size_t groups_emitted = 0;
    bool truncated = false;
  };

  AprioriMiner(const DescriptorCatalog* catalog, Config config);

  /// Mines frequent itemsets level by level. When `store` is non-null,
  /// materializes each frequent itemset as a group (up to max_groups).
  Stats Mine(GroupStore* store);

 private:
  const DescriptorCatalog* catalog_;
  Config config_;
};

}  // namespace vexus::mining
