#include "mining/lcm.h"

#include <algorithm>

#include "common/logging.h"

namespace vexus::mining {

LcmMiner::LcmMiner(const DescriptorCatalog* catalog, Config config)
    : catalog_(catalog), config_(config) {
  VEXUS_CHECK(catalog != nullptr);
  VEXUS_CHECK(config_.min_support >= 1);
}

std::vector<DescriptorId> LcmMiner::Closure(const Bitset& extent) const {
  std::vector<DescriptorId> out;
  for (DescriptorId d = 0; d < catalog_->size(); ++d) {
    if (extent.IsSubsetOf(catalog_->UserSet(d))) out.push_back(d);
  }
  return out;
}

UserGroup LcmMiner::MakeGroup(const std::vector<DescriptorId>& items,
                              Bitset extent) const {
  std::vector<Descriptor> desc;
  desc.reserve(items.size());
  for (DescriptorId d : items) desc.push_back(catalog_->descriptor(d));
  return UserGroup(std::move(desc), std::move(extent));
}

LcmMiner::Stats LcmMiner::Mine(GroupStore* store) {
  stats_ = Stats{};
  stop_ = false;
  VEXUS_CHECK(store->num_users() == catalog_->num_users())
      << "store universe mismatch";

  Bitset extent(catalog_->num_users());
  extent.SetAll();
  if (extent.Count() < config_.min_support) return stats_;

  std::vector<DescriptorId> closed = Closure(extent);
  if (closed.size() <= config_.max_description &&
      (config_.emit_root || !closed.empty())) {
    store->Add(MakeGroup(closed, extent));
    ++stats_.groups_emitted;
  }
  if (closed.size() <= config_.max_description) {
    Recurse(closed, extent, /*core_index=*/0, store);
  }
  return stats_;
}

void LcmMiner::Recurse(const std::vector<DescriptorId>& closed_set,
                       const Bitset& extent, size_t core_index,
                       GroupStore* store) {
  const size_t n = catalog_->size();
  for (size_t i = core_index; i < n; ++i) {
    if (stop_) return;
    DescriptorId item = static_cast<DescriptorId>(i);
    if (std::binary_search(closed_set.begin(), closed_set.end(), item)) {
      continue;  // already implied by the closure
    }
    ++stats_.nodes_explored;

    Bitset new_extent = extent & catalog_->UserSet(item);
    if (new_extent.Count() < config_.min_support) {
      ++stats_.pruned_support;
      continue;
    }

    std::vector<DescriptorId> q = Closure(new_extent);
    // Prefix-preserving check: every element of clo(P ∪ {item}) smaller than
    // `item` must already be in P — otherwise this closed set is generated
    // from a different (canonical) parent and must be skipped here.
    bool prefix_ok = true;
    for (DescriptorId d : q) {
      if (d >= item) break;  // q is ascending
      if (!std::binary_search(closed_set.begin(), closed_set.end(), d)) {
        prefix_ok = false;
        break;
      }
    }
    if (!prefix_ok) {
      ++stats_.pruned_prefix;
      continue;
    }

    if (q.size() > config_.max_description) {
      // Closures only grow down a branch; safe to cut the whole subtree.
      continue;
    }

    store->Add(MakeGroup(q, new_extent));
    ++stats_.groups_emitted;
    if (config_.max_groups != 0 &&
        stats_.groups_emitted >= config_.max_groups) {
      stats_.truncated = true;
      stop_ = true;
      return;
    }
    Recurse(q, new_extent, i + 1, store);
  }
}

}  // namespace vexus::mining
