#include "mining/lcm.h"

#include <algorithm>

#include "common/logging.h"

namespace vexus::mining {

LcmMiner::LcmMiner(const DescriptorCatalog* catalog, Config config)
    : catalog_(catalog), config_(config) {
  VEXUS_CHECK(catalog != nullptr);
  VEXUS_CHECK(config_.min_support >= 1);
}

std::vector<DescriptorId> LcmMiner::Closure(const Bitset& extent) const {
  std::vector<DescriptorId> out;
  for (DescriptorId d = 0; d < catalog_->size(); ++d) {
    if (extent.IsSubsetOf(catalog_->UserSet(d))) out.push_back(d);
  }
  return out;
}

UserGroup LcmMiner::MakeGroup(const std::vector<DescriptorId>& items,
                              Bitset extent) const {
  std::vector<Descriptor> desc;
  desc.reserve(items.size());
  for (DescriptorId d : items) desc.push_back(catalog_->descriptor(d));
  return UserGroup(std::move(desc), std::move(extent));
}

LcmMiner::Stats LcmMiner::Mine(GroupStore* store) {
  stats_ = Stats{};
  VEXUS_CHECK(store->num_users() == catalog_->num_users())
      << "store universe mismatch";

  Bitset extent(catalog_->num_users());
  extent.SetAll();
  if (extent.Count() < config_.min_support) return stats_;

  std::vector<DescriptorId> closed = Closure(extent);
  size_t root_emitted = 0;
  if (closed.size() <= config_.max_description &&
      (config_.emit_root || !closed.empty())) {
    store->Add(MakeGroup(closed, extent));
    root_emitted = 1;
  }
  stats_.groups_emitted = root_emitted;
  if (closed.size() > config_.max_description) return stats_;

  const size_t n = catalog_->size();
  // Branch budget: remaining emissions under the global cap. Every branch
  // gets the full remainder (a branch cannot know how much earlier branches
  // will use); the fold below applies the exact global cap.
  size_t budget = std::numeric_limits<size_t>::max();
  if (config_.max_groups != 0) {
    budget = config_.max_groups > root_emitted
                 ? config_.max_groups - root_emitted
                 : 0;
  }

  std::vector<Branch> branches;
  if (config_.pool == nullptr || n < 2) {
    // Serial: one shared branch context walks the top-level items in order,
    // carrying the running budget — the exploration path (and therefore
    // every counter) is exactly the pre-parallel depth-first search.
    branches.resize(1);
    branches[0].budget = budget;
    for (size_t i = 0; i < n && !branches[0].stop; ++i) {
      Expand(i, closed, extent, &branches[0]);
    }
  } else {
    // Parallel: ppc-ext subtrees under distinct top-level items are
    // disjoint, so each mines into its own slot. Chunk size 1 because
    // branch costs are wildly skewed (small item ids own large subtrees).
    branches.resize(n);
    for (Branch& b : branches) b.budget = budget;
    config_.pool->ParallelForChunked(
        n, /*chunk_size=*/1, [&](size_t, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            Expand(i, closed, extent, &branches[i]);
          }
        });
  }

  // Fold in item order. Serial emission order is root, then the subtree of
  // each top-level item in DFS pre-order — which is exactly slot order here,
  // so applying the cap during the fold reproduces the serial prefix
  // byte-identically.
  size_t emitted = root_emitted;
  for (Branch& b : branches) {
    stats_.nodes_explored += b.stats.nodes_explored;
    stats_.pruned_support += b.stats.pruned_support;
    stats_.pruned_prefix += b.stats.pruned_prefix;
    if (stats_.truncated) continue;  // keep summing exploration counters
    for (UserGroup& g : b.groups) {
      store->Add(std::move(g));
      ++emitted;
      if (config_.max_groups != 0 && emitted >= config_.max_groups) {
        stats_.truncated = true;
        break;
      }
    }
  }
  stats_.groups_emitted = emitted;
  return stats_;
}

void LcmMiner::Expand(size_t i, const std::vector<DescriptorId>& closed_set,
                      const Bitset& extent, Branch* branch) const {
  DescriptorId item = static_cast<DescriptorId>(i);
  if (std::binary_search(closed_set.begin(), closed_set.end(), item)) {
    return;  // already implied by the closure
  }
  ++branch->stats.nodes_explored;

  Bitset new_extent = extent & catalog_->UserSet(item);
  if (new_extent.Count() < config_.min_support) {
    ++branch->stats.pruned_support;
    return;
  }

  std::vector<DescriptorId> q = Closure(new_extent);
  // Prefix-preserving check: every element of clo(P ∪ {item}) smaller than
  // `item` must already be in P — otherwise this closed set is generated
  // from a different (canonical) parent and must be skipped here.
  bool prefix_ok = true;
  for (DescriptorId d : q) {
    if (d >= item) break;  // q is ascending
    if (!std::binary_search(closed_set.begin(), closed_set.end(), d)) {
      prefix_ok = false;
      break;
    }
  }
  if (!prefix_ok) {
    ++branch->stats.pruned_prefix;
    return;
  }

  if (q.size() > config_.max_description) {
    // Closures only grow down a branch; safe to cut the whole subtree.
    return;
  }

  branch->groups.push_back(MakeGroup(q, new_extent));
  ++branch->stats.groups_emitted;
  if (branch->groups.size() >= branch->budget) {
    branch->stop = true;
    return;
  }
  Recurse(q, new_extent, i + 1, branch);
}

void LcmMiner::Recurse(const std::vector<DescriptorId>& closed_set,
                       const Bitset& extent, size_t core_index,
                       Branch* branch) const {
  const size_t n = catalog_->size();
  for (size_t i = core_index; i < n; ++i) {
    if (branch->stop) return;
    Expand(i, closed_set, extent, branch);
  }
}

}  // namespace vexus::mining
