// LCM — Linear-time Closed itemset Miner (Uno, Asai, Uchida, Arimura,
// FIMI'03), the paper's default offline group-discovery algorithm [16].
//
// Mines all *closed* frequent descriptor sets: a group description is closed
// when no further descriptor can be added without shrinking its member set,
// so every distinct member set is emitted exactly once with its most
// specific description. Closedness is what keeps the group space tractable —
// experiment E6 measures the gap versus raw conjunctions / Apriori output.
//
// Implementation: depth-first prefix-preserving closure extension (ppc-ext)
// over vertical bitmaps. For itemset P with extent T(P):
//   clo(P)  = { i : T(P) ⊆ T(i) }                       (closure)
//   extend P with i > core(P): Q = clo(P ∪ {i}) is emitted iff Q∩{0..i-1} ==
//   P∩{0..i-1} (prefix preserved) — guaranteeing each closed set is reached
//   from exactly one parent, with no duplicate-detection table.
//
// Parallel mining: ppc-ext guarantees each closed set is reached from exactly
// one parent, so the subtrees rooted at the top-level items are disjoint and
// mine independently. With Config::pool set, each top-level branch emits into
// its own slot and the slots fold in item order with the max_groups cap
// applied at the fold — the stored groups are byte-identical to the serial
// run (tested in lcm_test). Exploration counters may overcount relative to a
// truncated serial run, because branches cannot observe each other's emission
// counts mid-flight.
#pragma once

#include <cstdint>
#include <limits>

#include "common/thread_pool.h"
#include "mining/descriptor_catalog.h"
#include "mining/group.h"

namespace vexus::mining {

class LcmMiner {
 public:
  struct Config {
    /// Minimum extent size (absolute number of users).
    size_t min_support = 2;
    /// Maximum description length (conjuncts); the paper's groups are short
    /// human-readable conjunctions.
    size_t max_description = 4;
    /// Hard cap on emitted groups (safety valve; 0 = unlimited).
    size_t max_groups = 500000;
    /// Also emit the root group (empty description, all users) — the natural
    /// start point of an exploration session.
    bool emit_root = true;
    /// Optional pool: shards the disjoint top-level ppc-ext branches across
    /// workers. The stored groups are byte-identical to the serial run; see
    /// the file comment for the fold discipline and the stats caveat.
    ThreadPool* pool = nullptr;
  };

  struct Stats {
    size_t nodes_explored = 0;
    size_t groups_emitted = 0;
    size_t pruned_support = 0;
    size_t pruned_prefix = 0;
    bool truncated = false;  // hit max_groups
  };

  LcmMiner(const DescriptorCatalog* catalog, Config config);

  /// Runs the search, appending groups to `store` (which must share the
  /// catalog's user universe). Returns mining statistics.
  Stats Mine(GroupStore* store);

 private:
  /// Emission buffer for one top-level subtree: groups in DFS pre-order plus
  /// the exploration counters accumulated along the way. `budget` bounds the
  /// local emission count (checked after each emission, matching the global
  /// cap's post-Add semantics); SIZE_MAX means unlimited.
  struct Branch {
    std::vector<UserGroup> groups;
    Stats stats;
    size_t budget = std::numeric_limits<size_t>::max();
    bool stop = false;
  };

  /// One ppc-ext attempt: tries to extend (closed_set, extent) with item `i`
  /// and, on success, emits the new closed group into `branch` and recurses
  /// over items > i. Const — safe to run concurrently on disjoint branches.
  void Expand(size_t i, const std::vector<DescriptorId>& closed_set,
              const Bitset& extent, Branch* branch) const;

  void Recurse(const std::vector<DescriptorId>& closed_set,
               const Bitset& extent, size_t core_index, Branch* branch) const;

  /// clo(extent): every descriptor whose user set contains `extent`.
  std::vector<DescriptorId> Closure(const Bitset& extent) const;

  UserGroup MakeGroup(const std::vector<DescriptorId>& items,
                      Bitset extent) const;

  const DescriptorCatalog* catalog_;
  Config config_;
  Stats stats_;
};

}  // namespace vexus::mining
