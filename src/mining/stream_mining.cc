#include "mining/stream_mining.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vexus::mining {

StreamMiner::StreamMiner(Config config) : config_(config) {
  VEXUS_CHECK(config_.epsilon > 0 && config_.epsilon < 1);
  VEXUS_CHECK(config_.max_itemset >= 1);
  bucket_width_ = static_cast<size_t>(std::ceil(1.0 / config_.epsilon));
}

void StreamMiner::AddTransaction(const std::vector<DescriptorId>& items) {
  VEXUS_DCHECK(std::is_sorted(items.begin(), items.end()));
  ++stats_.transactions;

  // Enumerate subsets of the transaction up to max_itemset, smallest first,
  // so the online Apriori gate ("insert only if all (k-1)-subsets tracked")
  // sees subsets before supersets.
  std::vector<std::vector<DescriptorId>> current;  // level k-1 present sets
  for (DescriptorId d : items) {
    std::vector<DescriptorId> single{d};
    auto it = lattice_.find(single);
    if (it != lattice_.end()) {
      ++it->second.count;
    } else if (lattice_.size() < config_.max_entries) {
      lattice_[single] = Entry{1, current_bucket_ - 1};
    }
    current.push_back(std::move(single));
  }

  for (size_t k = 2; k <= config_.max_itemset && !current.empty(); ++k) {
    std::vector<std::vector<DescriptorId>> next;
    // Extend each tracked (k-1)-set with later items of the transaction.
    for (const auto& base : current) {
      if (lattice_.find(base) == lattice_.end()) continue;  // gate
      auto after = std::upper_bound(items.begin(), items.end(), base.back());
      for (auto it = after; it != items.end(); ++it) {
        std::vector<DescriptorId> ext = base;
        ext.push_back(*it);
        auto lit = lattice_.find(ext);
        if (lit != lattice_.end()) {
          ++lit->second.count;
          next.push_back(std::move(ext));
        } else if (lattice_.size() < config_.max_entries) {
          // Online Apriori gate: every (k-1)-subset must currently be
          // tracked before a new k-set may enter the lattice.
          bool all_tracked = true;
          std::vector<DescriptorId> sub(ext.begin(), ext.end() - 1);
          for (size_t skip = 0; skip + 1 < ext.size() && all_tracked;
               ++skip) {
            sub.assign(ext.begin(), ext.end());
            sub.erase(sub.begin() + static_cast<long>(skip));
            all_tracked = lattice_.find(sub) != lattice_.end();
          }
          if (all_tracked) {
            lattice_[ext] = Entry{1, current_bucket_ - 1};
            next.push_back(std::move(ext));
          }
        }
      }
    }
    current = std::move(next);
  }

  stats_.lattice_entries = lattice_.size();
  stats_.peak_entries = std::max(stats_.peak_entries, lattice_.size());

  if (stats_.transactions % bucket_width_ == 0) {
    Prune();
    ++current_bucket_;
  }
}

void StreamMiner::Prune() {
  for (auto it = lattice_.begin(); it != lattice_.end();) {
    if (it->second.count + it->second.max_missed <= current_bucket_) {
      it = lattice_.erase(it);
      ++stats_.evictions;
    } else {
      ++it;
    }
  }
  stats_.lattice_entries = lattice_.size();
}

std::vector<StreamMiner::FrequentItemset> StreamMiner::Frequent(
    double support_fraction) const {
  std::vector<FrequentItemset> out;
  double threshold =
      (support_fraction - config_.epsilon) * stats_.transactions;
  for (const auto& [items, entry] : lattice_) {
    if (static_cast<double>(entry.count) >= threshold) {
      out.push_back(FrequentItemset{items, entry.count});
    }
  }
  return out;
}

size_t StreamMiner::EstimatedCount(
    const std::vector<DescriptorId>& items) const {
  auto it = lattice_.find(items);
  return it == lattice_.end() ? 0 : it->second.count;
}

void StreamMiner::ExportGroups(const DescriptorCatalog& catalog,
                               double support_fraction,
                               GroupStore* store) const {
  for (const FrequentItemset& fi : Frequent(support_fraction)) {
    std::vector<Descriptor> desc;
    Bitset extent(catalog.num_users());
    extent.SetAll();
    bool valid = true;
    for (DescriptorId d : fi.items) {
      if (d >= catalog.size()) {
        valid = false;
        break;
      }
      desc.push_back(catalog.descriptor(d));
      extent &= catalog.UserSet(d);
    }
    if (valid && !extent.None()) {
      store->Add(UserGroup(std::move(desc), std::move(extent)));
    }
  }
}

}  // namespace vexus::mining
