#include "mining/descriptor_catalog.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace vexus::mining {

DescriptorCatalog DescriptorCatalog::Build(
    const data::Dataset& dataset,
    const std::vector<data::AttributeId>& attributes, size_t min_count) {
  DescriptorCatalog cat;
  cat.num_users_ = dataset.num_users();

  std::vector<data::AttributeId> attrs = attributes;
  if (attrs.empty()) {
    for (data::AttributeId a = 0; a < dataset.schema().num_attributes(); ++a) {
      attrs.push_back(a);
    }
  }

  struct Candidate {
    Descriptor desc;
    Bitset users;
    size_t support;
  };
  std::vector<Candidate> candidates;

  const data::UserTable& users = dataset.users();
  for (data::AttributeId a : attrs) {
    const data::Attribute& attr = dataset.schema().attribute(a);
    size_t n_values = attr.values().size();
    // One scan of the column fills all value bitsets for the attribute.
    std::vector<Bitset> sets(n_values);
    for (auto& b : sets) b.Resize(cat.num_users_);
    for (data::UserId u = 0; u < cat.num_users_; ++u) {
      data::ValueId v = users.Value(u, a);
      if (v != data::kNullValue && v < n_values) sets[v].Set(u);
    }
    for (data::ValueId v = 0; v < n_values; ++v) {
      size_t support = sets[v].Count();
      if (support >= min_count && support > 0) {
        candidates.push_back(
            Candidate{Descriptor{a, v}, std::move(sets[v]), support});
      }
    }
  }

  // Ascending support: LCM's preferred item order.
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&candidates](size_t x, size_t y) {
    if (candidates[x].support != candidates[y].support) {
      return candidates[x].support < candidates[y].support;
    }
    return candidates[x].desc < candidates[y].desc;  // deterministic ties
  });

  for (size_t rank = 0; rank < order.size(); ++rank) {
    Candidate& c = candidates[order[rank]];
    DescriptorId id = static_cast<DescriptorId>(cat.descriptors_.size());
    cat.descriptors_.push_back(c.desc);
    cat.user_sets_.push_back(std::move(c.users));
    cat.supports_.push_back(c.support);
    cat.lookup_[(static_cast<uint64_t>(c.desc.attribute) << 32) |
                c.desc.value] = id;
  }
  return cat;
}

std::optional<DescriptorId> DescriptorCatalog::Find(data::AttributeId a,
                                                    data::ValueId v) const {
  auto it = lookup_.find((static_cast<uint64_t>(a) << 32) | v);
  if (it == lookup_.end()) return std::nullopt;
  return it->second;
}

std::vector<DescriptorId> DescriptorCatalog::Transaction(
    data::UserId u) const {
  std::vector<DescriptorId> out;
  for (DescriptorId d = 0; d < descriptors_.size(); ++d) {
    if (user_sets_[d].Test(u)) out.push_back(d);
  }
  return out;
}

}  // namespace vexus::mining
