#include "mining/momri.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace vexus::mining {

MomriMiner::MomriMiner(const GroupStore* store, Config config)
    : store_(store), config_(config) {
  VEXUS_CHECK(store != nullptr);
  VEXUS_CHECK(config_.k >= 1);
  VEXUS_CHECK(config_.alpha >= 0);
}

bool MomriMiner::AlphaDominates(const Solution& a, const Solution& b,
                                double alpha) {
  double f = 1.0 + alpha;
  bool geq = a.coverage * f >= b.coverage && a.diversity * f >= b.diversity;
  if (alpha > 0) return geq;  // ε-dominance: the slack subsumes strictness
  bool strict = a.coverage > b.coverage || a.diversity > b.diversity;
  return geq && strict;
}

namespace {

/// Objective evaluation for a candidate extension: union bitset is carried
/// incrementally; pairwise similarity sums are carried incrementally too.
struct Partial {
  std::vector<GroupId> groups;
  Bitset covered;       // union of member sets
  double sim_sum = 0;   // sum over unordered pairs of Jaccard
  double coverage = 0;
  double diversity = 1.0;
  /// Rank (in the candidate ordering) of the last added group; extensions
  /// only use strictly larger ranks, so each k-subset is built exactly once.
  size_t last_rank = SIZE_MAX;
};

MomriMiner::Solution ToSolution(const Partial& p) {
  MomriMiner::Solution s;
  s.groups = p.groups;
  s.coverage = p.coverage;
  s.diversity = p.diversity;
  return s;
}

}  // namespace

std::vector<MomriMiner::Solution> MomriMiner::Mine() const {
  const size_t n_users = store_->num_users();
  if (store_->size() == 0 || n_users == 0) return {};

  // Candidate pool: largest groups first (small groups add little coverage;
  // this matches the paper's support-pruned search space).
  std::vector<GroupId> candidates(store_->size());
  std::iota(candidates.begin(), candidates.end(), GroupId{0});
  std::sort(candidates.begin(), candidates.end(),
            [this](GroupId a, GroupId b) {
              return store_->group(a).size() > store_->group(b).size();
            });
  if (config_.max_candidates != 0 &&
      candidates.size() > config_.max_candidates) {
    candidates.resize(config_.max_candidates);
  }

  std::vector<Partial> frontier;
  {
    Partial empty;
    empty.covered.Resize(n_users);
    frontier.push_back(std::move(empty));
  }

  for (size_t level = 0; level < config_.k; ++level) {
    std::vector<Partial> next;
    for (const Partial& p : frontier) {
      size_t start_rank = p.last_rank == SIZE_MAX ? 0 : p.last_rank + 1;
      for (size_t rank = start_rank; rank < candidates.size(); ++rank) {
        GroupId c = candidates[rank];
        const UserGroup& g = store_->group(c);
        Partial q;
        q.groups = p.groups;
        q.groups.push_back(c);
        q.last_rank = rank;
        q.covered = p.covered | g.members();
        q.sim_sum = p.sim_sum;
        for (GroupId prev : p.groups) {
          q.sim_sum += store_->group(prev).members().Jaccard(g.members());
        }
        q.coverage = static_cast<double>(q.covered.Count()) / n_users;
        size_t m = q.groups.size();
        q.diversity =
            m < 2 ? 1.0 : 1.0 - q.sim_sum / (m * (m - 1) / 2.0);
        next.push_back(std::move(q));
      }
    }
    if (next.empty()) break;

    // α-skyline prune. A partial may only be pruned by a dominator whose
    // last_rank is not larger: that dominator can reach every extension the
    // pruned partial could, so no completion is made unreachable by the
    // canonical (rank-ascending) enumeration.
    const bool final_level = (level + 1 == config_.k);
    std::vector<Partial> pruned;
    for (Partial& cand : next) {
      Solution cs = ToSolution(cand);
      bool dominated = false;
      for (const Partial& kept : pruned) {
        if ((final_level || kept.last_rank <= cand.last_rank) &&
            AlphaDominates(ToSolution(kept), cs, config_.alpha)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      // Remove previously kept solutions now dominated by cand.
      std::erase_if(pruned, [&](const Partial& kept) {
        return (final_level || cand.last_rank <= kept.last_rank) &&
               AlphaDominates(cs, ToSolution(kept), config_.alpha);
      });
      pruned.push_back(std::move(cand));
      if (pruned.size() > config_.max_frontier) {
        // Keep the widest spread: sort by coverage and drop the most
        // redundant middle entries.
        std::sort(pruned.begin(), pruned.end(),
                  [](const Partial& a, const Partial& b) {
                    return a.coverage > b.coverage;
                  });
        pruned.resize(config_.max_frontier);
      }
    }
    frontier = std::move(pruned);
  }

  std::vector<Solution> out;
  out.reserve(frontier.size());
  for (const Partial& p : frontier) {
    if (p.groups.size() == config_.k) out.push_back(ToSolution(p));
  }
  std::sort(out.begin(), out.end(), [](const Solution& a, const Solution& b) {
    return a.coverage > b.coverage;
  });
  return out;
}

}  // namespace vexus::mining
