// Group discovery facade — the "User Group Discovery" pre-processing box of
// Fig. 1. The paper: "VEXUS is independent of this process. For user
// datasets, different group discovery algorithms such as LCM and α-MOMRI can
// be used. In case of user data streams, STREAMMINING and BIRCH can be
// employed." This facade exposes all four behind one entry point and
// normalizes their output to a GroupStore + DescriptorCatalog.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "mining/apriori.h"
#include "mining/birch.h"
#include "mining/descriptor_catalog.h"
#include "mining/group.h"
#include "mining/lcm.h"
#include "mining/momri.h"
#include "mining/stream_mining.h"

namespace vexus::mining {

enum class DiscoveryAlgorithm {
  kLcm,     // closed frequent groups (default, dataset mode)
  kMomri,   // α-multi-objective over LCM candidates
  kStream,  // lossy-counting itemsets over the user stream
  kBirch,   // CF-tree clustering over demographic feature vectors
};

struct DiscoveryOptions {
  DiscoveryAlgorithm algorithm = DiscoveryAlgorithm::kLcm;
  /// Support threshold as a fraction of |U| (min 1 user).
  double min_support_fraction = 0.02;
  /// Max conjuncts in a group description.
  size_t max_description = 3;
  /// Emission cap.
  size_t max_groups = 200000;
  /// Attributes to group over (names; empty = all).
  std::vector<std::string> attributes;
  /// Keep the all-users root group as an exploration start point.
  bool emit_root = true;
  /// Worker threads for the LCM/MOMRI candidate expansion (1 = serial,
  /// 0 = hardware concurrency). The mined GroupStore is byte-identical to
  /// the serial run — branches fold deterministically (see mining/lcm.h).
  size_t num_threads = 1;

  // BIRCH parameters.
  size_t birch_clusters = 20;
  double birch_threshold = 1.5;
  size_t birch_branching = 8;
  /// Cluster labels: attribute=value conjuncts whose within-cluster purity
  /// exceeds this fraction.
  double birch_label_purity = 0.6;

  // Stream parameters.
  double stream_epsilon = 0.002;

  // MOMRI parameters.
  size_t momri_k = 5;
  double momri_alpha = 0.05;
};

struct DiscoveryResult {
  GroupStore groups;
  DescriptorCatalog catalog;
  double elapsed_ms = 0;
  /// Algorithm-specific statistics (whichever ran).
  LcmMiner::Stats lcm_stats;
  AprioriMiner::Stats apriori_stats;
  BirchTree::Stats birch_stats;
  StreamMiner::Stats stream_stats;
  size_t momri_frontier = 0;

  DiscoveryResult(GroupStore g, DescriptorCatalog c)
      : groups(std::move(g)), catalog(std::move(c)) {}
};

/// Runs offline group discovery on a dataset. Fails on empty datasets or
/// unknown attribute names.
Result<DiscoveryResult> DiscoverGroups(const data::Dataset& dataset,
                                       const DiscoveryOptions& options);

/// Builds one-hot + standardized-numeric feature vectors for BIRCH / LDA.
/// Categorical attributes with more than `max_onehot` values are skipped.
/// Returns the feature matrix row-per-user and fills `feature_names`.
std::vector<std::vector<double>> BuildFeatureVectors(
    const data::Dataset& dataset, std::vector<std::string>* feature_names,
    size_t max_onehot = 64);

/// Labels a member set with its high-purity attribute=value conjuncts —
/// used to give BIRCH clusters human-readable descriptions like the paper's
/// "engineers in MA who work in NextWorth".
std::vector<Descriptor> LabelCluster(const data::Dataset& dataset,
                                     const Bitset& members, double min_purity);

}  // namespace vexus::mining
