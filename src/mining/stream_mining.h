// STREAMMINING — in-core frequent itemset mining over a data stream (the
// paper's group-discovery option for user-data streams [9], Jin & Agrawal,
// ICDM 2005).
//
// Implementation: Lossy Counting generalized to itemsets. Transactions (one
// per arriving user: their descriptor set) are processed in buckets of width
// ⌈1/ε⌉. A lattice of candidate itemsets keeps (count, max_missed); at every
// bucket boundary entries with count + max_missed ≤ current_bucket are
// evicted. New itemsets enter the lattice only when all their subsets are
// currently tracked (Apriori property applied online — the in-core bound of
// the original algorithm). Guarantees on query(s):
//   * no false negatives for true support ≥ s·N,
//   * reported counts underestimate true counts by at most ε·N.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mining/descriptor_catalog.h"
#include "mining/group.h"

namespace vexus::mining {

class StreamMiner {
 public:
  struct Config {
    /// Error bound ε (fraction of the stream length).
    double epsilon = 0.001;
    /// Maximum itemset size tracked.
    size_t max_itemset = 3;
    /// Safety cap on lattice entries (in-core bound).
    size_t max_entries = 2000000;
  };

  struct Stats {
    size_t transactions = 0;
    size_t lattice_entries = 0;  // current
    size_t evictions = 0;
    size_t peak_entries = 0;
  };

  explicit StreamMiner(Config config);

  /// Feeds one transaction (a user's ascending descriptor ids).
  void AddTransaction(const std::vector<DescriptorId>& items);

  /// All itemsets with estimated support ≥ support_fraction · N
  /// (ε-underestimates; no false negatives at threshold s ≥ ε).
  struct FrequentItemset {
    std::vector<DescriptorId> items;
    size_t count;  // lower bound on the true count
  };
  std::vector<FrequentItemset> Frequent(double support_fraction) const;

  /// Estimated count for an exact itemset (0 when untracked).
  size_t EstimatedCount(const std::vector<DescriptorId>& items) const;

  const Stats& stats() const { return stats_; }

  /// Materializes the current frequent itemsets as user groups, resolving
  /// extents against the catalog (used when the stream has been ingested
  /// into a dataset snapshot).
  void ExportGroups(const DescriptorCatalog& catalog, double support_fraction,
                    GroupStore* store) const;

 private:
  struct Entry {
    size_t count = 0;
    size_t max_missed = 0;  // Δ in Lossy Counting
  };

  /// Key = itemset encoded as sorted vector (map keeps deterministic order).
  using Lattice = std::map<std::vector<DescriptorId>, Entry>;

  void Prune();

  Config config_;
  Stats stats_;
  Lattice lattice_;
  size_t bucket_width_;
  size_t current_bucket_ = 1;
};

}  // namespace vexus::mining
