// UserGroup: the central object of VEXUS — "any set of users with at least
// one demographic or action in common" (§I), i.e. a conjunctive description
// over attribute=value pairs plus the extent (member set) it selects.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/hybrid_bitset.h"
#include "data/schema.h"
#include "data/user_table.h"

namespace vexus::mining {

using GroupId = uint32_t;

/// One attribute=value conjunct of a group description.
struct Descriptor {
  data::AttributeId attribute = 0;
  data::ValueId value = 0;

  friend bool operator==(const Descriptor& a, const Descriptor& b) {
    return a.attribute == b.attribute && a.value == b.value;
  }
  friend bool operator<(const Descriptor& a, const Descriptor& b) {
    if (a.attribute != b.attribute) return a.attribute < b.attribute;
    return a.value < b.value;
  }
};

/// A user group: sorted conjunctive description + member set. Members are
/// held in the density-switched HybridBitset — sparse id array for the
/// typical few-hundred-member group, dense SIMD-kernel bitset above ~1/8
/// density — chosen transparently at construction (common/hybrid_bitset.h).
class UserGroup {
 public:
  UserGroup() = default;
  UserGroup(std::vector<Descriptor> description, Bitset members);
  UserGroup(std::vector<Descriptor> description, HybridBitset members);

  const std::vector<Descriptor>& description() const { return description_; }
  const HybridBitset& members() const { return members_; }
  HybridBitset& mutable_members() { return members_; }

  /// Number of members.
  size_t size() const { return size_; }

  /// Recomputes the cached size after mutating members.
  void RefreshSize() { size_ = members_.Count(); }

  bool ContainsUser(data::UserId u) const { return members_.Test(u); }

  /// Human-readable description, e.g. "gender=female ∧ topic=web search".
  /// Groups with empty descriptions (e.g. BIRCH clusters before labeling)
  /// render as "<cluster>".
  std::string DescriptionString(const data::Schema& schema) const;

  /// 64-bit hash of the description (order-independent since sorted).
  uint64_t DescriptionHash() const;

  /// True if `other` has a superset description (is a refinement of this).
  bool DescriptionIsPrefixOf(const UserGroup& other) const;

 private:
  std::vector<Descriptor> description_;  // sorted, unique
  HybridBitset members_;
  size_t size_ = 0;
};

/// Append-only collection of groups over one user universe, with
/// description-level deduplication.
class GroupStore {
 public:
  explicit GroupStore(size_t num_users) : num_users_(num_users) {}

  /// Adds a group; returns its id. Duplicate descriptions (same hash and
  /// conjuncts) return the existing id.
  GroupId Add(UserGroup group);

  size_t size() const { return groups_.size(); }
  size_t num_users() const { return num_users_; }

  const UserGroup& group(GroupId id) const;
  const std::vector<UserGroup>& groups() const { return groups_; }

  /// Ids of groups containing a user.
  std::vector<GroupId> GroupsOfUser(data::UserId u) const;

  /// Total member-bitset memory (index sizing for experiment E7's report).
  size_t MemoryBytes() const;

 private:
  size_t num_users_;
  std::vector<UserGroup> groups_;
  std::unordered_map<uint64_t, std::vector<GroupId>> hash_index_;
};

}  // namespace vexus::mining
