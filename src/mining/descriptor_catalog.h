// DescriptorCatalog: dense encoding of attribute=value pairs ("descriptors")
// plus their vertical bitmaps.
//
// The miners see users as transactions over descriptor ids; the catalog also
// precomputes, per descriptor, the bitset of users carrying it — the vertical
// representation that makes LCM's extent intersections word-parallel.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "data/dataset.h"
#include "mining/group.h"

namespace vexus::mining {

using DescriptorId = uint32_t;

class DescriptorCatalog {
 public:
  /// Builds descriptors for every (attribute, value) with at least
  /// `min_count` users, over the given attributes (empty = all attributes).
  /// Descriptors are ordered by ascending support — the item order LCM
  /// recurses over (fewer extensions near the root).
  static DescriptorCatalog Build(const data::Dataset& dataset,
                                 const std::vector<data::AttributeId>&
                                     attributes = {},
                                 size_t min_count = 1);

  size_t size() const { return descriptors_.size(); }
  size_t num_users() const { return num_users_; }

  const Descriptor& descriptor(DescriptorId d) const {
    return descriptors_[d];
  }

  /// Users carrying descriptor d.
  const Bitset& UserSet(DescriptorId d) const { return user_sets_[d]; }

  /// Number of users carrying descriptor d.
  size_t Support(DescriptorId d) const { return supports_[d]; }

  /// Id of the descriptor for (attribute, value), if it survived min_count.
  std::optional<DescriptorId> Find(data::AttributeId a,
                                   data::ValueId v) const;

  /// The descriptors of user u (its transaction), ascending ids.
  std::vector<DescriptorId> Transaction(data::UserId u) const;

 private:
  size_t num_users_ = 0;
  std::vector<Descriptor> descriptors_;
  std::vector<Bitset> user_sets_;
  std::vector<size_t> supports_;
  /// (attribute<<32 | value) -> DescriptorId
  std::unordered_map<uint64_t, DescriptorId> lookup_;
};

}  // namespace vexus::mining
