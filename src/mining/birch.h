// BIRCH (Zhang, Ramakrishnan, Livny, SIGMOD 1996) — the paper's second
// stream option for group discovery [18].
//
// Phase 1: incremental CF-tree construction. Each entry is a clustering
// feature CF = (n, LS, SS); an arriving user vector descends to the nearest
// leaf entry and is absorbed iff the merged entry's radius stays within the
// threshold, else it starts a new entry; overfull nodes split on the
// farthest entry pair, splits propagate upward (B+-tree style).
// Phase 3: global clustering — agglomerative merging of leaf-entry centroids
// down to k clusters.
//
// One deviation from the original, documented in DESIGN.md: leaf entries
// also record their member user ids, because VEXUS needs the extent of each
// discovered group. This trades BIRCH's O(tree) memory for O(N) — acceptable
// at user-data scale and required by the downstream exploration engine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitset.h"
#include "data/user_table.h"

namespace vexus::mining {

class BirchTree {
 public:
  struct Config {
    /// Max radius of a leaf entry (in feature-space units).
    double threshold = 0.5;
    /// Max entries per node (leaf and internal).
    size_t branching = 8;
  };

  struct Stats {
    size_t points = 0;
    size_t leaf_entries = 0;
    size_t splits = 0;
    size_t height = 1;
  };

  /// `dim` is the feature dimensionality; all inserted vectors must match.
  BirchTree(size_t dim, Config config);
  ~BirchTree();

  BirchTree(const BirchTree&) = delete;
  BirchTree& operator=(const BirchTree&) = delete;

  /// Inserts a user's feature vector.
  void Insert(const std::vector<double>& x, data::UserId user);

  Stats ComputeStats() const;

  /// One discovered micro-cluster (leaf entry).
  struct LeafEntry {
    size_t n = 0;
    std::vector<double> centroid;
    double radius = 0;
    std::vector<data::UserId> members;
  };
  std::vector<LeafEntry> LeafEntries() const;

  /// Phase-3 global clustering: merges leaf entries to (at most) k clusters
  /// and returns each cluster's member set over a universe of `num_users`.
  std::vector<Bitset> Cluster(size_t k, size_t num_users) const;

 private:
  struct CF;
  struct Node;

  /// Returns a sibling created by splitting `node`, or nullptr.
  std::unique_ptr<Node> InsertInto(Node* node, const std::vector<double>& x,
                                   data::UserId user);
  std::unique_ptr<Node> SplitNode(Node* node);

  size_t dim_;
  Config config_;
  std::unique_ptr<Node> root_;
  size_t points_ = 0;
  size_t splits_ = 0;
};

}  // namespace vexus::mining
