#include "data/dataset.h"

#include <cmath>
#include <sstream>

#include "common/csv.h"
#include "common/string_util.h"

namespace vexus::data {

Dataset::Dataset()
    : schema_(std::make_unique<Schema>()),
      users_(std::make_unique<UserTable>(schema_.get())),
      actions_(std::make_unique<ActionTable>()) {}

Status Dataset::Validate() const {
  for (size_t idx = 0; idx < actions_->num_actions(); ++idx) {
    const ActionRecord& r = actions_->action(idx);
    if (r.user >= users_->size()) {
      return Status::Corruption("action " + std::to_string(idx) +
                                " references unknown user " +
                                std::to_string(r.user));
    }
    if (r.item >= actions_->num_items()) {
      return Status::Corruption("action " + std::to_string(idx) +
                                " references unknown item " +
                                std::to_string(r.item));
    }
  }
  for (AttributeId a = 0; a < schema_->num_attributes(); ++a) {
    const Attribute& attr = schema_->attribute(a);
    for (UserId u = 0; u < users_->size(); ++u) {
      ValueId v = users_->Value(u, a);
      if (v != kNullValue && v >= attr.values().size()) {
        return Status::Corruption("user " + std::to_string(u) +
                                  " has out-of-dictionary code for '" +
                                  attr.name() + "'");
      }
    }
  }
  return Status::OK();
}

std::string Dataset::Summary() const {
  std::ostringstream os;
  os << "|U|=" << WithThousands(num_users())
     << " |I|=" << WithThousands(num_items())
     << " |A|=" << WithThousands(num_actions()) << " attributes=[";
  for (AttributeId a = 0; a < schema_->num_attributes(); ++a) {
    if (a > 0) os << ", ";
    const Attribute& attr = schema_->attribute(a);
    os << attr.name() << "(" << attr.values().size() << ")";
  }
  os << "]";
  return os.str();
}

void Dataset::SaveUsersCsv(std::ostream* out) const {
  CsvWriter w(out);
  std::vector<std::string> row;
  row.push_back("user_id");
  for (AttributeId a = 0; a < schema_->num_attributes(); ++a) {
    row.push_back(schema_->attribute(a).name());
  }
  w.WriteRow(row);
  for (UserId u = 0; u < users_->size(); ++u) {
    row.clear();
    row.push_back(users_->ExternalId(u));
    for (AttributeId a = 0; a < schema_->num_attributes(); ++a) {
      const Attribute& attr = schema_->attribute(a);
      if (attr.kind() == AttributeKind::kNumeric) {
        double v = users_->Numeric(u, a);
        row.push_back(std::isnan(v) ? "" : FormatDouble(v, 6));
      } else {
        ValueId v = users_->Value(u, a);
        row.push_back(v == kNullValue ? "" : attr.values().Name(v));
      }
    }
    w.WriteRow(row);
  }
}

void Dataset::SaveActionsCsv(std::ostream* out) const {
  CsvWriter w(out);
  bool has_categories = actions_->categories().size() > 0;
  std::vector<std::string> header = {"user", "item", "value"};
  if (has_categories) header.push_back("category");
  w.WriteRow(header);
  std::vector<std::string> row;
  for (size_t i = 0; i < actions_->num_actions(); ++i) {
    const ActionRecord& r = actions_->action(i);
    row.clear();
    row.push_back(users_->ExternalId(r.user));
    row.push_back(actions_->ItemName(r.item));
    row.push_back(FormatDouble(r.value, 4));
    if (has_categories) {
      ValueId c = actions_->ItemCategory(r.item);
      row.push_back(c == kNullValue ? "" : actions_->categories().Name(c));
    }
    w.WriteRow(row);
  }
}

}  // namespace vexus::data
