// Record streams: the paper's second ingestion mode ("either as a dataset …
// or as a data stream", §II.A). Stream consumers are the online miners
// (StreamMiner, BirchTree) which maintain groups incrementally.
#pragma once

#include <cstddef>
#include <vector>

#include "data/action_table.h"
#include "data/dataset.h"

namespace vexus::data {

/// Pull-based stream of action records.
class RecordStream {
 public:
  virtual ~RecordStream() = default;

  /// Fills *out with the next record; false at end of stream.
  virtual bool Next(ActionRecord* out) = 0;

  /// Records delivered so far.
  virtual size_t Position() const = 0;
};

/// Streams a fixed vector of records.
class VectorStream : public RecordStream {
 public:
  explicit VectorStream(std::vector<ActionRecord> records)
      : records_(std::move(records)) {}

  bool Next(ActionRecord* out) override {
    if (pos_ >= records_.size()) return false;
    *out = records_[pos_++];
    return true;
  }

  size_t Position() const override { return pos_; }

 private:
  std::vector<ActionRecord> records_;
  size_t pos_ = 0;
};

/// Replays a dataset's action table in insertion (arrival) order without
/// copying it.
class DatasetReplayStream : public RecordStream {
 public:
  explicit DatasetReplayStream(const Dataset* dataset) : dataset_(dataset) {}

  bool Next(ActionRecord* out) override {
    if (pos_ >= dataset_->num_actions()) return false;
    *out = dataset_->actions().action(pos_++);
    return true;
  }

  size_t Position() const override { return pos_; }

 private:
  const Dataset* dataset_;
  size_t pos_ = 0;
};

}  // namespace vexus::data
