// ETL: the offline import step in Fig. 1 ("An ETL process (including data
// cleaning) precedes the data import to prepare data for analysis").
//
// Input is two CSVs — a demographics file (user_id, attr…) and an actions
// file (user, item, value[, category]) — plus cleaning options. Output is a
// validated Dataset with:
//   * trimmed / case-normalized strings, null tokens mapped to missing,
//   * per-column numeric type inference and bin-edge computation
//     (equal-width or quantile),
//   * deduplicated actions,
//   * optional *derived* demographics from actions: activity level
//     (binned action count) and favorite item category — which make groups
//     like "users who read thrillers" expressible as attribute=value pairs.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace vexus::data {

enum class BinningStrategy {
  kEqualWidth,  // bins of equal numeric width between observed min/max
  kQuantile,    // bins with (approximately) equal population
};

struct EtlOptions {
  /// Tokens treated as missing (checked after trimming, case-insensitively).
  std::vector<std::string> null_tokens = {"", "null", "na", "n/a", "none",
                                          "?"};
  /// Lowercase categorical values ("Engineer" == "engineer").
  bool lowercase_values = true;
  /// Fraction of non-null values that must parse as numbers for a column to
  /// be inferred numeric.
  double numeric_inference_threshold = 0.95;
  /// Number of bins for numeric attributes.
  int num_bins = 5;
  BinningStrategy binning = BinningStrategy::kQuantile;
  /// Merge duplicate (user, item) actions keeping the last value.
  bool dedup_actions = true;
  /// Create users that appear only in the actions file (demographics null).
  bool add_missing_users = true;
  /// Drop action rows whose value fails to parse (otherwise value = 1.0,
  /// treating the action as an unweighted event).
  bool drop_unparsable_values = false;
  /// Derive "activity" (low/medium/high action count) per user.
  bool derive_activity_level = true;
  /// Derive "favorite_<category-attr>" = most frequent item category.
  bool derive_favorite_category = true;
  /// Name of the derived category attribute (e.g. "favorite_genre").
  std::string favorite_category_name = "favorite_category";
};

/// What the pipeline did — surfaced so explorers can audit the cleaning.
struct EtlReport {
  size_t user_rows_in = 0;
  size_t users_out = 0;
  size_t duplicate_user_rows = 0;
  size_t action_rows_in = 0;
  size_t actions_out = 0;
  size_t actions_dropped_bad_value = 0;
  size_t actions_deduplicated = 0;
  size_t users_created_from_actions = 0;
  size_t null_cells = 0;
  std::vector<std::string> numeric_columns;
  std::vector<std::string> categorical_columns;

  std::string ToString() const;
};

class EtlPipeline {
 public:
  explicit EtlPipeline(EtlOptions options = EtlOptions{});

  /// Runs the full pipeline. `users_csv` must have a header whose first
  /// column is the user id. `actions_csv` may be null (demographics-only
  /// dataset); when present its header must contain at least (user, item)
  /// columns; a third column is the value and a fourth the item category.
  Result<Dataset> Run(std::istream* users_csv, std::istream* actions_csv);

  const EtlReport& report() const { return report_; }
  const EtlOptions& options() const { return options_; }

  /// Computes bin edges for raw values under a strategy; exposed for tests
  /// and for generators that pre-bin. Returns at least 2 edges; collapses
  /// duplicate quantile edges.
  static std::vector<double> ComputeBinEdges(std::vector<double> values,
                                             int num_bins,
                                             BinningStrategy strategy);

 private:
  /// "" if the cell is a null token, else the cleaned value.
  std::string CleanCell(const std::string& cell) const;
  bool IsNullToken(const std::string& cleaned) const;

  EtlOptions options_;
  EtlReport report_;
};

}  // namespace vexus::data
