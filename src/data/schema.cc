#include "data/schema.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace vexus::data {

std::string Attribute::ValueName(ValueId v) const {
  if (v == kNullValue) return "∅";
  return values_.Name(v);
}

void Attribute::SetBinEdges(std::vector<double> edges) {
  VEXUS_CHECK(kind_ == AttributeKind::kNumeric)
      << "bins on non-numeric attribute " << name_;
  VEXUS_CHECK(edges.size() >= 2) << "need at least 2 bin edges";
  for (size_t i = 1; i < edges.size(); ++i) {
    VEXUS_CHECK(edges[i - 1] < edges[i]) << "bin edges must be ascending";
  }
  bin_edges_ = std::move(edges);
  for (size_t i = 0; i + 1 < bin_edges_.size(); ++i) {
    std::string label = "[" + vexus::FormatDouble(bin_edges_[i], 3) + "," +
                        vexus::FormatDouble(bin_edges_[i + 1], 3) + ")";
    values_.GetOrAdd(label);
  }
}

ValueId Attribute::BinFor(double raw) const {
  VEXUS_DCHECK(has_bins()) << "BinFor on attribute without bins: " << name_;
  size_t nbins = bin_edges_.size() - 1;
  if (raw < bin_edges_.front()) return 0;
  if (raw >= bin_edges_.back()) return static_cast<ValueId>(nbins - 1);
  // Binary search for the bin containing raw.
  size_t lo = 0, hi = nbins - 1;
  while (lo < hi) {
    size_t mid = (lo + hi + 1) / 2;
    if (raw >= bin_edges_[mid]) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return static_cast<ValueId>(lo);
}

AttributeId Schema::AddCategorical(std::string_view name) {
  return Add(name, AttributeKind::kCategorical);
}

AttributeId Schema::AddNumeric(std::string_view name) {
  return Add(name, AttributeKind::kNumeric);
}

AttributeId Schema::Add(std::string_view name, AttributeKind kind) {
  VEXUS_CHECK(!name_index_.Find(name).has_value())
      << "duplicate attribute " << name;
  AttributeId id = name_index_.GetOrAdd(name);
  attributes_.emplace_back(std::string(name), kind);
  return id;
}

Attribute& Schema::attribute(AttributeId id) {
  VEXUS_DCHECK(id < attributes_.size());
  return attributes_[id];
}

const Attribute& Schema::attribute(AttributeId id) const {
  VEXUS_DCHECK(id < attributes_.size());
  return attributes_[id];
}

std::optional<AttributeId> Schema::Find(std::string_view name) const {
  return name_index_.Find(name);
}

Result<AttributeId> Schema::Require(std::string_view name) const {
  auto id = Find(name);
  if (!id.has_value()) {
    return Status::NotFound("no attribute named '" + std::string(name) + "'");
  }
  return *id;
}

size_t Schema::TotalValueCount() const {
  size_t n = 0;
  for (const auto& a : attributes_) n += a.values().size();
  return n;
}

}  // namespace vexus::data
