// Dataset: the unit the whole pipeline operates on — a schema, a user table,
// and an action table, as described in paper §II.A ("Each record in user data
// describes one user action … each user is also associated to a set of
// demographics").
#pragma once

#include <memory>
#include <ostream>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "data/action_table.h"
#include "data/schema.h"
#include "data/user_table.h"

namespace vexus::data {

class Dataset {
 public:
  Dataset();

  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  Schema& schema() { return *schema_; }
  const Schema& schema() const { return *schema_; }

  UserTable& users() { return *users_; }
  const UserTable& users() const { return *users_; }

  ActionTable& actions() { return *actions_; }
  const ActionTable& actions() const { return *actions_; }

  size_t num_users() const { return users_->size(); }
  size_t num_items() const { return actions_->num_items(); }
  size_t num_actions() const { return actions_->num_actions(); }

  /// Structural invariants: every action references an existing user and
  /// item; every non-null code is within its attribute's dictionary.
  Status Validate() const;

  /// One-line description: "|U|=…, |I|=…, |A|=…, attributes=[…]".
  std::string Summary() const;

  /// Writes "user_id,<attr>,…" with value names (raw numbers for numeric
  /// attributes when available).
  void SaveUsersCsv(std::ostream* out) const;

  /// Writes "user,item,value[,category]".
  void SaveActionsCsv(std::ostream* out) const;

 private:
  // unique_ptr keeps the Schema address stable across Dataset moves, since
  // UserTable holds a Schema*.
  std::unique_ptr<Schema> schema_;
  std::unique_ptr<UserTable> users_;
  std::unique_ptr<ActionTable> actions_;
};

}  // namespace vexus::data
