// Columnar storage of users and their demographics.
//
// Layout is column-per-attribute (dictionary codes in a flat uint32 vector,
// plus a parallel raw-double column for numeric attributes) so that STATS
// histograms, crossfilter dimensions, and the mining layer's vertical
// item-bitmap construction are all sequential scans.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitset.h"
#include "data/schema.h"

namespace vexus::data {

using UserId = uint32_t;

class UserTable {
 public:
  /// The table's columns track `schema`; the schema object must outlive the
  /// table and attributes must be added before users.
  explicit UserTable(Schema* schema);

  size_t size() const { return external_ids_.size(); }

  /// Adds a user with all demographics null. External ids must be unique
  /// (enforced by the dictionary; re-adding returns the existing user).
  UserId AddUser(std::string_view external_id);

  /// External (source) identifier for a user.
  const std::string& ExternalId(UserId u) const;

  /// Id of the user with this external identifier, if present.
  std::optional<UserId> FindUser(std::string_view external_id) const;

  /// Sets a categorical value by code.
  void SetValue(UserId u, AttributeId a, ValueId v);

  /// Sets a categorical value by name, inserting it into the attribute's
  /// dictionary if new.
  void SetValueByName(UserId u, AttributeId a, std::string_view value);

  /// Sets the raw numeric value; the code column is populated later by
  /// ApplyBins (ETL decides the edges).
  void SetNumeric(UserId u, AttributeId a, double raw);

  /// Dictionary code of user u for attribute a (kNullValue if missing).
  ValueId Value(UserId u, AttributeId a) const;

  /// Raw numeric value (NaN if missing or non-numeric attribute).
  double Numeric(UserId u, AttributeId a) const;

  bool IsNull(UserId u, AttributeId a) const {
    return Value(u, a) == kNullValue;
  }

  /// Recomputes the code column of a numeric attribute from its bin edges
  /// (Attribute::SetBinEdges must have been called).
  void ApplyBins(AttributeId a);

  /// Set of users with Value(u, a) == v.
  Bitset UsersWithValue(AttributeId a, ValueId v) const;

  /// Count of non-null entries in a column.
  size_t NonNullCount(AttributeId a) const;

  const Schema& schema() const { return *schema_; }
  Schema* mutable_schema() { return schema_; }

 private:
  void EnsureColumns();

  Schema* schema_;
  Dictionary external_;  // external-id dictionary; id == UserId
  std::vector<std::string> external_ids_;
  /// codes_[a][u] = dictionary code (kNullValue when missing)
  std::vector<std::vector<ValueId>> codes_;
  /// raw_[a][u] = raw numeric (NaN when missing); empty for categorical
  std::vector<std::vector<double>> raw_;
};

}  // namespace vexus::data
