#include "data/etl.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace vexus::data {

std::string EtlReport::ToString() const {
  std::ostringstream os;
  os << "ETL: users " << user_rows_in << "->" << users_out << " ("
     << duplicate_user_rows << " dup rows, " << users_created_from_actions
     << " created from actions), actions " << action_rows_in << "->"
     << actions_out << " (" << actions_deduplicated << " deduped, "
     << actions_dropped_bad_value << " bad values), " << null_cells
     << " null cells; numeric=[" << Join(numeric_columns, ",")
     << "] categorical=[" << Join(categorical_columns, ",") << "]";
  return os.str();
}

EtlPipeline::EtlPipeline(EtlOptions options) : options_(std::move(options)) {}

std::string EtlPipeline::CleanCell(const std::string& cell) const {
  std::string cleaned(Trim(cell));
  if (options_.lowercase_values) cleaned = ToLower(cleaned);
  return cleaned;
}

bool EtlPipeline::IsNullToken(const std::string& cleaned) const {
  std::string lower = ToLower(cleaned);
  for (const auto& tok : options_.null_tokens) {
    if (lower == ToLower(tok)) return true;
  }
  return false;
}

std::vector<double> EtlPipeline::ComputeBinEdges(std::vector<double> values,
                                                 int num_bins,
                                                 BinningStrategy strategy) {
  VEXUS_CHECK(num_bins >= 1);
  if (values.empty()) return {0.0, 1.0};
  std::sort(values.begin(), values.end());
  double lo = values.front();
  double hi = values.back();
  if (lo == hi) return {lo, lo + 1.0};

  std::vector<double> edges;
  if (strategy == BinningStrategy::kEqualWidth) {
    double width = (hi - lo) / num_bins;
    for (int i = 0; i <= num_bins; ++i) edges.push_back(lo + width * i);
  } else {
    edges.push_back(lo);
    for (int i = 1; i < num_bins; ++i) {
      size_t idx = static_cast<size_t>(
          static_cast<double>(values.size()) * i / num_bins);
      idx = std::min(idx, values.size() - 1);
      double e = values[idx];
      if (e > edges.back()) edges.push_back(e);  // collapse duplicate edges
    }
    if (hi > edges.back()) {
      edges.push_back(hi);
    }
    // A degenerate distribution can leave a single edge; widen it.
    if (edges.size() < 2) edges.push_back(edges.back() + 1.0);
    // Make the top edge exclusive-safe: nudge so max value falls in last bin.
  }
  return edges;
}

Result<Dataset> EtlPipeline::Run(std::istream* users_csv,
                                 std::istream* actions_csv) {
  if (users_csv == nullptr) {
    return Status::InvalidArgument("users_csv must not be null");
  }
  report_ = EtlReport{};
  Dataset ds;

  // ---- Pass 1: read all user rows as cleaned strings. ----
  CsvReader reader(users_csv);
  if (reader.header().empty()) {
    return Status::Corruption("users CSV has no header row");
  }
  const std::vector<std::string> header = reader.header();
  size_t n_cols = header.size();
  if (n_cols < 1) {
    return Status::Corruption("users CSV header has no columns");
  }

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  while (reader.Next(&row)) {
    ++report_.user_rows_in;
    if (row.size() != n_cols) {
      return Status::Corruption(
          "users CSV row " + std::to_string(reader.line_number()) + " has " +
          std::to_string(row.size()) + " fields, expected " +
          std::to_string(n_cols));
    }
    rows.push_back(row);
  }
  VEXUS_RETURN_NOT_OK(reader.status().WithContext("reading users CSV"));

  // ---- Column type inference. ----
  // A column is numeric when >= threshold of its non-null cells parse.
  std::vector<bool> is_numeric(n_cols, false);
  for (size_t c = 1; c < n_cols; ++c) {
    size_t non_null = 0, parsed = 0;
    for (const auto& r : rows) {
      std::string cleaned = CleanCell(r[c]);
      if (IsNullToken(cleaned)) continue;
      ++non_null;
      if (ParseDouble(cleaned).has_value()) ++parsed;
    }
    is_numeric[c] =
        non_null > 0 && static_cast<double>(parsed) / non_null >=
                            options_.numeric_inference_threshold;
  }

  // ---- Declare attributes. ----
  std::vector<AttributeId> attr_ids(n_cols, 0);
  for (size_t c = 1; c < n_cols; ++c) {
    std::string name(Trim(header[c]));
    if (name.empty()) name = "col" + std::to_string(c);
    if (ds.schema().Find(name).has_value()) {
      return Status::InvalidArgument("duplicate attribute name '" + name +
                                     "' in users CSV header");
    }
    attr_ids[c] = is_numeric[c] ? ds.schema().AddNumeric(name)
                                : ds.schema().AddCategorical(name);
    (is_numeric[c] ? report_.numeric_columns : report_.categorical_columns)
        .push_back(name);
  }

  // ---- Materialize users. ----
  for (const auto& r : rows) {
    std::string uid(Trim(r[0]));
    if (uid.empty()) {
      ++report_.duplicate_user_rows;  // unusable row
      continue;
    }
    bool existed = ds.users().FindUser(uid).has_value();
    if (existed) ++report_.duplicate_user_rows;
    UserId u = ds.users().AddUser(uid);
    for (size_t c = 1; c < n_cols; ++c) {
      std::string cleaned = CleanCell(r[c]);
      if (IsNullToken(cleaned)) {
        ++report_.null_cells;
        continue;
      }
      if (is_numeric[c]) {
        auto v = ParseDouble(cleaned);
        if (v.has_value()) {
          ds.users().SetNumeric(u, attr_ids[c], *v);
        } else {
          ++report_.null_cells;  // stray non-numeric cell in numeric column
        }
      } else {
        ds.users().SetValueByName(u, attr_ids[c], cleaned);
      }
    }
  }
  rows.clear();
  rows.shrink_to_fit();

  // ---- Numeric binning. ----
  for (size_t c = 1; c < n_cols; ++c) {
    if (!is_numeric[c]) continue;
    AttributeId a = attr_ids[c];
    std::vector<double> vals;
    vals.reserve(ds.num_users());
    for (UserId u = 0; u < ds.num_users(); ++u) {
      double v = ds.users().Numeric(u, a);
      if (!std::isnan(v)) vals.push_back(v);
    }
    std::vector<double> edges =
        ComputeBinEdges(std::move(vals), options_.num_bins, options_.binning);
    // Widen the top edge slightly so the observed max lands inside the last
    // bin rather than on its exclusive boundary.
    edges.back() = std::nextafter(edges.back(),
                                  std::numeric_limits<double>::infinity());
    ds.schema().attribute(a).SetBinEdges(std::move(edges));
    ds.users().ApplyBins(a);
  }

  // ---- Actions. ----
  if (actions_csv != nullptr) {
    CsvReader areader(actions_csv);
    if (areader.header().size() < 2) {
      return Status::Corruption(
          "actions CSV needs at least (user, item) columns");
    }
    bool has_value = areader.header().size() >= 3;
    bool has_category = areader.header().size() >= 4;
    std::vector<std::string> arow;
    while (areader.Next(&arow)) {
      ++report_.action_rows_in;
      if (arow.size() < 2) continue;
      std::string uid(Trim(arow[0]));
      std::string item_name(Trim(arow[1]));
      if (uid.empty() || item_name.empty()) {
        ++report_.actions_dropped_bad_value;
        continue;
      }
      auto maybe_user = ds.users().FindUser(uid);
      UserId u;
      if (maybe_user.has_value()) {
        u = *maybe_user;
      } else if (options_.add_missing_users) {
        u = ds.users().AddUser(uid);
        ++report_.users_created_from_actions;
      } else {
        ++report_.actions_dropped_bad_value;
        continue;
      }
      float value = 1.0f;
      if (has_value && arow.size() >= 3) {
        auto v = ParseDouble(Trim(arow[2]));
        if (v.has_value()) {
          value = static_cast<float>(*v);
        } else if (options_.drop_unparsable_values) {
          ++report_.actions_dropped_bad_value;
          continue;
        }
      }
      ItemId item;
      if (has_category && arow.size() >= 4 &&
          !IsNullToken(CleanCell(arow[3]))) {
        item = ds.actions().AddItem(item_name, CleanCell(arow[3]));
      } else {
        item = ds.actions().AddItem(item_name);
      }
      ds.actions().AddAction(u, item, value);
    }
    VEXUS_RETURN_NOT_OK(areader.status().WithContext("reading actions CSV"));

    if (options_.dedup_actions) {
      report_.actions_deduplicated = ds.actions().DeduplicateKeepLast();
    }
  }

  // ---- Derived attributes. ----
  if (options_.derive_activity_level && ds.num_actions() > 0) {
    AttributeId a = ds.schema().AddNumeric("activity");
    std::vector<uint32_t> counts = ds.actions().ActionCounts(ds.num_users());
    std::vector<double> vals;
    vals.reserve(counts.size());
    for (UserId u = 0; u < ds.num_users(); ++u) {
      ds.users().SetNumeric(u, a, counts[u]);
      vals.push_back(counts[u]);
    }
    std::vector<double> edges =
        ComputeBinEdges(std::move(vals), 3, BinningStrategy::kQuantile);
    edges.back() = std::nextafter(edges.back(),
                                  std::numeric_limits<double>::infinity());
    ds.schema().attribute(a).SetBinEdges(std::move(edges));
    ds.users().ApplyBins(a);
  }

  if (options_.derive_favorite_category &&
      ds.actions().categories().size() > 0) {
    AttributeId a =
        ds.schema().AddCategorical(options_.favorite_category_name);
    // Most frequent category among each user's actions.
    std::unordered_map<uint64_t, uint32_t> freq;  // (user<<32|cat) -> count
    for (const auto& r : ds.actions().records()) {
      ValueId cat = ds.actions().ItemCategory(r.item);
      if (cat == kNullValue) continue;
      ++freq[(static_cast<uint64_t>(r.user) << 32) | cat];
    }
    std::vector<std::pair<uint32_t, ValueId>> best(
        ds.num_users(), {0, kNullValue});  // (count, category)
    for (const auto& [key, count] : freq) {
      UserId u = static_cast<UserId>(key >> 32);
      ValueId cat = static_cast<ValueId>(key & 0xffffffffu);
      // Deterministic tie-break on the smaller category id.
      if (count > best[u].first ||
          (count == best[u].first && cat < best[u].second)) {
        best[u] = {count, cat};
      }
    }
    for (UserId u = 0; u < ds.num_users(); ++u) {
      if (best[u].second != kNullValue) {
        ds.users().SetValueByName(
            u, a, ds.actions().categories().Name(best[u].second));
      }
    }
  }

  report_.users_out = ds.num_users();
  report_.actions_out = ds.num_actions();

  VEXUS_RETURN_NOT_OK(ds.Validate().WithContext("post-ETL validation"));
  return ds;
}

}  // namespace vexus::data
