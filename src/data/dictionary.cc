#include "data/dictionary.h"

#include "common/logging.h"

namespace vexus::data {

uint32_t Dictionary::GetOrAdd(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<uint32_t> Dictionary::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::Name(uint32_t id) const {
  VEXUS_DCHECK(id < names_.size()) << "dictionary id out of range";
  return names_[id];
}

}  // namespace vexus::data
