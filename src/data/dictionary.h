// String ↔ dense-id dictionary used for users, items, and attribute values.
// Dense ids keep every downstream structure (bitsets, columns, feedback
// vectors) array-indexed rather than hash-keyed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vexus::data {

class Dictionary {
 public:
  /// Id of `name`, inserting it if absent. Ids are dense, starting at 0,
  /// in insertion order.
  uint32_t GetOrAdd(std::string_view name);

  /// Id of `name` if present.
  std::optional<uint32_t> Find(std::string_view name) const;

  /// Name for an id; id must be < size().
  const std::string& Name(uint32_t id) const;

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  /// All names in id order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace vexus::data
