#include "data/action_table.h"

#include <algorithm>

#include "common/logging.h"

namespace vexus::data {

ItemId ActionTable::AddItem(std::string_view name) {
  size_t before = items_.size();
  ItemId id = items_.GetOrAdd(name);
  if (items_.size() != before) item_category_.push_back(kNullValue);
  return id;
}

ItemId ActionTable::AddItem(std::string_view name, std::string_view category) {
  ItemId id = AddItem(name);
  item_category_[id] = categories_.GetOrAdd(category);
  return id;
}

ValueId ActionTable::ItemCategory(ItemId i) const {
  VEXUS_DCHECK(i < item_category_.size());
  return item_category_[i];
}

void ActionTable::AddAction(UserId user, ItemId item, float value) {
  VEXUS_DCHECK(item < items_.size()) << "action references unknown item";
  records_.push_back(ActionRecord{user, item, value});
}

size_t ActionTable::DeduplicateKeepLast() {
  if (records_.empty()) return 0;
  // Stable sort preserves insertion order among duplicates, so "keep last"
  // is the final record of each (user, item) run.
  std::stable_sort(records_.begin(), records_.end(),
                   [](const ActionRecord& a, const ActionRecord& b) {
                     if (a.user != b.user) return a.user < b.user;
                     return a.item < b.item;
                   });
  size_t out = 0;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (i + 1 < records_.size() && records_[i].user == records_[i + 1].user &&
        records_[i].item == records_[i + 1].item) {
      continue;  // superseded by a later record
    }
    records_[out++] = records_[i];
  }
  size_t removed = records_.size() - out;
  records_.resize(out);
  return removed;
}

std::vector<uint32_t> ActionTable::ActionCounts(size_t num_users) const {
  std::vector<uint32_t> counts(num_users, 0);
  for (const auto& r : records_) {
    if (r.user < num_users) ++counts[r.user];
  }
  return counts;
}

}  // namespace vexus::data
