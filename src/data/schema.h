// Schema of user demographics.
//
// VEXUS's generic data model (paper §II.A) is: per-user demographics plus
// action records [user, item, value]. Demographic attributes are either
// categorical (dictionary-coded) or numeric. Numeric attributes are *binned*
// during ETL so that group descriptions — conjunctions of attribute=value
// pairs such as "age=[25,35) ∧ occupation=engineer" — are uniform; the raw
// numeric column is retained for STATS histograms and LDA features.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "data/dictionary.h"

namespace vexus::data {

using AttributeId = uint32_t;
using ValueId = uint32_t;

/// Sentinel for a missing value in a user column.
inline constexpr ValueId kNullValue = UINT32_MAX;

enum class AttributeKind {
  kCategorical,
  kNumeric,  // binned into categorical codes during ETL
};

/// One demographic attribute: its kind, its value dictionary (categories or
/// bin labels), and — for numeric attributes — the bin edges.
class Attribute {
 public:
  Attribute(std::string name, AttributeKind kind)
      : name_(std::move(name)), kind_(kind) {}

  const std::string& name() const { return name_; }
  AttributeKind kind() const { return kind_; }

  /// Value dictionary (mutable during load/ETL).
  Dictionary& values() { return values_; }
  const Dictionary& values() const { return values_; }

  /// Human-readable name of a value code; "∅" for kNullValue.
  std::string ValueName(ValueId v) const;

  /// --- numeric binning (kNumeric only) ---

  /// Installs ascending bin edges e0 < e1 < ... < en. Bin i covers
  /// [e_i, e_{i+1}) (the last bin is closed above). Also registers bin labels
  /// "[e_i,e_{i+1})" as values. Requires >= 2 edges.
  void SetBinEdges(std::vector<double> edges);

  const std::vector<double>& bin_edges() const { return bin_edges_; }
  bool has_bins() const { return bin_edges_.size() >= 2; }

  /// Bin code for a raw numeric value (clamped to first/last bin).
  ValueId BinFor(double raw) const;

 private:
  std::string name_;
  AttributeKind kind_;
  Dictionary values_;
  std::vector<double> bin_edges_;
};

/// Ordered collection of attributes with name lookup.
class Schema {
 public:
  /// Adds an attribute; name must be unique. Returns its id.
  AttributeId AddCategorical(std::string_view name);
  AttributeId AddNumeric(std::string_view name);

  size_t num_attributes() const { return attributes_.size(); }

  Attribute& attribute(AttributeId id);
  const Attribute& attribute(AttributeId id) const;

  std::optional<AttributeId> Find(std::string_view name) const;

  /// Find() that reports a NotFound status with the attribute name.
  Result<AttributeId> Require(std::string_view name) const;

  /// Total number of attribute=value tokens across all attributes; the size
  /// of the demographic part of the feedback-vector token space.
  size_t TotalValueCount() const;

 private:
  AttributeId Add(std::string_view name, AttributeKind kind);

  std::vector<Attribute> attributes_;
  Dictionary name_index_;
};

}  // namespace vexus::data
