#include "data/generators/dbauthors_gen.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <string>

#include "common/logging.h"
#include "common/random.h"
#include "data/etl.h"

namespace vexus::data {

namespace {

// Topics with the venues their community publishes in (area = item category).
struct TopicSpec {
  const char* name;
  std::array<const char*, 4> venues;
};

const TopicSpec kTopics[] = {
    {"data management", {"sigmod", "vldb", "icde", "edbt"}},
    {"web search", {"sigir", "www", "cikm", "wsdm"}},
    {"data mining", {"kdd", "icdm", "cikm", "pkdd"}},
    {"machine learning", {"icml", "nips", "kdd", "aaai"}},
    {"information retrieval", {"sigir", "cikm", "ecir", "wsdm"}},
    {"database theory", {"pods", "icdt", "sigmod", "vldb"}},
    {"visualization", {"vis", "chi", "sigmod", "icde"}},
    {"nlp", {"acl", "emnlp", "naacl", "cikm"}},
};
constexpr size_t kNumTopics = sizeof(kTopics) / sizeof(kTopics[0]);

const char* VenueArea(const std::string& venue) {
  static const std::array<std::pair<const char*, const char*>, 22> kAreas = {{
      {"sigmod", "databases"}, {"vldb", "databases"},  {"icde", "databases"},
      {"edbt", "databases"},   {"pods", "databases"},  {"icdt", "databases"},
      {"sigir", "ir"},         {"www", "web"},         {"cikm", "ir"},
      {"wsdm", "web"},         {"ecir", "ir"},         {"kdd", "mining"},
      {"icdm", "mining"},      {"pkdd", "mining"},     {"icml", "ml"},
      {"nips", "ml"},          {"aaai", "ml"},         {"vis", "viz"},
      {"chi", "viz"},          {"acl", "nlp"},         {"emnlp", "nlp"},
      {"naacl", "nlp"},
  }};
  for (const auto& [v, area] : kAreas) {
    if (venue == v) return area;
  }
  return "other";
}

const char* const kCountries[] = {"usa",    "france",  "germany", "brazil",
                                  "china",  "india",   "uk",      "canada",
                                  "italy",  "netherlands"};
const double kCountryWeights[] = {0.30, 0.09, 0.10, 0.07, 0.12,
                                  0.08, 0.08, 0.06, 0.05, 0.05};

const char* const kSeniorities[] = {"junior", "mid", "senior", "very senior"};
const double kSeniorityWeights[] = {0.35, 0.30, 0.23, 0.12};

}  // namespace

const std::vector<std::string>& DbAuthorsGenerator::Venues() {
  static const std::vector<std::string>* kVenues = [] {
    auto* v = new std::vector<std::string>();
    for (const auto& t : kTopics) {
      for (const char* venue : t.venues) {
        if (std::find(v->begin(), v->end(), venue) == v->end()) {
          v->push_back(venue);
        }
      }
    }
    return v;
  }();
  return *kVenues;
}

Dataset DbAuthorsGenerator::Generate(const Config& config) {
  VEXUS_CHECK(config.num_authors > 0);
  Dataset ds;
  Rng rng(config.seed, /*stream=*/11);

  Schema& schema = ds.schema();
  AttributeId gender_attr = schema.AddCategorical("gender");
  AttributeId seniority_attr = schema.AddCategorical("seniority");
  AttributeId country_attr = schema.AddCategorical("country");
  AttributeId topic_attr = schema.AddCategorical("topic");
  AttributeId pubs_attr = schema.AddNumeric("publications");
  AttributeId years_attr = schema.AddNumeric("career_years");

  schema.attribute(pubs_attr).SetBinEdges({0, 10, 30, 80, 150, 1000});
  schema.attribute(years_attr).SetBinEdges({0, 5, 10, 20, 30, 60});

  std::vector<double> country_w(std::begin(kCountryWeights),
                                std::end(kCountryWeights));
  std::vector<double> seniority_w(std::begin(kSeniorityWeights),
                                  std::end(kSeniorityWeights));

  // Register venues up front so item ids are stable across configs.
  for (const std::string& v : Venues()) {
    ds.actions().AddItem(v, VenueArea(v));
  }

  for (uint32_t i = 0; i < config.num_authors; ++i) {
    UserId u = ds.users().AddUser("author" + std::to_string(i));

    size_t topic = rng.UniformU32(kNumTopics);
    ds.users().SetValueByName(u, topic_attr, kTopics[topic].name);

    // Gender imbalance, slightly topic-dependent (the paper's 62%-male
    // data-management example).
    double male_p = 0.65 + (topic == 0 ? 0.05 : 0.0) - (topic == 7 ? 0.08 : 0.0);
    ds.users().SetValueByName(u, gender_attr,
                              rng.Bernoulli(male_p) ? "male" : "female");

    size_t seniority = rng.Categorical(seniority_w);
    ds.users().SetValueByName(u, seniority_attr, kSeniorities[seniority]);

    ds.users().SetValueByName(u, country_attr,
                              kCountries[rng.Categorical(country_w)]);

    // Career years by seniority band; publications grow superlinearly with
    // years plus a lognormal individual factor (long tail: the Elke-
    // Rundensteiner-style "extremely active" outliers of §II.B).
    double years;
    switch (seniority) {
      case 0: years = rng.UniformDouble(1, 6); break;
      case 1: years = rng.UniformDouble(5, 12); break;
      case 2: years = rng.UniformDouble(10, 22); break;
      default: years = rng.UniformDouble(18, 40); break;
    }
    double personal = std::exp(rng.Normal(0.0, 0.6));
    double pubs = std::min(900.0, years * 3.0 * personal +
                                      rng.UniformDouble(0, 5));
    ds.users().SetNumeric(u, years_attr, std::round(years));
    ds.users().SetNumeric(u, pubs_attr, std::round(pubs));

    // Publishing actions: mostly the topic's venues, a few cross-area.
    // Normal() is unbounded, so clamp the draw *as a double* before the int
    // cast: casting an out-of-range double (a pathological
    // venues_per_author config, or NaN) is UB, and the old
    // `max(1, static_cast<int>(...))` only repaired the damage after the
    // cast had already executed. No author exceeds the venue catalog.
    double venue_draw =
        std::round(rng.Normal(config.venues_per_author, 1.0));
    const double max_venues = static_cast<double>(Venues().size());
    if (!(venue_draw > 1.0)) {  // NaN lands here too
      venue_draw = 1.0;
    } else if (venue_draw > max_venues) {
      venue_draw = max_venues;
    }
    int n_venues = static_cast<int>(venue_draw);
    double remaining = pubs;
    for (int v = 0; v < n_venues && remaining >= 1.0; ++v) {
      std::string venue;
      if (rng.Bernoulli(0.8)) {
        venue = kTopics[topic].venues[rng.UniformU32(4)];
      } else {
        const auto& all = Venues();
        venue = all[rng.UniformU32(static_cast<uint32_t>(all.size()))];
      }
      ItemId item = ds.actions().AddItem(venue, VenueArea(venue));
      double share = (v == n_venues - 1)
                         ? remaining
                         : std::ceil(remaining * rng.UniformDouble(0.2, 0.6));
      share = std::max(1.0, std::min(share, remaining));
      ds.actions().AddAction(u, item, static_cast<float>(share));
      remaining -= share;
    }
  }
  ds.actions().DeduplicateKeepLast();

  // Derived activity level mirrors the ETL derivation.
  {
    AttributeId act_attr = schema.AddNumeric("activity");
    std::vector<uint32_t> counts = ds.actions().ActionCounts(ds.num_users());
    std::vector<double> vals(counts.begin(), counts.end());
    std::vector<double> edges =
        EtlPipeline::ComputeBinEdges(vals, 3, BinningStrategy::kQuantile);
    edges.back() =
        std::nextafter(edges.back(), std::numeric_limits<double>::infinity());
    schema.attribute(act_attr).SetBinEdges(std::move(edges));
    for (UserId u = 0; u < ds.num_users(); ++u) {
      ds.users().SetNumeric(u, act_attr, counts[u]);
    }
  }

  VEXUS_CHECK(ds.Validate().ok());
  return ds;
}

}  // namespace vexus::data
