// Synthetic DB-AUTHORS generator.
//
// The paper's DB-AUTHORS dataset (database researchers, hosted on the
// PERSYVAL platform whose download link is defunct) is substituted by a
// generator that reproduces what Scenario 1 (PC formation, experiment E4)
// exercises:
//   * gender (imbalanced, ~65/35 — the paper's running example "62% of
//     members are male"), seniority, country, primary topic,
//   * long-tailed publication counts correlated with seniority and career
//     years (supporting "very senior researchers … very high number of
//     publications"),
//   * publishing actions [author, venue, #papers] with venue choice
//     correlated with topic, so venue-centric target committees (SIGMOD,
//     VLDB, CIKM) are coherent, discoverable groups.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace vexus::data {

class DbAuthorsGenerator {
 public:
  struct Config {
    uint32_t num_authors = 4000;
    /// Mean number of distinct venues an author publishes in.
    double venues_per_author = 3.0;
    uint64_t seed = 7;
  };

  static Dataset Generate(const Config& config);

  /// Venue names used by the generator, exposed so experiment drivers can
  /// address targets ("form a SIGMOD committee") without string duplication.
  static const std::vector<std::string>& Venues();
};

}  // namespace vexus::data
