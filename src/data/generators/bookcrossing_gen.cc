#include "data/generators/bookcrossing_gen.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>

#include "common/logging.h"
#include "common/random.h"
#include "data/etl.h"

namespace vexus::data {

namespace {

const char* const kGenres[] = {"fiction",   "thriller", "romance",
                               "mystery",   "scifi",    "fantasy",
                               "biography", "history",  "selfhelp",
                               "children"};
constexpr size_t kNumGenres = sizeof(kGenres) / sizeof(kGenres[0]);

const char* const kCountries[] = {"usa",    "canada", "uk",       "germany",
                                  "spain",  "france", "australia", "italy",
                                  "brazil", "portugal"};
const double kCountryWeights[] = {0.45, 0.08, 0.07, 0.07, 0.06,
                                  0.06, 0.05, 0.06, 0.05, 0.05};

const char* const kOccupations[] = {"student",   "engineer", "teacher",
                                    "librarian", "manager",  "retired",
                                    "writer",    "nurse",    "salesperson",
                                    "artist"};
const double kOccupationWeights[] = {0.20, 0.12, 0.12, 0.06, 0.12,
                                     0.10, 0.05, 0.09, 0.08, 0.06};

}  // namespace

Dataset BookCrossingGenerator::Generate(const Config& config) {
  VEXUS_CHECK(config.num_users > 0 && config.num_books > 0);
  Dataset ds;
  Rng rng(config.seed, /*stream=*/7);

  Schema& schema = ds.schema();
  AttributeId age_attr = schema.AddNumeric("age");
  AttributeId country_attr = schema.AddCategorical("country");
  AttributeId occupation_attr = schema.AddCategorical("occupation");

  // Fixed, human-meaningful age bins (the ETL quantile path is exercised by
  // the CSV route; generators pre-bin for stability across scales).
  schema.attribute(age_attr).SetBinEdges({10, 18, 25, 35, 50, 65, 100});

  std::vector<double> country_w(std::begin(kCountryWeights),
                                std::end(kCountryWeights));
  std::vector<double> occupation_w(std::begin(kOccupationWeights),
                                   std::end(kOccupationWeights));

  // ---- Users & demographics. ----
  // Favorite genres per user drive the rating model below.
  std::vector<std::array<uint8_t, 3>> favorites(config.num_users);
  std::vector<uint8_t> num_favorites(config.num_users);
  for (uint32_t u = 0; u < config.num_users; ++u) {
    UserId uid = ds.users().AddUser("u" + std::to_string(u));
    double age = std::clamp(rng.Normal(36.0, 14.0), 10.0, 95.0);
    ds.users().SetNumeric(uid, age_attr, age);
    size_t country = rng.Categorical(country_w);
    ds.users().SetValueByName(uid, country_attr, kCountries[country]);
    size_t occ = rng.Categorical(occupation_w);
    // Occupation correlates with age: under-22s are mostly students,
    // over-65s mostly retired. This gives exploration meaningful conjunctive
    // groups ("retired in the UK who read history").
    if (age < 22 && rng.Bernoulli(0.7)) occ = 0;           // student
    if (age > 65 && rng.Bernoulli(0.75)) occ = 5;          // retired
    ds.users().SetValueByName(uid, occupation_attr, kOccupations[occ]);

    uint8_t nf = static_cast<uint8_t>(1 + rng.UniformU32(3));  // 1..3
    num_favorites[u] = nf;
    // Age nudges taste: younger users skew fantasy/scifi/children,
    // older users skew history/biography.
    for (uint8_t f = 0; f < nf; ++f) {
      uint32_t g;
      if (age < 25 && rng.Bernoulli(0.5)) {
        const uint32_t young[] = {4, 5, 9, 0};  // scifi, fantasy, children, fiction
        g = young[rng.UniformU32(4)];
      } else if (age > 55 && rng.Bernoulli(0.5)) {
        const uint32_t old[] = {6, 7, 0, 3};  // biography, history, fiction, mystery
        g = old[rng.UniformU32(4)];
      } else {
        g = rng.UniformU32(static_cast<uint32_t>(kNumGenres));
      }
      favorites[u][f] = static_cast<uint8_t>(g);
    }
  }

  // ---- Books. ----
  std::vector<uint8_t> book_genre(config.num_books);
  for (uint32_t b = 0; b < config.num_books; ++b) {
    uint8_t g = static_cast<uint8_t>(rng.UniformU32(kNumGenres));
    book_genre[b] = g;
    ds.actions().AddItem("book" + std::to_string(b), kGenres[g]);
  }

  // ---- Ratings. ----
  // Book chosen by Zipf popularity *within a genre pool* so that favorite-
  // genre structure survives; user chosen by Zipf activity.
  ZipfSampler book_zipf(config.num_books, config.popularity_skew);
  ZipfSampler user_zipf(config.num_users, config.activity_skew);
  // Random permutations decouple id order from rank order.
  std::vector<uint32_t> user_perm(config.num_users);
  for (uint32_t i = 0; i < config.num_users; ++i) user_perm[i] = i;
  rng.Shuffle(&user_perm);
  std::vector<uint32_t> book_perm(config.num_books);
  for (uint32_t i = 0; i < config.num_books; ++i) book_perm[i] = i;
  rng.Shuffle(&book_perm);

  // Per-genre book pools for affinity-directed picks.
  std::vector<std::vector<uint32_t>> genre_pool(kNumGenres);
  for (uint32_t b = 0; b < config.num_books; ++b) {
    genre_pool[book_genre[b]].push_back(b);
  }

  for (uint32_t r = 0; r < config.num_ratings; ++r) {
    uint32_t u = user_perm[user_zipf.Sample(&rng)];
    uint32_t b;
    bool in_favorite = rng.Bernoulli(config.genre_affinity);
    if (in_favorite) {
      uint8_t g = favorites[u][rng.UniformU32(num_favorites[u])];
      const auto& pool = genre_pool[g];
      if (!pool.empty()) {
        b = pool[rng.UniformU32(static_cast<uint32_t>(pool.size()))];
      } else {
        b = book_perm[book_zipf.Sample(&rng)];
      }
    } else {
      b = book_perm[book_zipf.Sample(&rng)];
    }
    bool favored = false;
    for (uint8_t f = 0; f < num_favorites[u]; ++f) {
      favored |= favorites[u][f] == book_genre[b];
    }
    double mean = favored ? 8.0 : 5.5;
    double stddev = favored ? 1.3 : 2.0;
    double rating = std::clamp(std::round(rng.Normal(mean, stddev)), 1.0, 10.0);
    ds.actions().AddAction(u, b, static_cast<float>(rating));
  }

  // ---- Derived attributes (mirrors the ETL derivations). ----
  {
    AttributeId act_attr = schema.AddNumeric("activity");
    std::vector<uint32_t> counts = ds.actions().ActionCounts(ds.num_users());
    std::vector<double> vals(counts.begin(), counts.end());
    std::vector<double> edges = EtlPipeline::ComputeBinEdges(
        vals, 3, BinningStrategy::kQuantile);
    edges.back() =
        std::nextafter(edges.back(), std::numeric_limits<double>::infinity());
    schema.attribute(act_attr).SetBinEdges(std::move(edges));
    for (UserId u = 0; u < ds.num_users(); ++u) {
      ds.users().SetNumeric(u, act_attr, counts[u]);
    }
  }
  {
    AttributeId fav_attr = schema.AddCategorical("favorite_genre");
    // Most-rated genre with rating >= 7 (a "liked" genre); falls back to the
    // most-rated genre overall.
    std::vector<std::array<uint16_t, kNumGenres>> liked(ds.num_users());
    std::vector<std::array<uint16_t, kNumGenres>> any(ds.num_users());
    for (auto& a : liked) a.fill(0);
    for (auto& a : any) a.fill(0);
    for (const auto& rec : ds.actions().records()) {
      uint8_t g = book_genre[rec.item];
      if (any[rec.user][g] < UINT16_MAX) ++any[rec.user][g];
      if (rec.value >= 7.0f && liked[rec.user][g] < UINT16_MAX) {
        ++liked[rec.user][g];
      }
    }
    for (UserId u = 0; u < ds.num_users(); ++u) {
      const auto& counts = std::any_of(liked[u].begin(), liked[u].end(),
                                       [](uint16_t c) { return c > 0; })
                               ? liked[u]
                               : any[u];
      size_t best = 0;
      for (size_t g = 1; g < kNumGenres; ++g) {
        if (counts[g] > counts[best]) best = g;
      }
      if (counts[best] > 0) {
        ds.users().SetValueByName(u, fav_attr, kGenres[best]);
      }
    }
  }

  VEXUS_CHECK(ds.Validate().ok());
  return ds;
}

}  // namespace vexus::data
