// Synthetic BOOKCROSSING generator.
//
// The paper's BOOKCROSSING dataset ("one million ratings of 278,858 users for
// 271,379 books", §I) is distributed from a private mirror we cannot access;
// per DESIGN.md §1 we substitute a deterministic generator that reproduces
// the properties the system is sensitive to:
//   * Zipfian book popularity and long-tailed per-user activity,
//   * 1–10 ratings skewed high (the paper: "ranging from 1 to 10 but mostly
//     high"),
//   * age / country / occupation demographics with realistic marginals,
//   * genre-structured preferences (each user favors 1–3 genres and rates
//     them higher), which is what makes "people who like fiction books"-style
//     groups discoverable in Scenario 2.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace vexus::data {

class BookCrossingGenerator {
 public:
  struct Config {
    uint32_t num_users = 5000;
    uint32_t num_books = 8000;
    uint32_t num_ratings = 40000;
    /// Zipf exponent of book popularity.
    double popularity_skew = 1.0;
    /// Zipf exponent of user activity.
    double activity_skew = 0.8;
    /// Probability mass of a user's favorite genres in their reading mix.
    double genre_affinity = 0.7;
    uint64_t seed = 42;
    /// Paper-scale preset: 278,858 users / 271,379 books / 1,000,000 ratings.
    static Config PaperScale() {
      Config c;
      c.num_users = 278858;
      c.num_books = 271379;
      c.num_ratings = 1000000;
      return c;
    }
  };

  /// Builds the dataset: demographics (age binned, country, occupation),
  /// books with genres, ratings, plus derived attributes (activity level,
  /// favorite_genre). Deterministic in config.seed.
  static Dataset Generate(const Config& config);
};

}  // namespace vexus::data
