// Action records — the paper's generic schema [user, item, value] —
// plus an item catalog with optional item categories (book genre, paper
// venue, product aisle). Categories let ETL derive action-based user
// attributes ("favorite_genre=fiction"), which is how groups like "female
// teenagers who watch romantic movies" become expressible.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "data/dictionary.h"
#include "data/schema.h"
#include "data/user_table.h"

namespace vexus::data {

using ItemId = uint32_t;

/// One action: user u rated/bought/produced item i with value v.
struct ActionRecord {
  UserId user = 0;
  ItemId item = 0;
  float value = 0.0f;
};

class ActionTable {
 public:
  /// Registers an item (idempotent); optionally assigns its category.
  ItemId AddItem(std::string_view name);
  ItemId AddItem(std::string_view name, std::string_view category);

  size_t num_items() const { return items_.size(); }
  const std::string& ItemName(ItemId i) const { return items_.Name(i); }
  std::optional<ItemId> FindItem(std::string_view name) const {
    return items_.Find(name);
  }

  /// Category code of an item (kNullValue when uncategorized); the category
  /// dictionary is shared across items.
  ValueId ItemCategory(ItemId i) const;
  const Dictionary& categories() const { return categories_; }

  /// Appends an action record.
  void AddAction(UserId user, ItemId item, float value);

  size_t num_actions() const { return records_.size(); }
  const ActionRecord& action(size_t idx) const { return records_[idx]; }
  const std::vector<ActionRecord>& records() const { return records_; }

  /// Sorts records by (user, item) and merges exact duplicates, keeping the
  /// last value (ETL dedup). Returns the number of removed records.
  size_t DeduplicateKeepLast();

  /// Number of actions per user (index = UserId), sized to `num_users`.
  std::vector<uint32_t> ActionCounts(size_t num_users) const;

 private:
  Dictionary items_;
  Dictionary categories_;
  std::vector<ValueId> item_category_;  // parallel to items_
  std::vector<ActionRecord> records_;
};

}  // namespace vexus::data
