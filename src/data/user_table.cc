#include "data/user_table.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace vexus::data {

UserTable::UserTable(Schema* schema) : schema_(schema) {
  VEXUS_CHECK(schema != nullptr);
  EnsureColumns();
}

void UserTable::EnsureColumns() {
  size_t n_attr = schema_->num_attributes();
  while (codes_.size() < n_attr) {
    codes_.emplace_back(external_ids_.size(), kNullValue);
    raw_.emplace_back();
    AttributeId a = static_cast<AttributeId>(codes_.size() - 1);
    if (schema_->attribute(a).kind() == AttributeKind::kNumeric) {
      raw_.back().assign(external_ids_.size(),
                         std::numeric_limits<double>::quiet_NaN());
    }
  }
}

UserId UserTable::AddUser(std::string_view external_id) {
  EnsureColumns();
  size_t before = external_.size();
  UserId u = external_.GetOrAdd(external_id);
  if (external_.size() == before) return u;  // already present
  external_ids_.emplace_back(external_id);
  for (AttributeId a = 0; a < codes_.size(); ++a) {
    codes_[a].push_back(kNullValue);
    if (schema_->attribute(a).kind() == AttributeKind::kNumeric) {
      raw_[a].push_back(std::numeric_limits<double>::quiet_NaN());
    }
  }
  return u;
}

const std::string& UserTable::ExternalId(UserId u) const {
  VEXUS_DCHECK(u < external_ids_.size());
  return external_ids_[u];
}

std::optional<UserId> UserTable::FindUser(std::string_view external_id) const {
  return external_.Find(external_id);
}

void UserTable::SetValue(UserId u, AttributeId a, ValueId v) {
  EnsureColumns();
  VEXUS_DCHECK(u < size() && a < codes_.size());
  codes_[a][u] = v;
}

void UserTable::SetValueByName(UserId u, AttributeId a,
                               std::string_view value) {
  EnsureColumns();
  VEXUS_DCHECK(a < schema_->num_attributes());
  ValueId v = schema_->attribute(a).values().GetOrAdd(value);
  SetValue(u, a, v);
}

void UserTable::SetNumeric(UserId u, AttributeId a, double rawv) {
  EnsureColumns();
  VEXUS_DCHECK(u < size() && a < raw_.size());
  VEXUS_DCHECK(schema_->attribute(a).kind() == AttributeKind::kNumeric)
      << "SetNumeric on categorical attribute";
  raw_[a][u] = rawv;
  const Attribute& attr = schema_->attribute(a);
  if (attr.has_bins() && !std::isnan(rawv)) {
    codes_[a][u] = attr.BinFor(rawv);
  }
}

ValueId UserTable::Value(UserId u, AttributeId a) const {
  VEXUS_DCHECK(u < size() && a < codes_.size());
  return codes_[a][u];
}

double UserTable::Numeric(UserId u, AttributeId a) const {
  VEXUS_DCHECK(u < size() && a < raw_.size());
  if (raw_[a].empty()) return std::numeric_limits<double>::quiet_NaN();
  return raw_[a][u];
}

void UserTable::ApplyBins(AttributeId a) {
  VEXUS_DCHECK(a < codes_.size());
  const Attribute& attr = schema_->attribute(a);
  VEXUS_CHECK(attr.has_bins()) << "ApplyBins without edges on " << attr.name();
  for (UserId u = 0; u < size(); ++u) {
    double v = raw_[a][u];
    codes_[a][u] = std::isnan(v) ? kNullValue : attr.BinFor(v);
  }
}

Bitset UserTable::UsersWithValue(AttributeId a, ValueId v) const {
  Bitset out(size());
  const auto& col = codes_[a];
  for (UserId u = 0; u < size(); ++u) {
    if (col[u] == v) out.Set(u);
  }
  return out;
}

size_t UserTable::NonNullCount(AttributeId a) const {
  VEXUS_DCHECK(a < codes_.size());
  size_t n = 0;
  for (ValueId v : codes_[a]) n += (v != kNullValue);
  return n;
}

}  // namespace vexus::data
