#include "server/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vexus::server {

namespace {

/// Bucket index for a latency in microseconds: floor(log2(us)), clamped.
size_t BucketOf(double micros) {
  if (!(micros >= 1.0)) return 0;  // also catches NaN
  uint64_t us = static_cast<uint64_t>(micros);
  size_t bit = 63 - static_cast<size_t>(__builtin_clzll(us));
  return std::min(bit, kLatencyBuckets - 1);
}

constexpr std::string_view kStageNames[kNumStages] = {
    "queue", "admit", "session", "rank", "greedy", "serialize",
};

}  // namespace

std::string_view StageName(Stage s) {
  return kStageNames[static_cast<size_t>(s)];
}

void LatencyHistogram::Record(double micros) {
  if (micros < 0 || std::isnan(micros)) micros = 0;
  buckets_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<uint64_t>(micros),
                    std::memory_order_relaxed);
  uint64_t us = static_cast<uint64_t>(micros);
  uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (us > seen &&
         !max_us_.compare_exchange_weak(seen, us,
                                        std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::Read() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_ms = static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / 1e3;
  s.max_ms = static_cast<double>(max_us_.load(std::memory_order_relaxed)) / 1e3;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double LatencyHistogram::Snapshot::QuantileMillis(double q) const {
  if (count == 0) return 0;
  // NaN slips through std::clamp (both comparisons are false) and would
  // reach the uint64_t cast below as NaN — UB. Pin it to 0 like the empty
  // window, the same edge-case discipline as bench Series::Percentile.
  if (std::isnan(q)) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    cum += buckets[i];
    if (cum >= rank) {
      // Upper bound of bucket i: 2^(i+1) microseconds.
      double ub_us = static_cast<double>(uint64_t{1} << std::min<size_t>(
                         i + 1, 63));
      return std::min(ub_us / 1e3, max_ms > 0 ? max_ms : ub_us / 1e3);
    }
  }
  return max_ms;
}

void ServiceMetrics::RecordRequest(RequestType type, StatusCode code,
                                   double latency_ms) {
  size_t idx = static_cast<size_t>(type);
  requests_by_type_[idx].fetch_add(1, kRelaxed);
  switch (code) {
    case StatusCode::kOk: ok_.fetch_add(1, kRelaxed); break;
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, kRelaxed);
      break;
    case StatusCode::kNotFound: not_found_.fetch_add(1, kRelaxed); break;
    case StatusCode::kResourceExhausted: shed_.fetch_add(1, kRelaxed); break;
    default: other_errors_.fetch_add(1, kRelaxed); break;
  }
  latency_by_type_[idx].Record(latency_ms * 1e3);
  latency_all_.Record(latency_ms * 1e3);
}

void ServiceMetrics::RecordTraceStages(const Trace& trace) {
  for (const Trace::Span& span : trace.spans()) {
    if (span.duration_us < 0) continue;  // still open: trace not finished
    for (size_t i = 0; i < kNumStages; ++i) {
      if (kStageNames[i] == span.name) {
        stage_latency_[i].Record(static_cast<double>(span.duration_us));
        break;
      }
    }
  }
}

MetricsSnapshot ServiceMetrics::Snapshot(uint64_t open_sessions) const {
  MetricsSnapshot s;
  for (size_t i = 0; i < kNumRequestTypes; ++i) {
    s.requests_by_type[i] = requests_by_type_[i].load(kRelaxed);
    s.latency_by_type[i] = latency_by_type_[i].Read();
  }
  s.ok = ok_.load(kRelaxed);
  s.deadline_exceeded = deadline_exceeded_.load(kRelaxed);
  s.not_found = not_found_.load(kRelaxed);
  s.shed = shed_.load(kRelaxed);
  s.other_errors = other_errors_.load(kRelaxed);
  s.evictions_ttl = evictions_ttl_.load(kRelaxed);
  s.evictions_lru = evictions_lru_.load(kRelaxed);
  s.admission_rejected = admission_rejected_.load(kRelaxed);
  s.greedy_deadline_hits = greedy_deadline_hits_.load(kRelaxed);
  s.greedy_runs = greedy_runs_.load(kRelaxed);
  s.greedy_evaluations = greedy_evaluations_.load(kRelaxed);
  s.greedy_passes = greedy_passes_.load(kRelaxed);
  s.greedy_swaps = greedy_swaps_.load(kRelaxed);
  s.degraded_effort = degraded_effort_.load(kRelaxed);
  s.degraded_k = degraded_k_.load(kRelaxed);
  s.degraded_stale = degraded_stale_.load(kRelaxed);
  s.degraded_partial = degraded_partial_.load(kRelaxed);
  s.overload_sheds = overload_sheds_.load(kRelaxed);
  s.warm_loads = warm_loads_.load(kRelaxed);
  s.last_warm_load_ms =
      static_cast<double>(last_warm_load_us_.load(kRelaxed)) / 1e3;
  s.open_sessions = open_sessions;
  if (uint64_t shards = num_shards_.load(kRelaxed); shards > 1) {
    s.shard_evaluations.resize(shards);
    for (uint64_t i = 0; i < shards; ++i) {
      s.shard_evaluations[i] = shard_evaluations_[i].load(kRelaxed);
    }
  }
  s.latency_all = latency_all_.Read();
  for (size_t i = 0; i < kNumStages; ++i) {
    s.stage_latency[i] = stage_latency_[i].Read();
  }
  return s;
}

namespace {

json::Value LatencyJson(const LatencyHistogram::Snapshot& l) {
  json::Object o;
  o.emplace_back("count", json::Value(l.count));
  o.emplace_back("mean_ms", json::Value(l.MeanMillis()));
  o.emplace_back("p50_ms", json::Value(l.QuantileMillis(0.50)));
  o.emplace_back("p95_ms", json::Value(l.QuantileMillis(0.95)));
  o.emplace_back("p99_ms", json::Value(l.QuantileMillis(0.99)));
  o.emplace_back("max_ms", json::Value(l.max_ms));
  return json::Value(std::move(o));
}

}  // namespace

json::Value MetricsSnapshot::ToJson() const {
  json::Object o;
  o.emplace_back("total_requests", json::Value(TotalRequests()));
  o.emplace_back("ok", json::Value(ok));
  o.emplace_back("deadline_exceeded", json::Value(deadline_exceeded));
  o.emplace_back("not_found", json::Value(not_found));
  o.emplace_back("shed", json::Value(shed));
  o.emplace_back("other_errors", json::Value(other_errors));
  o.emplace_back("evictions_ttl", json::Value(evictions_ttl));
  o.emplace_back("evictions_lru", json::Value(evictions_lru));
  o.emplace_back("admission_rejected", json::Value(admission_rejected));
  o.emplace_back("greedy_deadline_hits", json::Value(greedy_deadline_hits));
  o.emplace_back("greedy_runs", json::Value(greedy_runs));
  o.emplace_back("greedy_evaluations", json::Value(greedy_evaluations));
  o.emplace_back("greedy_passes", json::Value(greedy_passes));
  o.emplace_back("greedy_swaps", json::Value(greedy_swaps));
  o.emplace_back("degraded_effort", json::Value(degraded_effort));
  o.emplace_back("degraded_k", json::Value(degraded_k));
  o.emplace_back("degraded_stale", json::Value(degraded_stale));
  o.emplace_back("degraded_partial", json::Value(degraded_partial));
  o.emplace_back("overload_sheds", json::Value(overload_sheds));
  if (!shard_evaluations.empty()) {
    json::Object sh;
    sh.emplace_back("count",
                    json::Value(static_cast<uint64_t>(
                        shard_evaluations.size())));
    json::Array evals;
    evals.reserve(shard_evaluations.size());
    for (uint64_t v : shard_evaluations) evals.emplace_back(v);
    sh.emplace_back("evaluations", json::Value(std::move(evals)));
    o.emplace_back("shards", json::Value(std::move(sh)));
  }
  o.emplace_back("warm_loads", json::Value(warm_loads));
  o.emplace_back("last_warm_load_ms", json::Value(last_warm_load_ms));
  o.emplace_back("open_sessions", json::Value(open_sessions));
  json::Object by_type;
  for (size_t i = 0; i < kNumRequestTypes; ++i) {
    if (requests_by_type[i] == 0) continue;
    json::Object op;
    op.emplace_back("requests", json::Value(requests_by_type[i]));
    op.emplace_back("latency", LatencyJson(latency_by_type[i]));
    by_type.emplace_back(
        std::string(RequestTypeName(static_cast<RequestType>(i))),
        json::Value(std::move(op)));
  }
  o.emplace_back("by_op", json::Value(std::move(by_type)));
  o.emplace_back("latency", LatencyJson(latency_all));
  json::Object stages;
  for (size_t i = 0; i < kNumStages; ++i) {
    if (stage_latency[i].count == 0) continue;
    stages.emplace_back(std::string(StageName(static_cast<Stage>(i))),
                        LatencyJson(stage_latency[i]));
  }
  if (!stages.empty()) {
    o.emplace_back("stages", json::Value(std::move(stages)));
  }
  return json::Value(std::move(o));
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "service metrics: %llu requests (ok=%llu dl=%llu nf=%llu "
                "shed=%llu err=%llu) sessions=%llu\n",
                static_cast<unsigned long long>(TotalRequests()),
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(deadline_exceeded),
                static_cast<unsigned long long>(not_found),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(other_errors),
                static_cast<unsigned long long>(open_sessions));
  out += line;
  std::snprintf(line, sizeof(line),
                "evictions: ttl=%llu lru=%llu admission_rejected=%llu "
                "greedy_deadline_hits=%llu\n",
                static_cast<unsigned long long>(evictions_ttl),
                static_cast<unsigned long long>(evictions_lru),
                static_cast<unsigned long long>(admission_rejected),
                static_cast<unsigned long long>(greedy_deadline_hits));
  out += line;
  std::snprintf(line, sizeof(line),
                "greedy: runs=%llu evaluations=%llu passes=%llu swaps=%llu\n",
                static_cast<unsigned long long>(greedy_runs),
                static_cast<unsigned long long>(greedy_evaluations),
                static_cast<unsigned long long>(greedy_passes),
                static_cast<unsigned long long>(greedy_swaps));
  out += line;
  if (!shard_evaluations.empty()) {
    out += "shards:";
    for (size_t s = 0; s < shard_evaluations.size(); ++s) {
      std::snprintf(line, sizeof(line), " s%zu=%llu", s,
                    static_cast<unsigned long long>(shard_evaluations[s]));
      out += line;
    }
    out += '\n';
  }
  if (DegradedTotal() > 0 || overload_sheds > 0) {
    std::snprintf(line, sizeof(line),
                  "overload: degraded_effort=%llu degraded_k=%llu "
                  "degraded_stale=%llu degraded_partial=%llu "
                  "overload_sheds=%llu\n",
                  static_cast<unsigned long long>(degraded_effort),
                  static_cast<unsigned long long>(degraded_k),
                  static_cast<unsigned long long>(degraded_stale),
                  static_cast<unsigned long long>(degraded_partial),
                  static_cast<unsigned long long>(overload_sheds));
    out += line;
  }
  if (warm_loads > 0) {
    std::snprintf(line, sizeof(line),
                  "cold start: warm_loads=%llu last_warm_load_ms=%.3f\n",
                  static_cast<unsigned long long>(warm_loads),
                  last_warm_load_ms);
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-14s %10s %10s %10s %10s %10s %10s\n",
                "op", "requests", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
                "max_ms");
  out += line;
  auto row = [&](std::string_view name, uint64_t n,
                 const LatencyHistogram::Snapshot& l) {
    std::snprintf(line, sizeof(line),
                  "%-14s %10llu %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                  std::string(name).c_str(),
                  static_cast<unsigned long long>(n), l.MeanMillis(),
                  l.QuantileMillis(0.50), l.QuantileMillis(0.95),
                  l.QuantileMillis(0.99), l.max_ms);
    out += line;
  };
  for (size_t i = 0; i < kNumRequestTypes; ++i) {
    if (requests_by_type[i] == 0) continue;
    row(RequestTypeName(static_cast<RequestType>(i)), requests_by_type[i],
        latency_by_type[i]);
  }
  row("ALL", TotalRequests(), latency_all);
  for (size_t i = 0; i < kNumStages; ++i) {
    if (stage_latency[i].count == 0) continue;
    row("stage:" + std::string(StageName(static_cast<Stage>(i))),
        stage_latency[i].count, stage_latency[i]);
  }
  return out;
}

}  // namespace vexus::server
