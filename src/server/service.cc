#include "server/service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/shard_map.h"
#include "common/stopwatch.h"
#include "core/partial_eval.h"
#include "server/gather.h"
#include "server/overload.h"

namespace vexus::server {

namespace {

/// Groups-per-screen requests above this are client errors (the paper caps
/// screens at 7 by Miller's law; we allow head-room for scripted analysis).
constexpr uint64_t kMaxScreenK = 64;

/// Overload-source slot for the gather lap delay (DESIGN.md §16.4). The
/// dispatcher owns slot 0 and the TCP front-end's loops own 1..num_loops;
/// the last slot only collides with a loop at 16+ event loops, and even
/// then max-of-mins merely merges the two signals conservatively.
constexpr size_t kGatherOverloadSource = kMaxOverloadSources - 1;

}  // namespace

ExplorationService::ExplorationService(const core::VexusEngine* engine,
                                       ServiceOptions options)
    : engine_(engine), options_(std::move(options)) {
  VEXUS_CHECK(engine != nullptr);
  InitRuntime();
  ConfigureSharding();
  sessions_ =
      std::make_unique<SessionManager>(engine_, options_.sessions, &metrics_);
  warm_state_.store(static_cast<int>(WarmState::kWarm),
                    std::memory_order_release);
}

ExplorationService::ExplorationService(data::Dataset dataset,
                                       ServiceOptions options)
    : engine_(nullptr), options_(std::move(options)) {
  cold_dataset_ = std::make_unique<data::Dataset>(std::move(dataset));
  InitRuntime();
  // Cold: no engine, no session manager. get_stats and warm_from_snapshot
  // are the only ops that succeed until WarmFromSnapshot() flips warm_.
}

ExplorationService::ExplorationService(core::SnapshotShard shard,
                                       uint64_t generation,
                                       ServiceOptions options)
    : engine_(nullptr), options_(std::move(options)) {
  backend_shard_ = std::make_unique<core::SnapshotShard>(std::move(shard));
  backend_generation_ = generation;
  InitRuntime();
  // The service stays "cold" on purpose: session ops answer
  // FailedPrecondition, while eval_partial / shard_info / health /
  // get_stats — everything a gather coordinator needs — serve immediately.
}

void ExplorationService::ConfigureGather(
    std::unique_ptr<GatherCoordinator> gather) {
  gather_ = std::move(gather);
  options_.session_template.greedy.remote_scatter = gather_.get();
}

void ExplorationService::InitRuntime() {
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  // Point every session's greedy scan at our own worker pool. Sessions run
  // their greedy loop *on* a pool worker (the dispatcher executes handlers
  // there); ParallelForChunked's caller-participation makes that safe — a
  // saturated pool degrades to a serial scan instead of deadlocking.
  options_.session_template.greedy.scan_pool =
      options_.parallel_greedy_scan ? pool_.get() : nullptr;
  trace_log_ = std::make_unique<TraceLog>(options_.trace);
  dispatcher_ = std::make_unique<Dispatcher>(
      pool_.get(),
      [this](const Request& req, const Deadline& deadline, TraceSpan& span) {
        return Execute(req, deadline, span);
      },
      options_.dispatcher, &metrics_, trace_log_.get());
}

void ExplorationService::ConfigureSharding() {
  if (options_.num_shards <= 1) return;
  auto map = std::make_unique<ShardMap>(engine_->groups().num_users(),
                                        options_.num_shards);
  // A universe that clamps to a single shard is identical to unsharded —
  // skip the map (and the per-shard stats) rather than carry a degenerate
  // one.
  if (map->num_shards() <= 1) return;
  shard_map_ = std::move(map);
  if (options_.session_template.greedy.shard_map == nullptr) {
    options_.session_template.greedy.shard_map = shard_map_.get();
  }
  metrics_.ConfigureShards(shard_map_->num_shards());
}

ExplorationService::~ExplorationService() { Shutdown(); }

void ExplorationService::Shutdown() { pool_->Shutdown(); }

Status ExplorationService::WarmFromSnapshot(const std::string& path) {
  // Exactly one warmer: CAS kCold -> kWarming. Losers return immediately —
  // a concurrent warm attempt must not park a pool worker behind a
  // multi-second snapshot load (with a small pool that stalls every other
  // request past its deadline).
  if (shard_backend()) {
    return Status::FailedPrecondition(
        "a shard backend serves one snapshot section for life; restart it "
        "to change stores");
  }
  int expected = static_cast<int>(WarmState::kCold);
  if (!warm_state_.compare_exchange_strong(
          expected, static_cast<int>(WarmState::kWarming),
          std::memory_order_acquire, std::memory_order_acquire)) {
    return expected == static_cast<int>(WarmState::kWarming)
               ? Status::FailedPrecondition(
                     "a warm_from_snapshot is already in flight")
               : Status::FailedPrecondition("service is already warm");
  }
  VEXUS_CHECK(cold_dataset_ != nullptr);  // cold ctor is the only cold path

  // From here on every failure path must roll the state back to kCold so the
  // warm-up stays retryable with another snapshot path.
  auto rollback = [this] {
    warm_state_.store(static_cast<int>(WarmState::kCold),
                      std::memory_order_release);
  };

  // Chaos site: the warm-up failing after winning the race (a snapshot
  // fetch layer erroring before the local load even starts).
  if (Status injected = failpoint::Inject("service.warm"); !injected.ok()) {
    rollback();
    return injected;
  }

  Stopwatch watch;
  // FromSnapshot consumes the dataset only on success, so a failed load
  // (missing file, corruption, wrong universe) leaves the service cold and
  // retryable with a different path.
  auto engine = core::VexusEngine::FromSnapshot(cold_dataset_.get(), path);
  if (!engine.ok()) {
    rollback();
    return engine.status().WithContext("warm_from_snapshot(" + path + ")");
  }
  owned_engine_ = std::make_unique<core::VexusEngine>(
      std::move(engine).ValueOrDie());
  cold_dataset_.reset();
  engine_ = owned_engine_.get();
  ConfigureSharding();
  sessions_ =
      std::make_unique<SessionManager>(engine_, options_.sessions, &metrics_);
  metrics_.RecordWarmLoad(watch.ElapsedMillis());
  // Chaos site: a sleep here holds the service in kWarming with the engine
  // already built — the window the concurrent-warm regression test uses to
  // prove the loser neither double-warms nor observes a torn pointer.
  VEXUS_FAILPOINT_HIT("service.warm.built");
  // Release: request handlers acquire-load warm_state_ before touching
  // engine_ / sessions_, so the stores above are visible once this flips.
  warm_state_.store(static_cast<int>(WarmState::kWarm),
                    std::memory_order_release);
  return Status::OK();
}

std::future<Response> ExplorationService::Dispatch(Request req) {
  // Health probes are answered inline, never queued: an orchestrator must
  // be able to tell "overloaded" from "dead", which requires the probe to
  // bypass the very queue whose congestion it reports (and to never be
  // shed by the ladder it observes).
  if (req.type == RequestType::kHealth) {
    std::promise<Response> ready;
    ready.set_value(DoHealth(req));
    return ready.get_future();
  }
  // shard_info is probe-class (the gather coordinator's breaker probe):
  // inline for the same reason as health.
  if (req.type == RequestType::kShardInfo) {
    std::promise<Response> ready;
    ready.set_value(DoShardInfo(req));
    return ready.get_future();
  }
  return dispatcher_->Submit(std::move(req));
}

void ExplorationService::DispatchAsync(Request req,
                                       Dispatcher::Completion done) {
  // Same health-probe bypass as Dispatch(): answered inline, never queued,
  // never shed (see the comment there).
  if (req.type == RequestType::kHealth) {
    done(DoHealth(req));
    return;
  }
  if (req.type == RequestType::kShardInfo) {
    done(DoShardInfo(req));
    return;
  }
  dispatcher_->SubmitAsync(std::move(req), std::move(done));
}

Response ExplorationService::Call(Request req) {
  return Dispatch(std::move(req)).get();
}

std::string ExplorationService::HandleLine(const std::string& line) {
  auto req = Request::Decode(line);
  if (!req.ok()) {
    // Not a decodable request: answer a synthetic error line. No typed op
    // exists to account it under, so it bypasses per-op metrics by design.
    return EncodeParseError(req.status());
  }
  return Call(std::move(req).ValueOrDie()).Encode();
}

MetricsSnapshot ExplorationService::Stats() const {
  // The acquire on warm_ orders the sessions_ read against the warm-up's
  // release store; while cold the open-session gauge is simply 0.
  if (!warm()) return metrics_.Snapshot(0);
  return metrics_.Snapshot(sessions_->size());
}

// ---------------------------------------------------------------------------
// Worker-side execution
// ---------------------------------------------------------------------------

Response ExplorationService::Execute(const Request& req,
                                     const Deadline& deadline,
                                     TraceSpan& span) {
  switch (req.type) {
    case RequestType::kGetStats:
      return DoGetStats(req);
    case RequestType::kGetTrace:
      return DoGetTrace(req);
    case RequestType::kWarmFromSnapshot:
      return DoWarmFromSnapshot(req, span);
    case RequestType::kHealth:
      // Normally intercepted by Dispatch(); kept here so a health request
      // routed through the dispatcher directly still answers.
      return DoHealth(req);
    case RequestType::kShardInfo:
      // Likewise normally inlined by Dispatch/DispatchAsync.
      return DoShardInfo(req);
    case RequestType::kEvalPartial:
      return DoEvalPartial(req, deadline);
    default:
      break;
  }
  // Every remaining op needs the engine and the session manager; while the
  // service is cold neither exists. The acquire pairs with the warm-up's
  // release store, making engine_/sessions_ safe to dereference below.
  if (!warm()) {
    return ErrorResponse(
        req, Status::FailedPrecondition(
                 "service is cold: no engine loaded yet "
                 "(send warm_from_snapshot first)"));
  }
  if (req.type == RequestType::kStartSession) {
    return DoStartSession(req, deadline, span);
  }
  return DoSessionOp(req, deadline, span);
}

Response ExplorationService::DoEvalPartial(const Request& req,
                                           const Deadline& deadline) {
  Response resp;
  resp.type = req.type;
  if (!shard_backend()) {
    resp.status = Status::FailedPrecondition(
        "eval_partial is a shard-backend op (start with --shard-backend)");
    return resp;
  }
  const core::SnapshotShard& shard = *backend_shard_;
  resp.generation = backend_generation_;
  resp.shard = static_cast<uint32_t>(shard.shard);
  resp.num_shards = static_cast<uint32_t>(shard.num_shards);
  resp.user_begin = shard.user_begin;
  resp.user_end = shard.user_end;
  // Identity + generation fencing: a coordinator talking to the wrong
  // backend (redeploy shuffled ports) or a backend serving a different
  // store generation must fail the lap, never feed the fold — mixed
  // universes would silently corrupt every screen.
  if (*req.shard != shard.shard || *req.num_shards != shard.num_shards) {
    resp.status = Status::FailedPrecondition(
        "shard identity mismatch: this backend is " +
        std::to_string(shard.shard) + "/" + std::to_string(shard.num_shards) +
        ", request expected " + std::to_string(*req.shard) + "/" +
        std::to_string(*req.num_shards));
    return resp;
  }
  if (req.generation != 0 && req.generation != backend_generation_) {
    resp.status = Status::FailedPrecondition(
        "stale store generation: backend serves " +
        std::to_string(backend_generation_) + ", request expected " +
        std::to_string(req.generation));
    return resp;
  }
  if (deadline.Expired()) {
    resp.status =
        Status::DeadlineExceeded("budget exhausted before the partial scan");
    return resp;
  }
  // Chaos sites: a stall here is a slow shard (the hedging/backoff path);
  // an injected status is a flaky backend (the retry/breaker path).
  VEXUS_FAILPOINT_HIT("service.eval_partial");
  if (Status injected = failpoint::Inject("service.eval_partial.fail");
      !injected.ok()) {
    resp.status = injected;
    return resp;
  }
  core::PartialEvalInput input;
  input.anchor = req.anchor;
  input.selection = req.selection;
  input.trials = req.trials;
  auto partials = core::EvalCoveragePartials(shard.groups, input);
  if (!partials.ok()) {
    resp.status = partials.status();
    return resp;
  }
  resp.partials = std::move(partials).ValueOrDie();
  return resp;
}

Response ExplorationService::DoShardInfo(const Request& req) {
  Response resp;
  resp.type = req.type;
  if (!shard_backend()) {
    resp.status = Status::FailedPrecondition(
        "shard_info is a shard-backend op (start with --shard-backend)");
    return resp;
  }
  const core::SnapshotShard& shard = *backend_shard_;
  resp.generation = backend_generation_;
  resp.shard = static_cast<uint32_t>(shard.shard);
  resp.num_shards = static_cast<uint32_t>(shard.num_shards);
  resp.user_begin = shard.user_begin;
  resp.user_end = shard.user_end;
  resp.num_groups = shard.groups.size();
  return resp;
}

void ExplorationService::FillScreen(const core::GreedySelection& selection,
                                    Response* resp, bool fresh_run,
                                    const TraceSpan& span) {
  TraceSpan serialize = span.Child("serialize");
  if (fresh_run) {
    metrics_.RecordGreedyRun(selection.evaluations, selection.passes,
                             selection.swaps);
    if (!selection.shard_evaluations.empty()) {
      metrics_.RecordShardEvaluations(selection.shard_evaluations);
    }
    // Multi-box gather degradation (DESIGN.md §16): a screen scored over a
    // subset of the user universe outranks the effort/k rung flags — the
    // explorer should know the *data*, not just the effort, was partial.
    if (selection.covered_fraction < 1.0) {
      resp->degraded = "partial";
      resp->covered_fraction = selection.covered_fraction;
    }
    // Gather lap delay feeds the overload ladder as its own source: slow
    // shards escalate degradation exactly like a congested queue would.
    if (selection.gather_lap_ms > 0) {
      dispatcher_->overload().OnQueueDelay(selection.gather_lap_ms,
                                           kGatherOverloadSource);
    }
  }
  const mining::GroupStore& store = engine_->groups();
  const data::Schema& schema = engine_->dataset().schema();
  resp->groups.reserve(selection.groups.size());
  for (mining::GroupId g : selection.groups) {
    GroupView view;
    view.id = g;
    view.size = store.group(g).size();
    view.description = store.group(g).DescriptionString(schema);
    resp->groups.push_back(std::move(view));
  }
  resp->coverage = selection.quality.coverage;
  resp->diversity = selection.quality.diversity;
  resp->greedy_deadline_hit = selection.deadline_hit;
}

Response ExplorationService::DoStartSession(const Request& req,
                                            const Deadline& deadline,
                                            TraceSpan& span) {
  core::SessionOptions opts = options_.session_template;
  // Overload ladder (DESIGN.md §12): a new session has no cached screen to
  // serve stale, so start_session degrades at most to the reduce-k rung.
  const OverloadRung rung = dispatcher_->overload().rung();
  const OverloadOptions& oopts = dispatcher_->overload().options();
  if (req.k.has_value()) {
    if (*req.k == 0 || *req.k > kMaxScreenK) {
      return ErrorResponse(
          req, Status::InvalidArgument("k must be in [1, " +
                                       std::to_string(kMaxScreenK) + "]"));
    }
    opts.greedy.k = static_cast<size_t>(*req.k);
  }
  if (req.learning_rate.has_value()) {
    if (!(*req.learning_rate > 0) || !std::isfinite(*req.learning_rate)) {
      return ErrorResponse(
          req, Status::InvalidArgument("learning_rate must be finite and > 0"));
    }
    opts.learning_rate = *req.learning_rate;
  }

  TraceSpan admit = span.Child("admit");
  auto created = sessions_->Create(req.session_id, opts);
  admit.Close();
  if (!created.ok()) return ErrorResponse(req, created.status());
  uint64_t generation = std::move(created).ValueOrDie();

  TraceSpan session_span = span.Child("session");
  auto lease = sessions_->Acquire(req.session_id, generation);
  session_span.Close();
  if (!lease.ok()) return ErrorResponse(req, lease.status());
  auto l = std::move(lease).ValueOrDie();

  Response resp;
  resp.type = req.type;
  resp.session_id = req.session_id;
  resp.generation = generation;
  if (deadline.Expired()) {
    resp.status = Status::DeadlineExceeded(
        "budget exhausted before the initial screen was computed");
    return resp;
  }
  // Remaining-budget clamp: the initial screen's greedy loop may use at
  // most what is left of the request's end-to-end budget. The trace pointer
  // is set for this request only and restored with the time limit — the
  // span dies with the request, the session does not. The overload ladder
  // degrades *this request's* effort/k the same way: the session keeps the
  // explorer's requested options for when the overload passes.
  core::SessionOptions& live = l->mutable_options();
  double effective_limit = opts.greedy.time_limit_ms;
  if (rung >= OverloadRung::kShrinkEffort) {
    effective_limit *= oopts.effort_factor;
    if (oopts.degraded_candidate_cap > 0) {
      live.greedy.initial_candidate_cap =
          std::min(live.greedy.initial_candidate_cap,
                   static_cast<size_t>(oopts.degraded_candidate_cap));
    }
    resp.degraded = "effort";
  }
  if (rung >= OverloadRung::kReduceK) {
    live.greedy.k =
        std::min(live.greedy.k, static_cast<size_t>(oopts.degraded_k));
    resp.degraded = "k";  // deepest applied rung wins the flag
  }
  live.greedy.time_limit_ms =
      std::min(effective_limit, deadline.RemainingMillis());
  live.greedy.trace = span.enabled() ? &span : nullptr;
  FillScreen(l->Start(), &resp, /*fresh_run=*/true, span);
  live.greedy = opts.greedy;  // restore the explorer's requested options
  live.greedy.trace = nullptr;
  if (resp.degraded.has_value()) {
    if (*resp.degraded == "partial") {
      metrics_.RecordDegradedPartial();
    } else if (*resp.degraded == "k") {
      metrics_.RecordDegradedK();
    } else {
      metrics_.RecordDegradedEffort();
    }
  }
  resp.step = 0;
  resp.num_steps = l->NumSteps();
  return resp;
}

Response ExplorationService::DoSessionOp(const Request& req,
                                         const Deadline& deadline,
                                         TraceSpan& span) {
  // end_session needs no lease of its own: Remove drains in-flight work.
  if (req.type == RequestType::kEndSession) {
    auto removed = sessions_->Remove(req.session_id, req.generation);
    if (!removed.ok()) return ErrorResponse(req, removed.status());
    core::SessionDigest digest = std::move(removed).ValueOrDie();
    Response resp;
    resp.type = req.type;
    resp.session_id = req.session_id;
    resp.num_steps = digest.num_steps;
    resp.step = digest.num_steps == 0 ? 0 : digest.num_steps - 1;
    resp.memo_groups = digest.memo_groups;
    resp.memo_users = digest.memo_users;
    return resp;
  }

  TraceSpan session_span = span.Child("session");
  auto lease = sessions_->Acquire(req.session_id, req.generation);
  session_span.Close();
  if (!lease.ok()) return ErrorResponse(req, lease.status());
  auto l = std::move(lease).ValueOrDie();

  Response resp;
  resp.type = req.type;
  resp.session_id = req.session_id;
  resp.generation = l.generation();

  // The lease wait above may have consumed the rest of the budget; mutating
  // ops must not start late (the explorer has moved on).
  if (deadline.Expired()) {
    resp.status = Status::DeadlineExceeded("budget exhausted waiting for the session lease");
    return resp;
  }

  const mining::GroupStore& store = engine_->groups();
  switch (req.type) {
    case RequestType::kSelectGroup: {
      if (*req.group >= store.size()) {
        resp.status = Status::InvalidArgument(
            "unknown group " + std::to_string(*req.group) + " (store has " +
            std::to_string(store.size()) + ")");
        return resp;
      }
      // Overload ladder (DESIGN.md §12). Rung 3 (stale): answer the
      // session's *cached* current screen without running greedy or
      // learning — the explorer sees an instant, slightly stale response
      // flagged degraded:"stale" instead of a shed. Rungs 1–2 shrink this
      // request's greedy effort / k; the session's own options survive.
      const OverloadRung rung = dispatcher_->overload().rung();
      const OverloadOptions& oopts = dispatcher_->overload().options();
      if (rung >= OverloadRung::kStale && l->NumSteps() > 0) {
        FillScreen(l->Current(), &resp, /*fresh_run=*/false, span);
        resp.degraded = "stale";
        metrics_.RecordDegradedStale();
        break;
      }
      core::SessionOptions& live = l->mutable_options();
      const core::GreedyOptions configured = live.greedy;
      double effective_limit = configured.time_limit_ms;
      if (rung >= OverloadRung::kShrinkEffort) {
        effective_limit *= oopts.effort_factor;
        if (oopts.degraded_candidate_cap > 0) {
          live.greedy.initial_candidate_cap =
              std::min(live.greedy.initial_candidate_cap,
                       static_cast<size_t>(oopts.degraded_candidate_cap));
        }
        resp.degraded = "effort";
      }
      if (rung >= OverloadRung::kReduceK) {
        live.greedy.k =
            std::min(live.greedy.k, static_cast<size_t>(oopts.degraded_k));
        resp.degraded = "k";  // deepest applied rung wins the flag
      }
      live.greedy.time_limit_ms =
          std::min(effective_limit, deadline.RemainingMillis());
      live.greedy.trace = span.enabled() ? &span : nullptr;
      FillScreen(l->SelectGroup(*req.group), &resp, /*fresh_run=*/true, span);
      live.greedy = configured;  // undo the per-request clamp + degradation
      live.greedy.trace = nullptr;
      if (resp.degraded.has_value()) {
        if (*resp.degraded == "partial") {
          metrics_.RecordDegradedPartial();
        } else if (*resp.degraded == "k") {
          metrics_.RecordDegradedK();
        } else {
          metrics_.RecordDegradedEffort();
        }
      }
      break;
    }
    case RequestType::kBacktrack: {
      Status st = l->Backtrack(static_cast<size_t>(*req.step));
      if (!st.ok()) {
        resp.status = std::move(st);
        return resp;
      }
      FillScreen(l->Current(), &resp, /*fresh_run=*/false, span);
      break;
    }
    case RequestType::kBookmark: {
      if (req.group.has_value()) {
        if (*req.group >= store.size()) {
          resp.status = Status::InvalidArgument(
              "unknown group " + std::to_string(*req.group));
          return resp;
        }
        l->BookmarkGroup(*req.group);
      } else {
        if (*req.user >= engine_->dataset().num_users()) {
          resp.status = Status::InvalidArgument(
              "unknown user " + std::to_string(*req.user));
          return resp;
        }
        l->BookmarkUser(*req.user);
      }
      break;
    }
    case RequestType::kUnlearn: {
      if (*req.token >= l->tokens().num_tokens()) {
        resp.status = Status::InvalidArgument(
            "unknown token " + std::to_string(*req.token));
        return resp;
      }
      l->Unlearn(*req.token);
      break;
    }
    case RequestType::kGetContext: {
      TraceSpan serialize = span.Child("serialize");
      size_t top_k = static_cast<size_t>(req.top_k.value_or(10));
      for (const auto& ts : l->ContextTokens(top_k)) {
        ContextTokenView view;
        view.token = ts.token;
        view.score = ts.score;
        view.label = l->tokens().Label(ts.token, engine_->dataset());
        resp.context.push_back(std::move(view));
      }
      break;
    }
    default:
      resp.status = Status::NotSupported("unhandled op");
      return resp;
  }

  resp.num_steps = l->NumSteps();
  resp.step = resp.num_steps == 0 ? 0 : resp.num_steps - 1;
  resp.memo_groups = l->memo().groups.size();
  resp.memo_users = l->memo().users.size();
  return resp;
}

Response ExplorationService::DoGetStats(const Request& req) {
  // Ride the stats poll for TTL progress: monitoring traffic alone keeps
  // expired sessions from accumulating even when no explorer is active.
  // While cold there is no session manager (and nothing to sweep) — stats
  // still answer, so monitoring works before the first warm-up.
  if (warm()) sessions_->SweepExpired();
  Response resp;
  resp.type = req.type;
  resp.stats = Stats().ToJson();
  if (gather_ != nullptr) {
    // Ride the same poll for breaker recovery: an open circuit past its
    // cooldown gets its half-open probe here, so a recovered backend flips
    // back to closed even when no explorer traffic is flowing.
    gather_->ProbeShards();
    resp.stats->AsObject().emplace_back("gather", gather_->MembershipJson());
  }
  return resp;
}

Response ExplorationService::DoWarmFromSnapshot(const Request& req,
                                                TraceSpan& span) {
  Response resp;
  resp.type = req.type;
  TraceSpan warm_span = span.Child("warm");
  resp.status = WarmFromSnapshot(*req.path);
  return resp;
}

Response ExplorationService::DoHealth(const Request& req) {
  const OverloadController& overload = dispatcher_->overload();
  const bool warm_ready = warm();
  // A shard backend is "ready" the moment it is up: it never warms (there
  // is no engine), and its one job — eval_partial — serves immediately.
  const bool ready = warm_ready || shard_backend();
  const int state = warm_state_.load(std::memory_order_relaxed);
  const OverloadRung rung = overload.rung();

  json::Object h;
  h.emplace_back("alive", json::Value(true));
  // Readiness = warm: a cold replica can answer health/stats/warm ops but
  // no session traffic, so orchestrators should not route explorers to it.
  // (Shard backends are the exception above — their readiness means "the
  // gather fleet may route eval_partial here".)
  h.emplace_back("ready", json::Value(ready));
  h.emplace_back(
      "state",
      json::Value(shard_backend() ? "shard_backend"
                  : state == static_cast<int>(WarmState::kWarm) ? "warm"
                  : state == static_cast<int>(WarmState::kWarming)
                      ? "warming"
                      : "cold"));
  if (shard_backend()) {
    h.emplace_back("shard", json::Value(backend_shard_->shard));
    h.emplace_back("num_shards", json::Value(backend_shard_->num_shards));
    h.emplace_back("generation", json::Value(backend_generation_));
  }
  h.emplace_back("overload_rung", json::Value(static_cast<int64_t>(rung)));
  h.emplace_back("overload_rung_name", json::Value(OverloadRungName(rung)));
  h.emplace_back("queue_depth",
                 json::Value(static_cast<uint64_t>(dispatcher_->queue_depth())));
  h.emplace_back("queue_delay_min_ms",
                 json::Value(overload.last_window_min_delay_ms()));
  h.emplace_back("overload_escalations", json::Value(overload.escalations()));
  // Degraded/shed counters from one relaxed snapshot — no quantile math,
  // no per-op JSON table, so the probe stays cheap for high-rate polling.
  MetricsSnapshot snap = metrics_.Snapshot(warm_ready ? sessions_->size() : 0);
  json::Object degraded;
  degraded.emplace_back("effort", json::Value(snap.degraded_effort));
  degraded.emplace_back("k", json::Value(snap.degraded_k));
  degraded.emplace_back("stale", json::Value(snap.degraded_stale));
  degraded.emplace_back("partial", json::Value(snap.degraded_partial));
  h.emplace_back("degraded", json::Value(std::move(degraded)));
  h.emplace_back("overload_sheds", json::Value(snap.overload_sheds));
  h.emplace_back("shed", json::Value(snap.shed));
  h.emplace_back("open_sessions", json::Value(snap.open_sessions));

  Response resp;
  resp.type = req.type;
  resp.health = json::Value(std::move(h));
  return resp;
}

Response ExplorationService::DoGetTrace(const Request& req) {
  Response resp;
  resp.type = req.type;
  if (!trace_log_->enabled()) {
    resp.status = Status::NotSupported(
        "tracing is disabled (ServiceOptions::trace.enabled)");
    return resp;
  }
  size_t n = static_cast<size_t>(req.n.value_or(1));
  std::vector<TraceRecord> records =
      req.slowest ? trace_log_->SlowestN(n) : trace_log_->LastN(n);
  json::Array arr;
  arr.reserve(records.size());
  for (const TraceRecord& r : records) arr.push_back(TraceLog::ToJson(r));
  resp.traces = json::Value(std::move(arr));
  return resp;
}

}  // namespace vexus::server
