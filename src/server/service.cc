#include "server/service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace vexus::server {

namespace {

/// Groups-per-screen requests above this are client errors (the paper caps
/// screens at 7 by Miller's law; we allow head-room for scripted analysis).
constexpr uint64_t kMaxScreenK = 64;

}  // namespace

ExplorationService::ExplorationService(const core::VexusEngine* engine,
                                       ServiceOptions options)
    : engine_(engine), options_(std::move(options)) {
  VEXUS_CHECK(engine != nullptr);
  InitRuntime();
  sessions_ =
      std::make_unique<SessionManager>(engine_, options_.sessions, &metrics_);
  warm_.store(true, std::memory_order_release);
}

ExplorationService::ExplorationService(data::Dataset dataset,
                                       ServiceOptions options)
    : engine_(nullptr), options_(std::move(options)) {
  cold_dataset_ = std::make_unique<data::Dataset>(std::move(dataset));
  InitRuntime();
  // Cold: no engine, no session manager. get_stats and warm_from_snapshot
  // are the only ops that succeed until WarmFromSnapshot() flips warm_.
}

void ExplorationService::InitRuntime() {
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  // Point every session's greedy scan at our own worker pool. Sessions run
  // their greedy loop *on* a pool worker (the dispatcher executes handlers
  // there); ParallelForChunked's caller-participation makes that safe — a
  // saturated pool degrades to a serial scan instead of deadlocking.
  options_.session_template.greedy.scan_pool =
      options_.parallel_greedy_scan ? pool_.get() : nullptr;
  trace_log_ = std::make_unique<TraceLog>(options_.trace);
  dispatcher_ = std::make_unique<Dispatcher>(
      pool_.get(),
      [this](const Request& req, const Deadline& deadline, TraceSpan& span) {
        return Execute(req, deadline, span);
      },
      options_.dispatcher, &metrics_, trace_log_.get());
}

ExplorationService::~ExplorationService() { Shutdown(); }

void ExplorationService::Shutdown() { pool_->Shutdown(); }

Status ExplorationService::WarmFromSnapshot(const std::string& path) {
  // Serialize warm attempts: the first successful one wins; concurrent and
  // repeated calls see "already warm". The snapshot load itself runs under
  // the lock — it is a once-per-process event, and the lock is not on any
  // request path except the warm op itself.
  std::lock_guard<std::mutex> lock(warm_mutex_);
  if (warm_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("service is already warm");
  }
  VEXUS_CHECK(cold_dataset_ != nullptr);  // cold ctor is the only cold path

  Stopwatch watch;
  // FromSnapshot consumes the dataset only on success, so a failed load
  // (missing file, corruption, wrong universe) leaves the service cold and
  // retryable with a different path.
  auto engine = core::VexusEngine::FromSnapshot(cold_dataset_.get(), path);
  if (!engine.ok()) {
    return engine.status().WithContext("warm_from_snapshot(" + path + ")");
  }
  owned_engine_ = std::make_unique<core::VexusEngine>(
      std::move(engine).ValueOrDie());
  cold_dataset_.reset();
  engine_ = owned_engine_.get();
  sessions_ =
      std::make_unique<SessionManager>(engine_, options_.sessions, &metrics_);
  metrics_.RecordWarmLoad(watch.ElapsedMillis());
  // Release: request handlers acquire-load warm_ before touching engine_ /
  // sessions_, so the stores above are visible once this flips.
  warm_.store(true, std::memory_order_release);
  return Status::OK();
}

std::future<Response> ExplorationService::Dispatch(Request req) {
  return dispatcher_->Submit(std::move(req));
}

Response ExplorationService::Call(Request req) {
  return dispatcher_->Call(std::move(req));
}

std::string ExplorationService::HandleLine(const std::string& line) {
  auto req = Request::Decode(line);
  if (!req.ok()) {
    // Not a decodable request: answer a synthetic error line. No typed op
    // exists to account it under, so it bypasses per-op metrics by design.
    json::Object obj;
    obj.emplace_back("op", json::Value("error"));
    obj.emplace_back("status",
                     json::Value(StatusCodeToString(req.status().code())));
    obj.emplace_back("error", json::Value(req.status().message()));
    return json::Value(std::move(obj)).Dump();
  }
  return Call(std::move(req).ValueOrDie()).Encode();
}

MetricsSnapshot ExplorationService::Stats() const {
  // The acquire on warm_ orders the sessions_ read against the warm-up's
  // release store; while cold the open-session gauge is simply 0.
  if (!warm()) return metrics_.Snapshot(0);
  return metrics_.Snapshot(sessions_->size());
}

// ---------------------------------------------------------------------------
// Worker-side execution
// ---------------------------------------------------------------------------

Response ExplorationService::Execute(const Request& req,
                                     const Deadline& deadline,
                                     TraceSpan& span) {
  switch (req.type) {
    case RequestType::kGetStats:
      return DoGetStats(req);
    case RequestType::kGetTrace:
      return DoGetTrace(req);
    case RequestType::kWarmFromSnapshot:
      return DoWarmFromSnapshot(req, span);
    default:
      break;
  }
  // Every remaining op needs the engine and the session manager; while the
  // service is cold neither exists. The acquire pairs with the warm-up's
  // release store, making engine_/sessions_ safe to dereference below.
  if (!warm()) {
    return ErrorResponse(
        req, Status::FailedPrecondition(
                 "service is cold: no engine loaded yet "
                 "(send warm_from_snapshot first)"));
  }
  if (req.type == RequestType::kStartSession) {
    return DoStartSession(req, deadline, span);
  }
  return DoSessionOp(req, deadline, span);
}

void ExplorationService::FillScreen(const core::GreedySelection& selection,
                                    Response* resp, bool fresh_run,
                                    const TraceSpan& span) {
  TraceSpan serialize = span.Child("serialize");
  if (fresh_run) {
    metrics_.RecordGreedyRun(selection.evaluations, selection.passes,
                             selection.swaps);
  }
  const mining::GroupStore& store = engine_->groups();
  const data::Schema& schema = engine_->dataset().schema();
  resp->groups.reserve(selection.groups.size());
  for (mining::GroupId g : selection.groups) {
    GroupView view;
    view.id = g;
    view.size = store.group(g).size();
    view.description = store.group(g).DescriptionString(schema);
    resp->groups.push_back(std::move(view));
  }
  resp->coverage = selection.quality.coverage;
  resp->diversity = selection.quality.diversity;
  resp->greedy_deadline_hit = selection.deadline_hit;
}

Response ExplorationService::DoStartSession(const Request& req,
                                            const Deadline& deadline,
                                            TraceSpan& span) {
  core::SessionOptions opts = options_.session_template;
  if (req.k.has_value()) {
    if (*req.k == 0 || *req.k > kMaxScreenK) {
      return ErrorResponse(
          req, Status::InvalidArgument("k must be in [1, " +
                                       std::to_string(kMaxScreenK) + "]"));
    }
    opts.greedy.k = static_cast<size_t>(*req.k);
  }
  if (req.learning_rate.has_value()) {
    if (!(*req.learning_rate > 0) || !std::isfinite(*req.learning_rate)) {
      return ErrorResponse(
          req, Status::InvalidArgument("learning_rate must be finite and > 0"));
    }
    opts.learning_rate = *req.learning_rate;
  }

  TraceSpan admit = span.Child("admit");
  auto created = sessions_->Create(req.session_id, opts);
  admit.Close();
  if (!created.ok()) return ErrorResponse(req, created.status());
  uint64_t generation = std::move(created).ValueOrDie();

  TraceSpan session_span = span.Child("session");
  auto lease = sessions_->Acquire(req.session_id, generation);
  session_span.Close();
  if (!lease.ok()) return ErrorResponse(req, lease.status());
  auto l = std::move(lease).ValueOrDie();

  Response resp;
  resp.type = req.type;
  resp.session_id = req.session_id;
  resp.generation = generation;
  if (deadline.Expired()) {
    resp.status = Status::DeadlineExceeded(
        "budget exhausted before the initial screen was computed");
    return resp;
  }
  // Remaining-budget clamp: the initial screen's greedy loop may use at
  // most what is left of the request's end-to-end budget. The trace pointer
  // is set for this request only and restored with the time limit — the
  // span dies with the request, the session does not.
  core::SessionOptions& live = l->mutable_options();
  live.greedy.time_limit_ms =
      std::min(opts.greedy.time_limit_ms, deadline.RemainingMillis());
  live.greedy.trace = span.enabled() ? &span : nullptr;
  FillScreen(l->Start(), &resp, /*fresh_run=*/true, span);
  live.greedy.time_limit_ms = opts.greedy.time_limit_ms;  // restore
  live.greedy.trace = nullptr;
  resp.step = 0;
  resp.num_steps = l->NumSteps();
  return resp;
}

Response ExplorationService::DoSessionOp(const Request& req,
                                         const Deadline& deadline,
                                         TraceSpan& span) {
  // end_session needs no lease of its own: Remove drains in-flight work.
  if (req.type == RequestType::kEndSession) {
    auto removed = sessions_->Remove(req.session_id, req.generation);
    if (!removed.ok()) return ErrorResponse(req, removed.status());
    core::SessionDigest digest = std::move(removed).ValueOrDie();
    Response resp;
    resp.type = req.type;
    resp.session_id = req.session_id;
    resp.num_steps = digest.num_steps;
    resp.step = digest.num_steps == 0 ? 0 : digest.num_steps - 1;
    resp.memo_groups = digest.memo_groups;
    resp.memo_users = digest.memo_users;
    return resp;
  }

  TraceSpan session_span = span.Child("session");
  auto lease = sessions_->Acquire(req.session_id, req.generation);
  session_span.Close();
  if (!lease.ok()) return ErrorResponse(req, lease.status());
  auto l = std::move(lease).ValueOrDie();

  Response resp;
  resp.type = req.type;
  resp.session_id = req.session_id;
  resp.generation = l.generation();

  // The lease wait above may have consumed the rest of the budget; mutating
  // ops must not start late (the explorer has moved on).
  if (deadline.Expired()) {
    resp.status = Status::DeadlineExceeded("budget exhausted waiting for the session lease");
    return resp;
  }

  const mining::GroupStore& store = engine_->groups();
  switch (req.type) {
    case RequestType::kSelectGroup: {
      if (*req.group >= store.size()) {
        resp.status = Status::InvalidArgument(
            "unknown group " + std::to_string(*req.group) + " (store has " +
            std::to_string(store.size()) + ")");
        return resp;
      }
      core::SessionOptions& live = l->mutable_options();
      const double configured = live.greedy.time_limit_ms;
      live.greedy.time_limit_ms =
          std::min(configured, deadline.RemainingMillis());
      live.greedy.trace = span.enabled() ? &span : nullptr;
      FillScreen(l->SelectGroup(*req.group), &resp, /*fresh_run=*/true, span);
      live.greedy.time_limit_ms = configured;  // undo the per-request clamp
      live.greedy.trace = nullptr;
      break;
    }
    case RequestType::kBacktrack: {
      Status st = l->Backtrack(static_cast<size_t>(*req.step));
      if (!st.ok()) {
        resp.status = std::move(st);
        return resp;
      }
      FillScreen(l->Current(), &resp, /*fresh_run=*/false, span);
      break;
    }
    case RequestType::kBookmark: {
      if (req.group.has_value()) {
        if (*req.group >= store.size()) {
          resp.status = Status::InvalidArgument(
              "unknown group " + std::to_string(*req.group));
          return resp;
        }
        l->BookmarkGroup(*req.group);
      } else {
        if (*req.user >= engine_->dataset().num_users()) {
          resp.status = Status::InvalidArgument(
              "unknown user " + std::to_string(*req.user));
          return resp;
        }
        l->BookmarkUser(*req.user);
      }
      break;
    }
    case RequestType::kUnlearn: {
      if (*req.token >= l->tokens().num_tokens()) {
        resp.status = Status::InvalidArgument(
            "unknown token " + std::to_string(*req.token));
        return resp;
      }
      l->Unlearn(*req.token);
      break;
    }
    case RequestType::kGetContext: {
      TraceSpan serialize = span.Child("serialize");
      size_t top_k = static_cast<size_t>(req.top_k.value_or(10));
      for (const auto& ts : l->ContextTokens(top_k)) {
        ContextTokenView view;
        view.token = ts.token;
        view.score = ts.score;
        view.label = l->tokens().Label(ts.token, engine_->dataset());
        resp.context.push_back(std::move(view));
      }
      break;
    }
    default:
      resp.status = Status::NotSupported("unhandled op");
      return resp;
  }

  resp.num_steps = l->NumSteps();
  resp.step = resp.num_steps == 0 ? 0 : resp.num_steps - 1;
  resp.memo_groups = l->memo().groups.size();
  resp.memo_users = l->memo().users.size();
  return resp;
}

Response ExplorationService::DoGetStats(const Request& req) {
  // Ride the stats poll for TTL progress: monitoring traffic alone keeps
  // expired sessions from accumulating even when no explorer is active.
  // While cold there is no session manager (and nothing to sweep) — stats
  // still answer, so monitoring works before the first warm-up.
  if (warm()) sessions_->SweepExpired();
  Response resp;
  resp.type = req.type;
  resp.stats = Stats().ToJson();
  return resp;
}

Response ExplorationService::DoWarmFromSnapshot(const Request& req,
                                                TraceSpan& span) {
  Response resp;
  resp.type = req.type;
  TraceSpan warm_span = span.Child("warm");
  resp.status = WarmFromSnapshot(*req.path);
  return resp;
}

Response ExplorationService::DoGetTrace(const Request& req) {
  Response resp;
  resp.type = req.type;
  if (!trace_log_->enabled()) {
    resp.status = Status::NotSupported(
        "tracing is disabled (ServiceOptions::trace.enabled)");
    return resp;
  }
  size_t n = static_cast<size_t>(req.n.value_or(1));
  std::vector<TraceRecord> records =
      req.slowest ? trace_log_->SlowestN(n) : trace_log_->LastN(n);
  json::Array arr;
  arr.reserve(records.size());
  for (const TraceRecord& r : records) arr.push_back(TraceLog::ToJson(r));
  resp.traces = json::Value(std::move(arr));
  return resp;
}

}  // namespace vexus::server
