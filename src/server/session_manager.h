// SessionManager — many named ExplorationSessions behind sharded mutexes.
//
// The serving substrate's stateful half: each concurrent explorer owns one
// named session; requests acquire an exclusive per-session lease for the
// duration of one op (the paper's navigation loop is inherently sequential
// per explorer — selection feeds learning feeds the next selection — so
// per-session serialization is semantics, not a bottleneck; throughput comes
// from running *different* explorers' ops in parallel).
//
// Life-cycle guarantees:
//   * Admission control: at most `max_sessions` live sessions; Create on a
//     full manager first tries to evict the least-recently-used *idle*
//     session, then fails with ResourceExhausted.
//   * TTL: sessions idle longer than `ttl` are evicted lazily or by an
//     explicit SweepExpired(). Lazy sweeping covers the *touched* shard
//     (Create) plus one further shard per access in round-robin order
//     (Create and Acquire advance a shared cursor), so sessions hashed to
//     shards no request ever touches again still expire — with only the
//     touched shard swept (the old behaviour) they outlived their TTL
//     indefinitely under any traffic pattern that missed their shard.
//   * Generations: every Create stamps a process-unique, monotonically
//     increasing generation. A client that cached a handle to a session
//     that was evicted and re-created under the same name observes NotFound
//     (stale generation) instead of silently mutating a stranger's session.
//   * Eviction vs. in-flight requests: leases pin the entry; eviction only
//     removes *idle* entries from the map and marks them dead, so a worker
//     mid-request never has its session deleted under it, and a lease
//     attempt racing eviction fails cleanly with NotFound.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "core/session.h"
#include "server/metrics.h"

namespace vexus::server {

struct SessionManagerOptions {
  /// Hard cap on live sessions (admission control).
  size_t max_sessions = 1024;
  /// Idle sessions older than this are evictable; <= 0 disables TTL.
  double ttl_seconds = 15 * 60.0;
  /// Lock striping; clamped to >= 1. More shards, less contention.
  size_t num_shards = 16;
};

class SessionManager {
 public:
  /// `engine` must outlive the manager; `metrics` may be null.
  SessionManager(const core::VexusEngine* engine, SessionManagerOptions options,
                 ServiceMetrics* metrics = nullptr);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Exclusive, RAII access to one session. Movable, not copyable. While a
  /// lease is held the session cannot be evicted or concurrently mutated.
  class Lease {
   public:
    Lease(Lease&&) noexcept = default;
    /// Move-assignment would have to drop an existing lease mid-expression;
    /// construct a fresh Lease instead.
    Lease& operator=(Lease&&) = delete;
    ~Lease();

    core::ExplorationSession* operator->() { return session_; }
    core::ExplorationSession& operator*() { return *session_; }
    core::ExplorationSession* session() { return session_; }
    uint64_t generation() const { return generation_; }

   private:
    friend class SessionManager;
    struct Entry;
    Lease(std::shared_ptr<Entry> entry, core::ExplorationSession* session,
          uint64_t generation);

    std::shared_ptr<Entry> entry_;
    core::ExplorationSession* session_ = nullptr;
    uint64_t generation_ = 0;
  };

  /// Creates a named session. Fails with AlreadyExists when the name is
  /// live, ResourceExhausted when the manager is full and nothing is
  /// evictable. Returns the new session's generation (for stale-handle
  /// fencing).
  Result<uint64_t> Create(const std::string& id,
                          core::SessionOptions session_options);

  /// Acquires the exclusive lease on a live session. `expected_generation`
  /// of 0 skips the fence; a non-zero mismatch fails with NotFound, as does
  /// an unknown or evicted id. Blocks while another lease is outstanding.
  Result<Lease> Acquire(const std::string& id, uint64_t expected_generation = 0);

  /// Explicit termination (the end_session op). Returns the digest of the
  /// removed session, NotFound if unknown (or when a non-zero
  /// `expected_generation` does not match — same fence as Acquire). Blocks
  /// until in-flight leases on the session drain.
  Result<core::SessionDigest> Remove(const std::string& id,
                                     uint64_t expected_generation = 0);

  /// Evicts every idle session past its TTL; returns how many.
  size_t SweepExpired();

  /// Live session count (gauge; racy by nature).
  size_t size() const { return count_.load(std::memory_order_relaxed); }

  const SessionManagerOptions& options() const { return options_; }

 private:
  struct Shard;

  Shard& ShardOf(const std::string& id);
  /// Attempts one LRU eviction across all shards; true on success.
  bool EvictLruIdle();
  /// TTL-sweeps one shard (caller must not hold its mutex).
  size_t SweepShard(Shard& shard);
  /// Amortized cross-shard TTL progress: sweeps the next shard in
  /// round-robin order. Called on every Create/Acquire so the whole keyspace
  /// is swept after `num_shards` accesses anywhere, O(1 shard) per access.
  void SweepNextShard();
  int64_t NowMicros() const;

  const core::VexusEngine* engine_;
  SessionManagerOptions options_;
  ServiceMetrics* metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_generation_{1};
  std::atomic<size_t> count_{0};
  std::atomic<size_t> sweep_cursor_{0};
};

}  // namespace vexus::server
