#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vexus::server::json {

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : AsObject()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::Set(std::string key, Value v) {
  AsObject().emplace_back(std::move(key), std::move(v));
}

double Value::GetNumber(std::string_view key, double fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsDouble() : fallback;
}

bool Value::GetBool(std::string_view key, bool fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : fallback;
}

std::string Value::GetString(std::string_view key, std::string fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void EscapeTo(std::string_view s, std::string* out) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':  *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

namespace {

void DumpNumber(double d, std::string* out) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; the protocol never needs them, but be safe.
    *out += "null";
    return;
  }
  double integral;
  if (std::modf(d, &integral) == 0.0 && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

}  // namespace

void Value::DumpTo(std::string* out) const {
  if (is_null()) {
    *out += "null";
  } else if (is_bool()) {
    *out += AsBool() ? "true" : "false";
  } else if (is_number()) {
    DumpNumber(AsDouble(), out);
  } else if (is_string()) {
    out->push_back('"');
    EscapeTo(AsString(), out);
    out->push_back('"');
  } else if (is_array()) {
    out->push_back('[');
    bool first = true;
    for (const Value& v : AsArray()) {
      if (!first) out->push_back(',');
      first = false;
      v.DumpTo(out);
    }
    out->push_back(']');
  } else {
    out->push_back('{');
    bool first = true;
    for (const auto& [k, v] : AsObject()) {
      if (!first) out->push_back(',');
      first = false;
      out->push_back('"');
      EscapeTo(k, out);
      *out += "\":";
      v.DumpTo(out);
    }
    out->push_back('}');
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<Value> Run() {
    SkipWs();
    Value v;
    VEXUS_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(std::string msg) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " +
                                   std::move(msg));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out, size_t depth) {
    if (depth > max_depth_) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        VEXUS_RETURN_NOT_OK(ParseString(&s));
        *out = Value(std::move(s));
        return Status::OK();
      }
      case 't':
        VEXUS_RETURN_NOT_OK(Literal("true"));
        *out = Value(true);
        return Status::OK();
      case 'f':
        VEXUS_RETURN_NOT_OK(Literal("false"));
        *out = Value(false);
        return Status::OK();
      case 'n':
        VEXUS_RETURN_NOT_OK(Literal("null"));
        *out = Value(nullptr);
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Error("invalid literal");
    }
    pos_ += lit.size();
    return Status::OK();
  }

  Status ParseObject(Value* out, size_t depth) {
    ++pos_;  // '{'
    Object obj;
    SkipWs();
    if (Consume('}')) {
      *out = Value(std::move(obj));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      VEXUS_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWs();
      Value v;
      VEXUS_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      obj.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    *out = Value(std::move(obj));
    return Status::OK();
  }

  Status ParseArray(Value* out, size_t depth) {
    ++pos_;  // '['
    Array arr;
    SkipWs();
    if (Consume(']')) {
      *out = Value(std::move(arr));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      Value v;
      VEXUS_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      arr.push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    *out = Value(std::move(arr));
    return Status::OK();
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':  out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/':  out->push_back('/'); break;
        case 'b':  out->push_back('\b'); break;
        case 'f':  out->push_back('\f'); break;
        case 'n':  out->push_back('\n'); break;
        case 'r':  out->push_back('\r'); break;
        case 't':  out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          VEXUS_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xDC00 && cp <= 0xDFFF) {
            // A low surrogate may only appear as the second half of a pair,
            // which the high-surrogate branch below consumes.
            return Error("unpaired low surrogate");
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: the next escape MUST be a low surrogate. The
            // old code silently emitted a lone surrogate (invalid UTF-8)
            // when the pair was truncated at end-of-input or followed by
            // anything other than \u.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            VEXUS_RETURN_NOT_OK(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      pos_ = start;
      return Error("malformed number");
    }
    *out = Value(d);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t max_depth_;
};

}  // namespace

Result<Value> Parse(std::string_view text, size_t max_depth) {
  return Parser(text, max_depth).Run();
}

}  // namespace vexus::server::json
