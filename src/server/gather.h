// Gather coordinator for the multi-box scatter-gather greedy
// (DESIGN.md §16): the serving-layer implementation of
// core::RemoteTrialScatterer that owns S shard transports and keeps the
// fleet's failure handling out of the greedy loop.
//
// Ownership diagram (one coordinator per service):
//
//   ExplorationService ── session_template.greedy.remote_scatter ──┐
//        │                                                          ▼
//        │ owns                                        core::GreedySelector
//        ▼                                                 (per request)
//   GatherCoordinator ── owns S× ─┬─ ShardState
//                                 │    ├─ CircuitBreaker   (this header)
//                                 │    ├─ retry/backoff schedule
//                                 │    └─ ShardTransport   (abstract here;
//                                 │         net::ShardClient over TCP, or a
//                                 │         scripted stub in tests)
//                                 └─ membership/stats table → get_stats
//
// Failure discipline per shard and per lap:
//   · the lap budget is carved from the request deadline — a retry's
//     backoff sleep plus its call budget never exceed what remains, so the
//     scatter returns before admission control would time the request out;
//   · backoff is exponential with *deterministic* seeded jitter: the delay
//     for (shard, attempt) is a pure function of (seed, shard, attempt),
//     so chaos runs with a pinned VEXUS_CHAOS_SEED replay byte-identical
//     schedules;
//   · each shard carries a circuit breaker (closed → open after N
//     consecutive failures → half-open after a cooldown → closed on the
//     next success). Open circuits are skipped without consuming budget;
//     the half-open probe is the next real scatter call (or an explicit
//     ProbeShards() health sweep).
//
// Degradation: shards that miss the lap are dropped from the fold. The
// Outcome's covered_fraction tells the greedy (and through it the service)
// how much of the user universe the answer actually covered — the
// degraded:"partial" contract. A scatter with zero surviving shards still
// returns (empty-handed) before the deadline: never a hung request.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stopwatch.h"
#include "core/greedy.h"
#include "server/json.h"
#include "server/protocol.h"

namespace vexus {
class ThreadPool;
}

namespace vexus::server {

/// Deterministic exponential backoff: DelayMillis(shard, attempt) =
/// min(base · multiplier^attempt, max) · (1 ± jitter), where the jitter
/// factor is drawn from a PCG stream keyed by (seed, shard, attempt) — a
/// pure function, so retry schedules are reproducible under a pinned seed
/// and property-testable without clocks.
struct BackoffSchedule {
  double base_ms = 2.0;
  double multiplier = 2.0;
  double max_ms = 50.0;
  /// Jitter amplitude as a fraction of the nominal delay, in [0, 1).
  double jitter = 0.2;
  uint64_t seed = 0;

  double DelayMillis(size_t shard, size_t attempt) const;
};

/// Per-shard circuit breaker. All time flows through explicit `now_ms`
/// parameters (any monotonic millisecond clock) so scripted tests drive
/// exact transitions without sleeping.
class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive failures that trip closed → open.
    size_t failure_threshold = 3;
    /// Open → half-open after this long.
    double cooldown_ms = 200.0;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Options options) : options_(options) {}

  /// True when a request may be sent now. In half-open, exactly one probe
  /// is admitted until its RecordSuccess/RecordFailure lands.
  bool AllowRequest(double now_ms);
  void RecordSuccess(double now_ms);
  void RecordFailure(double now_ms);

  /// State as of `now_ms` (open flips to half-open once the cooldown
  /// elapses, even before the next AllowRequest).
  State StateAt(double now_ms) const;

  size_t consecutive_failures() const { return consecutive_failures_; }

  static std::string_view StateName(State s);

 private:
  Options options_;
  State state_ = State::kClosed;
  size_t consecutive_failures_ = 0;
  double opened_at_ms_ = 0;
  bool probe_in_flight_ = false;
};

/// One shard backend as the coordinator sees it: a blocking call with a
/// millisecond budget. Implementations: net::ShardClient (TCP with
/// reconnect + hedging), in-process adapters (selftest), scripted stubs
/// (gather_test). Calls for different shards run concurrently; the
/// coordinator never calls one shard's transport from two threads at once.
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;
  /// Sends `req` and awaits the response within `budget_ms` (Deadline
  /// semantics: NaN/<=0 fail fast). Transport errors, timeouts, and
  /// decode failures surface as non-OK Results.
  virtual Result<Response> Call(const Request& req, double budget_ms) = 0;
  /// Drops any cached connection so the next Call reconnects fresh —
  /// invoked after a failed lap.
  virtual void Reset() {}
  virtual std::string address() const = 0;
};

/// Aggregate per-shard counters for get_stats' membership table.
struct ShardMembership {
  std::string address;
  CircuitBreaker::State state = CircuitBreaker::State::kClosed;
  uint32_t user_begin = 0;
  uint32_t user_end = 0;
  uint64_t ok_laps = 0;
  uint64_t failed_laps = 0;
  uint64_t retries = 0;
  uint64_t skipped_open = 0;
  size_t consecutive_failures = 0;
};

class GatherCoordinator : public core::RemoteTrialScatterer {
 public:
  struct Options {
    /// User universe size — shard user ranges follow ShardMap(num_users,
    /// S), word-aligned exactly like the backends' snapshot sections.
    size_t num_users = 0;
    /// Expected backend store generation; a response carrying a different
    /// one is a *stale* shard (mid-reload) and counts as a failure.
    uint64_t generation = 0;
    /// Attempts per shard per scatter (1 = no retry).
    size_t max_attempts = 3;
    /// Budget for a single attempt's call, before deadline clamping.
    double lap_budget_ms = 50.0;
    /// Budget for a ProbeShards health call.
    double probe_budget_ms = 20.0;
    BackoffSchedule backoff;
    CircuitBreaker::Options breaker;
    /// Scatters shards in parallel when set (caller participates); serial
    /// otherwise. Not owned.
    ThreadPool* pool = nullptr;
  };

  /// One transport per shard, index = shard id. Transports are owned.
  GatherCoordinator(std::vector<std::unique_ptr<ShardTransport>> transports,
                    Options options);
  ~GatherCoordinator() override;  // out-of-line: ShardState is incomplete here

  /// core::RemoteTrialScatterer — one greedy pass's trial batch.
  Outcome Scatter(std::optional<uint32_t> anchor,
                  const std::vector<uint32_t>& selection,
                  const std::vector<uint32_t>& trials,
                  const Deadline& deadline) override;

  /// Health-probes shards whose breaker admits a request (half-open after
  /// cooldown, or closed), flipping recovered shards back toward closed.
  /// Returns how many probes succeeded.
  size_t ProbeShards();

  size_t num_shards() const { return shards_.size(); }

  std::vector<ShardMembership> Membership() const;
  /// The get_stats "gather" object: per-shard membership + aggregate laps.
  json::Value MembershipJson() const;

  /// Slowest successful lap of the most recent Scatter, ms — the overload
  /// ladder's gather-delay signal.
  double last_lap_delay_ms() const;

 private:
  struct ShardState;

  /// Runs one shard's lap loop (retry + backoff + breaker) for `req`.
  /// Fills partials via `resp_out` on success.
  bool CallShard(size_t shard, const Request& req, const Deadline& deadline,
                 Response* resp_out);

  double NowMillis() const { return clock_.ElapsedMillis(); }

  Options options_;
  Stopwatch clock_;  // breaker/backoff time base (monotonic ms)
  std::vector<std::unique_ptr<ShardState>> shards_;
  mutable std::mutex lap_mu_;
  double last_lap_delay_ms_ = 0;
};

}  // namespace vexus::server
