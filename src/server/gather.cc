#include "server/gather.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "common/random.h"
#include "common/shard_map.h"
#include "common/thread_pool.h"

namespace vexus::server {

// ---------------------------------------------------------------------------
// BackoffSchedule
// ---------------------------------------------------------------------------

double BackoffSchedule::DelayMillis(size_t shard, size_t attempt) const {
  double nominal =
      std::min(base_ms * std::pow(multiplier, static_cast<double>(attempt)),
               max_ms);
  if (!(nominal > 0)) return 0;
  // One PCG stream per (shard, attempt): the delay is a pure function of
  // (seed, shard, attempt), independent of call order — what makes chaos
  // schedules replayable and the determinism property test possible.
  Rng rng(seed, (static_cast<uint64_t>(shard) << 20) | (attempt + 1));
  double factor =
      jitter > 0 ? rng.UniformDouble(1.0 - jitter, 1.0 + jitter) : 1.0;
  return nominal * factor;
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

bool CircuitBreaker::AllowRequest(double now_ms) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_ms - opened_at_ms_ >= options_.cooldown_ms) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return true;
      }
      return false;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess(double) {
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure(double now_ms) {
  probe_in_flight_ = false;
  ++consecutive_failures_;
  // A failed half-open probe re-opens immediately; a closed breaker trips
  // only at the consecutive-failure threshold.
  if (state_ == State::kHalfOpen ||
      consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ms_ = now_ms;
  }
}

CircuitBreaker::State CircuitBreaker::StateAt(double now_ms) const {
  if (state_ == State::kOpen &&
      now_ms - opened_at_ms_ >= options_.cooldown_ms) {
    return State::kHalfOpen;
  }
  return state_;
}

std::string_view CircuitBreaker::StateName(State s) {
  switch (s) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// GatherCoordinator
// ---------------------------------------------------------------------------

struct GatherCoordinator::ShardState {
  std::unique_ptr<ShardTransport> transport;
  /// Guards the breaker and counters; the transport itself is only ever
  /// driven by the one thread running this shard's lap.
  std::mutex mu;
  CircuitBreaker breaker;
  uint32_t user_begin = 0;
  uint32_t user_end = 0;
  uint64_t ok_laps = 0;
  uint64_t failed_laps = 0;
  uint64_t retries = 0;
  uint64_t skipped_open = 0;
  double last_lap_ms = 0;
};

GatherCoordinator::GatherCoordinator(
    std::vector<std::unique_ptr<ShardTransport>> transports, Options options)
    : options_(options) {
  VEXUS_CHECK(!transports.empty());
  const ShardMap map(options_.num_users, transports.size());
  // ShardMap clamps the shard count when the universe is too small for
  // word-aligned ranges; a fleet wider than that cannot match the
  // backends' snapshot sections, so fail loudly at wiring time.
  VEXUS_CHECK(map.num_shards() == transports.size())
      << "universe of " << options_.num_users << " users cannot feed "
      << transports.size() << " shard backends";
  shards_.reserve(transports.size());
  for (size_t s = 0; s < transports.size(); ++s) {
    auto st = std::make_unique<ShardState>();
    st->transport = std::move(transports[s]);
    st->breaker = CircuitBreaker(options_.breaker);
    st->user_begin = static_cast<uint32_t>(map.shard(s).user_begin);
    st->user_end = static_cast<uint32_t>(map.shard(s).user_end);
    shards_.push_back(std::move(st));
  }
}

GatherCoordinator::~GatherCoordinator() = default;

bool GatherCoordinator::CallShard(size_t shard, const Request& req,
                                  const Deadline& deadline,
                                  Response* resp_out) {
  ShardState& st = *shards_[shard];
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    // Deadline before breaker: once AllowRequest admits a half-open probe,
    // the attempt MUST run so the probe flag resolves.
    if (!(deadline.RemainingMillis() > 0)) return false;
    {
      std::lock_guard<std::mutex> lock(st.mu);
      if (!st.breaker.AllowRequest(NowMillis())) {
        ++st.skipped_open;
        return false;
      }
      if (attempt > 0) ++st.retries;
    }
    double budget =
        std::min(deadline.RemainingMillis(), options_.lap_budget_ms);
    Stopwatch lap;
    auto result = st.transport->Call(req, budget);
    bool ok = false;
    if (result.ok()) {
      const Response& resp = result.ValueOrDie();
      // Generation fencing: a backend mid-reload answers with a different
      // store generation — its partials would mix universes, so it is a
      // failed lap, not a fold input.
      ok = resp.status.ok() &&
           (options_.generation == 0 ||
            resp.generation == options_.generation) &&
           (!resp.shard.has_value() || *resp.shard == shard);
    }
    if (ok) {
      std::lock_guard<std::mutex> lock(st.mu);
      st.breaker.RecordSuccess(NowMillis());
      ++st.ok_laps;
      st.last_lap_ms = lap.ElapsedMillis();
      *resp_out = std::move(result).ValueOrDie();
      return true;
    }
    {
      std::lock_guard<std::mutex> lock(st.mu);
      st.breaker.RecordFailure(NowMillis());
      ++st.failed_laps;
    }
    st.transport->Reset();
    if (attempt + 1 >= options_.max_attempts) break;
    // Backoff, clamped so sleep + (at least a sliver of) the next call
    // stay inside the deadline; when the delay would eat what remains,
    // retrying is pointless — stop instead of sleeping into the deadline.
    double delay = options_.backoff.DelayMillis(shard, attempt);
    double remaining = deadline.RemainingMillis();
    if (!(remaining > delay)) return false;
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    }
  }
  return false;
}

GatherCoordinator::Outcome GatherCoordinator::Scatter(
    std::optional<uint32_t> anchor, const std::vector<uint32_t>& selection,
    const std::vector<uint32_t>& trials, const Deadline& deadline) {
  const size_t num_shards = shards_.size();
  const size_t num_trials = trials.size() / 2;
  Outcome out;
  out.shard_ok.assign(num_shards, false);
  out.partials.assign(num_shards, {});

  Request req;
  req.type = RequestType::kEvalPartial;
  req.generation = options_.generation;
  req.num_shards = static_cast<uint32_t>(num_shards);
  req.anchor = anchor;
  req.selection = selection;
  req.trials = trials;

  auto run_shard = [&](size_t s) {
    Request shard_req = req;
    shard_req.shard = static_cast<uint32_t>(s);
    Response resp;
    if (CallShard(s, shard_req, deadline, &resp) &&
        resp.partials.size() == num_trials) {
      out.partials[s] = std::move(resp.partials);
      out.shard_ok[s] = true;
    }
  };
  if (options_.pool != nullptr) {
    options_.pool->ParallelForChunked(num_shards, 1,
                                      [&](size_t, size_t begin, size_t end) {
                                        for (size_t s = begin; s < end; ++s) {
                                          run_shard(s);
                                        }
                                      });
  } else {
    for (size_t s = 0; s < num_shards; ++s) run_shard(s);
  }

  size_t covered_users = 0;
  double max_lap = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!out.shard_ok[s]) continue;
    ShardState& st = *shards_[s];
    covered_users += st.user_end - st.user_begin;
    std::lock_guard<std::mutex> lock(st.mu);
    max_lap = std::max(max_lap, st.last_lap_ms);
  }
  out.covered_fraction =
      options_.num_users > 0
          ? static_cast<double>(covered_users) /
                static_cast<double>(options_.num_users)
          : 0.0;
  out.lap_delay_ms = max_lap;
  {
    std::lock_guard<std::mutex> lock(lap_mu_);
    last_lap_delay_ms_ = max_lap;
  }
  return out;
}

size_t GatherCoordinator::ProbeShards() {
  Request req;
  req.type = RequestType::kShardInfo;
  size_t recovered = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardState& st = *shards_[s];
    {
      std::lock_guard<std::mutex> lock(st.mu);
      // Only circuits that have something to prove: closed shards are
      // probed by real traffic, and an open circuit inside its cooldown
      // must stay unprobed (that is what the cooldown is for).
      CircuitBreaker::State state = st.breaker.StateAt(NowMillis());
      if (state == CircuitBreaker::State::kClosed) continue;
      if (!st.breaker.AllowRequest(NowMillis())) continue;
    }
    auto result = st.transport->Call(req, options_.probe_budget_ms);
    bool ok = result.ok() && result.ValueOrDie().status.ok() &&
              (options_.generation == 0 ||
               result.ValueOrDie().generation == options_.generation);
    std::lock_guard<std::mutex> lock(st.mu);
    if (ok) {
      st.breaker.RecordSuccess(NowMillis());
      ++recovered;
    } else {
      st.breaker.RecordFailure(NowMillis());
      st.transport->Reset();
    }
  }
  return recovered;
}

std::vector<ShardMembership> GatherCoordinator::Membership() const {
  std::vector<ShardMembership> out;
  out.reserve(shards_.size());
  for (const auto& st : shards_) {
    std::lock_guard<std::mutex> lock(st->mu);
    ShardMembership m;
    m.address = st->transport->address();
    m.state = st->breaker.StateAt(NowMillis());
    m.user_begin = st->user_begin;
    m.user_end = st->user_end;
    m.ok_laps = st->ok_laps;
    m.failed_laps = st->failed_laps;
    m.retries = st->retries;
    m.skipped_open = st->skipped_open;
    m.consecutive_failures = st->breaker.consecutive_failures();
    out.push_back(std::move(m));
  }
  return out;
}

json::Value GatherCoordinator::MembershipJson() const {
  json::Object obj;
  obj.emplace_back("num_shards", json::Value(shards_.size()));
  obj.emplace_back("last_lap_delay_ms", json::Value(last_lap_delay_ms()));
  json::Array arr;
  size_t open = 0;
  std::vector<ShardMembership> members = Membership();
  for (size_t s = 0; s < members.size(); ++s) {
    const ShardMembership& m = members[s];
    if (m.state != CircuitBreaker::State::kClosed) ++open;
    json::Object o;
    o.emplace_back("shard", json::Value(s));
    o.emplace_back("address", json::Value(m.address));
    o.emplace_back("state",
                   json::Value(CircuitBreaker::StateName(m.state)));
    o.emplace_back("user_begin", json::Value(m.user_begin));
    o.emplace_back("user_end", json::Value(m.user_end));
    o.emplace_back("ok_laps", json::Value(m.ok_laps));
    o.emplace_back("failed_laps", json::Value(m.failed_laps));
    o.emplace_back("retries", json::Value(m.retries));
    o.emplace_back("skipped_open", json::Value(m.skipped_open));
    o.emplace_back("consecutive_failures",
                   json::Value(m.consecutive_failures));
    arr.emplace_back(std::move(o));
  }
  obj.emplace_back("unhealthy_shards", json::Value(open));
  obj.emplace_back("shards", json::Value(std::move(arr)));
  return json::Value(std::move(obj));
}

double GatherCoordinator::last_lap_delay_ms() const {
  std::lock_guard<std::mutex> lock(lap_mu_);
  return last_lap_delay_ms_;
}

}  // namespace vexus::server
