// Dispatcher — deadline-aware request routing onto common::ThreadPool.
//
// The stateless half of the serving substrate. Each submitted request:
//   1. passes (or is shed by) queue-depth backpressure — beyond
//      `max_queue_depth` outstanding requests the dispatcher answers
//      ResourceExhausted *immediately* instead of stalling the caller; a
//      saturated interactive service must degrade by rejecting, not by
//      growing latency past the paper's continuity budget;
//   2. gets its deadline stamped at admission (default: the paper's 100 ms)
//      — time spent queued counts against it;
//   3. runs on a pool worker, which first re-checks the deadline: a request
//      whose budget is already gone answers DeadlineExceeded (with queue_ms
//      populated) without ever touching a session or the greedy loop;
//   4. otherwise invokes the handler with the live Deadline so it can clamp
//      the greedy time budget to the *remaining* milliseconds, and with a
//      borrowed root TraceSpan (disabled when tracing is off) so stages can
//      attribute their wall time.
//
// Results travel back through std::future, so callers may fan out requests
// for different sessions and collect them concurrently.
//
// Lifetime: tasks queued on the pool share ownership of an internal Core
// (options, gauges, handler) via shared_ptr, so destroying the Dispatcher
// while requests are still queued is safe — the destructor flips a stopping
// flag and the orphaned tasks complete their promises with
// ResourceExhausted instead of running a handler whose captures may be
// gone. Each request is accounted exactly once (metrics + in-flight gauge)
// no matter which path — executed, expired, shed at admission, shed because
// the pool refused the task, or shed at teardown — retires it.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <memory>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "server/metrics.h"
#include "server/overload.h"
#include "server/protocol.h"
#include "server/trace_log.h"

namespace vexus::server {

struct DispatcherOptions {
  /// Shed requests beyond this many admitted-but-unfinished ones. With the
  /// overload ladder enabled this is the hard backstop behind it (the
  /// ladder usually sheds — or degrades — long before the queue gets here).
  size_t max_queue_depth = 256;
  /// Budget applied when a request carries none (paper P3: 100 ms).
  double default_budget_ms = 100.0;
  /// Client-supplied budgets are clamped to this ceiling so one request
  /// cannot park a worker arbitrarily long. +infinity disables the ceiling.
  double max_budget_ms = 10'000.0;
  /// CoDel-style graceful-degradation ladder (server/overload.h).
  OverloadOptions overload;
};

class Dispatcher {
 public:
  /// The handler runs on pool workers; it must be thread-safe. The deadline
  /// passed to it is the request's admission-stamped end-to-end budget; the
  /// span is a borrowed view of the request's root span (the disabled span
  /// when tracing is off — opening children on it is a no-op branch).
  using Handler =
      std::function<Response(const Request&, const Deadline&, TraceSpan&)>;

  /// `pool` must outlive the dispatcher; `metrics` and `trace_log` (both
  /// optional) must outlive every request admitted through it — in practice
  /// the owner shuts the pool down (draining queued tasks) before
  /// destroying either.
  Dispatcher(ThreadPool* pool, Handler handler, DispatcherOptions options,
             ServiceMetrics* metrics = nullptr, TraceLog* trace_log = nullptr);

  /// Queued-but-unstarted requests are shed (ResourceExhausted) when their
  /// worker finally picks them up; their futures still complete.
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Completion callback of the asynchronous submission path. Invoked
  /// exactly once per request, on whichever thread retires it: a pool worker
  /// for executed requests, the *submitting* thread for requests shed at
  /// admission. Callbacks must therefore be cheap and non-blocking — the
  /// socket front-end's callback just enqueues the response for its event
  /// loop and signals an eventfd (src/net/tcp_server.cc).
  using Completion = std::function<void(Response)>;

  /// Admits (or sheds) `req`; `done` fires when the request completes. This
  /// is the primitive entry point — Submit() is a future-shaped wrapper.
  /// The deadline is stamped here, at admission: callers that frame
  /// requests off a socket submit at read time, so the budget clock starts
  /// the moment the bytes arrived.
  void SubmitAsync(Request req, Completion done);

  /// Admits (or sheds) `req`; the future completes when the request does.
  /// Shed/rejected requests complete immediately, so .get() never deadlocks.
  std::future<Response> Submit(Request req);

  /// Synchronous convenience: Submit + wait.
  Response Call(Request req) { return Submit(std::move(req)).get(); }

  /// Requests admitted and not yet completed (gauge).
  size_t queue_depth() const {
    return core_->in_flight.load(std::memory_order_relaxed);
  }

  const DispatcherOptions& options() const { return core_->options; }

  /// The degradation ladder driven by this dispatcher's queue delays. The
  /// service reads the rung per request; health probes report its state.
  const OverloadController& overload() const { return core_->overload; }
  OverloadController& overload() { return core_->overload; }

 private:
  /// Everything a queued task needs, owned jointly by the dispatcher and
  /// every task it submitted (see the Lifetime note above).
  struct Core {
    explicit Core(const OverloadOptions& overload_options)
        : overload(overload_options) {}
    Handler handler;
    DispatcherOptions options;
    ServiceMetrics* metrics = nullptr;
    TraceLog* trace_log = nullptr;
    OverloadController overload;
    std::atomic<size_t> in_flight{0};
    std::atomic<bool> stopping{false};
  };

  /// Resolves the effective end-to-end budget of a request.
  static double EffectiveBudgetMs(const Core& core, const Request& req);

  ThreadPool* pool_;
  std::shared_ptr<Core> core_;
};

}  // namespace vexus::server
