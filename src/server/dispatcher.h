// Dispatcher — deadline-aware request routing onto common::ThreadPool.
//
// The stateless half of the serving substrate. Each submitted request:
//   1. passes (or is shed by) queue-depth backpressure — beyond
//      `max_queue_depth` outstanding requests the dispatcher answers
//      ResourceExhausted *immediately* instead of stalling the caller; a
//      saturated interactive service must degrade by rejecting, not by
//      growing latency past the paper's continuity budget;
//   2. gets its deadline stamped at admission (default: the paper's 100 ms)
//      — time spent queued counts against it;
//   3. runs on a pool worker, which first re-checks the deadline: a request
//      whose budget is already gone answers DeadlineExceeded without ever
//      touching a session or the greedy loop;
//   4. otherwise invokes the handler with the live Deadline so it can clamp
//      the greedy time budget to the *remaining* milliseconds.
//
// Results travel back through std::future, so callers may fan out requests
// for different sessions and collect them concurrently.
#pragma once

#include <atomic>
#include <functional>
#include <future>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "server/metrics.h"
#include "server/protocol.h"

namespace vexus::server {

struct DispatcherOptions {
  /// Shed requests beyond this many admitted-but-unfinished ones.
  size_t max_queue_depth = 256;
  /// Budget applied when a request carries none (paper P3: 100 ms).
  double default_budget_ms = 100.0;
  /// Client-supplied budgets are clamped to this ceiling so one request
  /// cannot park a worker arbitrarily long. +infinity disables the ceiling.
  double max_budget_ms = 10'000.0;
};

class Dispatcher {
 public:
  /// The handler runs on pool workers; it must be thread-safe. The deadline
  /// passed to it is the request's admission-stamped end-to-end budget.
  using Handler = std::function<Response(const Request&, const Deadline&)>;

  /// `pool` and `metrics` must outlive the dispatcher; `metrics` may be
  /// null. The pool may be shared with other work (e.g. preprocessing).
  Dispatcher(ThreadPool* pool, Handler handler, DispatcherOptions options,
             ServiceMetrics* metrics = nullptr);

  /// Admits (or sheds) `req`; the future completes when the request does.
  /// Shed/rejected requests complete immediately, so .get() never deadlocks.
  std::future<Response> Submit(Request req);

  /// Synchronous convenience: Submit + wait.
  Response Call(Request req) { return Submit(std::move(req)).get(); }

  /// Requests admitted and not yet completed (gauge).
  size_t queue_depth() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  const DispatcherOptions& options() const { return options_; }

 private:
  /// Resolves the effective end-to-end budget of a request.
  double EffectiveBudgetMs(const Request& req) const;

  ThreadPool* pool_;
  Handler handler_;
  DispatcherOptions options_;
  ServiceMetrics* metrics_;
  std::atomic<size_t> in_flight_{0};
};

}  // namespace vexus::server
