#include "server/overload.h"

#include <algorithm>
#include <chrono>

namespace vexus::server {

std::string_view OverloadRungName(OverloadRung rung) {
  switch (rung) {
    case OverloadRung::kNormal:
      return "normal";
    case OverloadRung::kShrinkEffort:
      return "shrink_effort";
    case OverloadRung::kReduceK:
      return "reduce_k";
    case OverloadRung::kStale:
      return "stale";
    case OverloadRung::kShed:
      return "shed";
  }
  return "unknown";
}

OverloadController::OverloadController(OverloadOptions options)
    : options_(options), window_start_us_(NowMicros()) {
  if (options_.target_delay_ms <= 0) options_.target_delay_ms = 5.0;
  if (options_.window_ms <= 0) options_.window_ms = 100.0;
  options_.effort_factor = std::clamp(options_.effort_factor, 0.05, 1.0);
  if (options_.degraded_k == 0) options_.degraded_k = 1;
  for (auto& min : window_min_us_) {
    min.store(UINT64_MAX, std::memory_order_relaxed);
  }
}

uint64_t OverloadController::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void OverloadController::OnQueueDelay(double delay_ms, size_t source) {
  if (!options_.enabled) return;
  if (source >= kMaxOverloadSources) source = kMaxOverloadSources - 1;
  const auto sample_us =
      static_cast<uint64_t>(std::max(0.0, delay_ms) * 1e3);

  // Fold the sample into this source's open-window min.
  uint64_t seen = window_min_us_[source].load(std::memory_order_relaxed);
  while (sample_us < seen &&
         !window_min_us_[source].compare_exchange_weak(
             seen, sample_us, std::memory_order_relaxed)) {
  }

  // Window close: first sampler past the boundary wins the CAS and applies
  // the ladder move; losers keep folding into the (now reset) next window.
  const uint64_t now = NowMicros();
  uint64_t start = window_start_us_.load(std::memory_order_relaxed);
  const auto window_us = static_cast<uint64_t>(options_.window_ms * 1e3);
  if (now - start < window_us) return;
  if (!window_start_us_.compare_exchange_strong(start, now,
                                                std::memory_order_relaxed)) {
    return;  // another thread is closing this window
  }

  // We own the close. Read-and-reset every source's min and aggregate as
  // max-of-mins (see overload.h: an idle source must not mask a hot one).
  // A sample racing in between the exchange and the rung update lands in
  // the next window — fine, the controller is a trend follower, not an
  // exact accountant.
  uint64_t min_us = 0;
  bool sampled = false;
  for (auto& min : window_min_us_) {
    uint64_t m = min.exchange(UINT64_MAX, std::memory_order_relaxed);
    if (m != UINT64_MAX) {
      min_us = std::max(min_us, m);
      sampled = true;
    }
  }
  if (!sampled) min_us = sample_us;  // we *are* a sample
  last_min_us_.store(min_us, std::memory_order_relaxed);

  const auto target_us = static_cast<uint64_t>(options_.target_delay_ms * 1e3);
  int r = rung_.load(std::memory_order_relaxed);
  if (min_us > target_us) {
    // Standing queue: even the emptiest instant of the window was over
    // target. Degrade one rung.
    if (r < kNumOverloadRungs - 1) {
      rung_.store(r + 1, std::memory_order_relaxed);
      escalations_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (min_us * 2 < target_us && r > 0) {
    // Comfortably under target (hysteresis: < target/2): recover one rung.
    rung_.store(r - 1, std::memory_order_relaxed);
  }
}

}  // namespace vexus::server
