// Typed request/response protocol of the exploration service.
//
// One request or response per line, encoded as a compact JSON object — the
// framing a future socket front-end needs, and what lets tests and
// examples/service_repl.cpp drive the service from scripted strings today.
//
// Request grammar (field order free; unknown fields ignored):
//
//   {"op":"start_session","session":"alice","k":5,"budget_ms":100}
//   {"op":"select_group","session":"alice","group":12}
//   {"op":"backtrack","session":"alice","step":0}
//   {"op":"bookmark","session":"alice","group":12}
//   {"op":"bookmark","session":"alice","user":7}
//   {"op":"unlearn","session":"alice","token":3401}
//   {"op":"get_context","session":"alice","top_k":8}
//   {"op":"get_stats"}
//   {"op":"get_trace","n":5,"slowest":true}
//   {"op":"end_session","session":"alice"}
//   {"op":"warm_from_snapshot","path":"/var/lib/vexus/bx.snapshot"}
//   {"op":"health"}
//
// Every session-scoped request may also carry:
//   "generation": <uint>  — stale-handle fencing; a mismatch with the live
//                           session's generation fails with NotFound.
//   "budget_ms": <double> — per-request deadline; the dispatcher starts the
//                           clock at *admission*, so queueing time counts
//                           against the budget (paper P3: the explorer
//                           experiences end-to-end latency, not server CPU).
//
// Responses echo "op" and "session", carry "status" (StatusCodeToString
// name) plus "error" when not OK, the session "generation", timing fields,
// and an op-specific payload (shown groups, context tokens, digest, or a
// metrics snapshot).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "server/json.h"

namespace vexus::server {

enum class RequestType : int {
  kStartSession = 0,
  kSelectGroup = 1,
  kBacktrack = 2,
  kBookmark = 3,
  kUnlearn = 4,
  kGetContext = 5,
  kGetStats = 6,
  kEndSession = 7,
  kGetTrace = 8,
  kWarmFromSnapshot = 9,
  kHealth = 10,
  /// Shard-backend op (DESIGN.md §16): a batch of greedy trial-coverage
  /// partials over this backend's user range. The gather coordinator is the
  /// only intended client.
  kEvalPartial = 11,
  /// Shard-backend identity probe: shard index, shard count, user range,
  /// and store generation — what the coordinator's membership table tracks.
  kShardInfo = 12,
};
inline constexpr size_t kNumRequestTypes = 13;

/// Wire name of an op ("start_session", ...).
std::string_view RequestTypeName(RequestType t);
/// Inverse of RequestTypeName; nullopt for unknown ops.
std::optional<RequestType> RequestTypeFromName(std::string_view name);

/// A decoded client request. Optional fields keep "absent" distinct from
/// "zero" so the service can apply its own defaults.
struct Request {
  RequestType type = RequestType::kGetStats;
  std::string session_id;
  /// Stale-handle fence: 0 means "don't check".
  uint64_t generation = 0;
  /// End-to-end budget; unset -> service default (the paper's 100 ms).
  std::optional<double> budget_ms;

  // --- op payloads (validity depends on `type`) ---
  std::optional<uint32_t> group;       // select_group / bookmark
  std::optional<uint32_t> user;        // bookmark
  std::optional<uint64_t> step;        // backtrack
  std::optional<uint32_t> token;       // unlearn
  std::optional<uint64_t> top_k;       // get_context
  std::optional<uint64_t> k;           // start_session: groups per screen
  std::optional<double> learning_rate; // start_session
  std::optional<uint64_t> n;           // get_trace: how many traces
  bool slowest = false;                // get_trace: slowest-N vs last-N
  std::optional<std::string> path;     // warm_from_snapshot: snapshot file

  // --- eval_partial payload (DESIGN.md §16) ---
  /// Expected shard identity; a backend serving a different (shard,
  /// num_shards) pair answers FailedPrecondition — the coordinator treats
  /// that like any other shard failure.
  std::optional<uint32_t> shard;       // eval_partial: expected shard index
  std::optional<uint32_t> num_shards;  // eval_partial: expected shard count
  /// Anchor group id; absent on the initial screen (universe coverage).
  std::optional<uint32_t> anchor;
  /// The current selection, as group ids in slot order (rest-table order).
  std::vector<uint32_t> selection;
  /// Flat (candidate group id, slot) pairs: [c0, p0, c1, p1, ...]. Kept
  /// flat so a candidate-window batch of thousands of trials stays far
  /// under the 1 MiB frame cap.
  std::vector<uint32_t> trials;

  json::Value ToJson() const;
  std::string Encode() const { return ToJson().Dump(); }

  /// Decodes one request line. Fails with InvalidArgument on syntax errors,
  /// unknown ops, missing required fields, or ill-typed payloads.
  static Result<Request> Decode(std::string_view line);
  static Result<Request> FromJson(const json::Value& v);
};

/// One shown group, denormalized so a thin client needs no group store.
struct GroupView {
  uint32_t id = 0;
  uint64_t size = 0;
  std::string description;
};

/// One CONTEXT token (feedback state), denormalized likewise.
struct ContextTokenView {
  uint32_t token = 0;
  double score = 0;
  std::string label;
};

/// A service response. `status` uses the common Status vocabulary:
///   DeadlineExceeded  — budget exhausted before/while handling
///   NotFound          — unknown/evicted session or stale generation
///   ResourceExhausted — shed by backpressure or admission control
struct Response {
  RequestType type = RequestType::kGetStats;
  Status status;
  std::string session_id;
  uint64_t generation = 0;

  /// Service-side handling time (queue + execute), milliseconds.
  double elapsed_ms = 0;
  /// Of which: time spent waiting for a worker.
  double queue_ms = 0;

  // --- payload (populated per op) ---
  std::vector<GroupView> groups;        // start/select/backtrack: the screen
  std::vector<ContextTokenView> context;  // get_context
  uint64_t step = 0;                    // current HISTORY position
  uint64_t num_steps = 0;               // HISTORY length
  uint64_t memo_groups = 0;             // MEMO sizes (bookmark/end/context)
  uint64_t memo_users = 0;
  double coverage = 0;                  // screen quality (start/select)
  double diversity = 0;
  bool greedy_deadline_hit = false;     // anytime loop truncated?
  /// Set when the overload ladder reduced this answer's quality:
  /// "effort" (shrunk greedy budget), "k" (fewer groups than asked),
  /// "stale" (cached screen replayed, no greedy run), or "partial" (one or
  /// more gather shards missed their lap deadline or sat open-circuit, so
  /// the screen was scored over a subset of the user universe). Absent on
  /// the wire when the answer is full-fidelity.
  std::optional<std::string> degraded;
  /// With degraded:"partial": the fraction of the user universe the folded
  /// shards covered, in [0, 1]. Absent on full-coverage answers.
  std::optional<double> covered_fraction;

  // --- shard-backend payloads (eval_partial / shard_info) ---
  std::optional<uint32_t> shard;       // this backend's shard index
  std::optional<uint32_t> num_shards;  // this backend's shard count
  std::optional<uint32_t> user_begin;  // owned user range [begin, end)
  std::optional<uint32_t> user_end;
  std::optional<uint64_t> num_groups;  // shard_info: groups in the slice
  /// eval_partial: one newly-covered count per request trial, in order.
  std::vector<uint32_t> partials;
  std::optional<json::Value> stats;     // get_stats: metrics snapshot object
  std::optional<json::Value> traces;    // get_trace: array of span trees
  std::optional<json::Value> health;    // health: liveness/readiness object

  json::Value ToJson() const;
  std::string Encode() const { return ToJson().Dump(); }

  static Result<Response> Decode(std::string_view line);
  static Result<Response> FromJson(const json::Value& v);
};

/// Convenience factory for an error response mirroring `req`.
Response ErrorResponse(const Request& req, Status status);

/// The synthetic `{"op":"error",...}` line answered when a request line
/// cannot even be decoded (no typed op exists to mirror). Shared by
/// ExplorationService::HandleLine and the socket front-end so both paths
/// answer byte-identical parse errors.
std::string EncodeParseError(const Status& status);

/// Incremental '\n' framing over a byte stream — the one line-splitting
/// implementation every transport shares (the TCP connection parser, the
/// REPL's --connect client, the socket benchmark's response reader).
///
/// Framing rules, chosen so one misbehaving line can never desynchronize
/// the stream:
///   * A frame is the bytes up to (excluding) the next '\n'. A trailing
///     '\r' is stripped (CRLF clients: telnet, netcat -C, Windows pipes).
///   * Empty frames (bare "\n" or "\r\n") are skipped, not surfaced —
///     they are keepalive/sloppy-script noise, not requests.
///   * Malformed JSON containing a *raw* newline is, by construction, two
///     (or more) frames: each fails Request::Decode independently and each
///     is answered with its own per-line parse error, after which the
///     stream is back in sync. The framer never buffers across '\n'
///     waiting for a parse to succeed — that is the desync failure mode
///     this class exists to prevent (a parser that accumulates until the
///     JSON closes would swallow every subsequent valid request into the
///     broken first one).
///   * A frame longer than `max_frame_bytes` cannot be buffered (one hostile
///     client would otherwise balloon server memory). The framer drops the
///     oversized prefix, keeps *discarding* until the next '\n', then emits
///     a single frame flagged `oversized` so the transport can answer one
///     error line and resume normally — again: resync, never desync.
class LineFramer {
 public:
  struct Options {
    /// Longest frame the framer will buffer. 1 MiB is ~100× the largest
    /// legitimate response (a full get_stats snapshot) and far beyond any
    /// request.
    size_t max_frame_bytes = 1 << 20;
  };

  struct Frame {
    std::string text;
    /// True when this frame stands in for one that exceeded
    /// max_frame_bytes (its bytes were discarded; `text` is empty).
    bool oversized = false;
  };

  LineFramer() : LineFramer(Options()) {}
  explicit LineFramer(Options options) : options_(options) {
    if (options_.max_frame_bytes == 0) options_.max_frame_bytes = 1;
  }

  /// Feeds bytes read from the transport.
  void Append(std::string_view bytes);

  /// Pops the next complete frame, or nullopt when more bytes are needed.
  std::optional<Frame> Next();

  /// Bytes buffered awaiting a newline (bounded by max_frame_bytes).
  size_t buffered() const { return buf_.size() - pos_; }
  /// True while discarding an oversized frame (waiting for its '\n').
  bool discarding() const { return discarding_; }

 private:
  Options options_;
  std::string buf_;
  size_t pos_ = 0;        // consumed prefix of buf_
  bool discarding_ = false;
};

}  // namespace vexus::server
