// Minimal JSON value model + writer + recursive-descent parser for the
// serving layer's line-delimited wire protocol (src/server/protocol.h).
//
// Hand-rolled on purpose: the repo bakes in no third-party JSON dependency,
// and the protocol only needs a small, predictable subset — objects, arrays,
// strings, doubles, bools, null — emitted compactly on a single line so a
// future socket front-end can frame messages with '\n'. The writer escapes
// control characters; the parser accepts standard JSON (including \uXXXX
// escapes, which it decodes to UTF-8) with a depth cap so malformed or
// hostile input fails with InvalidArgument instead of exhausting the stack.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace vexus::server::json {

class Value;

/// Object members preserve insertion order (stable golden-file tests, and
/// responses read naturally with "op"/"status" first). Lookup is linear —
/// protocol objects have ~a dozen keys.
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

/// A JSON document node. Numbers are doubles (the protocol's ids fit in the
/// 2^53 exact-integer range; the writer prints integral doubles without a
/// fraction so ids round-trip textually).
class Value {
 public:
  Value() : repr_(nullptr) {}                        // null
  Value(std::nullptr_t) : repr_(nullptr) {}          // NOLINT
  Value(bool b) : repr_(b) {}                        // NOLINT
  /// Any non-bool arithmetic type becomes a double (ids stay exact within
  /// 2^53; one template avoids platform-dependent uint64_t/size_t overload
  /// clashes).
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T> &&
                                        !std::is_same_v<T, bool>>>
  Value(T n) : repr_(static_cast<double>(n)) {}      // NOLINT
  Value(const char* s) : repr_(std::string(s)) {}    // NOLINT
  Value(std::string s) : repr_(std::move(s)) {}      // NOLINT
  Value(std::string_view s) : repr_(std::string(s)) {}  // NOLINT
  Value(Array a) : repr_(std::move(a)) {}            // NOLINT
  Value(Object o) : repr_(std::move(o)) {}           // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_number() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_array() const { return std::holds_alternative<Array>(repr_); }
  bool is_object() const { return std::holds_alternative<Object>(repr_); }

  /// Typed accessors; calling the wrong one is a programmer error (DCHECK).
  bool AsBool() const { return std::get<bool>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  const Array& AsArray() const { return std::get<Array>(repr_); }
  const Object& AsObject() const { return std::get<Object>(repr_); }
  Array& AsArray() { return std::get<Array>(repr_); }
  Object& AsObject() { return std::get<Object>(repr_); }

  /// Object field lookup; nullptr when absent or when this is not an object.
  const Value* Find(std::string_view key) const;

  /// Appends (does not replace) a member; this must be an object.
  void Set(std::string key, Value v);

  /// Lenient typed getters for decoding: return the fallback when the key
  /// is absent or has the wrong type.
  double GetNumber(std::string_view key, double fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;
  std::string GetString(std::string_view key, std::string fallback) const;

  /// Compact single-line serialization (no trailing newline).
  std::string Dump() const;
  void DumpTo(std::string* out) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> repr_;
};

/// Parses exactly one JSON document from `text` (leading/trailing whitespace
/// allowed, nothing else may follow). Fails with InvalidArgument on syntax
/// errors, trailing garbage, or nesting deeper than `max_depth`.
Result<Value> Parse(std::string_view text, size_t max_depth = 64);

/// Escapes `s` as the *inside* of a JSON string literal (no quotes).
void EscapeTo(std::string_view s, std::string* out);

}  // namespace vexus::server::json
