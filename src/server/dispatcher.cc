#include "server/dispatcher.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"

namespace vexus::server {

Dispatcher::Dispatcher(ThreadPool* pool, Handler handler,
                       DispatcherOptions options, ServiceMetrics* metrics,
                       TraceLog* trace_log)
    : pool_(pool), core_(std::make_shared<Core>(options.overload)) {
  VEXUS_CHECK(pool_ != nullptr);
  VEXUS_CHECK(handler != nullptr);
  core_->handler = std::move(handler);
  core_->options = options;
  if (core_->options.max_queue_depth == 0) core_->options.max_queue_depth = 1;
  core_->metrics = metrics;
  core_->trace_log = trace_log;
}

Dispatcher::~Dispatcher() {
  // Chaos site: sleeping here widens the window in which queued tasks race
  // the destructor — the exact interleaving the teardown-shed path guards.
  VEXUS_FAILPOINT_HIT("dispatcher.teardown");
  // Queued tasks keep the Core alive via shared_ptr; the flag tells them to
  // shed instead of calling a handler whose captures may already be dead.
  core_->stopping.store(true, std::memory_order_release);
}

double Dispatcher::EffectiveBudgetMs(const Core& core, const Request& req) {
  double budget = req.budget_ms.value_or(core.options.default_budget_ms);
  // Negative/zero budgets are honored as "already expired" (the
  // Deadline::AfterMillis contract); only the ceiling is clamped here.
  return std::min(budget, core.options.max_budget_ms);
}

std::future<Response> Dispatcher::Submit(Request req) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  SubmitAsync(std::move(req),
              [promise](Response resp) { promise->set_value(std::move(resp)); });
  return future;
}

void Dispatcher::SubmitAsync(Request req, Completion done) {
  std::shared_ptr<Core> core = core_;

  // Retires the request exactly once: metrics, the in-flight gauge (when
  // this path admitted it), and the caller's completion.
  auto finish = [core, done = std::move(done)](const Request& r, Response resp,
                                               double latency_ms,
                                               bool admitted) {
    if (admitted) core->in_flight.fetch_sub(1, std::memory_order_relaxed);
    if (core->metrics != nullptr) {
      core->metrics->RecordRequest(r.type, resp.status.code(), latency_ms);
      if (resp.greedy_deadline_hit) core->metrics->RecordGreedyDeadlineHit();
    }
    resp.elapsed_ms = latency_ms;
    done(std::move(resp));
  };

  // ---- 0. Overload ladder, last rung: admission control. The ladder keeps
  //         admitting while the standing queue is at or below the probe
  //         floor, so drain progress is still measured and the controller
  //         can walk back down (see server/overload.h). ----
  if (core->overload.rung() == OverloadRung::kShed &&
      core->in_flight.load(std::memory_order_relaxed) >
          core->overload.options().shed_keep_depth) {
    if (core->metrics != nullptr) core->metrics->RecordOverloadShed();
    finish(req,
           ErrorResponse(req, Status::ResourceExhausted(
                                  "overload: degradation ladder at 'shed'")),
           /*latency_ms=*/0, /*admitted=*/false);
    return;
  }

  // ---- 1. Backpressure backstop: shed instead of stall. ----
  size_t depth = core->in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
  if (depth > core->options.max_queue_depth) {
    finish(req,
           ErrorResponse(req, Status::ResourceExhausted(
                                  "queue depth " + std::to_string(depth - 1) +
                                  " exceeds limit " +
                                  std::to_string(core->options.max_queue_depth))),
           /*latency_ms=*/0, /*admitted=*/true);
    return;
  }

  // Chaos site: a fault here simulates admission-side failures (allocation
  // pressure, an auth/quota layer saying no) after the request was counted.
  if (Status injected = failpoint::Inject("dispatcher.admit");
      !injected.ok()) {
    finish(req, ErrorResponse(req, std::move(injected)), /*latency_ms=*/0,
           /*admitted=*/true);
    return;
  }

  // ---- 2. Deadline stamped at admission; trace root + queue span open. ----
  Stopwatch admitted;
  double budget_ms = EffectiveBudgetMs(*core, req);
  Deadline deadline = Deadline::AfterMillis(budget_ms);
  std::shared_ptr<Trace> trace;
  int32_t queue_span = -1;
  if (core->trace_log != nullptr && core->trace_log->enabled()) {
    trace = std::make_shared<Trace>("request");
    queue_span = trace->root().Child("queue").Detach();
  }

  // `req` is captured by copy: the shed paths below still need the original
  // to report which op was dropped. Everything else the task touches lives
  // in `core` (shared) or is a value — the Dispatcher itself may be gone by
  // the time a queued task runs.
  auto task = [core, finish, req, admitted, deadline, budget_ms, trace,
               queue_span]() {
    TraceSpan::Adopt(trace.get(), queue_span).Close();
    double queue_ms = admitted.ElapsedMillis();
    // Every executing task is a queue-delay sample for the overload ladder
    // (CoDel-style min-over-window; see server/overload.h).
    core->overload.OnQueueDelay(queue_ms);
    Response resp;
    if (core->stopping.load(std::memory_order_acquire)) {
      // ---- Teardown: the dispatcher died with this request queued. The
      //      handler's captures are not safe to touch; shed. ----
      resp = ErrorResponse(
          req, Status::ResourceExhausted("service shutting down"));
    } else if (deadline.Expired()) {
      // ---- 3. Expired while queued (or born expired): never touch the
      //         session or the greedy loop. ----
      resp = ErrorResponse(
          req, Status::DeadlineExceeded(
                   "budget exhausted after " + std::to_string(queue_ms) +
                   " ms in queue"));
    } else if (Status injected = failpoint::Inject("dispatcher.execute");
               !injected.ok()) {
      // ---- Chaos site: the handler "failed" before running (worker
      //      crash-equivalent). The request still retires exactly once. ----
      resp = ErrorResponse(req, std::move(injected));
    } else {
      // ---- 4. Execute with the live remaining budget. ----
      TraceSpan root =
          trace ? trace->root() : TraceSpan();  // disabled when untraced
      resp = core->handler(req, deadline, root);
    }
    resp.queue_ms = queue_ms;
    double total_ms = admitted.ElapsedMillis();
    if (trace) {
      trace->Finish();
      if (core->metrics != nullptr) core->metrics->RecordTraceStages(*trace);
      if (core->trace_log != nullptr) {
        TraceRecord record;
        record.op = std::string(RequestTypeName(req.type));
        record.session_id = req.session_id;
        record.status = std::string(StatusCodeToString(resp.status.code()));
        record.budget_ms =
            budget_ms >= Deadline::kInfiniteBudgetMillis ? 0 : budget_ms;
        record.total_ms = total_ms;
        record.queue_ms = queue_ms;
        record.trace = trace;
        core->trace_log->Record(std::move(record));
      }
    } else if (core->metrics != nullptr) {
      // Queue time is a stage even when tracing is off (it is free: the
      // admission stopwatch already measured it).
      core->metrics->RecordStage(Stage::kQueue, queue_ms * 1e3);
    }
    finish(req, std::move(resp), total_ms, /*admitted=*/true);
  };

  if (!pool_->Submit(std::move(task))) {
    // Pool is shutting down: shed, never lose the completion.
    finish(req,
           ErrorResponse(req,
                         Status::ResourceExhausted("service shutting down")),
           /*latency_ms=*/0, /*admitted=*/true);
  }
}

}  // namespace vexus::server
