#include "server/dispatcher.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace vexus::server {

Dispatcher::Dispatcher(ThreadPool* pool, Handler handler,
                       DispatcherOptions options, ServiceMetrics* metrics)
    : pool_(pool),
      handler_(std::move(handler)),
      options_(options),
      metrics_(metrics) {
  VEXUS_CHECK(pool_ != nullptr);
  VEXUS_CHECK(handler_ != nullptr);
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
}

double Dispatcher::EffectiveBudgetMs(const Request& req) const {
  double budget = req.budget_ms.value_or(options_.default_budget_ms);
  // Negative/zero budgets are honored as "already expired" (the
  // Deadline::AfterMillis contract); only the ceiling is clamped here.
  return std::min(budget, options_.max_budget_ms);
}

std::future<Response> Dispatcher::Submit(Request req) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();

  auto finish = [this, promise](const Request& r, Response resp,
                                double latency_ms) {
    if (metrics_ != nullptr) {
      metrics_->RecordRequest(r.type, resp.status.code(), latency_ms);
      if (resp.greedy_deadline_hit) metrics_->RecordGreedyDeadlineHit();
    }
    resp.elapsed_ms = latency_ms;
    promise->set_value(std::move(resp));
  };

  // ---- 1. Backpressure: shed instead of stall. ----
  size_t depth = in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (depth > options_.max_queue_depth) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    finish(req,
           ErrorResponse(req, Status::ResourceExhausted(
                                  "queue depth " + std::to_string(depth - 1) +
                                  " exceeds limit " +
                                  std::to_string(options_.max_queue_depth))),
           /*latency_ms=*/0);
    return future;
  }

  // ---- 2. Deadline stamped at admission. ----
  Stopwatch admitted;
  Deadline deadline = Deadline::AfterMillis(EffectiveBudgetMs(req));

  // `req` is captured by copy: the shed-at-shutdown path below still needs
  // the original to report which op was dropped.
  auto task = [this, finish, req, admitted, deadline]() {
    double queue_ms = admitted.ElapsedMillis();
    Response resp;
    // ---- 3. Expired while queued (or born expired): never touch the
    //         session or the greedy loop. ----
    if (deadline.Expired()) {
      resp = ErrorResponse(
          req, Status::DeadlineExceeded(
                   "budget exhausted after " + std::to_string(queue_ms) +
                   " ms in queue"));
    } else {
      // ---- 4. Execute with the live remaining budget. ----
      resp = handler_(req, deadline);
    }
    resp.queue_ms = queue_ms;
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    finish(req, std::move(resp), admitted.ElapsedMillis());
  };

  if (!pool_->Submit(std::move(task))) {
    // Pool is shutting down: shed, never lose the promise.
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    finish(req,
           ErrorResponse(req,
                         Status::ResourceExhausted("service shutting down")),
           /*latency_ms=*/0);
  }
  return future;
}

}  // namespace vexus::server
