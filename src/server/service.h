// ExplorationService — the headless, embeddable serving substrate in front
// of VexusEngine.
//
//            ┌────────────────────────────────────────────────┐
//   line ───▶│ protocol codec ─▶ Dispatcher ─▶ Execute()      │───▶ line
//            │   (json.h)         (ThreadPool,   │            │
//            │                     deadlines,    ▼            │
//            │                     backpressure) SessionManager──▶ Exploration-
//            │                        │          (sharded,    │     Session ×N
//            │                        ▼           TTL+LRU)    │
//            │                   ServiceMetrics               │
//            └────────────────────────────────────────────────┘
//
// One process hosts one engine (the preprocessed group store + index) and
// many named sessions; every later scaling PR — real sockets, sharding
// across engines, replication — plugs in front of or behind this class
// without touching the exploration core.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/engine.h"
#include "core/snapshot.h"
#include "server/dispatcher.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/session_manager.h"
#include "server/trace_log.h"

namespace vexus::server {

class GatherCoordinator;

struct ServiceOptions {
  SessionManagerOptions sessions;
  DispatcherOptions dispatcher;
  /// Template for new sessions; start_session may override k /
  /// learning_rate per request. The greedy time budget is always clamped to
  /// the request's remaining deadline at execution time.
  core::SessionOptions session_template;
  /// Worker threads (0 → hardware concurrency).
  size_t num_workers = 0;
  /// Shard each session's greedy candidate scan across the service's own
  /// worker pool (GreedyOptions::scan_pool). Safe even though the greedy
  /// loop itself runs *on* a pool worker: ParallelForChunked has the caller
  /// participate, so a busy pool degrades to the serial scan rather than
  /// deadlocking, and parallel scans select byte-identical swaps. Overrides
  /// any scan_pool already set on session_template.greedy.
  bool parallel_greedy_scan = true;
  /// Horizontal shard count over the user universe (common/shard_map.h;
  /// ROADMAP item 2). > 1 turns every session's greedy refinement into the
  /// scatter-gather form: per-shard coverage partials folded by a
  /// deterministic coordinator, so selections stay byte-identical to the
  /// unsharded run while get_stats gains per-shard evaluation counters.
  /// The service owns the ShardMap; it is built over the engine's universe
  /// at warm-up (construction when warm, WarmFromSnapshot when cold) and
  /// clamps to the universe's word count. Sessions whose template already
  /// carries a shard map keep it.
  size_t num_shards = 1;
  /// Request-scoped tracing (DESIGN.md §10). Disabled by default: with
  /// trace.enabled == false no Trace is ever allocated and the per-request
  /// cost is one branch per would-be span.
  TraceLogOptions trace;
};

class ExplorationService {
 public:
  /// Warm construction: `engine` must outlive the service.
  explicit ExplorationService(const core::VexusEngine* engine,
                              ServiceOptions options = {});

  /// Cold construction for the snapshot cold-start path: the service owns
  /// the dataset and accepts connections immediately, but only get_stats
  /// and warm_from_snapshot succeed until WarmFromSnapshot() (or the wire
  /// op) restores an engine from disk; every other op fails with
  /// FailedPrecondition. This is the deployment shape in DESIGN.md §11:
  /// mine once, snapshot, then bring serving processes up in seconds.
  explicit ExplorationService(data::Dataset dataset,
                              ServiceOptions options = {});

  /// Shard-backend construction (DESIGN.md §16): the service owns one
  /// snapshot-v3 shard slice and serves only eval_partial / shard_info /
  /// health / get_stats — a multi-box gather fleet's backend. Session ops
  /// fail with FailedPrecondition (there is no engine). `generation` is
  /// the store generation fenced by eval_partial requests.
  ExplorationService(core::SnapshotShard shard, uint64_t generation,
                     ServiceOptions options = {});

  ~ExplorationService();

  ExplorationService(const ExplorationService&) = delete;
  ExplorationService& operator=(const ExplorationService&) = delete;

  /// Asynchronous entry point: admit/shed now, complete later.
  std::future<Response> Dispatch(Request req);

  /// Callback-shaped asynchronous entry point — what the socket front-end
  /// (src/net) uses so worker threads can complete responses back onto the
  /// owning connection's event loop instead of parking a thread on a
  /// future. `done` fires exactly once, on a pool worker for executed
  /// requests or inline on the calling thread for health probes and
  /// requests shed at admission; it must be cheap and non-blocking.
  void DispatchAsync(Request req, Dispatcher::Completion done);

  /// Synchronous entry point (dispatch + wait).
  Response Call(Request req);

  /// Wire-level entry point: one request line in, one response line out
  /// (no trailing newline). Parse failures produce an InvalidArgument
  /// response line, never an exception — misbehaving clients cannot take
  /// the service down.
  std::string HandleLine(const std::string& line);

  /// Stops accepting work and drains the workers. Idempotent; also run by
  /// the destructor. In-flight requests complete; queued-but-unstarted ones
  /// still run (the pool drains); requests submitted after shutdown are
  /// shed with ResourceExhausted.
  void Shutdown();

  /// Restores the engine from a snapshot and opens the service for session
  /// traffic (also reachable over the wire as the warm_from_snapshot op).
  /// Only valid on a cold-constructed service, exactly once:
  /// FailedPrecondition if already warm (including warm construction) or if
  /// another warm-up is in flight (the loser returns immediately instead of
  /// blocking a pool worker behind a multi-second load), Corruption /
  /// IOError etc. from the snapshot load — in which case the service goes
  /// back to cold and the call may be retried with another path.
  Status WarmFromSnapshot(const std::string& path);

  /// Wires a gather coordinator (owned) into every *future* session's
  /// greedy options as the remote trial scatterer. Must be called before
  /// any session is created — sessions snapshot the template at Create
  /// time. The coordinator's transports are built by the embedder
  /// (examples/vexus_server.cpp over net::ShardClient; tests over stubs):
  /// the service layer stays transport-free.
  void ConfigureGather(std::unique_ptr<GatherCoordinator> gather);
  /// Null unless ConfigureGather ran.
  GatherCoordinator* gather() const { return gather_.get(); }

  /// True for the shard-backend constructor's shape.
  bool shard_backend() const { return backend_shard_ != nullptr; }

  /// False between cold construction and a successful WarmFromSnapshot.
  bool warm() const {
    return warm_state_.load(std::memory_order_acquire) ==
           static_cast<int>(WarmState::kWarm);
  }

  const ServiceMetrics& metrics() const { return metrics_; }
  /// Valid only when warm().
  SessionManager& sessions() { return *sessions_; }
  /// Valid only when warm().
  const core::VexusEngine& engine() const { return *engine_; }
  const TraceLog& trace_log() const { return *trace_log_; }
  /// Admission/queue layer. Exposed so embedders and tests can read the
  /// overload ladder (dispatcher().overload().rung()) or force a rung when
  /// exercising degraded paths.
  Dispatcher& dispatcher() { return *dispatcher_; }

  /// Current metrics frozen, with the live session gauge filled in.
  MetricsSnapshot Stats() const;

 private:
  /// Worker-side execution (Dispatcher handler). `span` is the request's
  /// root span (the disabled span when tracing is off).
  Response Execute(const Request& req, const Deadline& deadline,
                   TraceSpan& span);

  Response DoStartSession(const Request& req, const Deadline& deadline,
                          TraceSpan& span);
  Response DoSessionOp(const Request& req, const Deadline& deadline,
                       TraceSpan& span);
  Response DoGetStats(const Request& req);
  Response DoGetTrace(const Request& req);
  Response DoWarmFromSnapshot(const Request& req, TraceSpan& span);
  /// Liveness/readiness probe, built from atomics only (no histogram
  /// serialization). Answered inline by Dispatch() so orchestrator probes
  /// never queue behind session traffic and are never shed.
  Response DoHealth(const Request& req);
  /// Shard-backend ops (DESIGN.md §16). eval_partial runs on a worker with
  /// the full deadline discipline; shard_info is probe-class and answered
  /// inline like health (a gather coordinator's breaker probe must never
  /// be shed by the very overload it is diagnosing).
  Response DoEvalPartial(const Request& req, const Deadline& deadline);
  Response DoShardInfo(const Request& req);

  /// Shared tail of both constructors (pool, trace log, dispatcher).
  void InitRuntime();

  /// Builds the service-owned shard map over the (now known) engine's user
  /// universe when options_.num_shards > 1, wires it into the session
  /// template, and declares the shard count to metrics. Runs before the
  /// service goes warm, so request handlers never observe it half-wired.
  void ConfigureSharding();

  /// Fills the screen payload (groups + quality) from a selection, under a
  /// `serialize` child of `span`. When `fresh_run` is set the selection came
  /// from a greedy run executed for this request (start_session /
  /// select_group) and its work counters are recorded; replayed screens
  /// (backtrack) pass false so a screen is only accounted once.
  void FillScreen(const core::GreedySelection& selection, Response* resp,
                  bool fresh_run, const TraceSpan& span);

  const core::VexusEngine* engine_;  // null while cold
  ServiceOptions options_;
  /// Shard-backend state (null in coordinator/standalone shapes).
  std::unique_ptr<core::SnapshotShard> backend_shard_;
  uint64_t backend_generation_ = 0;
  /// Owned gather coordinator (null unless ConfigureGather ran).
  std::unique_ptr<GatherCoordinator> gather_;
  /// Service-owned scatter-gather shard map (see ServiceOptions::
  /// num_shards); null when unsharded. Built before warm_state_ goes kWarm
  /// and immutable afterwards, so sessions may hold the raw pointer.
  std::unique_ptr<ShardMap> shard_map_;
  ServiceMetrics metrics_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<SessionManager> sessions_;  // null while cold
  std::unique_ptr<TraceLog> trace_log_;
  std::unique_ptr<Dispatcher> dispatcher_;

  /// Cold-start state machine: kCold -(CAS)-> kWarming -> kWarm on success,
  /// back to kCold on a failed load (retryable). The CAS admits exactly one
  /// warmer; concurrent attempts lose the CAS and return FailedPrecondition
  /// *immediately* instead of blocking a pool worker behind a multi-second
  /// snapshot load (the old mutex serialized them — correct outcomes, but
  /// the loser parked a worker for the whole load; regression-tested in
  /// service_test.cc ConcurrentWarmLoserReturnsImmediately). kWarm is stored
  /// with release ordering after engine_/sessions_ are fully built; request
  /// handlers read it with acquire before touching either — there is never a
  /// torn engine pointer.
  enum class WarmState : int { kCold = 0, kWarming = 1, kWarm = 2 };
  std::atomic<int> warm_state_{static_cast<int>(WarmState::kCold)};
  std::unique_ptr<data::Dataset> cold_dataset_;  // consumed by the warm-up
  std::unique_ptr<core::VexusEngine> owned_engine_;
};

}  // namespace vexus::server
