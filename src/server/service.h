// ExplorationService — the headless, embeddable serving substrate in front
// of VexusEngine.
//
//            ┌────────────────────────────────────────────────┐
//   line ───▶│ protocol codec ─▶ Dispatcher ─▶ Execute()      │───▶ line
//            │   (json.h)         (ThreadPool,   │            │
//            │                     deadlines,    ▼            │
//            │                     backpressure) SessionManager──▶ Exploration-
//            │                        │          (sharded,    │     Session ×N
//            │                        ▼           TTL+LRU)    │
//            │                   ServiceMetrics               │
//            └────────────────────────────────────────────────┘
//
// One process hosts one engine (the preprocessed group store + index) and
// many named sessions; every later scaling PR — real sockets, sharding
// across engines, replication — plugs in front of or behind this class
// without touching the exploration core.
#pragma once

#include <future>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/engine.h"
#include "server/dispatcher.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/session_manager.h"
#include "server/trace_log.h"

namespace vexus::server {

struct ServiceOptions {
  SessionManagerOptions sessions;
  DispatcherOptions dispatcher;
  /// Template for new sessions; start_session may override k /
  /// learning_rate per request. The greedy time budget is always clamped to
  /// the request's remaining deadline at execution time.
  core::SessionOptions session_template;
  /// Worker threads (0 → hardware concurrency).
  size_t num_workers = 0;
  /// Shard each session's greedy candidate scan across the service's own
  /// worker pool (GreedyOptions::scan_pool). Safe even though the greedy
  /// loop itself runs *on* a pool worker: ParallelForChunked has the caller
  /// participate, so a busy pool degrades to the serial scan rather than
  /// deadlocking, and parallel scans select byte-identical swaps. Overrides
  /// any scan_pool already set on session_template.greedy.
  bool parallel_greedy_scan = true;
  /// Request-scoped tracing (DESIGN.md §10). Disabled by default: with
  /// trace.enabled == false no Trace is ever allocated and the per-request
  /// cost is one branch per would-be span.
  TraceLogOptions trace;
};

class ExplorationService {
 public:
  /// `engine` must outlive the service.
  explicit ExplorationService(const core::VexusEngine* engine,
                              ServiceOptions options = {});
  ~ExplorationService();

  ExplorationService(const ExplorationService&) = delete;
  ExplorationService& operator=(const ExplorationService&) = delete;

  /// Asynchronous entry point: admit/shed now, complete later.
  std::future<Response> Dispatch(Request req);

  /// Synchronous entry point (dispatch + wait).
  Response Call(Request req);

  /// Wire-level entry point: one request line in, one response line out
  /// (no trailing newline). Parse failures produce an InvalidArgument
  /// response line, never an exception — misbehaving clients cannot take
  /// the service down.
  std::string HandleLine(const std::string& line);

  /// Stops accepting work and drains the workers. Idempotent; also run by
  /// the destructor. In-flight requests complete; queued-but-unstarted ones
  /// still run (the pool drains); requests submitted after shutdown are
  /// shed with ResourceExhausted.
  void Shutdown();

  const ServiceMetrics& metrics() const { return metrics_; }
  SessionManager& sessions() { return *sessions_; }
  const core::VexusEngine& engine() const { return *engine_; }
  const TraceLog& trace_log() const { return *trace_log_; }

  /// Current metrics frozen, with the live session gauge filled in.
  MetricsSnapshot Stats() const;

 private:
  /// Worker-side execution (Dispatcher handler). `span` is the request's
  /// root span (the disabled span when tracing is off).
  Response Execute(const Request& req, const Deadline& deadline,
                   TraceSpan& span);

  Response DoStartSession(const Request& req, const Deadline& deadline,
                          TraceSpan& span);
  Response DoSessionOp(const Request& req, const Deadline& deadline,
                       TraceSpan& span);
  Response DoGetStats(const Request& req);
  Response DoGetTrace(const Request& req);

  /// Fills the screen payload (groups + quality) from a selection, under a
  /// `serialize` child of `span`. When `fresh_run` is set the selection came
  /// from a greedy run executed for this request (start_session /
  /// select_group) and its work counters are recorded; replayed screens
  /// (backtrack) pass false so a screen is only accounted once.
  void FillScreen(const core::GreedySelection& selection, Response* resp,
                  bool fresh_run, const TraceSpan& span);

  const core::VexusEngine* engine_;
  ServiceOptions options_;
  ServiceMetrics metrics_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<SessionManager> sessions_;
  std::unique_ptr<TraceLog> trace_log_;
  std::unique_ptr<Dispatcher> dispatcher_;
};

}  // namespace vexus::server
