// OverloadController — CoDel-style graceful-degradation ladder for the
// serving path.
//
// The paper's interactivity promise (100 ms per exploration step) has to
// survive sustained overload, and the fixed `max_queue_depth` shed of PR 1
// is a blunt instrument: it answers ResourceExhausted the moment a burst
// outruns the workers, even when shaving greedy effort would have kept
// everyone inside the budget. This controller replaces "shed first" with a
// ladder that trades *answer quality* for latency one rung at a time and
// only sheds when nothing cheaper is left:
//
//   rung 0  kNormal        full effort, full k
//   rung 1  kShrinkEffort  greedy budget × effort_factor, candidate pool
//                          capped — fewer trial swaps per screen
//   rung 2  kReduceK       screens of degraded_k (< the paper's 7) groups
//   rung 3  kStale         select_group answers the session's *cached*
//                          current screen (degraded:"stale"), skipping the
//                          greedy loop entirely
//   rung 4  kShed          admission control rejects (ResourceExhausted)
//
// The signal is CoDel's (Nichols & Jacobson, CACM 2012): the *minimum*
// queueing delay observed over a sliding window. Minimum, not mean — under
// bursty-but-healthy load the queue drains at least once per window and the
// min is ~0; a min that stays above `target_delay_ms` for a whole window
// means a standing queue that no burst tolerance explains. Each window
// close moves the ladder at most one rung (up when min > target, down when
// min < target/2; the hysteresis band in between holds), so the ladder
// cannot flap screen-to-screen.
//
// Mechanics are lock-free: workers call OnQueueDelay(delay) at task pickup;
// the sample folds into an atomic min, and the thread that notices the
// window elapsed closes it with a CAS (losers simply keep sampling into the
// next window). Rung reads on the admission path are one relaxed load.
//
// Recovery from kShed needs care: a rung-4 controller that shed *all*
// admissions would starve itself of queue-delay samples and stick at 4
// forever. The dispatcher therefore keeps admitting while the standing
// queue is at or below `shed_keep_depth` — those probe requests re-measure
// the queue and walk the ladder back down as the drain completes.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

namespace vexus::server {

struct OverloadOptions {
  /// Master switch. Disabled: rung stays kNormal forever and the dispatcher
  /// behaves exactly as in PR 1 (fixed-depth shedding only).
  bool enabled = true;
  /// CoDel target: a window whose *minimum* queue delay exceeds this has a
  /// standing queue → escalate one rung. 5 ms is 1/20 of the interactivity
  /// budget — queueing beyond that eats into greedy time for every request.
  double target_delay_ms = 5.0;
  /// Window length. 100 ms ≈ one request budget: the ladder reacts within
  /// a screen or two, but never mid-request.
  double window_ms = 100.0;
  /// Rung >= kShrinkEffort: multiply the greedy time budget by this.
  double effort_factor = 0.5;
  /// Rung >= kShrinkEffort: cap the greedy candidate pool at this many
  /// groups (0 = leave the configured cap alone).
  uint64_t degraded_candidate_cap = 128;
  /// Rung >= kReduceK: serve screens of this many groups (clamped to the
  /// requested k; never raises it).
  uint64_t degraded_k = 3;
  /// Rung kShed: keep admitting while the standing queue is at or below
  /// this depth, so the controller still sees fresh delay samples and can
  /// de-escalate once the drain completes.
  size_t shed_keep_depth = 4;
};

/// The ladder's rungs, in escalation order. Plain enum values double as the
/// JSON-visible integers in health probes and metrics.
enum class OverloadRung : int {
  kNormal = 0,
  kShrinkEffort = 1,
  kReduceK = 2,
  kStale = 3,
  kShed = 4,
};
inline constexpr int kNumOverloadRungs = 5;

/// Stable lowercase name ("normal", "shrink_effort", ...) for health JSON.
std::string_view OverloadRungName(OverloadRung rung);

/// Distinct delay-signal sources the controller tracks per window: source 0
/// is the dispatcher's queue-delay samples; the TCP front-end reports each
/// event loop's write-stall signal as source 1 + loop index (loops beyond
/// the table share the last slot). Sized for the front-end's practical
/// loop-count ceiling, not a protocol limit.
inline constexpr size_t kMaxOverloadSources = 17;

class OverloadController {
 public:
  explicit OverloadController(OverloadOptions options = {});

  OverloadController(const OverloadController&) = delete;
  OverloadController& operator=(const OverloadController&) = delete;

  /// One queue-delay sample (ms a request waited between admission and
  /// worker pickup). Called by every executing task; lock-free.
  ///
  /// `source` attributes the sample to one signal stream (see
  /// kMaxOverloadSources). Each source keeps its own window minimum and the
  /// closing window escalates on the MAX of the per-source minimums: CoDel's
  /// min filters burst noise *within* one stream, but min across streams
  /// would let nine idle event loops (min ≈ 0) mask one loop whose queue
  /// never drains — max-of-mins keeps a single hot loop able to trip the
  /// ladder. Sources that logged no sample this window abstain. With one
  /// source the aggregate equals that source's min, so single-stream
  /// callers see the PR 5 semantics unchanged.
  void OnQueueDelay(double delay_ms, size_t source = 0);

  /// Current rung; one relaxed load (the admission path reads this).
  OverloadRung rung() const {
    return static_cast<OverloadRung>(rung_.load(std::memory_order_relaxed));
  }

  /// Congestion signal of the last *closed* window, ms (0 before any window
  /// closed): the max over sources of each source's minimum queue delay.
  /// Health probes report this.
  double last_window_min_delay_ms() const {
    return last_min_us_.load(std::memory_order_relaxed) / 1e3;
  }

  /// Cumulative rung escalations (up-moves), for health/metrics.
  uint64_t escalations() const {
    return escalations_.load(std::memory_order_relaxed);
  }

  const OverloadOptions& options() const { return options_; }

  /// Test hook: force a rung (bypasses the window state machine).
  void ForceRungForTesting(OverloadRung rung) {
    rung_.store(static_cast<int>(rung), std::memory_order_relaxed);
  }

 private:
  /// Monotonic clock, microseconds.
  static uint64_t NowMicros();

  OverloadOptions options_;
  std::atomic<int> rung_{0};
  std::atomic<uint64_t> window_start_us_;
  /// Per-source min delay (us) seen in the open window; UINT64_MAX = that
  /// source has no sample yet.
  std::atomic<uint64_t> window_min_us_[kMaxOverloadSources];
  std::atomic<uint64_t> last_min_us_{0};
  std::atomic<uint64_t> escalations_{0};
};

}  // namespace vexus::server
