// Fixed-capacity ring of completed request traces, served by `get_trace`.
//
// The dispatcher finishes one Trace per request; the TraceLog decides whether
// that trace is worth keeping (slow-request filter) and, if so, publishes it
// into a bounded ring so `get_trace` can answer "show me the last N requests"
// and "show me the slowest N requests" without ever growing memory under
// sustained load.
//
// Concurrency model — "lock-free ring buffer" with one honest caveat:
//   * Slot *claiming* is lock-free: writers fetch_add a global sequence
//     counter and own slot `seq % capacity` outright. Two writers never
//     contend for the same slot until the ring has wrapped a full lap, so
//     the common case is wait-free hand-off.
//   * The record *transfer* into the slot is guarded by a tiny per-slot
//     mutex. A shared_ptr<const Trace> plus a handful of POD fields cannot
//     be published atomically without a seqlock-and-copy dance that TSan
//     (and humans) cannot verify; a per-slot mutex keeps readers and the
//     rare lapped writer correct and data-race-free under TSan. The lock is
//     only ever contended when a reader snapshots a slot mid-overwrite.
//   * Readers (Snapshot/LastN/SlowestN) copy records out slot-by-slot; a
//     record observed torn across a lap is rejected via its embedded seq.
//
// The slow-request filter keeps the ring's limited slots for the traces
// that matter: with slow_fraction = f, only requests whose total wall time
// is ≥ f × their budget are recorded (f = 0 records everything; requests
// with an infinite budget are recorded only when f == 0).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace.h"
#include "server/json.h"

namespace vexus::server {

struct TraceLogOptions {
  /// Master switch. When false the dispatcher never allocates a Trace and
  /// the per-request cost of the whole subsystem is one branch.
  bool enabled = false;
  /// Ring capacity (clamped to ≥ 1).
  size_t capacity = 256;
  /// Record only requests with total_ms ≥ slow_fraction × budget_ms.
  /// 0 records everything. Requests with an unbounded budget can only
  /// satisfy a 0 threshold.
  double slow_fraction = 0.0;
};

/// One completed request, as stored in the ring.
struct TraceRecord {
  uint64_t seq = 0;             ///< global admission order (1-based)
  std::string op;               ///< wire op name ("select_next", ...)
  std::string session_id;       ///< empty for session-less ops
  std::string status;           ///< StatusCodeName of the response
  double budget_ms = 0;         ///< request budget (0 = unbounded)
  double total_ms = 0;          ///< wall time, admission → completion
  double queue_ms = 0;          ///< admission → worker pickup
  std::shared_ptr<const Trace> trace;  ///< finished span tree

  bool valid() const { return seq != 0; }
};

class TraceLog {
 public:
  explicit TraceLog(const TraceLogOptions& options);

  bool enabled() const { return options_.enabled; }

  /// Records a finished request. `record.trace` must already be Finish()ed.
  /// Applies the slow-request filter; assigns `record.seq`. Thread-safe.
  void Record(TraceRecord record);

  /// Number of requests offered to Record() (before filtering).
  uint64_t offered() const { return offered_.load(std::memory_order_relaxed); }
  /// Number of requests actually stored (post-filter).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// The most recent `n` stored records, newest first.
  std::vector<TraceRecord> LastN(size_t n) const;

  /// The `n` slowest stored records (by total_ms), slowest first. Ties break
  /// toward the more recent request.
  std::vector<TraceRecord> SlowestN(size_t n) const;

  /// Serializes one record as a JSON object with a nested "spans" array
  /// (flat, parent-indexed — a span's parent always precedes it).
  static json::Value ToJson(const TraceRecord& record);

 private:
  std::vector<TraceRecord> Snapshot() const;

  TraceLogOptions options_;
  std::atomic<uint64_t> offered_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> next_slot_{0};

  struct Slot {
    mutable std::mutex mu;
    TraceRecord record;  // guarded by mu; seq == 0 while empty
  };
  std::vector<std::unique_ptr<Slot>> ring_;
};

}  // namespace vexus::server
