// ServiceMetrics — lock-free observability for the exploration service.
//
// Atomic counters (requests by op and by outcome, evictions, sheds) plus
// fixed-bucket latency histograms (one per op + one aggregate). Buckets are
// powers of two in microseconds, so Record() is a subtract-free bit scan and
// quantile estimation is a cumulative walk at Snapshot() time — no locks on
// the request path, which keeps the serving-layer overhead invisible next to
// the paper's 100 ms continuity budget.
//
// Snapshot() is wait-free-ish: it reads each atomic with relaxed ordering,
// so a snapshot taken while traffic is in flight is a *consistent-enough*
// view (counts may straggle by the requests that landed mid-walk), and a
// snapshot taken after a quiesced workload is exact — the property
// tests/server/service_test.cc pins down.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/trace.h"
#include "server/json.h"
#include "server/protocol.h"

namespace vexus::server {

/// Request stages with dedicated latency histograms — the aggregate view of
/// the per-request span tree (common/trace.h). Names match the span
/// taxonomy, so `RecordTraceStages` can fold a finished trace in by walking
/// its spans.
enum class Stage : int {
  kQueue = 0,      ///< admission → worker pickup
  kAdmit = 1,      ///< session admission (start_session)
  kSession = 2,    ///< acquiring the exclusive session lease
  kRank = 3,       ///< candidate-pool construction + prior ranking
  kGreedy = 4,     ///< the anytime swap loop (seed + passes)
  kSerialize = 5,  ///< screen/context payload construction
};
inline constexpr size_t kNumStages = 6;

/// Stage name as used both in span trees and the get_stats "stages" object.
std::string_view StageName(Stage s);

/// Power-of-two latency buckets: bucket i counts samples in
/// [2^i, 2^(i+1)) microseconds (bucket 0 also takes sub-microsecond ones).
/// 2^31 us ≈ 36 min caps the range; slower requests clamp into the last
/// bucket.
inline constexpr size_t kLatencyBuckets = 32;

/// Per-shard evaluation counters are a fixed atomic array (vectors of
/// atomics cannot resize under traffic); shard counts beyond this clamp.
/// 64 shards ≫ any core count the serving tier targets.
inline constexpr size_t kMaxMetricShards = 64;

class LatencyHistogram {
 public:
  void Record(double micros);

  /// Plain-struct copy of the histogram for quantile math.
  struct Snapshot {
    uint64_t count = 0;
    double sum_ms = 0;
    double max_ms = 0;
    std::array<uint64_t, kLatencyBuckets> buckets{};

    /// Quantile estimate (q in [0,1]): upper bound of the bucket holding the
    /// q-th sample, in milliseconds. Conservative (over-reports) by design —
    /// a latency SLO checked against it can only be stricter than reality.
    double QuantileMillis(double q) const;
    double MeanMillis() const {
      return count == 0 ? 0 : sum_ms / static_cast<double>(count);
    }
  };
  Snapshot Read() const;

 private:
  std::array<std::atomic<uint64_t>, kLatencyBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// Everything ServiceMetrics knows, frozen. Produced by Snapshot();
/// renderable as an aligned text table (ToString) or a JSON object (ToJson,
/// served by the get_stats op and emitted by bench_service_throughput).
struct MetricsSnapshot {
  /// Requests that *completed* (any status), by op.
  std::array<uint64_t, kNumRequestTypes> requests_by_type{};
  /// Outcomes.
  uint64_t ok = 0;
  uint64_t deadline_exceeded = 0;  // DEADLINE_EXCEEDED responses
  uint64_t not_found = 0;          // unknown/evicted/stale sessions
  uint64_t shed = 0;               // RESOURCE_EXHAUSTED via backpressure
  uint64_t other_errors = 0;       // anything else non-OK
  /// Session-manager events.
  uint64_t evictions_ttl = 0;
  uint64_t evictions_lru = 0;
  uint64_t admission_rejected = 0;
  /// Anytime-greedy truncations observed (paper P3 anytime behaviour).
  uint64_t greedy_deadline_hits = 0;
  /// Anytime-greedy work counters, summed over every screen computed: runs
  /// (one per screen), trial-swap objective evaluations, completed
  /// refinement passes, and applied swaps. evaluations/run is the live
  /// analogue of bench_greedy_incremental's headline metric — a deploy that
  /// regresses the incremental evaluator shows up here without a bench run.
  uint64_t greedy_runs = 0;
  uint64_t greedy_evaluations = 0;
  uint64_t greedy_passes = 0;
  uint64_t greedy_swaps = 0;
  /// Overload ladder (DESIGN.md §12): answers whose quality the controller
  /// reduced to stay inside the latency budget, by rung, plus admissions
  /// rejected *by the ladder's shed rung* (a subset of `shed`, which also
  /// counts the fixed queue-depth backstop and teardown sheds).
  uint64_t degraded_effort = 0;
  uint64_t degraded_k = 0;
  uint64_t degraded_stale = 0;
  /// Screens scored over a subset of the user universe because one or more
  /// gather shards missed their lap (DESIGN.md §16) — degraded:"partial".
  uint64_t degraded_partial = 0;
  uint64_t overload_sheds = 0;
  /// Cold-start path: successful warm_from_snapshot loads and the wall time
  /// of the most recent one (0 until the first load) — the operator-visible
  /// form of the snapshot-v2 cold-start claim.
  uint64_t warm_loads = 0;
  double last_warm_load_ms = 0;
  /// Live gauge at snapshot time.
  uint64_t open_sessions = 0;
  /// Scatter-gather greedy: coverage-partial evaluations executed on behalf
  /// of each shard (GreedySelection::shard_evaluations summed over runs).
  /// Empty unless the service was configured with more than one shard —
  /// get_stats then serves these as the "shards" object.
  std::vector<uint64_t> shard_evaluations;

  LatencyHistogram::Snapshot latency_by_type[kNumRequestTypes];
  LatencyHistogram::Snapshot latency_all;
  /// Per-stage latency (queue always; the rest only while tracing is on —
  /// their counts tell you how many requests were traced).
  LatencyHistogram::Snapshot stage_latency[kNumStages];

  uint64_t TotalRequests() const {
    uint64_t t = 0;
    for (uint64_t v : requests_by_type) t += v;
    return t;
  }
  uint64_t DegradedTotal() const {
    return degraded_effort + degraded_k + degraded_stale + degraded_partial;
  }

  std::string ToString() const;
  json::Value ToJson() const;
};

class ServiceMetrics {
 public:
  /// Records a completed request: op, outcome, end-to-end latency.
  void RecordRequest(RequestType type, StatusCode code, double latency_ms);

  void RecordEvictionTtl() { evictions_ttl_.fetch_add(1, kRelaxed); }
  void RecordEvictionLru() { evictions_lru_.fetch_add(1, kRelaxed); }
  void RecordAdmissionRejected() {
    admission_rejected_.fetch_add(1, kRelaxed);
  }
  void RecordGreedyDeadlineHit() {
    greedy_deadline_hits_.fetch_add(1, kRelaxed);
  }
  /// Accounts one completed greedy run (one screen): its trial-swap
  /// evaluations, completed refinement passes, and applied swaps.
  void RecordGreedyRun(uint64_t evaluations, uint64_t passes,
                       uint64_t swaps) {
    greedy_runs_.fetch_add(1, kRelaxed);
    greedy_evaluations_.fetch_add(evaluations, kRelaxed);
    greedy_passes_.fetch_add(passes, kRelaxed);
    greedy_swaps_.fetch_add(swaps, kRelaxed);
  }
  /// Declares the shard count get_stats should report per-shard counters
  /// for (clamped to [1, kMaxMetricShards]). Call once at service warm-up,
  /// before traffic — the count itself is not synchronized with recording.
  void ConfigureShards(size_t num_shards) {
    if (num_shards < 1) num_shards = 1;
    if (num_shards > kMaxMetricShards) num_shards = kMaxMetricShards;
    num_shards_.store(num_shards, kRelaxed);
  }
  /// Accounts one sharded greedy run's per-shard coverage-partial
  /// evaluations (GreedySelection::shard_evaluations). Entries beyond the
  /// metric slot cap fold into the last slot so totals stay conserved.
  void RecordShardEvaluations(const std::vector<uint64_t>& per_shard) {
    for (size_t s = 0; s < per_shard.size(); ++s) {
      size_t slot = s < kMaxMetricShards ? s : kMaxMetricShards - 1;
      shard_evaluations_[slot].fetch_add(per_shard[s], kRelaxed);
    }
  }
  /// Accounts one degraded answer, by the deepest ladder rung applied.
  void RecordDegradedEffort() { degraded_effort_.fetch_add(1, kRelaxed); }
  void RecordDegradedK() { degraded_k_.fetch_add(1, kRelaxed); }
  void RecordDegradedStale() { degraded_stale_.fetch_add(1, kRelaxed); }
  void RecordDegradedPartial() { degraded_partial_.fetch_add(1, kRelaxed); }
  /// Accounts one admission rejected by the ladder's shed rung.
  void RecordOverloadShed() { overload_sheds_.fetch_add(1, kRelaxed); }
  /// Accounts one successful snapshot warm-up (engine restored from disk).
  void RecordWarmLoad(double millis) {
    warm_loads_.fetch_add(1, kRelaxed);
    last_warm_load_us_.store(
        millis <= 0 ? 0 : static_cast<uint64_t>(millis * 1e3), kRelaxed);
  }

  /// Records one stage's wall time (microseconds).
  void RecordStage(Stage stage, double micros) {
    stage_latency_[static_cast<size_t>(stage)].Record(micros);
  }

  /// Folds a *finished* trace into the stage histograms: every span whose
  /// name matches a stage is recorded once (so `greedy` excludes its `seed`
  /// and `pass` children, which are detail, not stages).
  void RecordTraceStages(const Trace& trace);

  /// `open_sessions` is a gauge the owner passes in (the session manager
  /// knows it; metrics does not reach back to avoid a dependency cycle).
  MetricsSnapshot Snapshot(uint64_t open_sessions = 0) const;

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::array<std::atomic<uint64_t>, kNumRequestTypes> requests_by_type_{};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> not_found_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> other_errors_{0};
  std::atomic<uint64_t> evictions_ttl_{0};
  std::atomic<uint64_t> evictions_lru_{0};
  std::atomic<uint64_t> admission_rejected_{0};
  std::atomic<uint64_t> greedy_deadline_hits_{0};
  std::atomic<uint64_t> greedy_runs_{0};
  std::atomic<uint64_t> greedy_evaluations_{0};
  std::atomic<uint64_t> greedy_passes_{0};
  std::atomic<uint64_t> greedy_swaps_{0};
  std::atomic<uint64_t> degraded_effort_{0};
  std::atomic<uint64_t> degraded_k_{0};
  std::atomic<uint64_t> degraded_stale_{0};
  std::atomic<uint64_t> degraded_partial_{0};
  std::atomic<uint64_t> overload_sheds_{0};
  std::atomic<uint64_t> warm_loads_{0};
  std::atomic<uint64_t> last_warm_load_us_{0};
  std::atomic<uint64_t> num_shards_{1};
  std::array<std::atomic<uint64_t>, kMaxMetricShards> shard_evaluations_{};

  LatencyHistogram latency_by_type_[kNumRequestTypes];
  LatencyHistogram latency_all_;
  LatencyHistogram stage_latency_[kNumStages];
};

}  // namespace vexus::server
