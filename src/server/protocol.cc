#include "server/protocol.h"

#include <cmath>

namespace vexus::server {

namespace {

constexpr std::string_view kNames[kNumRequestTypes] = {
    "start_session", "select_group", "backtrack",   "bookmark",
    "unlearn",       "get_context",  "get_stats",   "end_session",
    "get_trace",     "warm_from_snapshot",           "health",
    "eval_partial",  "shard_info",
};

/// Reads a non-negative integer field; fails when present but ill-typed.
Status ReadUint(const json::Value& v, std::string_view key,
                std::optional<uint64_t>* out) {
  const json::Value* f = v.Find(key);
  if (f == nullptr) return Status::OK();
  if (!f->is_number()) {
    return Status::InvalidArgument(std::string(key) + " must be a number");
  }
  double d = f->AsDouble();
  if (d < 0 || std::floor(d) != d) {
    return Status::InvalidArgument(std::string(key) +
                                   " must be a non-negative integer");
  }
  *out = static_cast<uint64_t>(d);
  return Status::OK();
}

Status ReadUint32(const json::Value& v, std::string_view key,
                  std::optional<uint32_t>* out) {
  std::optional<uint64_t> wide;
  VEXUS_RETURN_NOT_OK(ReadUint(v, key, &wide));
  if (wide.has_value()) {
    if (*wide > UINT32_MAX) {
      return Status::InvalidArgument(std::string(key) + " out of range");
    }
    *out = static_cast<uint32_t>(*wide);
  }
  return Status::OK();
}

/// Reads an array of non-negative uint32 values; fails when present but
/// ill-typed (the eval_partial selection/trials/partials payloads).
Status ReadUint32Array(const json::Value& v, std::string_view key,
                       std::vector<uint32_t>* out) {
  const json::Value* f = v.Find(key);
  if (f == nullptr) return Status::OK();
  if (!f->is_array()) {
    return Status::InvalidArgument(std::string(key) + " must be an array");
  }
  out->clear();
  out->reserve(f->AsArray().size());
  for (const json::Value& e : f->AsArray()) {
    if (!e.is_number()) {
      return Status::InvalidArgument(std::string(key) +
                                     "[] must hold numbers");
    }
    double d = e.AsDouble();
    if (d < 0 || std::floor(d) != d || d > UINT32_MAX) {
      return Status::InvalidArgument(
          std::string(key) + "[] must hold uint32 values");
    }
    out->push_back(static_cast<uint32_t>(d));
  }
  return Status::OK();
}

json::Value Uint32ArrayToJson(const std::vector<uint32_t>& values) {
  json::Array arr;
  arr.reserve(values.size());
  for (uint32_t x : values) arr.emplace_back(json::Value(x));
  return json::Value(std::move(arr));
}

}  // namespace

std::string_view RequestTypeName(RequestType t) {
  return kNames[static_cast<size_t>(t)];
}

std::optional<RequestType> RequestTypeFromName(std::string_view name) {
  for (size_t i = 0; i < kNumRequestTypes; ++i) {
    if (kNames[i] == name) return static_cast<RequestType>(i);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

json::Value Request::ToJson() const {
  json::Object obj;
  obj.emplace_back("op", json::Value(RequestTypeName(type)));
  if (!session_id.empty()) obj.emplace_back("session", json::Value(session_id));
  if (generation != 0) obj.emplace_back("generation", json::Value(generation));
  if (budget_ms.has_value()) {
    obj.emplace_back("budget_ms", json::Value(*budget_ms));
  }
  if (group.has_value()) obj.emplace_back("group", json::Value(*group));
  if (user.has_value()) obj.emplace_back("user", json::Value(*user));
  if (step.has_value()) obj.emplace_back("step", json::Value(*step));
  if (token.has_value()) obj.emplace_back("token", json::Value(*token));
  if (top_k.has_value()) obj.emplace_back("top_k", json::Value(*top_k));
  if (k.has_value()) obj.emplace_back("k", json::Value(*k));
  if (learning_rate.has_value()) {
    obj.emplace_back("learning_rate", json::Value(*learning_rate));
  }
  if (n.has_value()) obj.emplace_back("n", json::Value(*n));
  if (slowest) obj.emplace_back("slowest", json::Value(true));
  if (path.has_value()) obj.emplace_back("path", json::Value(*path));
  if (shard.has_value()) obj.emplace_back("shard", json::Value(*shard));
  if (num_shards.has_value()) {
    obj.emplace_back("num_shards", json::Value(*num_shards));
  }
  if (anchor.has_value()) obj.emplace_back("anchor", json::Value(*anchor));
  if (!selection.empty()) {
    obj.emplace_back("selection", Uint32ArrayToJson(selection));
  }
  if (!trials.empty()) obj.emplace_back("trials", Uint32ArrayToJson(trials));
  return json::Value(std::move(obj));
}

Result<Request> Request::FromJson(const json::Value& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const json::Value* op = v.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("request missing string field \"op\"");
  }
  auto type = RequestTypeFromName(op->AsString());
  if (!type.has_value()) {
    return Status::InvalidArgument("unknown op \"" + op->AsString() + "\"");
  }

  Request req;
  req.type = *type;
  req.session_id = v.GetString("session", "");

  std::optional<uint64_t> generation;
  VEXUS_RETURN_NOT_OK(ReadUint(v, "generation", &generation));
  req.generation = generation.value_or(0);

  const json::Value* budget = v.Find("budget_ms");
  if (budget != nullptr) {
    if (!budget->is_number()) {
      return Status::InvalidArgument("budget_ms must be a number");
    }
    req.budget_ms = budget->AsDouble();
  }

  VEXUS_RETURN_NOT_OK(ReadUint32(v, "group", &req.group));
  VEXUS_RETURN_NOT_OK(ReadUint32(v, "user", &req.user));
  VEXUS_RETURN_NOT_OK(ReadUint(v, "step", &req.step));
  VEXUS_RETURN_NOT_OK(ReadUint32(v, "token", &req.token));
  VEXUS_RETURN_NOT_OK(ReadUint(v, "top_k", &req.top_k));
  VEXUS_RETURN_NOT_OK(ReadUint(v, "k", &req.k));
  const json::Value* lr = v.Find("learning_rate");
  if (lr != nullptr) {
    if (!lr->is_number()) {
      return Status::InvalidArgument("learning_rate must be a number");
    }
    req.learning_rate = lr->AsDouble();
  }
  VEXUS_RETURN_NOT_OK(ReadUint(v, "n", &req.n));
  VEXUS_RETURN_NOT_OK(ReadUint32(v, "shard", &req.shard));
  VEXUS_RETURN_NOT_OK(ReadUint32(v, "num_shards", &req.num_shards));
  VEXUS_RETURN_NOT_OK(ReadUint32(v, "anchor", &req.anchor));
  VEXUS_RETURN_NOT_OK(ReadUint32Array(v, "selection", &req.selection));
  VEXUS_RETURN_NOT_OK(ReadUint32Array(v, "trials", &req.trials));
  const json::Value* slowest = v.Find("slowest");
  if (slowest != nullptr) {
    if (!slowest->is_bool()) {
      return Status::InvalidArgument("slowest must be a bool");
    }
    req.slowest = slowest->AsBool();
  }
  const json::Value* path = v.Find("path");
  if (path != nullptr) {
    if (!path->is_string()) {
      return Status::InvalidArgument("path must be a string");
    }
    req.path = path->AsString();
  }

  // Per-op required fields.
  auto require_session = [&]() -> Status {
    if (req.session_id.empty()) {
      return Status::InvalidArgument(
          std::string(RequestTypeName(req.type)) +
          " requires a non-empty \"session\"");
    }
    return Status::OK();
  };
  switch (req.type) {
    case RequestType::kStartSession:
    case RequestType::kGetContext:
    case RequestType::kEndSession:
      VEXUS_RETURN_NOT_OK(require_session());
      break;
    case RequestType::kSelectGroup:
      VEXUS_RETURN_NOT_OK(require_session());
      if (!req.group.has_value()) {
        return Status::InvalidArgument("select_group requires \"group\"");
      }
      break;
    case RequestType::kBacktrack:
      VEXUS_RETURN_NOT_OK(require_session());
      if (!req.step.has_value()) {
        return Status::InvalidArgument("backtrack requires \"step\"");
      }
      break;
    case RequestType::kBookmark:
      VEXUS_RETURN_NOT_OK(require_session());
      if (req.group.has_value() == req.user.has_value()) {
        return Status::InvalidArgument(
            "bookmark requires exactly one of \"group\" / \"user\"");
      }
      break;
    case RequestType::kUnlearn:
      VEXUS_RETURN_NOT_OK(require_session());
      if (!req.token.has_value()) {
        return Status::InvalidArgument("unlearn requires \"token\"");
      }
      break;
    case RequestType::kWarmFromSnapshot:
      if (!req.path.has_value() || req.path->empty()) {
        return Status::InvalidArgument(
            "warm_from_snapshot requires a non-empty \"path\"");
      }
      break;
    case RequestType::kEvalPartial:
      if (!req.shard.has_value() || !req.num_shards.has_value()) {
        return Status::InvalidArgument(
            "eval_partial requires \"shard\" and \"num_shards\"");
      }
      if (*req.num_shards == 0 || *req.shard >= *req.num_shards) {
        return Status::InvalidArgument(
            "eval_partial shard index out of range");
      }
      if (req.trials.empty() || req.trials.size() % 2 != 0) {
        return Status::InvalidArgument(
            "eval_partial requires a non-empty even-length \"trials\" "
            "array of (candidate, slot) pairs");
      }
      break;
    case RequestType::kGetStats:
    case RequestType::kGetTrace:
    case RequestType::kHealth:
    case RequestType::kShardInfo:
      break;
  }
  return req;
}

Result<Request> Request::Decode(std::string_view line) {
  auto doc = json::Parse(line);
  VEXUS_RETURN_NOT_OK(doc.status());
  return FromJson(std::move(doc).ValueOrDie());
}

// ---------------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------------

json::Value Response::ToJson() const {
  json::Object obj;
  obj.emplace_back("op", json::Value(RequestTypeName(type)));
  obj.emplace_back("status",
                   json::Value(StatusCodeToString(status.code())));
  if (!status.ok()) obj.emplace_back("error", json::Value(status.message()));
  if (!session_id.empty()) obj.emplace_back("session", json::Value(session_id));
  if (generation != 0) obj.emplace_back("generation", json::Value(generation));
  obj.emplace_back("elapsed_ms", json::Value(elapsed_ms));
  obj.emplace_back("queue_ms", json::Value(queue_ms));

  if (!groups.empty()) {
    json::Array arr;
    arr.reserve(groups.size());
    for (const GroupView& g : groups) {
      json::Object o;
      o.emplace_back("id", json::Value(g.id));
      o.emplace_back("size", json::Value(g.size));
      o.emplace_back("description", json::Value(g.description));
      arr.emplace_back(std::move(o));
    }
    obj.emplace_back("groups", json::Value(std::move(arr)));
    obj.emplace_back("coverage", json::Value(coverage));
    obj.emplace_back("diversity", json::Value(diversity));
    obj.emplace_back("greedy_deadline_hit", json::Value(greedy_deadline_hit));
  }
  if (!context.empty()) {
    json::Array arr;
    arr.reserve(context.size());
    for (const ContextTokenView& t : context) {
      json::Object o;
      o.emplace_back("token", json::Value(t.token));
      o.emplace_back("score", json::Value(t.score));
      o.emplace_back("label", json::Value(t.label));
      arr.emplace_back(std::move(o));
    }
    obj.emplace_back("context", json::Value(std::move(arr)));
  }
  if (status.ok() &&
      (type == RequestType::kStartSession ||
       type == RequestType::kSelectGroup || type == RequestType::kBacktrack ||
       type == RequestType::kGetContext || type == RequestType::kEndSession)) {
    obj.emplace_back("step", json::Value(step));
    obj.emplace_back("num_steps", json::Value(num_steps));
    obj.emplace_back("memo_groups", json::Value(memo_groups));
    obj.emplace_back("memo_users", json::Value(memo_users));
  }
  if (degraded.has_value()) obj.emplace_back("degraded", json::Value(*degraded));
  if (covered_fraction.has_value()) {
    obj.emplace_back("covered_fraction", json::Value(*covered_fraction));
  }
  if (shard.has_value()) obj.emplace_back("shard", json::Value(*shard));
  if (num_shards.has_value()) {
    obj.emplace_back("num_shards", json::Value(*num_shards));
  }
  if (user_begin.has_value()) {
    obj.emplace_back("user_begin", json::Value(*user_begin));
  }
  if (user_end.has_value()) obj.emplace_back("user_end", json::Value(*user_end));
  if (num_groups.has_value()) {
    obj.emplace_back("num_groups", json::Value(*num_groups));
  }
  if (!partials.empty()) {
    obj.emplace_back("partials", Uint32ArrayToJson(partials));
  }
  if (stats.has_value()) obj.emplace_back("stats", *stats);
  if (traces.has_value()) obj.emplace_back("traces", *traces);
  if (health.has_value()) obj.emplace_back("health", *health);
  return json::Value(std::move(obj));
}

Result<Response> Response::FromJson(const json::Value& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  const json::Value* op = v.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("response missing string field \"op\"");
  }
  auto type = RequestTypeFromName(op->AsString());
  if (!type.has_value()) {
    return Status::InvalidArgument("unknown op \"" + op->AsString() + "\"");
  }
  Response resp;
  resp.type = *type;
  StatusCode code = StatusCodeFromString(v.GetString("status", "Unknown"));
  resp.status = Status::FromCode(code, v.GetString("error", ""));
  resp.session_id = v.GetString("session", "");
  resp.generation = static_cast<uint64_t>(v.GetNumber("generation", 0));
  resp.elapsed_ms = v.GetNumber("elapsed_ms", 0);
  resp.queue_ms = v.GetNumber("queue_ms", 0);
  resp.step = static_cast<uint64_t>(v.GetNumber("step", 0));
  resp.num_steps = static_cast<uint64_t>(v.GetNumber("num_steps", 0));
  resp.memo_groups = static_cast<uint64_t>(v.GetNumber("memo_groups", 0));
  resp.memo_users = static_cast<uint64_t>(v.GetNumber("memo_users", 0));
  resp.coverage = v.GetNumber("coverage", 0);
  resp.diversity = v.GetNumber("diversity", 0);
  resp.greedy_deadline_hit = v.GetBool("greedy_deadline_hit", false);

  const json::Value* groups = v.Find("groups");
  if (groups != nullptr) {
    if (!groups->is_array()) {
      return Status::InvalidArgument("groups must be an array");
    }
    for (const json::Value& g : groups->AsArray()) {
      if (!g.is_object()) {
        return Status::InvalidArgument("groups[] must hold objects");
      }
      GroupView view;
      view.id = static_cast<uint32_t>(g.GetNumber("id", 0));
      view.size = static_cast<uint64_t>(g.GetNumber("size", 0));
      view.description = g.GetString("description", "");
      resp.groups.push_back(std::move(view));
    }
  }
  const json::Value* ctx = v.Find("context");
  if (ctx != nullptr) {
    if (!ctx->is_array()) {
      return Status::InvalidArgument("context must be an array");
    }
    for (const json::Value& t : ctx->AsArray()) {
      if (!t.is_object()) {
        return Status::InvalidArgument("context[] must hold objects");
      }
      ContextTokenView view;
      view.token = static_cast<uint32_t>(t.GetNumber("token", 0));
      view.score = t.GetNumber("score", 0);
      view.label = t.GetString("label", "");
      resp.context.push_back(std::move(view));
    }
  }
  const json::Value* degraded = v.Find("degraded");
  if (degraded != nullptr) {
    if (!degraded->is_string()) {
      return Status::InvalidArgument("degraded must be a string");
    }
    resp.degraded = degraded->AsString();
  }
  const json::Value* covered = v.Find("covered_fraction");
  if (covered != nullptr) {
    if (!covered->is_number()) {
      return Status::InvalidArgument("covered_fraction must be a number");
    }
    resp.covered_fraction = covered->AsDouble();
  }
  VEXUS_RETURN_NOT_OK(ReadUint32(v, "shard", &resp.shard));
  VEXUS_RETURN_NOT_OK(ReadUint32(v, "num_shards", &resp.num_shards));
  VEXUS_RETURN_NOT_OK(ReadUint32(v, "user_begin", &resp.user_begin));
  VEXUS_RETURN_NOT_OK(ReadUint32(v, "user_end", &resp.user_end));
  VEXUS_RETURN_NOT_OK(ReadUint(v, "num_groups", &resp.num_groups));
  VEXUS_RETURN_NOT_OK(ReadUint32Array(v, "partials", &resp.partials));
  const json::Value* stats = v.Find("stats");
  if (stats != nullptr) resp.stats = *stats;
  const json::Value* traces = v.Find("traces");
  if (traces != nullptr) resp.traces = *traces;
  const json::Value* health = v.Find("health");
  if (health != nullptr) resp.health = *health;
  return resp;
}

Result<Response> Response::Decode(std::string_view line) {
  auto doc = json::Parse(line);
  VEXUS_RETURN_NOT_OK(doc.status());
  return FromJson(std::move(doc).ValueOrDie());
}

Response ErrorResponse(const Request& req, Status status) {
  Response resp;
  resp.type = req.type;
  resp.session_id = req.session_id;
  resp.status = std::move(status);
  return resp;
}

std::string EncodeParseError(const Status& status) {
  json::Object obj;
  obj.emplace_back("op", json::Value("error"));
  obj.emplace_back("status", json::Value(StatusCodeToString(status.code())));
  obj.emplace_back("error", json::Value(status.message()));
  return json::Value(std::move(obj)).Dump();
}

// ---------------------------------------------------------------------------
// LineFramer
// ---------------------------------------------------------------------------

void LineFramer::Append(std::string_view bytes) {
  // While discarding an oversized frame, bytes up to the next '\n' never
  // need to be stored — only whether the newline arrived matters. Keeping
  // them out of buf_ is what bounds memory against a client streaming an
  // endless unterminated line.
  if (discarding_) {
    size_t nl = bytes.find('\n');
    if (nl == std::string_view::npos) return;  // still inside the monster
    bytes.remove_prefix(nl);  // keep the '\n': Next() emits the marker frame
  }
  buf_.append(bytes.data(), bytes.size());
  // Enforce the cap eagerly, not just in Next(): an unterminated tail past
  // the limit starts discarding now, so buffered() is bounded no matter how
  // the caller interleaves Append and Next.
  if (!discarding_ && buf_.find('\n', pos_) == std::string::npos &&
      buf_.size() - pos_ > options_.max_frame_bytes) {
    discarding_ = true;
    buf_.clear();
    pos_ = 0;
  }
}

std::optional<LineFramer::Frame> LineFramer::Next() {
  for (;;) {
    size_t nl = buf_.find('\n', pos_);
    if (nl == std::string::npos) {
      // No complete frame. Enforce the cap on the unterminated tail and
      // compact the consumed prefix so buffered() bounds real memory.
      if (buf_.size() - pos_ > options_.max_frame_bytes && !discarding_) {
        discarding_ = true;
        buf_.clear();
        pos_ = 0;
      } else if (pos_ > 0) {
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      return std::nullopt;
    }
    size_t end = nl;
    if (end > pos_ && buf_[end - 1] == '\r') --end;  // CRLF tolerance
    // A complete-but-over-cap frame (its newline landed in the same read
    // chunk that crossed the limit) is surfaced as oversized too: the cap
    // is a contract on what callers may see, not just a memory bound.
    if (end - pos_ > options_.max_frame_bytes) discarding_ = true;
    Frame frame;
    if (!discarding_) frame.text.assign(buf_, pos_, end - pos_);
    pos_ = nl + 1;
    if (discarding_) {
      // The newline that ends the oversized frame: surface one marker so
      // the transport can answer a single error line, then resync.
      discarding_ = false;
      frame.text.clear();
      frame.oversized = true;
      return frame;
    }
    if (frame.text.empty()) continue;  // skip keepalive/blank lines
    return frame;
  }
}

}  // namespace vexus::server
