#include "server/trace_log.h"

#include <algorithm>

namespace vexus::server {

TraceLog::TraceLog(const TraceLogOptions& options) : options_(options) {
  if (options_.capacity < 1) options_.capacity = 1;
  ring_.reserve(options_.capacity);
  for (size_t i = 0; i < options_.capacity; ++i) {
    ring_.push_back(std::make_unique<Slot>());
  }
}

void TraceLog::Record(TraceRecord record) {
  if (!options_.enabled) return;
  offered_.fetch_add(1, std::memory_order_relaxed);
  // Slow-request filter. budget_ms <= 0 encodes "unbounded": no finite wall
  // time is a fraction of an infinite budget, so only a 0 threshold (record
  // everything) admits those.
  if (options_.slow_fraction > 0) {
    if (record.budget_ms <= 0) return;
    if (record.total_ms < options_.slow_fraction * record.budget_ms) return;
  }
  uint64_t seq = recorded_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.seq = seq;
  Slot& slot = *ring_[(seq - 1) % ring_.size()];
  std::lock_guard<std::mutex> lock(slot.mu);
  // A lapped writer may race a slower writer for the same slot; keep the
  // newer record (higher seq) so LastN stays monotone.
  if (slot.record.seq < seq) slot.record = std::move(record);
}

std::vector<TraceRecord> TraceLog::Snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  for (const auto& slot : ring_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->record.valid()) out.push_back(slot->record);
  }
  return out;
}

std::vector<TraceRecord> TraceLog::LastN(size_t n) const {
  std::vector<TraceRecord> all = Snapshot();
  std::sort(all.begin(), all.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.seq > b.seq;  // newest first
            });
  if (all.size() > n) all.resize(n);
  return all;
}

std::vector<TraceRecord> TraceLog::SlowestN(size_t n) const {
  std::vector<TraceRecord> all = Snapshot();
  std::sort(all.begin(), all.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.seq > b.seq;  // ties: more recent first
            });
  if (all.size() > n) all.resize(n);
  return all;
}

json::Value TraceLog::ToJson(const TraceRecord& record) {
  json::Object o;
  o.emplace_back("seq", json::Value(record.seq));
  o.emplace_back("op", json::Value(record.op));
  if (!record.session_id.empty()) {
    o.emplace_back("session", json::Value(record.session_id));
  }
  o.emplace_back("status", json::Value(record.status));
  o.emplace_back("budget_ms", json::Value(record.budget_ms));
  o.emplace_back("total_ms", json::Value(record.total_ms));
  o.emplace_back("queue_ms", json::Value(record.queue_ms));
  json::Array spans;
  if (record.trace != nullptr) {
    uint64_t dropped = record.trace->dropped();
    if (dropped > 0) o.emplace_back("dropped_spans", json::Value(dropped));
    for (const Trace::Span& s : record.trace->spans()) {
      json::Object so;
      so.emplace_back("name", json::Value(std::string(s.name)));
      so.emplace_back("parent", json::Value(s.parent));
      so.emplace_back("start_us", json::Value(s.start_us));
      so.emplace_back("duration_us", json::Value(s.duration_us));
      if (s.count > 0) so.emplace_back("count", json::Value(s.count));
      spans.push_back(json::Value(std::move(so)));
    }
  }
  o.emplace_back("spans", json::Value(std::move(spans)));
  return json::Value(std::move(o));
}

}  // namespace vexus::server
