#include "server/session_manager.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/logging.h"

namespace vexus::server {

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// One live (or dying) session slot. `mu` serializes ops on the session and
/// doubles as the idle/busy discriminator for eviction (try_lock fails ⇔
/// busy). `dead` flips exactly once, under `mu`, when the entry is evicted
/// or removed; a lease attempt that wins `mu` after that observes it and
/// reports NotFound. The shared_ptr keeps the storage alive for any thread
/// still blocked on `mu` when the map entry goes away.
struct SessionManager::Lease::Entry {
  std::mutex mu;
  std::unique_ptr<core::ExplorationSession> session;  // guarded by mu
  uint64_t generation = 0;                            // immutable
  bool dead = false;                                  // guarded by mu
  std::atomic<int64_t> last_used_us{0};
};

struct SessionManager::Shard {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<Lease::Entry>> map;
};

// ---------------------------------------------------------------------------
// Lease
// ---------------------------------------------------------------------------

SessionManager::Lease::Lease(std::shared_ptr<Entry> entry,
                             core::ExplorationSession* session,
                             uint64_t generation)
    : entry_(std::move(entry)), session_(session), generation_(generation) {}

SessionManager::Lease::~Lease() {
  if (entry_ == nullptr) return;  // moved-from
  entry_->last_used_us.store(SteadyNowMicros(), std::memory_order_relaxed);
  entry_->mu.unlock();
}

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

SessionManager::SessionManager(const core::VexusEngine* engine,
                               SessionManagerOptions options,
                               ServiceMetrics* metrics)
    : engine_(engine), options_(options), metrics_(metrics) {
  VEXUS_CHECK(engine != nullptr);
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.max_sessions == 0) options_.max_sessions = 1;
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SessionManager::~SessionManager() = default;

SessionManager::Shard& SessionManager::ShardOf(const std::string& id) {
  size_t h = std::hash<std::string>{}(id);
  return *shards_[h % shards_.size()];
}

int64_t SessionManager::NowMicros() const { return SteadyNowMicros(); }

Result<uint64_t> SessionManager::Create(const std::string& id,
                                        core::SessionOptions session_options) {
  if (id.empty()) {
    return Status::InvalidArgument("session id must be non-empty");
  }
  // Chaos site: admission failing for reasons other than capacity (token
  // space allocation, a per-tenant quota layer).
  VEXUS_FAILPOINT("session_manager.create");
  Shard& shard = ShardOf(id);
  // Lazy TTL pass over the target shard keeps long-idle sessions from
  // blocking admissions even when nobody calls SweepExpired(); the
  // round-robin step extends that guarantee to shards no access hashes to.
  SweepShard(shard);
  SweepNextShard();

  // Reserve a slot (CAS) so concurrent Creates cannot overshoot the cap.
  while (true) {
    size_t cur = count_.load(std::memory_order_relaxed);
    if (cur < options_.max_sessions) {
      if (count_.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_relaxed)) {
        break;
      }
      continue;
    }
    if (!EvictLruIdle()) {
      if (metrics_ != nullptr) metrics_->RecordAdmissionRejected();
      return Status::ResourceExhausted(
          "session limit reached (" + std::to_string(options_.max_sessions) +
          ") and no idle session is evictable");
    }
  }

  // Build the session outside the shard lock: TokenSpace construction walks
  // the dataset schema and is the expensive part of admission.
  auto entry = std::make_shared<Lease::Entry>();
  entry->session = engine_->CreateSession(session_options);
  entry->generation =
      next_generation_.fetch_add(1, std::memory_order_relaxed);
  entry->last_used_us.store(NowMicros(), std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.emplace(id, entry);
    if (!inserted) {
      count_.fetch_sub(1, std::memory_order_relaxed);  // release the slot
      return Status::AlreadyExists("session \"" + id + "\" is live");
    }
  }
  return entry->generation;
}

Result<SessionManager::Lease> SessionManager::Acquire(
    const std::string& id, uint64_t expected_generation) {
  // Chaos site: lease acquisition failing/stalling (a sleep here simulates
  // a long-held lease; an error simulates lookup-layer trouble).
  VEXUS_FAILPOINT("session_manager.acquire");
  // Cross-shard TTL progress rides on every acquire (cheap: one try-lock
  // walk of one shard), so a workload that only ever touches a few hot
  // sessions still expires the cold ones parked in other shards.
  SweepNextShard();
  Shard& shard = ShardOf(id);
  std::shared_ptr<Lease::Entry> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(id);
    if (it == shard.map.end()) {
      return Status::NotFound("session \"" + id + "\" does not exist");
    }
    entry = it->second;
  }
  // Block on the session's op lock *without* holding the shard lock, so one
  // slow explorer never stalls the other sessions hashed to this shard.
  entry->mu.lock();
  if (entry->dead) {
    entry->mu.unlock();
    return Status::NotFound("session \"" + id + "\" was evicted");
  }
  if (expected_generation != 0 &&
      expected_generation != entry->generation) {
    entry->mu.unlock();
    return Status::NotFound(
        "stale handle for session \"" + id + "\": generation " +
        std::to_string(expected_generation) + " != live generation " +
        std::to_string(entry->generation));
  }
  entry->last_used_us.store(NowMicros(), std::memory_order_relaxed);
  core::ExplorationSession* session = entry->session.get();
  uint64_t generation = entry->generation;
  return Lease(std::move(entry), session, generation);
}

Result<core::SessionDigest> SessionManager::Remove(
    const std::string& id, uint64_t expected_generation) {
  Shard& shard = ShardOf(id);
  std::shared_ptr<Lease::Entry> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(id);
    if (it == shard.map.end()) {
      return Status::NotFound("session \"" + id + "\" does not exist");
    }
    entry = it->second;
  }
  core::SessionDigest digest;
  {
    std::lock_guard<std::mutex> lock(entry->mu);  // drain in-flight lease
    if (entry->dead) {
      return Status::NotFound("session \"" + id + "\" was evicted");
    }
    if (expected_generation != 0 &&
        expected_generation != entry->generation) {
      return Status::NotFound(
          "stale handle for session \"" + id + "\": generation " +
          std::to_string(expected_generation) + " != live generation " +
          std::to_string(entry->generation));
    }
    entry->dead = true;
    digest = entry->session->Digest();
    entry->session.reset();
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(id);
    if (it != shard.map.end() && it->second == entry) shard.map.erase(it);
  }
  count_.fetch_sub(1, std::memory_order_relaxed);
  return digest;
}

size_t SessionManager::SweepShard(Shard& shard) {
  if (options_.ttl_seconds <= 0) return 0;
  // Chaos site: a sleep here makes the TTL sweep slow, widening the race
  // between eviction and concurrent Acquire/Create on the same shard.
  VEXUS_FAILPOINT_HIT("session_manager.evict");
  int64_t horizon_us =
      NowMicros() - static_cast<int64_t>(options_.ttl_seconds * 1e6);
  size_t evicted = 0;
  std::lock_guard<std::mutex> lock(shard.mu);
  for (auto it = shard.map.begin(); it != shard.map.end();) {
    auto& entry = it->second;
    if (entry->last_used_us.load(std::memory_order_relaxed) >= horizon_us) {
      ++it;
      continue;
    }
    // Busy entries are skipped, not waited for: their lease release bumps
    // last_used_us anyway.
    if (!entry->mu.try_lock()) {
      ++it;
      continue;
    }
    entry->dead = true;
    entry->session.reset();
    entry->mu.unlock();
    it = shard.map.erase(it);
    count_.fetch_sub(1, std::memory_order_relaxed);
    ++evicted;
    if (metrics_ != nullptr) metrics_->RecordEvictionTtl();
  }
  return evicted;
}

void SessionManager::SweepNextShard() {
  if (options_.ttl_seconds <= 0) return;
  size_t idx =
      sweep_cursor_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  SweepShard(*shards_[idx]);
}

size_t SessionManager::SweepExpired() {
  size_t evicted = 0;
  for (auto& shard : shards_) evicted += SweepShard(*shard);
  return evicted;
}

bool SessionManager::EvictLruIdle() {
  // Pass 1: rank all live entries by idle time (no entry locks taken).
  struct Candidate {
    int64_t last_used_us;
    size_t shard;
    std::string id;
  };
  std::vector<Candidate> candidates;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    for (const auto& [id, entry] : shards_[s]->map) {
      candidates.push_back(
          {entry->last_used_us.load(std::memory_order_relaxed), s, id});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.last_used_us < b.last_used_us;
            });
  // Pass 2: evict the oldest entry that is still present and idle.
  for (const Candidate& c : candidates) {
    Shard& shard = *shards_[c.shard];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(c.id);
    if (it == shard.map.end()) continue;
    auto& entry = it->second;
    if (!entry->mu.try_lock()) continue;  // busy: never evict under a lease
    entry->dead = true;
    entry->session.reset();
    entry->mu.unlock();
    shard.map.erase(it);
    count_.fetch_sub(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->RecordEvictionLru();
    return true;
  }
  return false;
}

}  // namespace vexus::server
