// bench_trace_overhead — proves the tracer is free when off and cheap when on.
//
// The tracing subsystem (src/common/trace.h, src/server/trace_log.h) rides
// inside the 100 ms interaction budget, so its cost model must be explicit:
//
//   1. Disabled span ops (the default): a default-constructed TraceSpan is a
//      null handle, so Child()/AddCount()/Close() must each cost one branch.
//      We measure ns/op over a hot loop and compare with an empty baseline.
//   2. Enabled span ops: Child()+Close() against a live Trace arena takes a
//      mutex and a clock read; we amortise over a capacity-sized burst.
//   3. End-to-end A/B: the scripted explorer workload from
//      bench_service_throughput, run alternately with trace.enabled=false and
//      true. Acceptance (ISSUE): traced throughput within 2% of untraced.
//
// Emits BENCH_trace_overhead.json (path overridable via argv[1]) so the
// regression number is a committed artifact, and prints the same JSON.
//
// Run:  ./build/bench/bench_trace_overhead [out.json]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "server/service.h"

using namespace vexus;
using namespace vexus::bench;

namespace {

/// Keeps the optimiser from deleting the measured loop.
template <typename T>
inline void Keep(const T& v) {
  asm volatile("" : : "r,m"(v) : "memory");
}

/// ns per Child()+Close() pair on a *disabled* (default-constructed) span.
double DisabledSpanNs(size_t iters) {
  TraceSpan disabled;  // null handle — the steady-state of a prod server
  Stopwatch sw;
  for (size_t i = 0; i < iters; ++i) {
    TraceSpan child = disabled.Child("hot");
    child.AddCount(1);
    child.Close();
    Keep(child);
  }
  double ns = sw.ElapsedMillis() * 1e6;
  return ns / static_cast<double>(iters);
}

/// ns per Child()+Close() pair against a live arena. Each burst fills a fresh
/// Trace to just under capacity so we never hit the drop path.
double EnabledSpanNs(size_t bursts, size_t spans_per_burst) {
  double total_ns = 0;
  size_t total_ops = 0;
  for (size_t b = 0; b < bursts; ++b) {
    Trace trace("bench", spans_per_burst + 8);
    TraceSpan root = trace.root();
    Stopwatch sw;
    for (size_t i = 0; i < spans_per_burst; ++i) {
      TraceSpan child = root.Child("hot");
      child.AddCount(1);
      child.Close();
      Keep(child);
    }
    total_ns += sw.ElapsedMillis() * 1e6;
    total_ops += spans_per_burst;
    trace.Finish();
  }
  return total_ns / static_cast<double>(total_ops);
}

server::Request MakeStart(const std::string& id) {
  server::Request req;
  req.type = server::RequestType::kStartSession;
  req.session_id = id;
  return req;
}

/// Same request mix as bench_service_throughput's explorer loop.
void ExplorerLoop(server::ExplorationService& svc, const std::string& id,
                  int rounds, std::atomic<uint64_t>* errors) {
  server::Response screen = svc.Call(MakeStart(id));
  if (!screen.status.ok() || screen.groups.empty()) {
    errors->fetch_add(1);
    return;
  }
  for (int r = 0; r < rounds; ++r) {
    server::Request sel;
    sel.type = server::RequestType::kSelectGroup;
    sel.session_id = id;
    sel.group = screen.groups[static_cast<size_t>(r) % screen.groups.size()].id;
    server::Response next = svc.Call(sel);
    if (next.status.ok() && !next.groups.empty()) screen = std::move(next);

    server::Request ctx;
    ctx.type = server::RequestType::kGetContext;
    ctx.session_id = id;
    ctx.top_k = 8;
    if (!svc.Call(ctx).status.ok()) errors->fetch_add(1);

    server::Request bm;
    bm.type = server::RequestType::kBookmark;
    bm.session_id = id;
    bm.group = screen.groups[0].id;
    if (!svc.Call(bm).status.ok()) errors->fetch_add(1);
  }
  server::Request end;
  end.type = server::RequestType::kEndSession;
  end.session_id = id;
  if (!svc.Call(end).status.ok()) errors->fetch_add(1);
}

struct RunResult {
  double rps = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
};

RunResult RunWorkload(core::VexusEngine& engine, bool traced, int sessions,
                      int rounds) {
  server::ServiceOptions opts;
  opts.session_template.greedy.k = 5;
  opts.session_template.greedy.time_limit_ms = 20;
  opts.dispatcher.default_budget_ms = 100;
  opts.num_workers = static_cast<size_t>(sessions);
  opts.trace.enabled = traced;
  opts.trace.capacity = 256;
  opts.trace.slow_fraction = 0.0;  // record everything: worst case for cost
  server::ExplorationService svc(&engine, opts);

  std::atomic<uint64_t> errors{0};
  Stopwatch wall;
  std::vector<std::thread> explorers;
  explorers.reserve(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    explorers.emplace_back([&svc, s, rounds, &errors] {
      ExplorerLoop(svc, "explorer" + std::to_string(s), rounds, &errors);
    });
  }
  for (auto& t : explorers) t.join();
  double wall_ms = wall.ElapsedMillis();

  server::MetricsSnapshot snap = svc.Stats();
  RunResult r;
  r.requests = snap.TotalRequests();
  r.errors = errors.load();
  r.rps = 1000.0 * static_cast<double>(r.requests) / wall_ms;
  return r;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path =
      argc > 1 ? argv[1] : "BENCH_trace_overhead.json";

  Banner("bench_trace_overhead",
         "disabled tracer must cost one branch per span; enabled tracer must "
         "keep end-to-end throughput within 2%");

  // --- 1. Disabled span micro-cost. Warm up, then measure.
  (void)DisabledSpanNs(1u << 20);
  double disabled_ns = DisabledSpanNs(1u << 26);
  std::printf("disabled span Child+AddCount+Close : %7.3f ns/op\n",
              disabled_ns);

  // --- 2. Enabled span micro-cost.
  (void)EnabledSpanNs(16, 200);
  double enabled_ns = EnabledSpanNs(2048, 200);
  std::printf("enabled  span Child+AddCount+Close : %7.1f ns/op\n\n",
              enabled_ns);

  // --- 3. End-to-end A/B on the explorer workload.
  core::VexusEngine engine = BxEngine(8000, 0.015);
  std::printf("%s\n\n", engine.Summary().c_str());

  constexpr int kSessions = 4;
  constexpr int kRounds = 15;
  constexpr int kTrials = 5;

  // Warm both paths once (index/page-cache effects), then interleave trials
  // so drift hits both arms equally.
  (void)RunWorkload(engine, false, kSessions, kRounds);
  (void)RunWorkload(engine, true, kSessions, kRounds);

  std::vector<double> base_rps, traced_rps;
  uint64_t requests = 0, errors = 0;
  for (int t = 0; t < kTrials; ++t) {
    RunResult base = RunWorkload(engine, false, kSessions, kRounds);
    RunResult traced = RunWorkload(engine, true, kSessions, kRounds);
    base_rps.push_back(base.rps);
    traced_rps.push_back(traced.rps);
    requests = base.requests;
    errors += base.errors + traced.errors;
    std::printf("trial %d: untraced %7.0f req/s | traced %7.0f req/s\n", t,
                base.rps, traced.rps);
  }

  double base_med = Median(base_rps);
  double traced_med = Median(traced_rps);
  double regression_pct = 100.0 * (base_med - traced_med) / base_med;

  std::printf("\nmedian untraced: %.0f req/s   median traced: %.0f req/s   "
              "regression: %+.2f%%  (accept < 2%%)\n",
              base_med, traced_med, regression_pct);

  server::json::Object out;
  out.emplace_back("bench", server::json::Value(std::string("trace_overhead")));
  out.emplace_back("disabled_span_ns", server::json::Value(disabled_ns));
  out.emplace_back("enabled_span_ns", server::json::Value(enabled_ns));
  out.emplace_back("concurrent_sessions", server::json::Value(kSessions));
  out.emplace_back("rounds_per_session", server::json::Value(kRounds));
  out.emplace_back("trials", server::json::Value(kTrials));
  out.emplace_back("requests_per_trial",
                   server::json::Value(requests));
  out.emplace_back("errors", server::json::Value(errors));
  out.emplace_back("untraced_rps_median", server::json::Value(base_med));
  out.emplace_back("traced_rps_median", server::json::Value(traced_med));
  out.emplace_back("regression_pct", server::json::Value(regression_pct));
  out.emplace_back("accept_below_pct", server::json::Value(2.0));
  out.emplace_back("pass",
                   server::json::Value(regression_pct < 2.0));
  std::string json = server::json::Value(std::move(out)).Dump();
  std::printf("JSON %s\n", json.c_str());

  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("WARN: could not open %s for writing\n", out_path);
  }
  return 0;
}
