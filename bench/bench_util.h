// Shared helpers for the experiment harnesses (bench_e*.cc): aligned table
// printing, simple statistics, and the standard dataset/engine builders each
// experiment starts from. Every harness prints the experiment id, the paper's
// claim, and the measured series so EXPERIMENTS.md can quote the output
// verbatim.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/generators/bookcrossing_gen.h"
#include "data/generators/dbauthors_gen.h"

namespace vexus::bench {

/// Prints the experiment banner.
inline void Banner(const std::string& id, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Fixed-width table row helpers.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(uint64_t v) { return std::to_string(v); }

struct Series {
  std::vector<double> values;

  void Add(double v) { values.push_back(v); }
  double Mean() const {
    if (values.empty()) return 0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  }
  double Stddev() const {
    if (values.size() < 2) return 0;
    double m = Mean();
    double s = 0;
    for (double v : values) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(values.size() - 1));
  }
  /// Nearest-rank percentile of the sample, `p` in [0, 1]. Edge inputs are
  /// pinned (bench_util_test.cc): empty → 0, p ≤ 0 or NaN → min, p ≥ 1 →
  /// max, single sample → that sample. Pre-fix, a negative or NaN `p`
  /// reached `static_cast<size_t>` — undefined behavior that could index
  /// anywhere — and every committed BENCH_*.json flows through here.
  double Percentile(double p) const {
    if (values.empty()) return 0;
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    if (!(p > 0)) return sorted.front();  // also catches NaN
    if (p >= 1) return sorted.back();
    size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size()));
    return sorted[std::min(idx, sorted.size() - 1)];
  }
  double Max() const {
    return values.empty() ? 0
                          : *std::max_element(values.begin(), values.end());
  }
};

/// Standard BookCrossing world for interactive experiments: moderate scale
/// so every harness finishes in seconds on one core.
inline data::BookCrossingGenerator::Config BxConfig(uint32_t users,
                                                    uint64_t seed = 42) {
  data::BookCrossingGenerator::Config cfg;
  cfg.num_users = users;
  cfg.num_books = users;
  cfg.num_ratings = users * 6;
  cfg.seed = seed;
  return cfg;
}

/// Builds a preprocessed engine over synthetic BookCrossing.
inline core::VexusEngine BxEngine(
    uint32_t users, double min_support = 0.02, uint64_t seed = 42,
    index::InvertedIndex::Options index_options = {}) {
  mining::DiscoveryOptions dopt;
  dopt.min_support_fraction = min_support;
  auto r = core::VexusEngine::Preprocess(
      data::BookCrossingGenerator::Generate(BxConfig(users, seed)), dopt,
      index_options);
  VEXUS_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

/// Builds a preprocessed engine over synthetic DB-Authors.
inline core::VexusEngine DbEngine(uint32_t authors, double min_support = 0.02,
                                  uint64_t seed = 7) {
  data::DbAuthorsGenerator::Config cfg;
  cfg.num_authors = authors;
  cfg.seed = seed;
  mining::DiscoveryOptions dopt;
  dopt.min_support_fraction = min_support;
  dopt.max_description = 3;
  auto r = core::VexusEngine::Preprocess(
      data::DbAuthorsGenerator::Generate(cfg), dopt, {});
  VEXUS_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

}  // namespace vexus::bench
