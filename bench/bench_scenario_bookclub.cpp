// E5 — Scenario 2, discussion groups (paper §III):
//
//   "The user study in [5] shows an 80% satisfaction of exploring rating
//    datasets via user groups in contrast to individuals."
//
// Protocol: simulated readers with a hidden taste (a favorite genre) look
// for a discussion group on synthetic BOOKCROSSING. Satisfaction proxy: the
// similarity of the best group reached to the reader's true taste cohort,
// thresholded at st_success_similarity — group-based exploration (VEXUS)
// versus an individual-level baseline that inspects top-rated co-raters one
// by one under the same interaction budget. Shape to reproduce: group-based
// satisfaction near the paper's 80%, far above the individual baseline.

#include "bench_util.h"
#include "common/random.h"
#include "core/simulated_explorer.h"

using namespace vexus;
using namespace vexus::bench;

namespace {

/// Individual-level baseline: with the same number of "interactions", the
/// reader inspects users who co-rated their favorite books (highest-overlap
/// first) and forms a "group" of the inspected users. Satisfaction = Jaccard
/// of that ad-hoc set to the true cohort.
double IndividualBaseline(const core::VexusEngine& engine,
                          const Bitset& cohort, data::UserId reader,
                          size_t budget) {
  const auto& ds = engine.dataset();
  // Books the reader rated >= 7.
  std::vector<bool> liked(ds.num_items(), false);
  for (const auto& r : ds.actions().records()) {
    if (r.user == reader && r.value >= 7.0f) liked[r.item] = true;
  }
  // Count overlap of other users with those books.
  std::vector<uint32_t> overlap(ds.num_users(), 0);
  for (const auto& r : ds.actions().records()) {
    if (r.user != reader && liked[r.item] && r.value >= 7.0f) {
      ++overlap[r.user];
    }
  }
  // Inspect the top `budget` users by overlap.
  std::vector<data::UserId> order(ds.num_users());
  std::iota(order.begin(), order.end(), data::UserId{0});
  std::sort(order.begin(), order.end(), [&](data::UserId a, data::UserId b) {
    if (overlap[a] != overlap[b]) return overlap[a] > overlap[b];
    return a < b;
  });
  Bitset adhoc(ds.num_users());
  for (size_t i = 0; i < budget && i < order.size(); ++i) {
    if (overlap[order[i]] == 0) break;
    adhoc.Set(order[i]);
  }
  return adhoc.Jaccard(cohort);
}

}  // namespace

int main() {
  Banner("E5 bench_scenario_bookclub",
         "80% satisfaction exploring rating data via groups vs individuals");

  core::VexusEngine engine = BxEngine(4000, 0.01);
  const auto& ds = engine.dataset();
  auto fav_attr = *ds.schema().Find("favorite_genre");
  const auto& genres = ds.schema().attribute(fav_attr).values();
  std::printf("%s\n\n", engine.Summary().c_str());

  const double kSatisfied = 0.5;  // "found my discussion group" threshold
  const size_t kBudget = 25;      // interactions per session

  Series group_sat, group_quality, group_iters;
  Series indiv_sat, indiv_quality;
  Rng rng(31);

  PrintRow({"genre", "cohort", "grp_quality", "grp_sat", "grp_iters",
            "ind_quality", "ind_sat"});
  for (data::ValueId v = 0; v < genres.size(); ++v) {
    Bitset cohort = ds.users().UsersWithValue(fav_attr, v);
    if (cohort.Count() < 30) continue;

    // Group-based: ST explorer toward the cohort.
    auto session = engine.CreateSession({});
    core::SimulatedExplorer::Options eopt;
    eopt.max_iterations = kBudget;
    eopt.st_success_similarity = kSatisfied;
    core::SimulatedExplorer explorer(eopt);
    auto outcome = explorer.RunSingleTarget(session.get(), cohort);
    group_quality.Add(outcome.goal_quality);
    group_sat.Add(outcome.goal_quality >= kSatisfied ? 1.0 : 0.0);
    group_iters.Add(static_cast<double>(outcome.iterations));

    // Individual-based: average over a few readers from the cohort.
    Series ind;
    auto members = cohort.ToVector();
    for (int rep = 0; rep < 5; ++rep) {
      data::UserId reader =
          members[rng.UniformU32(static_cast<uint32_t>(members.size()))];
      ind.Add(IndividualBaseline(engine, cohort, reader, kBudget));
    }
    indiv_quality.Add(ind.Mean());
    indiv_sat.Add(ind.Mean() >= kSatisfied ? 1.0 : 0.0);

    PrintRow({genres.Name(v), FmtInt(cohort.Count()),
              Fmt(outcome.goal_quality), Fmt(outcome.goal_quality >=
                                             kSatisfied)
                  .substr(0, 1),
              FmtInt(outcome.iterations), Fmt(ind.Mean()),
              Fmt(ind.Mean() >= kSatisfied).substr(0, 1)});
  }

  std::printf("\ngroup-based:     satisfaction=%.0f%%  mean quality=%.3f  "
              "mean iterations=%.1f\n",
              group_sat.Mean() * 100, group_quality.Mean(),
              group_iters.Mean());
  std::printf("individual-based: satisfaction=%.0f%%  mean quality=%.3f\n",
              indiv_sat.Mean() * 100, indiv_quality.Mean());
  std::printf(
      "\nshape check: group-based satisfaction near the paper's 80%%, well "
      "above the individual baseline.\n");
  return 0;
}
