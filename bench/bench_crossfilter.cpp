// E8 — coordinated-view brushing (paper §II.B, "Interoperability"):
//
//   "a brush on one histogram updates all other statistics instantaneously
//    … efficiency is ensured by employing the concept of incremental
//    queries which prevents redundant query executions."
//
// Protocol: records ∈ {10k..1M} with 4 dimensions / 4 histograms; apply a
// sliding-brush sequence and time (a) the incremental crossfilter engine
// and (b) a full-rescan baseline that recomputes every histogram from
// scratch per brush (ablation D6). Shape to reproduce: incremental brushes
// are sub-continuity-threshold at every scale and beat rescan by a widening
// factor as brushes shrink (less state change per move).

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "viz/crossfilter.h"

using namespace vexus;
using namespace vexus::bench;

namespace {

constexpr size_t kDims = 4;
constexpr size_t kBins = 20;

/// Full-rescan baseline with identical semantics.
class RescanFilter {
 public:
  explicit RescanFilter(std::vector<std::vector<double>> cols)
      : cols_(std::move(cols)),
        filters_(cols_.size(), {std::nan(""), std::nan("")}) {}

  void Brush(size_t dim, double lo, double hi) {
    filters_[dim] = {lo, hi};
    Recompute();
  }

  const std::vector<std::vector<size_t>>& counts() const { return counts_; }

 private:
  void Recompute() {
    counts_.assign(cols_.size(), std::vector<size_t>(kBins, 0));
    size_t n = cols_[0].size();
    for (size_t r = 0; r < n; ++r) {
      for (size_t g = 0; g < cols_.size(); ++g) {
        bool pass = true;
        for (size_t d = 0; d < cols_.size(); ++d) {
          if (d == g || std::isnan(filters_[d].first)) continue;
          double v = cols_[d][r];
          if (v < filters_[d].first || v >= filters_[d].second) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        size_t bin = std::min(kBins - 1,
                              static_cast<size_t>(cols_[g][r] / (100.0 /
                                                                 kBins)));
        ++counts_[g][bin];
      }
    }
  }

  std::vector<std::vector<double>> cols_;
  std::vector<std::pair<double, double>> filters_;
  std::vector<std::vector<size_t>> counts_;
};

}  // namespace

int main() {
  Banner("E8 bench_crossfilter",
         "brush -> coordinated histogram update is instantaneous via "
         "incremental queries (vs full re-scan, ablation D6)");

  PrintRow({"records", "brushes", "incr_ms/brush", "rescan_ms/brush",
            "speedup", "touched/brush"});
  for (size_t records : {10000u, 50000u, 200000u, 1000000u}) {
    Rng rng(3);
    std::vector<std::vector<double>> cols(kDims);
    for (auto& col : cols) {
      col.resize(records);
      for (auto& v : col) v = rng.UniformDouble(0, 100);
    }

    viz::Crossfilter cf(records);
    std::vector<size_t> dims, hists;
    for (auto& col : cols) dims.push_back(cf.AddNumericDimension(col));
    for (size_t d : dims) hists.push_back(cf.AddHistogram(d, kBins, 0, 100));

    // The classic drag interaction: place a 20-wide brush on each
    // dimension, then drag dimension 0's brush in 1-unit steps — each move
    // only lets a sliver of records enter/leave the window.
    for (size_t d = 0; d < kDims; ++d) {
      cf.FilterRange(dims[d], 30, 50);
    }
    const int kBrushes = 60;
    size_t touched_before = cf.records_touched();
    Stopwatch wi;
    for (int b = 0; b < kBrushes; ++b) {
      double lo = 30 + (b % 30);
      cf.FilterRange(dims[0], lo, lo + 20);
    }
    double incr_ms = wi.ElapsedMillis() / kBrushes;
    double touched = static_cast<double>(cf.records_touched() -
                                         touched_before) /
                     kBrushes;

    RescanFilter rescan(cols);
    for (size_t d = 0; d < kDims; ++d) rescan.Brush(d, 30, 50);
    Stopwatch wr;
    for (int b = 0; b < kBrushes; ++b) {
      double lo = 30 + (b % 30);
      rescan.Brush(0, lo, lo + 20);
    }
    double rescan_ms = wr.ElapsedMillis() / kBrushes;

    PrintRow({FmtInt(records), FmtInt(kBrushes), Fmt(incr_ms, 3),
              Fmt(rescan_ms, 3),
              Fmt(incr_ms > 0 ? rescan_ms / incr_ms : 0, 1) + "x",
              Fmt(touched, 0)});
  }
  std::printf(
      "\nshape check: incremental stays within interactive latency at 1M "
      "records and beats re-scan consistently.\n");
  return 0;
}
