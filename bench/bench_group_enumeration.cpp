// E6 — group-space explosion and closed-set pruning (paper §I):
//
//   "The number of possible groups is potentially very large as it is
//    exponential in the number of users' demographics and actions … with
//    only four demographic attributes and five values for each, the number
//    of user groups will be in the order of 10^6."
//
// Protocol: sweep #attributes (5 values each); report the combinatorial
// bound Π(v_i + 1) − 1 the paper's estimate refers to, the number of
// *frequent conjunctions* (Apriori), and the number of *closed* groups
// (LCM — what VEXUS materializes). Shape to reproduce: the bound explodes
// exponentially (hitting ~10^6 at 4 attributes × 5 values, the paper's
// example: 6^4 ≈ 1.3·10^3 descriptions but group space over value subsets
// ~ 10^6); closed groups grow far slower.

#include <cmath>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "mining/apriori.h"
#include "mining/descriptor_catalog.h"
#include "mining/lcm.h"

using namespace vexus;
using namespace vexus::bench;

namespace {

data::Dataset RandomWorld(size_t n_users, size_t n_attrs, size_t n_values,
                          uint64_t seed) {
  data::Dataset ds;
  Rng rng(seed);
  for (size_t a = 0; a < n_attrs; ++a) {
    ds.schema().AddCategorical("a" + std::to_string(a));
  }
  for (size_t u = 0; u < n_users; ++u) {
    data::UserId uid = ds.users().AddUser("u" + std::to_string(u));
    for (size_t a = 0; a < n_attrs; ++a) {
      ds.users().SetValueByName(
          uid, static_cast<data::AttributeId>(a),
          "v" + std::to_string(rng.UniformU32(
                    static_cast<uint32_t>(n_values))));
    }
  }
  return ds;
}

}  // namespace

int main() {
  Banner("E6 bench_group_enumeration",
         "group space is exponential in attributes (≈10^6 at 4 attrs × 5 "
         "values); closed mining keeps it tractable");

  const size_t kUsers = 2000;
  const size_t kValues = 5;
  const size_t kMinSupport = 20;  // 1%

  PrintRow({"attrs", "naive_bound", "apriori_freq", "lcm_closed",
            "lcm_ms", "closed/freq"});
  for (size_t attrs : {1u, 2u, 3u, 4u, 5u, 6u}) {
    data::Dataset ds = RandomWorld(kUsers, attrs, kValues, attrs * 17);
    auto cat = mining::DescriptorCatalog::Build(ds);

    // The paper's "number of user groups": any set of users sharing >= 1
    // descriptor — bounded by the subsets of the descriptor space. With v
    // values per attribute and conjunctive descriptions, the candidate
    // description space is (v+1)^attrs − 1; the *group* space over value
    // subsets is 2^(v·attrs) in the worst case. We report the former bound
    // (the paper's 10^6 figure at 4×5 corresponds to subsets of the 20
    // descriptors: 2^20 ≈ 10^6).
    double naive = std::pow(2.0, static_cast<double>(attrs * kValues));

    mining::AprioriMiner::Config acfg;
    acfg.min_support = kMinSupport;
    acfg.max_description = attrs;
    auto astats = mining::AprioriMiner(&cat, acfg).Mine(nullptr);

    mining::GroupStore store(kUsers);
    mining::LcmMiner::Config lcfg;
    lcfg.min_support = kMinSupport;
    lcfg.max_description = attrs;
    lcfg.emit_root = false;
    Stopwatch watch;
    auto lstats = mining::LcmMiner(&cat, lcfg).Mine(&store);
    double lcm_ms = watch.ElapsedMillis();

    PrintRow({FmtInt(attrs), Fmt(naive, 0), FmtInt(astats.frequent_itemsets),
              FmtInt(lstats.groups_emitted), Fmt(lcm_ms, 1),
              Fmt(astats.frequent_itemsets > 0
                      ? static_cast<double>(lstats.groups_emitted) /
                            static_cast<double>(astats.frequent_itemsets)
                      : 1.0)});
  }
  // Closedness prunes when attributes carry *functional dependencies* —
  // the zip→city→state hierarchies ubiquitous in demographic data. Here:
  // a fine attribute (20 values), a coarse one determined by it (5 values),
  // plus an independent one. Every frequent set containing fine=v but not
  // coarse=f(v) shares its extent with the closed set that adds it.
  std::printf("\n[hierarchical data: fine -> coarse functional dependency]\n");
  PrintRow({"min_supp", "apriori_freq", "lcm_closed", "closed/freq"});
  data::Dataset bx;
  {
    Rng hrng(99);
    auto fine = bx.schema().AddCategorical("city");
    auto coarse = bx.schema().AddCategorical("region");
    auto indep = bx.schema().AddCategorical("occupation");
    for (size_t u = 0; u < 5000; ++u) {
      data::UserId uid = bx.users().AddUser("u" + std::to_string(u));
      uint32_t c = hrng.UniformU32(20);
      bx.users().SetValueByName(uid, fine, "city" + std::to_string(c));
      bx.users().SetValueByName(uid, coarse,
                                "region" + std::to_string(c / 4));
      bx.users().SetValueByName(
          uid, indep, "occ" + std::to_string(hrng.UniformU32(6)));
    }
  }
  auto bx_cat = mining::DescriptorCatalog::Build(bx);
  for (size_t support : {250u, 100u, 50u, 25u}) {
    mining::AprioriMiner::Config acfg;
    acfg.min_support = support;
    acfg.max_description = 4;
    auto astats = mining::AprioriMiner(&bx_cat, acfg).Mine(nullptr);
    mining::GroupStore store(bx.num_users());
    mining::LcmMiner::Config lcfg;
    lcfg.min_support = support;
    lcfg.max_description = 4;
    lcfg.emit_root = false;
    auto lstats = mining::LcmMiner(&bx_cat, lcfg).Mine(&store);
    PrintRow({FmtInt(support), FmtInt(astats.frequent_itemsets),
              FmtInt(lstats.groups_emitted),
              Fmt(static_cast<double>(lstats.groups_emitted) /
                  static_cast<double>(
                      std::max<size_t>(1, astats.frequent_itemsets)))});
  }

  std::printf(
      "\nshape check: naive_bound explodes exponentially (2^20 ≈ 10^6 at 4 "
      "attrs × 5 values — the paper's example); closed groups stay orders "
      "of magnitude smaller, and closure prunes further on correlated "
      "data.\n");
  return 0;
}
