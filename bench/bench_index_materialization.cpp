// E3 — inverted-index materialization fraction (paper §II.A):
//
//   "To reduce both time and space complexity, we only materialize 10% of
//    each inverted index which is shown in [14] to be adequate to deliver
//    satisfying results."
//
// Protocol: build the index at p ∈ {1, 5, 10, 25, 100}% and measure
// (a) memory, (b) neighbor recall@10 against the full index, and
// (c) end-task quality — the greedy's diversity/coverage using the
// truncated index relative to using the full one. Shape to reproduce: 10%
// retains near-full recommendation quality at ~10x less memory.

#include <set>

#include "bench_util.h"
#include "common/random.h"
#include "core/greedy.h"

using namespace vexus;
using namespace vexus::bench;

int main() {
  Banner("E3 bench_index_materialization",
         "materializing 10% of each inverted index is adequate");

  // One discovery pass, shared across index builds.
  mining::DiscoveryOptions dopt;
  dopt.min_support_fraction = 0.005;
  auto discovery = mining::DiscoverGroups(
      data::BookCrossingGenerator::Generate(BxConfig(10000)), dopt);
  VEXUS_CHECK(discovery.ok());
  const mining::GroupStore& store = discovery->groups;
  std::printf("groups=%zu users=%zu\n\n", store.size(), store.num_users());

  index::InvertedIndex::Options full_opt;
  full_opt.materialization_fraction = 1.0;
  full_opt.min_neighbors = 1;
  auto full = index::InvertedIndex::Build(store, full_opt);
  VEXUS_CHECK(full.ok());

  // Anchors for recall / end-task probes.
  Rng rng(5);
  std::vector<mining::GroupId> anchors;
  while (anchors.size() < 30) {
    mining::GroupId g =
        rng.UniformU32(static_cast<uint32_t>(store.size()));
    if (full->Neighbors(g).size() >= 20) anchors.push_back(g);
  }

  // Reference end-task quality with the full index.
  data::Dataset token_world;  // minimal token space over the same universe
  for (size_t u = 0; u < store.num_users(); ++u) {
    token_world.users().AddUser("u" + std::to_string(u));
  }
  core::TokenSpace tokens(token_world);
  core::FeedbackVector feedback(&tokens);
  core::GreedyOptions gopt;
  gopt.k = 5;
  gopt.time_limit_ms = vexus::core::GreedyOptions::kUnboundedTimeLimit;

  core::GreedySelector full_selector(&store, &*full);
  Series ref_obj;
  for (auto a : anchors) {
    ref_obj.Add(full_selector.SelectNext(a, feedback, gopt).quality.objective);
  }

  PrintRow({"fraction", "postings", "memory_kb", "build_ms", "recall@10",
            "greedy_obj", "obj_vs_full"});
  for (double p : {0.01, 0.05, 0.10, 0.25, 1.0}) {
    index::InvertedIndex::Options opt;
    opt.materialization_fraction = p;
    opt.min_neighbors = 1;
    auto idx = index::InvertedIndex::Build(store, opt);
    VEXUS_CHECK(idx.ok());

    // Recall@10 of the true top-10 neighbors.
    Series recall;
    for (auto a : anchors) {
      auto truth = full->TopK(a, 10);
      std::set<mining::GroupId> got;
      for (const auto& nb : idx->Neighbors(a)) got.insert(nb.group);
      size_t hits = 0;
      for (const auto& t : truth) hits += got.count(t.group);
      if (!truth.empty()) {
        recall.Add(static_cast<double>(hits) /
                   static_cast<double>(truth.size()));
      }
    }

    // End-task quality with this index.
    core::GreedySelector selector(&store, &*idx);
    Series obj;
    for (auto a : anchors) {
      obj.Add(selector.SelectNext(a, feedback, gopt).quality.objective);
    }

    PrintRow({Fmt(p * 100, 0) + "%",
              FmtInt(idx->build_stats().postings),
              FmtInt(idx->build_stats().memory_bytes / 1024),
              Fmt(idx->build_stats().elapsed_ms, 1), Fmt(recall.Mean()),
              Fmt(obj.Mean()),
              Fmt(ref_obj.Mean() > 0 ? obj.Mean() / ref_obj.Mean() : 1.0)});
  }
  std::printf(
      "\nshape check: at 10%% the end-task objective should be within a few "
      "percent of the full index at ~10x smaller postings.\n");
  return 0;
}
