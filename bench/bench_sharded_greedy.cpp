// bench_sharded_greedy — scatter-gather greedy throughput vs shard count
// over a partitioned user universe (ROADMAP item 2; DESIGN.md §15).
//
// The greedy's per-trial cost at paper scale is the coverage partial: one
// word-parallel pass over |U|/64 bitset words. A ShardMap splits that word
// range into S word-aligned shards; each trial then scatters one coverage
// partial per shard onto the worker pool and a deterministic coordinator
// folds the integer partials in shard order. Because the partials are exact
// integers, S-shard selections are byte-identical to 1-shard — sharding is
// a throughput knob, never a results knob — which this harness asserts on
// every run before reporting anything.
//
// Reported per shard count: refinement evaluations/sec, mean / p50 / p99
// per-run wall time, and two gates the exit code enforces:
//   identity  — selections, objective bits, and swap counts equal S=1;
//   flat p99  — p99 run time at every S stays within a small factor of the
//               S=1 p99 (sharding must never *cost* latency).
//
// The universe is ≥ 1M synthetic users (|U|/64 = 16,384 words per partial)
// so the scatter has real work to split. `--smoke` shrinks the world for CI.
// JSON sidecar: argv[1] (default BENCH_sharded_greedy.json).

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/shard_map.h"
#include "common/thread_pool.h"
#include "core/feedback.h"
#include "core/greedy.h"
#include "server/json.h"

using namespace vexus;
using namespace vexus::bench;

namespace {

/// Synthetic world built directly at the group-store layer: a full
/// BookCrossing Preprocess at 1M users would spend minutes in discovery to
/// produce the same shape of input the greedy consumes (groups over a large
/// universe + a materialized index).
struct BigWorld {
  BigWorld(size_t n_users, size_t n_groups, uint64_t seed)
      : store(n_users) {
    Rng rng(seed);
    for (size_t g = 0; g < n_groups; ++g) {
      Bitset members(n_users);
      // Contiguous runs with ragged edges: every shard's word range holds
      // member mass, so per-shard partials all do real work.
      uint32_t start = rng.UniformU32(static_cast<uint32_t>(n_users));
      uint32_t len = static_cast<uint32_t>(n_users / 64) +
                     rng.UniformU32(static_cast<uint32_t>(n_users / 16));
      for (uint32_t i = 0; i < len; ++i) {
        members.Set((start + i * 3) % n_users);  // stride keeps them ragged
      }
      store.Add(mining::UserGroup({{0, static_cast<data::ValueId>(g)}},
                                  std::move(members)));
    }
    index::InvertedIndex::Options opt;
    opt.materialization_fraction = 1.0;
    opt.min_neighbors = 1;
    index = std::make_unique<index::InvertedIndex>(
        std::move(index::InvertedIndex::Build(store, opt)).ValueOrDie());
    // Minimal dataset for the token space. The schema must cover the
    // descriptor tokens, and the user table must cover the group universe:
    // FeedbackVector::UserWeights() is sized by the dataset's user count
    // and the seeding WeightedJaccard indexes it by member id.
    data::AttributeId a0 = ds.schema().AddCategorical("a0");
    for (size_t g = 0; g < n_groups; ++g) {
      ds.schema().attribute(a0).values().GetOrAdd("v" + std::to_string(g));
    }
    for (size_t u = 0; u < n_users; ++u) {
      ds.users().AddUser("u" + std::to_string(u));
    }
    tokens = std::make_unique<core::TokenSpace>(ds);
  }

  mining::GroupStore store;
  data::Dataset ds;
  std::unique_ptr<index::InvertedIndex> index;
  std::unique_ptr<core::TokenSpace> tokens;
};

struct ShardResult {
  size_t shards = 1;
  Series elapsed_ms, evals, swaps;
  bool identical_to_unsharded = true;

  double EvalsPerSec() const {
    double total_evals = 0, total_ms = 0;
    for (double v : evals.values) total_evals += v;
    for (double v : elapsed_ms.values) total_ms += v;
    return total_ms > 0 ? total_evals / (total_ms / 1e3) : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sharded_greedy.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  Banner("bench_sharded_greedy",
         "horizontal sharding scatter-gathers the greedy's coverage "
         "partials across the user universe; selections stay byte-identical "
         "at every shard count while evaluations/sec scale");

  // 2^20 users = 16,384 bitset words per coverage partial; a shard at S=8
  // still owns 2,048 words — far above the fold overhead.
  const size_t kUsers = smoke ? size_t{1} << 16 : size_t{1} << 20;
  const size_t kGroups = smoke ? 60 : 120;
  const size_t kAnchors = smoke ? 3 : 10;
  const std::vector<size_t> shard_counts = {1, 2, 4, 8};

  std::printf("world: %zu users, %zu groups%s\n", kUsers, kGroups,
              smoke ? " (smoke)" : "");
  BigWorld w(kUsers, kGroups, /*seed=*/29);
  core::FeedbackVector fb(w.tokens.get());
  core::GreedySelector selector(&w.store, w.index.get());
  ThreadPool pool;  // hardware concurrency
  std::printf("scatter pool: %zu workers\n", pool.num_threads() + 1);

  // Anchors: the groups with the densest posting lists (deterministic —
  // rerunning the bench measures the same work). Ties break on id.
  std::vector<mining::GroupId> anchors(w.store.size());
  std::iota(anchors.begin(), anchors.end(), 0);
  std::stable_sort(anchors.begin(), anchors.end(),
                   [&](mining::GroupId a, mining::GroupId b) {
                     return w.index->Neighbors(a).size() >
                            w.index->Neighbors(b).size();
                   });
  anchors.resize(std::min(kAnchors, anchors.size()));

  core::GreedyOptions base;
  base.k = 7;
  base.min_similarity = 0.0;
  base.time_limit_ms = core::GreedyOptions::kUnboundedTimeLimit;
  base.scan_pool = &pool;

  // Reference run: unsharded. Every sharded run must reproduce it bit for
  // bit (groups, objective, swap count) — the same invariant the
  // GreedyTest S∈{1,2,4,8} identity matrix pins at test scale.
  std::vector<core::GreedySelection> reference;
  reference.reserve(anchors.size());

  std::vector<ShardResult> results;
  std::vector<std::unique_ptr<ShardMap>> maps;  // outlive the runs
  bool all_identical = true;

  for (size_t S : shard_counts) {
    ShardResult r;
    r.shards = S;
    core::GreedyOptions opt = base;
    if (S > 1) {
      maps.push_back(std::make_unique<ShardMap>(kUsers, S));
      opt.shard_map = maps.back().get();
    }
    for (size_t a = 0; a < anchors.size(); ++a) {
      Stopwatch watch;
      auto sel = selector.SelectNext(anchors[a], fb, opt);
      r.elapsed_ms.Add(watch.ElapsedMillis());
      r.evals.Add(static_cast<double>(sel.evaluations));
      r.swaps.Add(static_cast<double>(sel.swaps));
      if (S == 1) {
        reference.push_back(std::move(sel));
      } else {
        const core::GreedySelection& ref = reference[a];
        // Byte-identity: memcmp on the objective doubles, not ==, so a
        // sign/NaN discrepancy can't hide.
        if (sel.groups != ref.groups || sel.swaps != ref.swaps ||
            std::memcmp(&sel.quality.objective, &ref.quality.objective,
                        sizeof(double)) != 0) {
          r.identical_to_unsharded = false;
          all_identical = false;
          std::printf("IDENTITY VIOLATION: S=%zu anchor=%u\n", S,
                      anchors[a]);
        }
      }
    }
    results.push_back(std::move(r));
  }

  PrintRow({"shards", "evals/sec", "mean_ms", "p50_ms", "p99_ms", "evals",
            "swaps", "identical"});
  for (const ShardResult& r : results) {
    PrintRow({std::to_string(r.shards), Fmt(r.EvalsPerSec(), 0),
              Fmt(r.elapsed_ms.Mean(), 2), Fmt(r.elapsed_ms.Percentile(0.5), 2),
              Fmt(r.elapsed_ms.Percentile(0.99), 2), Fmt(r.evals.Mean(), 0),
              Fmt(r.swaps.Mean(), 1), r.identical_to_unsharded ? "yes" : "NO"});
  }

  // Flat-p99 gate: scatter-gather must never buy throughput with a latency
  // tail. Generous factor — the gate is for order-of-magnitude regressions
  // (a serialized scatter, a lock on the fold path), not scheduler noise.
  const double base_p99 = results.front().elapsed_ms.Percentile(0.99);
  bool p99_flat = true;
  for (const ShardResult& r : results) {
    double p99 = r.elapsed_ms.Percentile(0.99);
    if (p99 > 3.0 * base_p99 + 5.0) {
      p99_flat = false;
      std::printf("P99 GATE VIOLATION: S=%zu p99=%.2fms vs S=1 p99=%.2fms\n",
                  r.shards, p99, base_p99);
    }
  }
  std::printf("selections byte-identical across S in {1,2,4,8}: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("p99 flat across shard counts: %s\n", p99_flat ? "yes" : "NO");

  // ---- JSON sidecar. ----
  server::json::Object top;
  top.emplace_back("bench", server::json::Value("sharded_greedy"));
  server::json::Object cfg;
  cfg.emplace_back("users", server::json::Value(uint64_t{kUsers}));
  cfg.emplace_back("groups", server::json::Value(uint64_t{kGroups}));
  cfg.emplace_back("anchors", server::json::Value(uint64_t{anchors.size()}));
  cfg.emplace_back("k", server::json::Value(uint64_t{base.k}));
  cfg.emplace_back("workers",
                   server::json::Value(uint64_t{pool.num_threads() + 1}));
  cfg.emplace_back("smoke", server::json::Value(smoke));
  top.emplace_back("config", server::json::Value(std::move(cfg)));
  server::json::Object by_shards;
  for (const ShardResult& r : results) {
    server::json::Object o;
    o.emplace_back("evals_per_sec", server::json::Value(r.EvalsPerSec()));
    o.emplace_back("mean_ms", server::json::Value(r.elapsed_ms.Mean()));
    o.emplace_back("p50_ms",
                   server::json::Value(r.elapsed_ms.Percentile(0.5)));
    o.emplace_back("p99_ms",
                   server::json::Value(r.elapsed_ms.Percentile(0.99)));
    o.emplace_back("mean_evaluations", server::json::Value(r.evals.Mean()));
    o.emplace_back("identical_to_unsharded",
                   server::json::Value(r.identical_to_unsharded));
    by_shards.emplace_back("s" + std::to_string(r.shards),
                           server::json::Value(std::move(o)));
  }
  top.emplace_back("by_shards", server::json::Value(std::move(by_shards)));
  top.emplace_back("identical_across_shard_counts",
                   server::json::Value(all_identical));
  top.emplace_back("p99_flat", server::json::Value(p99_flat));

  std::ofstream out(json_path);
  out << server::json::Value(std::move(top)).Dump() << "\n";
  out.close();
  std::printf("wrote %s\n", json_path.c_str());

  return all_identical && p99_flat ? 0 : 1;
}
